#!/usr/bin/env python
"""Record the repo's perf baseline: sweep wall-clock + hot-path micros.

Times a fixed fig6-style sweep (all four algorithms over ``--configs``
network configurations, paper-scale 8 servers x 180 images) serially and
with a worker pool, verifies the two produce bit-identical summaries, and
benchmarks the kernel/trace hot paths:

* DES calendar throughput (timeout schedule-and-fire events/second);
* ``BandwidthTrace.transfer_time`` — prefix-sum inversion vs the
  reference segment-by-segment walk (``_transfer_time_scan``);
* ``TraceLibrary.sample_noon_segment`` draw rate (cached sorted keys);
* vectorized sampling — cached/batched noon-segment draws vs the
  build-per-draw reference they replaced;
* config build — build-once ``SampledConfig`` fan-out vs resampling the
  network configuration for every ``(config, algorithm)`` run;
* run-tracing overhead — the same simulation with the tracer off vs on
  (the no-op tracer must stay effectively free);
* planner engine — the vectorized move-grid pricing
  (``BatchMoveEvaluator``) vs the scalar per-candidate reference at the
  paper's 8-server scale, both evaluator-level (cells/second on one
  round's full grid) and end-to-end (``plan()`` candidates/second),
  with a bit-identical ``PlanResult`` equality check;
* streaming fleet metrics at scale — a 100k-client synthetic open-loop
  stream through ``StreamingFleetMetrics``: ingest rate, flat-memory
  check, sketch error vs exact percentiles, shard-merge invariance;
* overload protection under chaos — the same oversubscribed fleet wide
  open vs protected (admission + deadlines + retries + breakers):
  protected p99 stays under the deadline, counters reconcile with a
  trace replay and across a 3-way shard split;
* fleet-aware joint planning — a chaos-stressed fleet of replanning
  global queries blind vs coordinated vs fair: the coordinator's
  residual-bandwidth view and relocation budget cut fleet p99 and
  churn, with the same replay and shard reconciliation asserted.

Writes ``BENCH_sweep.json`` (see ``docs/performance.md`` for how to read
it).  Run from the repo root::

    PYTHONPATH=src python tools/bench_sweep.py --configs 30 --workers 4

``--quick`` shrinks every leg for CI smoke runs (a couple of minutes,
numbers not comparable to a full run).  The machine block records the
requested and effective worker counts; on a single-CPU machine the
parallel legs measure pool overhead only and the JSON flags them with
``single_cpu_pool_overhead_only`` so a speedup < 1 there is not read as
a regression.  On multi-core hardware expect ~min(workers, cores)x.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine.config import Algorithm
from repro.experiments import ExperimentConfig, compare_algorithms
from repro.experiments.runner import run_configuration
from repro.obs import Tracer
from repro.sim import Environment
from repro.traces import InternetStudy

ALGORITHMS = [
    Algorithm.DOWNLOAD_ALL,
    Algorithm.ONE_SHOT,
    Algorithm.LOCAL,
    Algorithm.GLOBAL,
]


def bench_tracer_overhead(repeats: int = 3) -> dict:
    """Tracer-off vs tracer-on wall-clock for one global-algorithm run.

    The ISSUE budget for the disabled tracer is <=3% on the sweep; this
    times the same run both ways so regressions show up directly.
    """
    setup = ExperimentConfig(num_servers=4, images_per_server=60)

    def one_run(tracer):
        t0 = time.perf_counter()
        run_configuration(setup, 0, Algorithm.GLOBAL, tracer=tracer)
        return time.perf_counter() - t0

    one_run(None)  # warm caches (trace library, placement, numpy)
    off_seconds = min(one_run(None) for _ in range(repeats))
    tracers = [Tracer() for _ in range(repeats)]
    on_seconds = min(one_run(t) for t in tracers)
    events = max(len(t.events) for t in tracers)
    return {
        "repeats": repeats,
        "tracer_off_seconds": round(off_seconds, 4),
        "tracer_on_seconds": round(on_seconds, 4),
        "on_over_off_ratio": round(on_seconds / off_seconds, 3),
        "events_recorded": events,
    }


def bench_planner(quick: bool = False) -> dict:
    """Planner-engine grid pricing: vectorized vs the scalar reference.

    Builds the paper-scale 8-server combination tree with a seeded
    asymmetric estimator and times two levels of the same hot path:

    * evaluator level — one planning round's full (operator x host) move
      grid priced by ``BatchMoveEvaluator.price_moves`` vs the
      ``SingleMoveEvaluator.cost_of_move`` per-cell loop the scalar
      search runs;
    * end-to-end — repeated ``OneShotPlanner.plan`` calls with each
      engine (this includes per-call snapshot construction, candidate
      enumeration and the per-round reductions, so the speedup is
      smaller than the evaluator-level number).

    Asserts the vectorized engine actually engaged (``last_engine``) and
    that both engines return identical plans.
    """
    import random

    from repro.dataflow.cost import CostModel
    from repro.dataflow.critical import (
        BatchMoveEvaluator,
        SingleMoveEvaluator,
        critical_path,
    )
    from repro.dataflow.placement import Placement
    from repro.dataflow.tree import complete_binary_tree
    from repro.placement.one_shot import OneShotPlanner

    rng = random.Random(7)
    num_servers = 8  # the paper's scale
    tree = complete_binary_tree(num_servers)
    hosts = [f"h{i}" for i in range(num_servers)] + ["client"]
    sizes = {node.node_id: rng.uniform(1e4, 1e6) for node in tree.nodes()}
    model = CostModel(tree, sizes, startup_cost=0.05, disk_rate=3e6)
    server_hosts = {
        server.node_id: hosts[i] for i, server in enumerate(tree.servers())
    }
    start = Placement.all_at_client(tree, server_hosts, "client")
    bandwidth: dict = {}

    def estimator(a, b):
        key = (a, b)
        if key not in bandwidth:
            bandwidth[key] = rng.uniform(1e5, 1e7)
        return bandwidth[key]

    moves = [(op.node_id, tuple(sorted(hosts))) for op in tree.operators()]
    grid_cells = sum(len(hs) - 1 for _, hs in moves)
    base_cost = critical_path(tree, start, model, estimator).cost
    reps = 50 if quick else 300
    # Machine noise on shared runners swings single trials ~3x; take the
    # best of several so the recorded rates reflect the hardware, not
    # the neighbours.
    tries = 2 if quick else 7

    def best_of(trial):
        return max(trial() for _ in range(tries))

    def scalar_trial():
        t0 = time.perf_counter()
        for _ in range(reps):
            evaluator = SingleMoveEvaluator(tree, start, model, estimator)
            for node_id, candidate_hosts in moves:
                current = start.host_of(node_id)
                for host in candidate_hosts:
                    if host != current:
                        evaluator.cost_of_move(node_id, host)
        return reps * grid_cells / (time.perf_counter() - t0)

    batch = BatchMoveEvaluator(tree, start, model, estimator, hosts)

    def batch_trial():
        t0 = time.perf_counter()
        for _ in range(reps):
            batch.price_moves(moves, base_cost)
        return reps * grid_cells / (time.perf_counter() - t0)

    scalar_rate = best_of(scalar_trial)
    batch_rate = best_of(batch_trial)

    plan_reps = 10 if quick else 60

    def plan_bench(engine):
        planner = OneShotPlanner(tree, hosts, model, engine=engine)
        result = planner.plan(estimator, start)

        def trial():
            t0 = time.perf_counter()
            for _ in range(plan_reps):
                planner.plan(estimator, start)
            elapsed = time.perf_counter() - t0
            return plan_reps * result.candidates_evaluated / elapsed

        return result, planner.last_engine, best_of(trial)

    scalar_result, _, scalar_plan_rate = plan_bench("scalar")
    vector_result, engaged, vector_plan_rate = plan_bench("vectorized")
    identical = (
        scalar_result.placement == vector_result.placement
        and scalar_result.cost == vector_result.cost  # bitwise
        and scalar_result.rounds == vector_result.rounds
        and scalar_result.candidates_evaluated
        == vector_result.candidates_evaluated
        and scalar_result.links_queried == vector_result.links_queried
    )

    return {
        "num_servers": num_servers,
        "grid_cells": grid_cells,
        "rounds": vector_result.rounds,
        "scalar_cells_per_second": round(scalar_rate),
        "vectorized_cells_per_second": round(batch_rate),
        "evaluator_speedup": round(batch_rate / scalar_rate, 2),
        "scalar_plan_candidates_per_second": round(scalar_plan_rate),
        "vectorized_plan_candidates_per_second": round(vector_plan_rate),
        "plan_speedup": round(vector_plan_rate / scalar_plan_rate, 2),
        "plan_results_identical": identical,
        "vectorized_engaged": engaged == "vectorized",
    }


def bench_sweep(setup: ExperimentConfig, n_configs: int, workers: int) -> dict:
    """Serial vs parallel wall-clock for the fig6-style sweep."""
    t0 = time.perf_counter()
    serial = compare_algorithms(setup, ALGORITHMS, n_configs, workers=1)
    serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = compare_algorithms(setup, ALGORITHMS, n_configs, workers=workers)
    parallel_seconds = time.perf_counter() - t0

    identical = all(
        serial[name].completion_times == parallel[name].completion_times
        and serial[name].interarrivals == parallel[name].interarrivals
        and serial[name].relocations == parallel[name].relocations
        for name in serial
    )
    return {
        "n_configs": n_configs,
        "algorithms": [a.value for a in ALGORITHMS],
        "workers": workers,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "parallel_speedup": round(serial_seconds / parallel_seconds, 3),
        "bit_identical": identical,
        "runs_per_second_serial": round(
            n_configs * len(ALGORITHMS) / serial_seconds, 3
        ),
    }


def bench_workload(workers: int, n_seeds: int = 4) -> dict:
    """Concurrent-fleet throughput plus workload-sweep serial vs parallel.

    One mixed-planner fleet (4 clients x 2 queries, global + one-shot on
    a shared 4-server network) timed end to end, then the same fleet
    swept over ``n_seeds`` seeds serially and with a worker pool,
    verifying the two produce bit-identical fleet summaries.
    """
    from dataclasses import replace as dc_replace

    from repro.workload import (
        ClosedLoop,
        QueryClass,
        WorkloadSpec,
        run_workload,
        run_workload_sweep,
    )

    spec = WorkloadSpec(
        classes=(
            QueryClass(name="global", algorithm=Algorithm.GLOBAL),
            QueryClass(name="one-shot", algorithm=Algorithm.ONE_SHOT),
        ),
        num_clients=4,
        queries_per_client=2,
        arrivals=ClosedLoop(think_time=2.0),
        seed=7,
        num_servers=4,
        images_per_server=6,
    )

    run_workload(spec)  # warm caches (trace library, placement, numpy)
    t0 = time.perf_counter()
    result = run_workload(spec)
    single_seconds = time.perf_counter() - t0

    tasks = [
        (f"seed{s}", dc_replace(spec, seed=s)) for s in range(n_seeds)
    ]
    t0 = time.perf_counter()
    serial = run_workload_sweep(tasks, workers=1)
    serial_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_workload_sweep(tasks, workers=workers)
    parallel_seconds = time.perf_counter() - t0

    return {
        "queries_per_fleet": spec.total_queries,
        "fleet_seconds": round(single_seconds, 4),
        "queries_per_second": round(spec.total_queries / single_seconds, 3),
        "fleet_completed": result.fleet["completed"],
        "sweep_seeds": n_seeds,
        "workers": workers,
        "sweep_serial_seconds": round(serial_seconds, 3),
        "sweep_parallel_seconds": round(parallel_seconds, 3),
        "sweep_parallel_speedup": round(serial_seconds / parallel_seconds, 3),
        "bit_identical": serial == parallel,
    }


def bench_overload(workers: int, quick: bool = False) -> dict:
    """Overload protection under chaos: bounded tail vs open admission.

    Runs the same oversubscribed open-loop fleet (Poisson arrivals well
    above the service rate, reference chaos plan injected) twice: wide
    open, and protected by admission control + deadlines + retry
    budgets + breakers.  The protected fleet must keep the p99 of
    completed queries under the deadline while the unprotected tail
    blows past it, and its resilience counters must reconcile with a
    bit-exact trace replay and across a 3-way client-hash shard split.
    """
    from dataclasses import replace as dc_replace

    from repro.faults import reference_chaos_plan
    from repro.workload import (
        OpenLoop,
        OverloadPolicy,
        QueryClass,
        WorkloadSpec,
        fleet_from_trace,
        run_workload,
        run_workload_sharded,
    )

    deadline = 700.0
    protected_classes = tuple(
        QueryClass(
            name=algorithm.value,
            algorithm=algorithm,
            deadline=deadline,
            slo_target=600.0,
        )
        for algorithm in (Algorithm.GLOBAL, Algorithm.ONE_SHOT)
    )
    spec = WorkloadSpec(
        classes=protected_classes,
        num_clients=4 if quick else 8,
        queries_per_client=2 if quick else 3,
        arrivals=OpenLoop(rate=0.02, process="poisson"),
        seed=11,
        num_servers=4,
        images_per_server=3,
        overload=OverloadPolicy(
            max_concurrent=3,
            max_queue_depth=4,
            shed_probability=0.05,
            retry_budget=1,
            retry_backoff=60.0,
            breaker_threshold=2,
            breaker_cooldown=600.0,
        ),
    )
    spec = dc_replace(
        spec, fault_plan=reference_chaos_plan(spec.all_hosts, seed=3)
    )
    unprotected = dc_replace(
        spec,
        overload=None,
        classes=tuple(
            dc_replace(qclass, deadline=None, slo_target=None)
            for qclass in spec.classes
        ),
    )

    run_workload(unprotected)  # warm caches outside the timers
    t0 = time.perf_counter()
    open_result = run_workload(unprotected)
    unprotected_seconds = time.perf_counter() - t0

    tracer = Tracer()
    t0 = time.perf_counter()
    protected_result = run_workload(spec, tracer=tracer)
    protected_seconds = time.perf_counter() - t0

    open_fleet = open_result.fleet
    protected_fleet = protected_result.fleet
    resilience = protected_fleet["resilience"]
    replay_identical = fleet_from_trace(tracer.events) == protected_fleet

    serial = run_workload_sharded(spec, 3, workers=1)
    parallel = run_workload_sharded(spec, 3, workers=workers)
    sharded_identical = serial.fleet == parallel.fleet

    protected_p99 = protected_fleet["latency"]["p99"]
    unprotected_p99 = open_fleet["latency"]["p99"]
    return {
        "scheduled": spec.total_queries,
        "deadline_seconds": deadline,
        "unprotected_p99": round(unprotected_p99, 1),
        "protected_p99": round(protected_p99, 1),
        # Completed queries can never exceed the deadline; the open
        # fleet's tail has no such bound under chaos.
        "protected_p99_bounded": protected_p99 <= deadline,
        "unprotected_completed": open_fleet["completed"],
        "protected_completed": protected_fleet["completed"],
        "unprotected_goodput": round(
            open_fleet["completed"] / open_fleet["elapsed"], 6
        ),
        "protected_goodput": round(resilience["goodput"], 6),
        "shed": resilience["shed"],
        "deadline_aborts": resilience["deadline_aborts"],
        "retries": resilience["retries"],
        "breaker_opens": resilience["breaker"]["opens"],
        "unprotected_seconds": round(unprotected_seconds, 3),
        "protected_seconds": round(protected_seconds, 3),
        "replay_identical": replay_identical,
        "sharded_serial_vs_parallel_identical": sharded_identical,
    }


def bench_fleet_planner(workers: int) -> dict:
    """Fleet-aware joint planning vs blind per-query planning.

    Runs the same chaos-stressed closed-loop fleet (six global queries
    replanning every 30 s while the reference chaos plan degrades links
    under them) three ways: blind (``fleet=None``), coordinated, and
    fair.  The fleet is already CI-sized (a few seconds end to end), so
    ``--quick`` does not shrink it.  Blind planners thrash — every query chases the same
    post-fault bandwidth and relocates over saturated links — while the
    coordinator's residual-bandwidth view plus the per-link relocation
    budget caps fleet-wide churn.  The leg reports fleet p99 and Jain
    fairness for all three, asserts the arbiter actually engaged
    (grants *and* denies), and reconciles the coordinated run against a
    bit-exact trace replay and a 3-way client-hash shard split.
    """
    from dataclasses import replace as dc_replace

    from repro.faults import reference_chaos_plan
    from repro.workload import (
        ClosedLoop,
        FleetPolicy,
        QueryClass,
        WorkloadSpec,
        fleet_from_trace,
        run_workload,
        run_workload_sharded,
    )

    def make_spec(fleet):
        spec = WorkloadSpec(
            classes=(
                QueryClass(
                    name="global",
                    algorithm=Algorithm.GLOBAL,
                    slo_target=2000.0,
                    overrides={"relocation_period": 30.0},
                ),
            ),
            num_clients=6,
            queries_per_client=1,
            arrivals=ClosedLoop(),
            seed=17,
            num_servers=4,
            images_per_server=24,
            fleet=fleet,
        )
        return dc_replace(
            spec, fault_plan=reference_chaos_plan(spec.all_hosts, seed=3)
        )

    policy = FleetPolicy(
        mode="coordinated", link_tokens=1.0, token_refill_seconds=600.0
    )
    fair_policy = dc_replace(policy, mode="fair")

    run_workload(make_spec(None))  # warm caches outside the timers
    t0 = time.perf_counter()
    blind = run_workload(make_spec(None)).fleet
    blind_seconds = time.perf_counter() - t0

    tracer = Tracer()
    t0 = time.perf_counter()
    coordinated_result = run_workload(make_spec(policy), tracer=tracer)
    coordinated_seconds = time.perf_counter() - t0
    coordinated = coordinated_result.fleet
    fair = run_workload(make_spec(fair_policy)).fleet

    block = coordinated["fleet"]
    replay_identical = fleet_from_trace(tracer.events) == coordinated

    serial = run_workload_sharded(make_spec(policy), 3, workers=1)
    parallel = run_workload_sharded(make_spec(policy), 3, workers=workers)
    sharded_identical = serial.fleet == parallel.fleet

    blind_p99 = blind["latency"]["p99"]
    coordinated_p99 = coordinated["latency"]["p99"]
    return {
        "scheduled": blind["scheduled"],
        "blind_p99": round(blind_p99, 1),
        "coordinated_p99": round(coordinated_p99, 1),
        "fair_p99": round(fair["latency"]["p99"], 1),
        "blind_fairness_jain": round(blind["fairness_jain"], 4),
        "coordinated_fairness_jain": round(
            coordinated["fairness_jain"], 4
        ),
        "fair_fairness_jain": round(fair["fairness_jain"], 4),
        "blind_relocations": blind["relocations"]["total"],
        "coordinated_relocations": coordinated["relocations"]["total"],
        "grants": block["grants"],
        "denies": block["denies"],
        "grant_rate": block["grant_rate"],
        "planner_candidates": block["planner_candidates"],
        "arbiter_engaged": block["grants"] > 0 and block["denies"] > 0,
        "improves_p99_or_fairness": (
            coordinated_p99 < blind_p99
            or coordinated["fairness_jain"] > blind["fairness_jain"]
        ),
        "blind_seconds": round(blind_seconds, 3),
        "coordinated_seconds": round(coordinated_seconds, 3),
        "replay_identical": replay_identical,
        "sharded_serial_vs_parallel_identical": sharded_identical,
    }


def bench_fleet_scale(quick: bool = False) -> dict:
    """Streaming fleet metrics at 100k+ clients: flat memory, bounded error.

    Drives a :class:`~repro.workload.sink.StreamingFleetMetrics` directly
    with a seeded synthetic open-loop outcome stream (the sink neither
    knows nor cares whether a DES or a generator produced the stats), so
    the leg isolates the metrics path: ingest throughput, memory
    flatness between the half-way and full marks, pickled sink size, the
    sketch-vs-exact percentile error, and shard-merge order invariance.
    """
    import pickle
    import random
    import tracemalloc

    from repro.workload import QueryStats, StreamingFleetMetrics, merge_sinks
    from repro.workload.sketch import exact_percentiles
    from repro.workload.sweep import shard_of

    num_clients = 20_000 if quick else 100_000
    queries_per_client = 2
    total = num_clients * queries_per_client
    eps = 0.01

    def outcome_stream():
        rng = random.Random(20_260_808)
        clock = 0.0
        for i in range(total):
            clock += rng.expovariate(1.0)
            client = i % num_clients
            latency = rng.lognormvariate(5.0, 1.2)
            yield QueryStats(
                query_id=f"c{client}:{i // num_clients}",
                class_name="global" if i % 3 else "one-shot",
                algorithm="global" if i % 3 else "one-shot",
                issued_at=clock,
                completion_time=clock + latency,
                images_delivered=8,
                truncated=False,
                relocations=i % 4,
                aborted_relocations=0,
                bytes_on_wire=float(rng.randrange(10**7)),
            )

    sink = StreamingFleetMetrics(num_clients, relative_error=eps)
    tracemalloc.start()
    t0 = time.perf_counter()
    halfway_bytes = None
    for i, stats in enumerate(outcome_stream()):
        sink.query_started(stats.query_id, stats.class_name, stats.issued_at)
        sink.query_finished(stats)
        if i + 1 == total // 2:
            halfway_bytes, _ = tracemalloc.get_traced_memory()
    ingest_seconds = time.perf_counter() - t0
    final_bytes, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    summary = sink.summary(elapsed=1.0, scheduled=total)

    # Replay the same seeded stream into an exact latency list to pin
    # the sketch's relative-error guarantee at scale.
    latencies = [s.latency for s in outcome_stream()]
    exact = exact_percentiles(latencies, (50, 95, 99))
    max_relative_error = max(
        abs(summary["latency"][f"p{p}"] - truth) / truth
        for p, truth in zip((50, 95, 99), exact)
    )

    # Shard-merge order invariance over a 3-way client-hash split.
    shards = [
        StreamingFleetMetrics(num_clients, relative_error=eps)
        for _ in range(3)
    ]
    n_shard_stats = total // 10
    for stats in outcome_stream():
        if n_shard_stats == 0:
            break
        n_shard_stats -= 1
        client = int(stats.query_id[1:].split(":")[0])
        shard = shards[shard_of(client, 3)]
        shard.query_started(stats.query_id, stats.class_name, stats.issued_at)
        shard.query_finished(stats)
    forward = merge_sinks([pickle.loads(pickle.dumps(s)) for s in shards])
    backward = merge_sinks(
        [pickle.loads(pickle.dumps(s)) for s in reversed(shards)]
    )
    order_invariant = (
        forward.summary(1.0, scheduled=total)
        == backward.summary(1.0, scheduled=total)
    )

    return {
        "num_clients": num_clients,
        "queries": total,
        "ingest_seconds": round(ingest_seconds, 3),
        "queries_per_second": round(total / ingest_seconds),
        "halfway_traced_bytes": halfway_bytes,
        "final_traced_bytes": final_bytes,
        "peak_traced_bytes": peak_bytes,
        # Flat memory: the second half of the stream must not grow the
        # sink (per-client arrays dominate and are allocated up front).
        "memory_growth_ratio": round(final_bytes / halfway_bytes, 4),
        "pickled_sink_bytes": len(pickle.dumps(sink)),
        "completed": summary["completed"],
        "max_percentile_relative_error": round(max_relative_error, 6),
        "relative_error_budget": 2 * eps,
        "within_error_budget": max_relative_error <= 2 * eps,
        "shard_merge_order_invariant": order_invariant,
    }


def bench_kernel(n_events: int = 100_000) -> dict:
    """Schedule-and-fire throughput of the event calendar."""
    env = Environment()

    def ticker(env, count):
        for _ in range(count):
            yield env.timeout(1.0)

    for _ in range(5):
        env.process(ticker(env, n_events // 5))
    t0 = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - t0
    return {
        "timeout_events": n_events,
        "seconds": round(elapsed, 4),
        "events_per_second": round(n_events / elapsed),
    }


def bench_fast_path(quick: bool = False, repeats: int = 3) -> dict:
    """Hybrid fluid/DES collapse: the four-algorithm run fast vs forced-DES.

    Runs the standard comparison configuration (all four algorithms at
    one network sample) with the default fluid fast path and again with
    ``fluid_fast_path=False`` (the classic all-process schedule), and
    reports kernel events per run, serial runs/second both ways, the
    event-reduction fraction, fluid engagement counts, and whether the
    paper-facing metrics stayed bit-identical.
    """
    setup = (
        ExperimentConfig(num_servers=4, images_per_server=12)
        if quick
        else ExperimentConfig()
    )

    def sweep(fluid: bool):
        return [
            run_configuration(setup, 0, a, fluid_fast_path=fluid)
            for a in ALGORITHMS
        ]

    sweep(True)  # warm caches (trace library, config, numpy) + both paths
    sweep(False)

    def timed(fluid: bool):
        best, metrics = None, None
        for _ in range(repeats):
            t0 = time.perf_counter()
            metrics = sweep(fluid)
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        return best, metrics

    fast_seconds, fast = timed(True)
    slow_seconds, slow = timed(False)

    fast_events = sum(m.kernel_events for m in fast)
    slow_events = sum(m.kernel_events for m in slow)
    identical = all(
        f.summary() == s.summary() and f.arrival_times == s.arrival_times
        for f, s in zip(fast, slow)
    )
    runs = len(ALGORITHMS)
    return {
        "runs": runs,
        "num_servers": setup.num_servers,
        "images_per_server": setup.images_per_server,
        "repeats": repeats,
        "kernel_events_fast": fast_events,
        "kernel_events_full_des": slow_events,
        "events_per_run_fast": round(fast_events / runs),
        "events_per_run_full_des": round(slow_events / runs),
        "event_reduction": round(1.0 - fast_events / slow_events, 3),
        "fluid_transfers": sum(m.fluid_transfers for m in fast),
        "des_transfers": sum(m.des_transfers for m in fast),
        "fast_seconds": round(fast_seconds, 4),
        "full_des_seconds": round(slow_seconds, 4),
        "runs_per_second_fast": round(runs / fast_seconds, 3),
        "runs_per_second_full_des": round(runs / slow_seconds, 3),
        "serial_speedup": round(slow_seconds / fast_seconds, 3),
        "metrics_identical": identical,
    }


def bench_trace_algebra(n_calls: int = 2000) -> dict:
    """Prefix-sum transfer_time vs the reference segment walk."""
    library = InternetStudy(seed=2024).run()
    trace = library.all_traces()[0]
    rng = np.random.default_rng(0)
    # Transfer sizes that straddle many 30 s segments (hours of wire time
    # at tens of KB/s) — the regime the old walk paid for linearly.
    sizes = rng.uniform(1e6, 5e7, size=n_calls)
    starts = rng.uniform(trace.start, trace.start + trace.duration / 2, size=n_calls)

    t0 = time.perf_counter()
    fast = [trace.transfer_time(float(n), float(s)) for n, s in zip(sizes, starts)]
    fast_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    slow = [
        trace._transfer_time_scan(float(n), float(s))
        for n, s in zip(sizes, starts)
    ]
    scan_seconds = time.perf_counter() - t0

    assert np.allclose(fast, slow, rtol=1e-9), "prefix-sum diverged from walk"
    return {
        "calls": n_calls,
        "trace_samples": len(trace),
        "prefix_sum_seconds": round(fast_seconds, 4),
        "segment_walk_seconds": round(scan_seconds, 4),
        "speedup": round(scan_seconds / fast_seconds, 2),
    }


def bench_library_sampling(n_draws: int = 20_000) -> dict:
    """sample_noon_segment draw rate (cached sorted keys + noon segments)."""
    library = InternetStudy(seed=2024).run()
    rng = np.random.default_rng(1)
    t0 = time.perf_counter()
    for _ in range(n_draws):
        library.sample_noon_segment(rng)
    elapsed = time.perf_counter() - t0
    return {
        "draws": n_draws,
        "seconds": round(elapsed, 4),
        "draws_per_second": round(n_draws / elapsed),
    }


def bench_vectorized_sampling(n_draws: int = 20_000) -> dict:
    """Cached/batched noon-segment draws vs the build-per-draw reference.

    The cached path (one vectorized index draw, segments from the per-pair
    cache) must return exactly the objects the uncached reference builds;
    the bench verifies value identity on a sample before timing.
    """
    from repro.traces.study import noon_segment

    library = InternetStudy(seed=2024).run()
    keys = list(library.pairs())

    def uncached_draw(rng):
        key = keys[int(rng.integers(len(keys)))]
        return noon_segment(
            library.trace(*key), library.tz_offsets.get(key, 0.0)
        )

    # Value-identity spot check: cached draws == fresh builds.
    check_rng_a = np.random.default_rng(3)
    check_rng_b = np.random.default_rng(3)
    for _ in range(5):
        cached = library.sample_noon_segment(check_rng_a)
        fresh = uncached_draw(check_rng_b)
        assert np.array_equal(cached.times, fresh.times)
        assert np.array_equal(cached.rates, fresh.rates)

    rng = np.random.default_rng(2)
    t0 = time.perf_counter()
    for _ in range(max(1, n_draws // 40)):
        uncached_draw(rng)
    uncached_seconds = time.perf_counter() - t0
    uncached_rate = max(1, n_draws // 40) / uncached_seconds

    library.warm_noon_segments()
    rng = np.random.default_rng(2)
    t0 = time.perf_counter()
    library.sample_noon_segments(rng, n_draws)
    batched_seconds = time.perf_counter() - t0
    batched_rate = n_draws / batched_seconds

    return {
        "draws": n_draws,
        "uncached_draws_per_second": round(uncached_rate),
        "batched_draws_per_second": round(batched_rate),
        "speedup": round(batched_rate / uncached_rate, 1),
    }


def bench_config_build(n_configs: int = 20) -> dict:
    """Build-once SampledConfig fan-out vs per-algorithm resampling.

    The old sweep path resampled the network configuration once per
    ``(config, algorithm)`` run; the build-once path samples it once and
    fans the frozen artifact out across the four algorithms.
    """
    from repro.experiments.config import (
        build_spec_from_config,
        sample_config,
    )

    setup = ExperimentConfig()
    setup.trace_library().warm_noon_segments()
    n_specs = n_configs * len(ALGORITHMS)

    t0 = time.perf_counter()
    for index in range(n_configs):
        for algorithm in ALGORITHMS:
            sampled = sample_config(setup, index, cache=False)
            build_spec_from_config(setup, sampled, algorithm)
    resample_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    for index in range(n_configs):
        for algorithm in ALGORITHMS:
            sampled = sample_config(setup, index)
            build_spec_from_config(setup, sampled, algorithm)
    build_once_seconds = time.perf_counter() - t0

    return {
        "configs": n_configs,
        "specs": n_specs,
        "resample_specs_per_second": round(n_specs / resample_seconds),
        "build_once_specs_per_second": round(n_specs / build_once_seconds),
        "speedup": round(resample_seconds / build_once_seconds, 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--configs", type=int, default=30,
                        help="fig6-style sweep size (default 30)")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool size for the parallel leg (default 4)")
    parser.add_argument("--out", default="BENCH_sweep.json",
                        help="output path (default BENCH_sweep.json)")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="micro-benchmarks only")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: tiny sizes, every leg still "
                        "runs once (exercises the code, not the numbers)")
    args = parser.parse_args(argv)
    if args.quick:
        args.configs = min(args.configs, 2)

    setup = ExperimentConfig()
    setup.trace_library()  # warm the library cache outside the timers

    from repro.experiments.parallel import resolve_workers

    cpu_count = os.cpu_count()
    workers_resolved = resolve_workers(args.workers)
    # A pool bigger than the machine never runs more than cpu_count
    # workers at once: report the parallelism actually measured, and
    # flag the oversubscribed regime so pool-speedup numbers are read
    # against the right ceiling (see docs/performance.md).
    workers_effective = min(workers_resolved, cpu_count or 1)
    single_cpu = (cpu_count or 1) <= 1
    results: dict = {
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": cpu_count,
            "workers_requested": args.workers,
            "workers_resolved": workers_resolved,
            "workers_effective": workers_effective,
            "workers_oversubscribed": workers_resolved > workers_effective,
            # On a 1-CPU machine the parallel legs measure pool overhead
            # only; a speedup < 1 there is expected, not a regression.
            "single_cpu_pool_overhead_only": single_cpu,
        },
        "quick_mode": args.quick,
    }

    print(f"[bench] kernel calendar throughput...", flush=True)
    results["kernel"] = bench_kernel(10_000 if args.quick else 100_000)
    print(f"         {results['kernel']['events_per_second']:,} events/s")

    print(f"[bench] fluid fast path (default vs forced full DES)...", flush=True)
    results["fast_path"] = bench_fast_path(
        quick=args.quick, repeats=1 if args.quick else 3
    )
    fast_path = results["fast_path"]
    print(
        f"         {fast_path['kernel_events_full_des']:,} -> "
        f"{fast_path['kernel_events_fast']:,} kernel events "
        f"(-{fast_path['event_reduction']:.0%}), serial "
        f"{fast_path['serial_speedup']}x, "
        f"{fast_path['fluid_transfers']:,} fluid / "
        f"{fast_path['des_transfers']:,} DES transfers, "
        f"identical: {fast_path['metrics_identical']}"
    )

    print(f"[bench] trace algebra (prefix-sum vs walk)...", flush=True)
    results["trace_algebra"] = bench_trace_algebra(200 if args.quick else 2000)
    print(f"         {results['trace_algebra']['speedup']}x over the walk")

    print(f"[bench] library sampling...", flush=True)
    results["library_sampling"] = bench_library_sampling(
        2_000 if args.quick else 20_000
    )
    print(f"         {results['library_sampling']['draws_per_second']:,} draws/s")

    print(f"[bench] vectorized sampling (cached vs build-per-draw)...", flush=True)
    results["vectorized_sampling"] = bench_vectorized_sampling(
        2_000 if args.quick else 20_000
    )
    vec = results["vectorized_sampling"]
    print(
        f"         {vec['batched_draws_per_second']:,} draws/s cached vs "
        f"{vec['uncached_draws_per_second']:,} uncached "
        f"({vec['speedup']}x)"
    )

    print(f"[bench] config build (build-once vs resample)...", flush=True)
    results["config_build"] = bench_config_build(4 if args.quick else 20)
    build = results["config_build"]
    print(
        f"         {build['build_once_specs_per_second']:,} specs/s "
        f"build-once vs {build['resample_specs_per_second']:,} resampled "
        f"({build['speedup']}x)"
    )

    print(f"[bench] tracer overhead (off vs on)...", flush=True)
    results["tracer_overhead"] = bench_tracer_overhead(
        repeats=1 if args.quick else 3
    )
    overhead = results["tracer_overhead"]
    print(
        f"         off {overhead['tracer_off_seconds']}s, on "
        f"{overhead['tracer_on_seconds']}s "
        f"({overhead['on_over_off_ratio']}x, "
        f"{overhead['events_recorded']:,} events)"
    )

    print(f"[bench] planner engine (vectorized vs scalar pricing)...", flush=True)
    results["planner"] = bench_planner(quick=args.quick)
    eng = results["planner"]
    print(
        f"         evaluator {eng['scalar_cells_per_second']:,} -> "
        f"{eng['vectorized_cells_per_second']:,} cells/s "
        f"({eng['evaluator_speedup']}x), plan "
        f"{eng['scalar_plan_candidates_per_second']:,} -> "
        f"{eng['vectorized_plan_candidates_per_second']:,} cand/s "
        f"({eng['plan_speedup']}x), identical: "
        f"{eng['plan_results_identical']}, engaged: "
        f"{eng['vectorized_engaged']}"
    )

    print(f"[bench] streaming fleet metrics at scale...", flush=True)
    results["fleet_scale"] = bench_fleet_scale(quick=args.quick)
    scale = results["fleet_scale"]
    print(
        f"         {scale['queries']:,} queries over "
        f"{scale['num_clients']:,} clients at "
        f"{scale['queries_per_second']:,}/s, memory growth "
        f"{scale['memory_growth_ratio']}x (flat), sink "
        f"{scale['pickled_sink_bytes']:,} B pickled, max percentile "
        f"error {scale['max_percentile_relative_error']} "
        f"(budget {scale['relative_error_budget']}), shard-merge "
        f"order-invariant: {scale['shard_merge_order_invariant']}"
    )

    print(f"[bench] overload protection under chaos...", flush=True)
    results["overload"] = bench_overload(args.workers, quick=args.quick)
    overload = results["overload"]
    print(
        f"         p99 {overload['unprotected_p99']}s open vs "
        f"{overload['protected_p99']}s protected (deadline "
        f"{overload['deadline_seconds']}s, bounded: "
        f"{overload['protected_p99_bounded']}), shed {overload['shed']}, "
        f"aborts {overload['deadline_aborts']}, replay identical: "
        f"{overload['replay_identical']}, sharded identical: "
        f"{overload['sharded_serial_vs_parallel_identical']}"
    )

    print(f"[bench] fleet-aware joint planning vs blind...", flush=True)
    results["fleet_planner"] = bench_fleet_planner(args.workers)
    planner = results["fleet_planner"]
    print(
        f"         p99 {planner['blind_p99']}s blind vs "
        f"{planner['coordinated_p99']}s coordinated vs "
        f"{planner['fair_p99']}s fair (improves: "
        f"{planner['improves_p99_or_fairness']}), relocations "
        f"{planner['blind_relocations']} -> "
        f"{planner['coordinated_relocations']}, grants "
        f"{planner['grants']} / denies {planner['denies']}, replay "
        f"identical: {planner['replay_identical']}, sharded identical: "
        f"{planner['sharded_serial_vs_parallel_identical']}"
    )

    print(f"[bench] concurrent workload fleet + sweep...", flush=True)
    results["workload"] = bench_workload(
        args.workers, n_seeds=2 if args.quick else 4
    )
    results["workload"]["single_cpu_pool_overhead_only"] = single_cpu
    workload = results["workload"]
    print(
        f"         fleet {workload['fleet_seconds']}s "
        f"({workload['queries_per_second']} queries/s), sweep "
        f"{workload['sweep_serial_seconds']}s serial vs "
        f"{workload['sweep_parallel_seconds']}s parallel "
        f"({workload['sweep_parallel_speedup']}x), "
        f"bit-identical: {workload['bit_identical']}"
    )

    if not args.skip_sweep:
        print(
            f"[bench] fig6-style sweep: {args.configs} configs x "
            f"{len(ALGORITHMS)} algorithms, serial then {args.workers} "
            "workers...",
            flush=True,
        )
        results["sweep"] = bench_sweep(setup, args.configs, args.workers)
        results["sweep"]["single_cpu_pool_overhead_only"] = single_cpu
        sweep = results["sweep"]
        print(
            f"         serial {sweep['serial_seconds']}s, parallel "
            f"{sweep['parallel_seconds']}s ({sweep['parallel_speedup']}x), "
            f"bit-identical: {sweep['bit_identical']}"
        )
        if single_cpu and sweep["parallel_speedup"] < 1.0:
            print(
                "         note: single-CPU machine — the parallel leg "
                "measures pool overhead only (flagged in the JSON, not a "
                "regression)"
            )

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"[bench] wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
