#!/usr/bin/env python3
"""The paper's evaluation scenario: satellite-image composition.

Eight geographically distributed servers each hold a sequence of
satellite images (sizes ~ Normal(128 KB, 25 %)); corresponding images
are composed pair-wise up a complete binary tree and delivered to a
client, over links driven by two-day synthetic Internet bandwidth
traces.  This example runs all four placement policies of the paper on a
handful of random network configurations and prints a miniature version
of the paper's Figure 6 / §5 table.

Run:  python examples/satellite_composition.py [n_configs]
"""

import sys

import numpy as np

from repro import Algorithm
from repro.experiments import (
    ExperimentConfig,
    compare_algorithms,
    speedup_series,
)

ALGORITHMS = [
    Algorithm.DOWNLOAD_ALL,
    Algorithm.ONE_SHOT,
    Algorithm.LOCAL,
    Algorithm.GLOBAL,
]


def main() -> None:
    n_configs = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    setup = ExperimentConfig(num_servers=8, images_per_server=90)

    print(
        f"Running {len(ALGORITHMS)} placement policies on {n_configs} "
        "random 8-server network configurations..."
    )
    done = []

    def progress(index, algorithm, metrics):
        done.append(None)
        total = n_configs * len(ALGORITHMS)
        print(
            f"  [{len(done):>3}/{total}] config {index} "
            f"{algorithm.value:<13} completion {metrics.completion_time:9.0f} s"
        )

    summaries = compare_algorithms(setup, ALGORITHMS, n_configs, progress=progress)
    baseline = summaries[Algorithm.DOWNLOAD_ALL.value]

    print()
    print(f"{'algorithm':<14}{'mean speedup':>14}{'median':>10}{'interarrival':>14}")
    print(f"{'download-all':<14}{1.0:>14.2f}{1.0:>10.2f}"
          f"{baseline.mean_interarrival:>14.1f}")
    for algorithm in ALGORITHMS[1:]:
        summary = summaries[algorithm.value]
        speedups = speedup_series(summary, baseline)
        print(
            f"{algorithm.value:<14}{np.mean(speedups):>14.2f}"
            f"{np.median(speedups):>10.2f}{summary.mean_interarrival:>14.1f}"
        )
    print()
    print("Paper (§5, 300 configs): 101.2 s -> 24.6 (one-shot), 22 (local), "
          "17.1 (global).")


if __name__ == "__main__":
    main()
