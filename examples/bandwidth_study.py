#!/usr/bin/env python3
"""Reproduce the paper's multi-day Internet bandwidth study (synthetic).

Generates the two-day trace library the experiments draw from (US east /
west / midwest / south, Spain, France, Austria, Brazil), prints per-pair
statistics and the §4 change-interval analysis, and archives the library
plus one example trace to disk.

Run:  python examples/bandwidth_study.py [output_dir]
"""

import sys
from pathlib import Path

from repro.traces import (
    InternetStudy,
    save_library_json,
    save_trace_csv,
    trace_stats,
)
from repro.traces.stats import library_change_interval


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("study_output")
    out_dir.mkdir(parents=True, exist_ok=True)

    print("Collecting the synthetic two-day bandwidth study "
          "(12 hosts, 66 pairs)...")
    study = InternetStudy(seed=1998)
    library = study.run()

    print()
    print(f"{'pair':<22}{'mean KB/s':>10}{'min':>8}{'max':>9}{'cv':>6}"
          f"{'>=10% every':>12}")
    for a, b in library.pairs():
        stats = trace_stats(library.trace(a, b))
        print(
            f"{a + '~' + b:<22}"
            f"{stats.mean_rate / 1024:>10.1f}"
            f"{stats.min_rate / 1024:>8.1f}"
            f"{stats.max_rate / 1024:>9.1f}"
            f"{stats.cv:>6.2f}"
            f"{stats.mean_change_interval:>10.0f} s"
        )

    interval = library_change_interval(library.all_traces())
    print()
    print(f"library-wide mean time between >=10% bandwidth changes: "
          f"{interval:.0f} s (paper reports ~2 minutes)")

    library_path = out_dir / "trace_library.json"
    save_library_json(library, library_path)
    example = library.trace("wisc", "ucla")
    example_path = out_dir / "wisc_ucla.csv"
    save_trace_csv(example, example_path)
    print(f"\nwrote {library_path} and {example_path}")


if __name__ == "__main__":
    main()
