#!/usr/bin/env python3
"""Watch the global algorithm ride out a mid-run bandwidth collapse.

A deterministic scenario: four servers on constant 80 KB/s links, except
that the paths from hosts ``h0``/``h1`` to the *client* collapse to
2 KB/s six minutes into the run (think: a congested access link on the
client's side), while the inter-server paths stay healthy.  The one-shot
placement computed at t=0 routes the left subtree's data straight at the
client and suffers; the global algorithm detects the collapse through
its monitoring and re-routes the data through the healthy hosts.

Every change-over is printed from the run's relocation-event timeline.

Run:  python examples/adaptive_failover.py
"""

import numpy as np

from repro import Algorithm
from repro.engine.simulation import run_simulation
from repro.traces import BandwidthTrace, constant_trace
from repro.engine.config import SimulationSpec

COLLAPSE_AT = 360.0  # seconds


def build_links():
    hosts = [f"h{i}" for i in range(4)] + ["client"]
    links = {}
    collapsing = {("client", "h0"), ("client", "h1")}
    for i, a in enumerate(hosts):
        for b in hosts[i + 1 :]:
            key = (a, b) if a < b else (b, a)
            if key in collapsing:
                links[key] = BandwidthTrace(
                    [0.0, COLLAPSE_AT],
                    [80 * 1024.0, 2 * 1024.0],
                    name=f"{key[0]}~{key[1]}",
                )
            else:
                links[key] = constant_trace(80 * 1024.0, name=f"{key[0]}~{key[1]}")
    return links


def spec_for(algorithm: Algorithm) -> SimulationSpec:
    return SimulationSpec(
        algorithm=algorithm,
        tree_shape="binary",
        num_servers=4,
        link_traces=build_links(),
        server_hosts=("h0", "h1", "h2", "h3"),
        images_per_server=160,
        relocation_period=120.0,
        workload_seed=7,
    )


def arrival_rate_series(metrics, bucket=240.0):
    arrivals = np.asarray(metrics.arrival_times)
    edges = np.arange(0, arrivals[-1] + bucket, bucket)
    counts, __ = np.histogram(arrivals, bins=edges)
    return edges[:-1], counts / bucket * 60  # images per minute


def main() -> None:
    print(
        "The client's paths to h0 and h1 collapse from 80 KB/s to 2 KB/s "
        f"at t={COLLAPSE_AT:.0f}s.\n"
    )

    print("one-shot (static placement from t=0):")
    static = run_simulation(spec_for(Algorithm.ONE_SHOT))
    print(f"  completion {static.completion_time:8.0f} s, "
          f"mean inter-arrival {static.mean_interarrival:6.1f} s\n")

    print("global (re-plans every 2 minutes):")
    adaptive = run_simulation(spec_for(Algorithm.GLOBAL))
    for event in adaptive.relocation_events:
        print(f"  t={event.time:7.1f}s  change-over: {event.actor} moves "
              f"{event.old_host} -> {event.new_host}")
    print(f"  completion {adaptive.completion_time:8.0f} s, "
          f"mean inter-arrival {adaptive.mean_interarrival:6.1f} s, "
          f"{adaptive.relocations} relocations\n")

    print("delivery rate (images/minute) in 4-minute buckets:")
    t, rate = arrival_rate_series(adaptive)
    for start, value in zip(t, rate):
        marker = "  <- collapse" if start <= COLLAPSE_AT < start + 240 else ""
        print(f"  t={start:6.0f}s  {'#' * int(value * 2):<30} {value:4.1f}{marker}")

    print(f"\nadaptive speedup over the static placement: "
          f"{adaptive.speedup_over(static):.2f}x")


if __name__ == "__main__":
    main()
