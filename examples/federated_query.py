#!/usr/bin/env python3
"""Beyond images: the paper's other application classes.

§2 of the paper observes that its partitioning assumption also covers
"hashed relational join where each hash bucket is a separate partition"
and "merging sorted results from multiple search engines".  This example
runs the same 8-source wide-area combination under all three combiner
semantics and shows how the *shape* of the combiner changes what operator
relocation is worth:

* image composition (output = max of inputs)  — data volume is constant
  up the tree;
* sorted merge (output = sum of inputs)       — data *grows* toward the
  client, so late combination is cheap and relocation gains less;
* selective hash join (output = half the smaller input) — data *shrinks*,
  so pushing operators toward the sources is spectacularly effective
  (the distributed-query "predicate pushdown" effect).

Run:  python examples/federated_query.py [n_configs]
"""

import sys

import numpy as np

from repro import Algorithm
from repro.app import CompositionSpec, JoinCombiner, MergeCombiner
from repro.experiments import ExperimentConfig, run_configuration

WORKLOADS = [
    ("image composition", CompositionSpec()),
    ("sorted merge", MergeCombiner()),
    ("hash join (50%)", JoinCombiner(match_rate=0.5)),
    ("hash join (10%)", JoinCombiner(match_rate=0.1)),
]


def main() -> None:
    n_configs = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    setup = ExperimentConfig(num_servers=8, images_per_server=60)

    print(f"{'workload':<20}{'download-all ia':>17}{'global ia':>12}"
          f"{'speedup':>9}{'relocations':>13}")
    for name, combiner in WORKLOADS:
        baselines, adaptives, relocations = [], [], []
        for index in range(n_configs):
            base = run_configuration(
                setup, index, Algorithm.DOWNLOAD_ALL, compose=combiner
            )
            adaptive = run_configuration(
                setup, index, Algorithm.GLOBAL, compose=combiner
            )
            baselines.append(base)
            adaptives.append(adaptive)
            relocations.append(adaptive.relocations)
        speedups = [
            b.completion_time / a.completion_time
            for b, a in zip(baselines, adaptives)
        ]
        print(
            f"{name:<20}"
            f"{np.mean([b.mean_interarrival for b in baselines]):>15.1f} s"
            f"{np.mean([a.mean_interarrival for a in adaptives]):>10.1f} s"
            f"{np.mean(speedups):>8.2f}x"
            f"{np.mean(relocations):>13.1f}"
        )
    print()
    print("The more a combiner *reduces* data, the more operator placement")
    print("matters — the wide-area form of pushing selections to the data.")


if __name__ == "__main__":
    main()
