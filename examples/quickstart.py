#!/usr/bin/env python3
"""Quickstart: simulate one wide-area data-combination run.

Builds a 4-server network with synthetic Internet bandwidth traces, runs
the download-all baseline and the adaptive global algorithm on the same
configuration, and prints what operator relocation bought.

Run:  python examples/quickstart.py
"""

from repro import Algorithm
from repro.experiments import ExperimentConfig, run_configuration


def main() -> None:
    # 4 servers + 1 client, complete binary combination tree,
    # 60 images per server (the paper uses 180; fewer keeps this quick).
    setup = ExperimentConfig(num_servers=4, images_per_server=60, seed=2026)

    print("Simulating the download-all baseline (all operators at the client)...")
    baseline = run_configuration(setup, config_index=0, algorithm=Algorithm.DOWNLOAD_ALL)

    print("Simulating the adaptive global placement algorithm...")
    adaptive = run_configuration(setup, config_index=0, algorithm=Algorithm.GLOBAL)

    print()
    print(f"{'metric':<34}{'download-all':>14}{'global':>14}")
    print(
        f"{'completion time (s)':<34}"
        f"{baseline.completion_time:>14.0f}{adaptive.completion_time:>14.0f}"
    )
    print(
        f"{'mean image inter-arrival (s)':<34}"
        f"{baseline.mean_interarrival:>14.1f}{adaptive.mean_interarrival:>14.1f}"
    )
    print(
        f"{'operator relocations':<34}"
        f"{baseline.relocations:>14}{adaptive.relocations:>14}"
    )
    print(
        f"{'bytes on the wire (MB)':<34}"
        f"{baseline.bytes_on_wire / 2**20:>14.0f}"
        f"{adaptive.bytes_on_wire / 2**20:>14.0f}"
    )
    print()
    print(
        f"speedup from adaptive operator placement: "
        f"{adaptive.speedup_over(baseline):.2f}x"
    )


if __name__ == "__main__":
    main()
