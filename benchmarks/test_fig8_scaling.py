"""Figure 8: scaling the number of data sources from 4 to 32.

The paper's finding (which surprised the authors): the global algorithm
scales better than both one-shot and local — the local algorithm's slow
convergence hurts it more as configurations grow.
"""

from benchmarks.conftest import configured_configs, show
from repro.experiments import fig8_server_scaling


def test_fig8_server_scaling(benchmark, paper_setup):
    n_configs = configured_configs(6)
    counts = (4, 8, 16, 32)

    result = benchmark.pedantic(
        fig8_server_scaling,
        args=(paper_setup,),
        kwargs={"n_configs": n_configs, "server_counts": counts},
        rounds=1,
        iterations=1,
    )
    show(f"Figure 8 ({n_configs} configurations)", result.format_table())

    global_means = result.mean_speedups["global"]
    one_shot_means = result.mean_speedups["one-shot"]
    local_means = result.mean_speedups["local"]

    # Relocation beats download-all at every size.
    assert min(global_means) > 1.3
    assert min(one_shot_means) > 1.0
    # At the largest size the global algorithm is the best policy.
    assert global_means[-1] >= one_shot_means[-1]
    assert global_means[-1] >= local_means[-1]
    # Global's advantage over local grows with size (slow convergence).
    small_gap = global_means[0] / local_means[0]
    large_gap = global_means[-1] / local_means[-1]
    assert large_gap >= small_gap * 0.9
