"""Ablations of the design choices DESIGN.md calls out.

* barrier priority (§2.2: barrier messages overtake queued data);
* operator prefetch (the demand-after-dispatch pipelining);
* monitoring fidelity (oracle vs passive; probe-everything planning);
* piggybacking (the 1 KB measurement gossip).
"""

import numpy as np

from benchmarks.conftest import configured_configs, show
from repro.engine.config import Algorithm
from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_configuration
from repro.monitor.system import MonitoringConfig

from dataclasses import replace


def mean_speedup(setup, n_configs, algorithm, **overrides):
    values = []
    for index in range(n_configs):
        base = run_configuration(setup, index, Algorithm.DOWNLOAD_ALL)
        run = run_configuration(setup, index, algorithm, **overrides)
        values.append(base.completion_time / run.completion_time)
    return float(np.mean(values))


def test_ablation_barrier_priority(benchmark, paper_setup):
    """Without queue priority, barrier messages wait behind bulk data,
    stretching every change-over."""
    n_configs = configured_configs(8)

    def run():
        with_priority = mean_speedup(
            paper_setup, n_configs, Algorithm.GLOBAL, barrier_priority=True
        )
        without = mean_speedup(
            paper_setup, n_configs, Algorithm.GLOBAL, barrier_priority=False
        )
        return with_priority, without

    with_priority, without = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation — barrier message priority",
        f"global speedup with priority:    {with_priority:5.2f}\n"
        f"global speedup without priority: {without:5.2f}",
    )
    assert with_priority > 1.5
    # The effect is small at the 10-minute period but must not invert
    # dramatically: priority never hurts.
    assert with_priority >= without * 0.95


def test_ablation_prefetch(benchmark, paper_setup):
    """Prefetch (demand next partition right after dispatch) is what
    keeps the pipeline full; disabling it serializes the tree."""
    n_configs = configured_configs(6)

    def run():
        on = mean_speedup(paper_setup, n_configs, Algorithm.ONE_SHOT)
        off = mean_speedup(
            paper_setup, n_configs, Algorithm.ONE_SHOT, prefetch=False
        )
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation — operator prefetch (pipelining)",
        f"one-shot speedup with prefetch:    {on:5.2f}\n"
        f"one-shot speedup without prefetch: {off:5.2f}",
    )
    assert on > off


def test_ablation_monitoring_fidelity(benchmark, paper_setup):
    """Oracle (perfect 5-minute averages) bounds what better monitoring
    could buy; probe-everything planning shows monitoring's traffic cost."""
    n_configs = configured_configs(8)

    def run():
        passive = mean_speedup(paper_setup, n_configs, Algorithm.GLOBAL)
        oracle = mean_speedup(
            paper_setup, n_configs, Algorithm.GLOBAL, oracle_monitoring=True
        )
        probe_heavy = mean_speedup(
            paper_setup,
            n_configs,
            Algorithm.GLOBAL,
            probe_before_planning=True,
        )
        return passive, oracle, probe_heavy

    passive, oracle, probe_heavy = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation — monitoring fidelity (global algorithm)",
        f"passive monitoring (default): {passive:5.2f}\n"
        f"oracle monitoring:            {oracle:5.2f}\n"
        f"probe-everything planning:    {probe_heavy:5.2f}",
    )
    assert oracle >= passive * 0.9  # perfect info should not hurt
    assert passive > probe_heavy * 0.9  # probe storms are costly


def test_ablation_piggybacking(benchmark):
    """Disabling the 1 KB measurement gossip starves remote caches."""
    n_configs = configured_configs(8)
    base_setup = ExperimentConfig()

    def run():
        with_piggyback = mean_speedup(base_setup, n_configs, Algorithm.GLOBAL)
        without = mean_speedup(
            base_setup,
            n_configs,
            Algorithm.GLOBAL,
            monitoring=MonitoringConfig(piggyback_budget=0),
        )
        return with_piggyback, without

    with_piggyback, without = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation — measurement piggybacking",
        f"global speedup with piggybacking:    {with_piggyback:5.2f}\n"
        f"global speedup without piggybacking: {without:5.2f}",
    )
    assert with_piggyback > 1.5
    assert without > 1.0  # still functional, just worse informed
