"""Microbenchmarks of the substrates: DES kernel, planner, traces.

These are conventional pytest-benchmark measurements (multiple rounds)
guarding the performance that makes the 300-configuration studies
feasible.
"""

import numpy as np

from repro.dataflow.cost import CostModel, expected_output_sizes
from repro.dataflow.critical import SingleMoveEvaluator, critical_path
from repro.dataflow.tree import complete_binary_tree
from repro.placement import OneShotPlanner, download_all_placement
from repro.sim import Environment, Resource
from repro.traces import InternetStudy


def test_kernel_timeout_throughput(benchmark):
    """Schedule-and-fire rate of the event calendar."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(2000):
                yield env.timeout(1.0)

        for _ in range(5):
            env.process(ticker(env))
        env.run()
        return env.now

    assert benchmark(run) == 2000.0


def test_kernel_resource_contention(benchmark):
    """Requests through a contended resource."""

    def run():
        env = Environment()
        resource = Resource(env, capacity=2)
        served = []

        def user(env):
            with resource.request() as req:
                yield req
                yield env.timeout(1.0)
                served.append(env.now)

        for _ in range(500):
            env.process(user(env))
        env.run()
        return len(served)

    assert benchmark(run) == 500


def test_planner_one_shot_32_servers(benchmark):
    """A full one-shot search at the paper's largest scale."""
    tree = complete_binary_tree(32)
    hosts = [f"h{i}" for i in range(32)] + ["client"]
    cost_model = CostModel(tree, expected_output_sizes(tree, 128 * 1024, 0.25))
    server_hosts = {f"s{i}": f"h{i}" for i in range(32)}
    initial = download_all_placement(tree, server_hosts, "client")
    rng = np.random.default_rng(0)
    rates = {}

    def estimator(a, b):
        if a == b:
            return float("inf")
        key = (a, b) if a < b else (b, a)
        if key not in rates:
            rates[key] = float(rng.lognormal(np.log(10 * 1024), 0.8))
        return rates[key]

    planner = OneShotPlanner(tree, hosts, cost_model)
    result = benchmark(planner.plan, estimator, initial)
    assert result.cost < critical_path(tree, initial, cost_model, estimator).cost


def test_single_move_evaluator(benchmark):
    """Incremental candidate pricing (the planner's inner loop)."""
    tree = complete_binary_tree(16)
    hosts = [f"h{i}" for i in range(16)] + ["client"]
    cost_model = CostModel(tree, expected_output_sizes(tree, 128 * 1024, 0.25))
    server_hosts = {f"s{i}": f"h{i}" for i in range(16)}
    placement = download_all_placement(tree, server_hosts, "client")

    def estimator(a, b):
        return float("inf") if a == b else 10 * 1024.0

    evaluator = SingleMoveEvaluator(tree, placement, cost_model, estimator)
    operators = [op.node_id for op in tree.operators()]

    def sweep():
        best = float("inf")
        for op in operators:
            for host in hosts:
                cost = evaluator.cost_of_move(op, host)
                if cost < best:
                    best = cost
        return best

    assert benchmark(sweep) > 0


def test_trace_generation(benchmark):
    """Synthesizing the full 66-pair, two-day study."""
    result = benchmark(lambda: InternetStudy(seed=77).run())
    assert len(result) == 66
