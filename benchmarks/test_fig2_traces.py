"""Figure 2 + §4 trace statistics: bandwidth variation of the study.

The paper plots one host pair's bandwidth over ten minutes and over two
days, and reports that significant (>=10 %) bandwidth changes occur about
every two minutes.  This benchmark regenerates the synthetic study,
prints the Figure-2-style series summary for a representative pair, and
checks the change-interval calibration.
"""

import numpy as np

from benchmarks.conftest import show
from repro.traces import InternetStudy, trace_stats
from repro.traces.stats import library_change_interval


def summarize_pair(trace, t0, t1, buckets):
    """Min/median/max of the trace's rates over [t0, t1] in KB/s."""
    edges = np.linspace(t0, t1, buckets + 1)
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (trace.times >= lo) & (trace.times < hi)
        if mask.any():
            rows.append(float(np.mean(trace.rates[mask])) / 1024.0)
    return rows


def test_fig2_bandwidth_variation(benchmark):
    def run():
        library = InternetStudy(seed=1998).run()
        trace = library.trace("wisc", "ucla")  # the paper's example pair
        return library, trace

    library, trace = benchmark.pedantic(run, rounds=1, iterations=1)

    ten_minutes = summarize_pair(trace, 12 * 3600, 12 * 3600 + 600, 10)
    two_days = summarize_pair(trace, 0, trace.end, 16)
    stats = trace_stats(trace)
    interval = library_change_interval(library.all_traces())

    lines = [
        "wisc~ucla, first 10 minutes from noon (KB/s per minute):",
        "  " + " ".join(f"{v:6.1f}" for v in ten_minutes),
        "wisc~ucla, full two days (KB/s per 3h bucket):",
        "  " + " ".join(f"{v:6.1f}" for v in two_days),
        f"pair stats: mean={stats.mean_rate / 1024:.1f} KB/s "
        f"cv={stats.cv:.2f} changes={stats.n_changes}",
        f"library-wide mean >=10% change interval: {interval:.0f} s "
        "(paper: ~120 s)",
    ]
    show("Figure 2 — bandwidth variation (synthetic study)", "\n".join(lines))

    # Paper calibration target: ~2 minutes between significant changes.
    assert 80.0 <= interval <= 180.0
    # The trace must actually vary (CV comparable to real WAN paths).
    assert stats.cv > 0.15
    assert stats.n_changes > 100
