"""Workload generality: the paper's three application classes (§2).

Measures how the combiner's data-volume shape changes the value of
operator relocation: constant (image composition), growing (sorted
merge) and shrinking (selective hash join) intermediate results.
"""

import numpy as np

from benchmarks.conftest import configured_configs, show
from repro.app import CompositionSpec, JoinCombiner, MergeCombiner
from repro.engine.config import Algorithm
from repro.experiments.runner import run_configuration


def mean_speedup(setup, n_configs, combiner):
    values = []
    for index in range(n_configs):
        base = run_configuration(
            setup, index, Algorithm.DOWNLOAD_ALL, compose=combiner
        )
        adaptive = run_configuration(
            setup, index, Algorithm.GLOBAL, compose=combiner
        )
        values.append(base.completion_time / adaptive.completion_time)
    return float(np.mean(values))


def test_workload_classes(benchmark, paper_setup):
    n_configs = configured_configs(6)
    workloads = {
        "composition (max)": CompositionSpec(),
        "merge (sum)": MergeCombiner(),
        "join 50% (scaled-min)": JoinCombiner(match_rate=0.5),
        "join 10% (scaled-min)": JoinCombiner(match_rate=0.1),
    }

    def run():
        return {
            name: mean_speedup(paper_setup, n_configs, combiner)
            for name, combiner in workloads.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Workload classes — global-over-download-all by combiner shape",
        "\n".join(f"{name:<24} {value:5.2f}x" for name, value in results.items()),
    )

    # Every class still gains from relocation...
    assert all(value > 1.3 for value in results.values())
    # ...and the more the combiner reduces data, the bigger the gain:
    # join >> composition >= merge-ish.
    assert results["join 10% (scaled-min)"] > results["join 50% (scaled-min)"]
    assert results["join 50% (scaled-min)"] > results["composition (max)"]
