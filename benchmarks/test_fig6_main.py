"""Figure 6 + the §5 inter-arrival table: the main comparison.

Four placement policies over N random network configurations (paper:
300), 8 servers, complete binary tree, 180 images/server, 10-minute
relocation period.  The paper's headline numbers:

* all relocation algorithms significantly beat download-all;
* global achieves a ~40 % median improvement over one-shot;
* global beats local with a median ratio of ~1.25;
* mean inter-arrival: 101.2 s (download-all) -> 24.6 (one-shot)
  -> 22 (local) -> 17.1 (global).
"""

from benchmarks.conftest import configured_configs, configured_workers, show
from repro.experiments import fig6_main_comparison


def test_fig6_main_comparison(benchmark, paper_setup):
    n_configs = configured_configs(30)

    result = benchmark.pedantic(
        fig6_main_comparison,
        args=(paper_setup,),
        kwargs={"n_configs": n_configs, "workers": configured_workers()},
        rounds=1,
        iterations=1,
    )
    show(f"Figure 6 ({n_configs} configurations)", result.format_table())

    # Shape claims (tolerant thresholds for subset runs).
    assert result.one_shot_speedups.mean() > 1.5
    assert result.local_speedups.mean() > 1.5
    assert result.global_speedups.mean() > 1.5
    # On-line relocation adds a consistent improvement over one-shot.
    assert result.median_global_over_one_shot > 1.10
    # Global beats local (paper: "except in a few cases").
    assert result.median_global_over_local > 1.0
    # Inter-arrival ordering: download-all slowest, global fastest.
    ia = result.mean_interarrival
    assert ia["download-all"] > ia["one-shot"]
    assert ia["download-all"] > ia["local"]
    assert ia["global"] == min(ia.values())
