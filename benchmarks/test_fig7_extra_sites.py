"""Figure 7: extra random candidate sites for the local algorithm.

The paper lets the local algorithm consider up to k=6 additional,
randomly chosen hosts per relocation decision (each one charging extra
monitoring traffic) and finds "no significant difference in performance".
"""

from benchmarks.conftest import configured_configs, show
from repro.experiments import fig7_extra_sites


def test_fig7_extra_candidate_sites(benchmark, paper_setup):
    n_configs = configured_configs(10)
    ks = (0, 1, 2, 4, 6)

    result = benchmark.pedantic(
        fig7_extra_sites,
        args=(paper_setup,),
        kwargs={"n_configs": n_configs, "ks": ks},
        rounds=1,
        iterations=1,
    )
    show(f"Figure 7 ({n_configs} configurations)", result.format_table())

    # Every variant still beats download-all comfortably...
    assert min(result.mean_speedups) > 1.3
    # ...and extra sites change little: the spread across k stays small
    # relative to the speedups themselves (paper: "no significant
    # difference").
    assert result.spread() < 0.35 * max(result.mean_speedups)
