"""Figure 9: how often should the global algorithm relocate?

The paper sweeps the relocation period from two minutes to an hour and
finds a 5-10 minute period best.  The *shape* of the left end of that
curve depends on how much each planning round costs: with the paper's
monitoring style (refresh every link the search consults — our
``probe_before_planning`` ablation) short periods drown in probe traffic;
with the default plan-on-cache + validate flow the per-round cost is an
order of magnitude smaller and short periods stay profitable.  Both
curves are reproduced; both degrade toward the one-hour end (stale
plans).
"""

from benchmarks.conftest import configured_configs, show
from repro.engine.config import Algorithm
from repro.experiments import fig9_relocation_period
from repro.experiments.runner import (
    AlgorithmSummary,
    run_configuration,
    speedup_series,
)

PERIODS = (120.0, 300.0, 600.0, 1800.0, 3600.0)


def probe_heavy_curve(setup, n_configs, periods):
    """The sweep under the paper-style probe-everything monitoring."""
    import numpy as np

    means = []
    for period in periods:
        baseline = AlgorithmSummary("download-all")
        online = AlgorithmSummary("global")
        for index in range(n_configs):
            baseline.add(run_configuration(setup, index, Algorithm.DOWNLOAD_ALL))
            online.add(
                run_configuration(
                    setup,
                    index,
                    Algorithm.GLOBAL,
                    relocation_period=period,
                    probe_before_planning=True,
                )
            )
        means.append(float(np.mean(speedup_series(online, baseline))))
    return means


def test_fig9_relocation_period(benchmark, paper_setup):
    n_configs = configured_configs(10)

    def run():
        default_curve = fig9_relocation_period(
            paper_setup, n_configs=n_configs, periods=PERIODS
        )
        heavy = probe_heavy_curve(paper_setup, n_configs, PERIODS)
        return default_curve, heavy

    result, heavy = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [result.format_table(), "", "probe-everything monitoring ablation:"]
    for period, mean in zip(PERIODS, heavy):
        lines.append(f"{period / 60.0:13.1f} {mean:13.2f}")
    show(f"Figure 9 ({n_configs} configurations)", "\n".join(lines))

    # Claim: relocating every few minutes beats relocating hourly.
    by_period = dict(zip(result.periods, result.mean_speedups))
    assert max(by_period[120.0], by_period[300.0], by_period[600.0]) > by_period[3600.0]
    # Under probe-heavy monitoring the 2-minute period pays for its
    # measurement traffic: the curve's peak sits at 5+ minutes.
    heavy_by_period = dict(zip(PERIODS, heavy))
    assert max(heavy) > heavy_by_period[120.0]
    # Adaptation is profitable at the paper's 5-10 minute setting.
    assert by_period[600.0] > 1.5
