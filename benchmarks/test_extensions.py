"""Extension benchmarks: the paper's relaxable assumptions, quantified.

§2 of the paper: "The remaining assumptions can be relaxed — the
algorithms presented in this paper can be easily adapted to work without
them."  These benches measure what relaxing them buys:

* assumption 2 (single network interface per host) — ``nic_capacity``;
* assumption 3 (data is not replicated) — ``replication_factor`` with
  replica switching at barrier change-overs;
* and the NWS-style forecasting layer on top of the monitoring model.
"""

import numpy as np

from benchmarks.conftest import configured_configs, show
from repro.engine.config import Algorithm
from repro.experiments.runner import run_configuration
from repro.monitor.system import MonitoringConfig


def mean_speedup(setup, n_configs, algorithm, **overrides):
    values = []
    for index in range(n_configs):
        base = run_configuration(setup, index, Algorithm.DOWNLOAD_ALL)
        run = run_configuration(setup, index, algorithm, **overrides)
        values.append(base.completion_time / run.completion_time)
    return float(np.mean(values))


def test_extension_replication(benchmark, paper_setup):
    """Replica switching gives the planner extra freedom (assumption 3)."""
    n_configs = configured_configs(6)

    def run():
        return {
            rf: mean_speedup(
                paper_setup, n_configs, Algorithm.GLOBAL, replication_factor=rf
            )
            for rf in (1, 2, 3)
        }

    by_factor = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Extension — dataset replication (global algorithm)",
        "\n".join(
            f"replication factor {rf}: mean speedup {value:5.2f}"
            for rf, value in by_factor.items()
        ),
    )
    # More replicas may only help (the planner can always ignore them).
    assert by_factor[3] >= by_factor[1] * 0.95
    assert by_factor[1] > 1.5


def test_extension_nic_capacity(benchmark, paper_setup):
    """Relaxing assumption 2 (one interface per host) does *not* erase
    relocation's advantage: once transfers parallelize, download-all's
    bottleneck shifts to the client's CPU (seven serialized compositions
    per image), which distribution also relieves."""
    n_configs = configured_configs(6)

    def run():
        return {
            capacity: mean_speedup(
                paper_setup,
                n_configs,
                Algorithm.ONE_SHOT,
                nic_capacity=capacity,
            )
            for capacity in (1, 2, 4)
        }

    by_capacity = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Extension — interfaces per host (one-shot over download-all)",
        "\n".join(
            f"nic capacity {capacity}: mean speedup {value:5.2f}"
            for capacity, value in by_capacity.items()
        ),
    )
    # Relocation keeps a significant edge at every interface count (the
    # bottleneck moves from the client NIC to the client CPU).
    assert all(value > 1.5 for value in by_capacity.values())


def test_extension_forecasting(benchmark, paper_setup):
    """NWS-style forecasts vs raw cached measurements for the planner."""
    n_configs = configured_configs(8)

    def run():
        plain = mean_speedup(paper_setup, n_configs, Algorithm.GLOBAL)
        adaptive = mean_speedup(
            paper_setup,
            n_configs,
            Algorithm.GLOBAL,
            monitoring=MonitoringConfig(forecast="adaptive"),
        )
        median = mean_speedup(
            paper_setup,
            n_configs,
            Algorithm.GLOBAL,
            monitoring=MonitoringConfig(forecast="median"),
        )
        return plain, adaptive, median

    plain, adaptive, median = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Extension — NWS-style forecasting (global algorithm)",
        f"raw measurements (paper model): {plain:5.2f}\n"
        f"adaptive best-of-bank forecast: {adaptive:5.2f}\n"
        f"sliding-median forecast:        {median:5.2f}",
    )
    # Forecasting trades responsiveness for stability; it must stay in
    # the same band as the raw model (and our traces mildly favour raw).
    assert adaptive > plain * 0.8
    assert median > plain * 0.8
