"""Figure 10: combination order — complete binary vs left-deep trees.

The paper reruns the on-line algorithms with a left-deep (linear)
combination order and finds the complete binary order better for both.
"""

from benchmarks.conftest import configured_configs, show
from repro.experiments import fig10_tree_shape


def test_fig10_combination_order(benchmark, paper_setup):
    n_configs = configured_configs(20)

    result = benchmark.pedantic(
        fig10_tree_shape,
        args=(paper_setup,),
        kwargs={"n_configs": n_configs},
        rounds=1,
        iterations=1,
    )
    show(f"Figure 10 ({n_configs} configurations)", result.format_table())

    # Both orders still yield large gains over download-all.
    assert result.mean(result.global_binary) > 1.5
    assert result.mean(result.global_left_deep) > 1.5
    # The binary order is at least as good as left-deep for the global
    # algorithm (the paper's central Figure 10 claim).
    assert result.mean(result.global_binary) >= 0.95 * result.mean(
        result.global_left_deep
    )
    # Local stays in the same band under both orders.
    assert result.mean(result.local_binary) > 1.2
    assert result.mean(result.local_left_deep) > 1.2
