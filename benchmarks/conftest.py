"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables/figures.  The
number of network configurations defaults to a laptop-friendly subset;
set ``REPRO_CONFIGS`` (the paper uses 300) to scale any benchmark up,
and ``REPRO_WORKERS`` to fan the sweeps out over a process pool (the
figure functions resolve it via
:func:`repro.experiments.resolve_workers`, so the env var alone is
enough — results are bit-identical to serial at any worker count):

    REPRO_CONFIGS=300 REPRO_WORKERS=8 pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentConfig, resolve_workers


def configured_configs(default: int) -> int:
    """Config count for a benchmark, overridable via REPRO_CONFIGS.

    ``REPRO_CONFIGS`` names the *figure-6 scale*; cheaper figures keep
    their own default ratio to it.
    """
    override = os.environ.get("REPRO_CONFIGS")
    if override is None:
        return default
    requested = int(override)
    if requested <= 0:
        raise ValueError("REPRO_CONFIGS must be positive")
    # Scale the figure's default proportionally to fig6's default of 30.
    return max(2, round(default * requested / 30))


def configured_workers() -> int:
    """Sweep worker count, from ``REPRO_WORKERS`` (default 1 = serial)."""
    return resolve_workers(None)


@pytest.fixture(scope="session")
def paper_setup() -> ExperimentConfig:
    """The paper's main experimental setup: 8 servers, binary tree,
    180 images/server, 10-minute relocation period."""
    return ExperimentConfig()


def show(title: str, table: str) -> None:
    """Print a result table (visible with ``-s`` or on failures)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{table}\n")
