"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables/figures.  The
number of network configurations defaults to a laptop-friendly subset;
set ``REPRO_CONFIGS`` (the paper uses 300) to scale any benchmark up:

    REPRO_CONFIGS=300 pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentSetup


def configured_configs(default: int) -> int:
    """Config count for a benchmark, overridable via REPRO_CONFIGS.

    ``REPRO_CONFIGS`` names the *figure-6 scale*; cheaper figures keep
    their own default ratio to it.
    """
    override = os.environ.get("REPRO_CONFIGS")
    if override is None:
        return default
    requested = int(override)
    if requested <= 0:
        raise ValueError("REPRO_CONFIGS must be positive")
    # Scale the figure's default proportionally to fig6's default of 30.
    return max(2, round(default * requested / 30))


@pytest.fixture(scope="session")
def paper_setup() -> ExperimentSetup:
    """The paper's main experimental setup: 8 servers, binary tree,
    180 images/server, 10-minute relocation period."""
    return ExperimentSetup()


def show(title: str, table: str) -> None:
    """Print a result table (visible with ``-s`` or on failures)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{table}\n")
