"""Fleet coordination end to end: engine wiring, accounting, replay."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.engine.config import Algorithm
from repro.fleet.counters import CoordinationCounters
from repro.obs import Tracer
from repro.workload import (
    FleetPolicy,
    OpenLoop,
    QueryClass,
    StreamingFleetMetrics,
    WorkloadSpec,
    fleet_from_trace,
    run_workload,
)


def contended_spec(fleet, **overrides):
    """Replanning queries under tight relocation budgets: grants and
    denies both fire (asserted below), exercising every counter."""
    defaults = dict(
        classes=(
            QueryClass(
                name="g",
                algorithm=Algorithm.GLOBAL,
                weight=2.0,
                slo_target=2000.0,
                overrides={"relocation_period": 60.0},
            ),
            QueryClass(
                name="l",
                algorithm=Algorithm.LOCAL,
                overrides={"relocation_period": 60.0},
            ),
        ),
        num_clients=3,
        queries_per_client=2,
        arrivals=OpenLoop(rate=1 / 120.0),
        seed=17,
        num_servers=4,
        images_per_server=24,
        fleet=fleet,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


TIGHT = FleetPolicy(
    mode="coordinated", link_tokens=1.0, token_refill_seconds=600.0
)


def stream_digest(events) -> str:
    """Content hash of an obs stream with run-relative message uids
    (same normalization as the defaults-equivalence golden)."""
    uids = sorted({e["uid"] for e in events if "uid" in e})
    rank = {uid: i for i, uid in enumerate(uids)}
    normalized = [
        {**e, "uid": rank[e["uid"]]} if "uid" in e else e for e in events
    ]
    return hashlib.sha256(
        json.dumps(normalized, sort_keys=True).encode()
    ).hexdigest()


class TestSpecWiring:
    def test_fleet_engaged_property(self):
        assert not contended_spec(None).fleet_engaged
        assert contended_spec(TIGHT).fleet_engaged

    def test_rejects_non_policy(self):
        with pytest.raises(ValueError, match="FleetPolicy"):
            contended_spec("coordinated")


class TestDefaultsOff:
    def test_no_fleet_block_and_identical_runs(self):
        # fleet=None must not leave any trace of the coordination layer:
        # no summary block, and the whole run (summary AND obs stream)
        # bit-identical across repetitions.
        tracer_a, tracer_b = Tracer(), Tracer()
        a = run_workload(contended_spec(None), tracer=tracer_a)
        b = run_workload(contended_spec(None), tracer=tracer_b)
        assert "fleet" not in a.fleet
        assert a.fleet == b.fleet
        assert stream_digest(tracer_a.events) == stream_digest(
            tracer_b.events
        )
        assert not any(
            e["type"].startswith("fleet.") for e in tracer_a.events
        )


class TestCoordinatedRun:
    def test_counters_engage_and_reconcile_exact(self):
        tracer = Tracer()
        result = run_workload(contended_spec(TIGHT), tracer=tracer)
        block = result.fleet["fleet"]
        assert block["claims"] == 6
        assert block["grants"] > 0
        assert block["denies"] > 0
        assert block["denied_links"]  # bottleneck histogram populated
        assert block["planner_rounds"] > 0
        assert block["planner_candidates"] > 0
        assert block["planner_links_queried"] > 0
        assert 0.0 <= block["grant_rate"] <= 1.0
        # Replay of the same trace rebuilds the identical summary.
        assert fleet_from_trace(tracer.events) == result.fleet

    def test_streaming_replay_reconciles(self):
        tracer = Tracer()
        result = run_workload(
            contended_spec(TIGHT, metrics_mode="streaming"), tracer=tracer
        )
        replay = fleet_from_trace(
            tracer.events, metrics=StreamingFleetMetrics(3)
        )
        assert replay["fleet"] == result.fleet["fleet"]
        assert replay["per_class"] == result.fleet["per_class"]

    def test_fleet_run_is_deterministic(self):
        tracer_a, tracer_b = Tracer(), Tracer()
        a = run_workload(contended_spec(TIGHT), tracer=tracer_a)
        b = run_workload(contended_spec(TIGHT), tracer=tracer_b)
        assert a.fleet == b.fleet
        assert stream_digest(tracer_a.events) == stream_digest(
            tracer_b.events
        )

    def test_fair_mode_runs_and_reconciles(self):
        fair = FleetPolicy(
            mode="fair", link_tokens=1.0, token_refill_seconds=600.0
        )
        tracer = Tracer()
        result = run_workload(contended_spec(fair), tracer=tracer)
        assert result.fleet["fleet"]["claims"] == 6
        assert fleet_from_trace(tracer.events) == result.fleet

    def test_generous_budget_changes_nothing_but_grants(self):
        # With effectively unlimited tokens every proposal is granted:
        # per-query behaviour matches what residual-only planning does.
        generous = FleetPolicy(link_tokens=1e9, token_refill_seconds=1.0)
        result = run_workload(contended_spec(generous))
        block = result.fleet["fleet"]
        assert block["denies"] == 0
        assert block["grant_rate"] == 1.0


class TestCounters:
    def test_merge_is_commutative(self):
        def build(order):
            counters = CoordinationCounters()
            for kind, kwargs in order:
                counters.note(kind, **kwargs)
            return counters

        events = [
            ("claim", dict(class_name="g")),
            ("grant", dict(class_name="g", value=3)),
            ("deny", dict(class_name="l", link="h0|h1")),
            ("deny", dict(class_name="g", link="h0|h1")),
            ("rebalance", dict(class_name="g")),
        ]
        a = build(events[:2])
        a.note_effort(5, 100, 20)
        b = build(events[2:])
        b.note_effort(7, 50, 10)
        ab = build(events[:2])
        ab.note_effort(5, 100, 20)
        ab.merge(b)
        ba = build(events[2:])
        ba.note_effort(7, 50, 10)
        ba.merge(a)
        assert ab.block() == ba.block()
        assert ab.block()["denied_links"] == {"h0|h1": 2}
        assert ab.block()["planner_rounds"] == 12

    def test_effort_alone_does_not_engage(self):
        counters = CoordinationCounters()
        counters.note_effort(10, 200, 40)
        assert not counters.engaged
        counters.note("claim")
        assert counters.engaged

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CoordinationCounters().note("barter")
