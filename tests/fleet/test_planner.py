"""FleetPlanner: residual-bandwidth planning and arbitrated relocation."""

from __future__ import annotations

import pytest

from repro.dataflow.cost import CostModel, expected_output_sizes
from repro.dataflow.tree import complete_binary_tree
from repro.fleet import FleetCoordinator, FleetPolicy
from repro.fleet.planner import FleetPlanner
from repro.obs import Tracer
from repro.obs.events import FLEET_DENY, FLEET_GRANT, PLANNER_SEARCH
from repro.placement import (
    GlobalPlanner,
    LocalRulesPlanner,
    download_all_placement,
    planner_for,
)

HOSTS = ["h0", "h1", "h2", "h3", "client"]


def make_problem():
    tree = complete_binary_tree(4)
    sizes = expected_output_sizes(tree, 100 * 1024.0, 0.1)
    cost_model = CostModel(tree, sizes, startup_cost=1.0, disk_rate=1e9)
    server_hosts = {
        server.node_id: f"h{i}" for i, server in enumerate(tree.servers())
    }
    initial = download_all_placement(tree, server_hosts, "client")
    return tree, cost_model, initial


def estimator(a: str, b: str) -> float:
    return 50 * 1024.0


def make_planner(stage="controller", **policy_kwargs):
    tree, cost_model, initial = make_problem()
    inner = GlobalPlanner(tree, HOSTS, cost_model)
    coordinator = FleetCoordinator(
        FleetPolicy(**policy_kwargs), clock=lambda: 0.0
    )
    planner = FleetPlanner(inner, coordinator, "q", stage=stage)
    return planner, coordinator, initial


class TestPlan:
    def test_grant_keeps_inner_placement(self):
        planner, _, initial = make_planner()
        inner_result = planner.inner.plan(estimator, initial, seed=3)
        result = planner.plan(estimator, initial, seed=3)
        assert result.algorithm == "fleet-coordinated"
        assert (
            result.placement.as_dict() == inner_result.placement.as_dict()
        )

    def test_deny_collapses_to_initial(self):
        # Zero headroom: a bucket drained by a previous grant denies the
        # follow-up proposal, which must come back as "no change".
        planner, coordinator, initial = make_planner(
            link_tokens=1.0, token_refill_seconds=1e6
        )
        first = planner.plan(estimator, initial, seed=3)
        assert first.placement != initial
        # Same query, next epoch (past the ruling cache): inner proposes
        # the same move but every bucket it needs is drained.
        coordinator._last_ruling.clear()
        tracer = Tracer()
        second = planner.plan(estimator, initial, seed=3, tracer=tracer)
        assert second.placement == initial
        kinds = [e["type"] for e in tracer.events]
        assert FLEET_DENY in kinds
        # The relabeled result still reports the inner search's effort.
        assert second.rounds > 0
        assert second.candidates_evaluated > 0

    def test_initial_stage_never_arbitrates(self):
        planner, coordinator, initial = make_planner(
            stage="initial", link_tokens=1.0, token_refill_seconds=1e6
        )
        tracer = Tracer()
        result = planner.plan(estimator, initial, seed=3, tracer=tracer)
        kinds = [e["type"] for e in tracer.events]
        assert FLEET_GRANT not in kinds and FLEET_DENY not in kinds
        assert result.placement != initial  # residual planning still ran
        assert coordinator._buckets == {}  # nothing charged

    def test_emits_exactly_one_search_event(self):
        planner, _, initial = make_planner()
        tracer = Tracer()
        planner.plan(estimator, initial, seed=3, tracer=tracer, now=7.0)
        searches = [
            e for e in tracer.events if e["type"] == PLANNER_SEARCH
        ]
        assert len(searches) == 1
        assert searches[0]["algorithm"] == "fleet-coordinated"
        assert searches[0]["t"] == 7.0

    def test_forwards_inner_attributes(self):
        planner, _, _ = make_planner()
        assert planner.cost_model is planner.inner.cost_model
        assert planner.tree is planner.inner.tree

    def test_registry_factories(self):
        tree, cost_model, initial = make_problem()
        for name in ("fleet-coordinated", "fleet-fair"):
            planner = planner_for(name, tree, HOSTS, cost_model)
            assert planner.name == name
            result = planner.plan(estimator, initial, seed=1)
            assert result.algorithm == name

    def test_rejects_unknown_stage(self):
        tree, cost_model, _ = make_problem()
        inner = GlobalPlanner(tree, HOSTS, cost_model)
        coordinator = FleetCoordinator(FleetPolicy())
        with pytest.raises(ValueError, match="stage"):
            FleetPlanner(inner, coordinator, "q", stage="bogus")


class TestDecide:
    def make_local(self, **policy_kwargs):
        tree, cost_model, _ = make_problem()
        inner = LocalRulesPlanner(tree, HOSTS, cost_model)
        coordinator = FleetCoordinator(
            FleetPolicy(**policy_kwargs), clock=lambda: 0.0
        )
        return FleetPlanner(inner, coordinator, "q"), coordinator

    def kwargs(self):
        # One dominant producer on h0 feeding a client-resident
        # operator with a tiny output: the bare rule wants to move the
        # operator next to the data.
        return dict(
            current_host="client",
            producer_hosts=["h0", "h1"],
            producer_sizes=[1e8, 1e3],
            consumer_host="client",
            output_size=1e3,
            estimator=estimator,
        )

    def test_granted_move_passes_through(self):
        planner, _ = self.make_local()
        bare = planner.inner.decide(**self.kwargs())
        assert bare.should_move
        decision = planner.decide(**self.kwargs())
        assert decision.should_move
        assert decision.best_site == bare.best_site

    def test_denied_move_collapses_to_stay(self):
        planner, coordinator = self.make_local(
            link_tokens=1.0, token_refill_seconds=1e6
        )
        first = planner.decide(**self.kwargs())
        assert first.should_move
        # Drain confirmed; the next epoch's identical wish is denied and
        # must read as "stay put" without inventing costs.
        second = planner.decide(**self.kwargs())
        assert not second.should_move
        assert second.best_site == "client"
        assert second.best_cost == second.current_cost
