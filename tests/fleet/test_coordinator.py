"""FleetCoordinator: claims, residual bandwidth, the token-bucket arbiter."""

from __future__ import annotations

import pytest

from repro.dataflow.placement import Placement
from repro.dataflow.tree import complete_binary_tree
from repro.fleet import (
    FleetCoordinator,
    FleetPolicy,
    canonical_link,
    link_key,
    placement_links,
    runtime_links,
)
from repro.obs import Tracer
from repro.obs.events import FLEET_CLAIM, FLEET_DENY, FLEET_GRANT
from repro.obs.tracer import NULL_TRACER


class FakeRuntime:
    """Just enough Runtime surface for the coordinator: a tree, actual
    actor locations, and a tracer."""

    def __init__(self, tree, placement, tracer=NULL_TRACER):
        self.tree = tree
        self._hosts = dict(placement.as_dict())
        self.tracer = tracer

    def host_of(self, node_id):
        return self._hosts[node_id]

    def move(self, node_id, host):
        self._hosts[node_id] = host


def make_query(tracer=NULL_TRACER):
    tree = complete_binary_tree(4)
    server_hosts = {
        server.node_id: f"h{i}" for i, server in enumerate(tree.servers())
    }
    assignment = dict(server_hosts)
    assignment[tree.client.node_id] = "client"
    for op in tree.operators():
        assignment[op.node_id] = "client"
    placement = Placement(assignment)
    return tree, placement, FakeRuntime(tree, placement, tracer)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestLinkHelpers:
    def test_canonical_link_orders(self):
        assert canonical_link("b", "a") == ("a", "b")
        assert canonical_link("a", "b") == ("a", "b")

    def test_link_key(self):
        assert link_key("h1", "h0") == "h0|h1"

    def test_placement_links_cross_host_only(self):
        tree, placement, _ = make_query()
        links = placement_links(tree, placement)
        # Every server feeds a client-resident operator over one link.
        assert links == {canonical_link(f"h{i}", "client") for i in range(4)}

    def test_runtime_links_reads_actor_locations(self):
        tree, placement, runtime = make_query()
        op = tree.operators()[0].node_id
        runtime.move(op, "h0")
        assert runtime_links(runtime) != placement_links(tree, placement)


class TestPolicy:
    def test_defaults_valid(self):
        policy = FleetPolicy()
        assert policy.mode == "coordinated"
        assert not policy.fair
        assert policy.planner_name == "fleet-coordinated"

    def test_fair_mode(self):
        assert FleetPolicy(mode="fair").fair

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mode="greedy"),
            dict(link_tokens=0.0),
            dict(token_refill_seconds=0.0),
            dict(fairness_reserve=-1.0),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            FleetPolicy(**kwargs)


class TestClaimsAndResidual:
    def test_claims_count_queries_per_link(self):
        coordinator = FleetCoordinator(FleetPolicy())
        _, _, r1 = make_query()
        _, _, r2 = make_query()
        coordinator.query_launched("c0:0", r1)
        coordinator.query_launched("c1:0", r2)
        claims = coordinator.link_claims()
        assert claims[canonical_link("h0", "client")] == 2
        coordinator.query_done("c0:0")
        assert coordinator.link_claims()[canonical_link("h0", "client")] == 1

    def test_residual_discounts_other_claimants_only(self):
        coordinator = FleetCoordinator(FleetPolicy())
        _, _, r1 = make_query()
        _, _, r2 = make_query()
        coordinator.query_launched("c0:0", r1)
        coordinator.query_launched("c1:0", r2)
        raw = lambda a, b: 100.0
        mine = coordinator.residual_estimator("c0:0", raw)
        # One *other* query claims h0--client: fair share is raw / 2.
        assert mine("h0", "client") == pytest.approx(50.0)
        # Nobody moves data h0--h1: undiscounted.
        assert mine("h0", "h1") == pytest.approx(100.0)
        # Same-host "transfers" are never discounted.
        assert mine("h0", "h0") == pytest.approx(100.0)

    def test_residual_snapshot_is_stable(self):
        coordinator = FleetCoordinator(FleetPolicy())
        _, _, r1 = make_query()
        _, _, r2 = make_query()
        coordinator.query_launched("c0:0", r1)
        estimate = coordinator.residual_estimator("c1:0", lambda a, b: 100.0)
        coordinator.query_done("c0:0")  # after the snapshot: no effect
        assert estimate("h0", "client") == pytest.approx(50.0)


class TestArbiter:
    def make(self, **policy_kwargs):
        clock = FakeClock()
        policy = FleetPolicy(**policy_kwargs)
        coordinator = FleetCoordinator(policy, clock=clock)
        return coordinator, clock

    def test_empty_moveset_always_granted(self):
        coordinator, _ = self.make()
        _, placement, runtime = make_query()
        coordinator.query_launched("q", runtime)
        assert coordinator.arbitrate("q", placement, placement, 0.0)

    def test_bucket_exhaustion_denies_then_refills(self):
        coordinator, clock = self.make(
            link_tokens=1.0, token_refill_seconds=100.0
        )
        tree, placement, runtime = make_query()
        coordinator.query_launched("q", runtime)
        op = tree.operators()[0].node_id
        moved = placement.with_move(op, "h0")
        assert coordinator.arbitrate("q", placement, moved, 0.0)
        # A *different* move touching the charged h0 bucket is denied.
        other_op = tree.operators()[1].node_id
        second = placement.with_move(other_op, "h0")
        assert not coordinator.arbitrate("q", placement, second, 1.0)
        # After a full refill period the same proposal is granted.
        clock.now = 200.0
        assert coordinator.arbitrate("q", placement, second, 200.0)

    def test_identical_proposal_charges_once(self):
        # The global controller rules on the same moveset twice per
        # round (dry run, then final plan): one ruling, one charge.
        coordinator, _ = self.make(link_tokens=1.0, token_refill_seconds=1e6)
        tree, placement, runtime = make_query()
        coordinator.query_launched("q", runtime)
        op = tree.operators()[0].node_id
        moved = placement.with_move(op, "h0")
        assert coordinator.arbitrate("q", placement, moved, 0.0)
        assert coordinator.arbitrate("q", placement, moved, 0.0)
        # The bucket was charged once, not twice: a fresh single-move
        # proposal against an uncharged host still passes.
        fresh = placement.with_move(tree.operators()[1].node_id, "h1")
        assert coordinator.arbitrate("q", placement, fresh, 0.0)

    def test_operator_move_arbitration(self):
        coordinator, clock = self.make(
            link_tokens=1.0, token_refill_seconds=100.0
        )
        _, _, runtime = make_query()
        coordinator.query_launched("q", runtime)
        assert coordinator.arbitrate_operator_move("q", "h0", "h0")
        assert coordinator.arbitrate_operator_move("q", "client", "h0")
        # h0's bucket is drained: the next inbound move is denied...
        assert not coordinator.arbitrate_operator_move("q", "h1", "h0")
        # ...and denies are free, so they never deepen the drain.
        clock.now = 100.0
        assert coordinator.arbitrate_operator_move("q", "h1", "h0")

    def test_events_and_determinism(self):
        def run():
            tracer = Tracer()
            clock = FakeClock()
            coordinator = FleetCoordinator(
                FleetPolicy(link_tokens=1.0, token_refill_seconds=100.0),
                clock=clock,
            )
            tree, placement, runtime = make_query(tracer)
            coordinator.query_launched("q", runtime, class_name="g")
            op0, op1 = (o.node_id for o in tree.operators()[:2])
            coordinator.arbitrate("q", placement, placement.with_move(op0, "h0"), 0.0)
            coordinator.arbitrate("q", placement, placement.with_move(op1, "h0"), 1.0)
            return [
                {k: v for k, v in e.items()}
                for e in tracer.events
                if e["type"].startswith("fleet.")
            ]

        a, b = run(), run()
        assert a == b
        kinds = [e["type"] for e in a]
        assert kinds[0] == FLEET_CLAIM
        assert FLEET_GRANT in kinds and FLEET_DENY in kinds
        deny = next(e for e in a if e["type"] == FLEET_DENY)
        # First sorted drained bucket: the state-transfer link.
        assert deny["bottleneck"] == "client|h0"
        assert deny["query_class"] == "g"


class TestFairMode:
    def test_worst_off_dips_into_reserve(self):
        clock = FakeClock()
        coordinator = FleetCoordinator(
            FleetPolicy(
                mode="fair",
                link_tokens=1.0,
                token_refill_seconds=100.0,
                fairness_reserve=0.5,
            ),
            clock=clock,
        )
        tree, placement, r1 = make_query()
        _, _, r2 = make_query()
        coordinator.query_launched("a", r1, slo=100.0)
        clock.now = 50.0
        coordinator.query_launched("b", r2, slo=100.0)
        op = tree.operators()[0].node_id
        moved = placement.with_move(op, "h0")
        # "a" has the worst latency-to-SLO ratio (older, same SLO): it
        # may take the bucket below the reserve.
        # "b" must leave the reserve: need 1.5 > 1.0 tokens -> denied.
        assert not coordinator.arbitrate("b", placement, moved, 50.0)
        assert coordinator.arbitrate("a", placement, moved, 50.0)

    def test_tie_break_is_seeded_and_deterministic(self):
        def worst(seed):
            coordinator = FleetCoordinator(
                FleetPolicy(mode="fair", seed=seed), clock=lambda: 0.0
            )
            _, _, r1 = make_query()
            _, _, r2 = make_query()
            coordinator.query_launched("a", r1, slo=100.0)
            coordinator.query_launched("b", r2, slo=100.0)
            return [
                qid
                for qid in ("a", "b")
                if coordinator._is_worst_off(qid, 0.0)
            ]

        assert worst(0) == worst(0)
        assert len(worst(0)) == 1  # exactly one worst-off query
