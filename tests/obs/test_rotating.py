"""Rotating JSONL trace segments and the streaming tracer."""

import json

import pytest

from repro.engine.config import Algorithm
from repro.obs import (
    RotatingTraceWriter,
    StreamingTracer,
    read_segments,
    segment_paths,
)
from repro.workload import ClosedLoop, QueryClass, WorkloadSpec, fleet_from_trace
from repro.workload.engine import run_workload


def tiny_spec(**overrides):
    defaults = dict(
        classes=(QueryClass(name="os", algorithm=Algorithm.ONE_SHOT),),
        num_clients=2,
        queries_per_client=2,
        arrivals=ClosedLoop(),
        seed=9,
        num_servers=4,
        images_per_server=2,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestRotatingTraceWriter:
    def test_rotation_by_size(self, tmp_path):
        with RotatingTraceWriter(tmp_path, max_segment_bytes=200) as writer:
            for i in range(50):
                writer.write({"type": "x", "t": float(i), "i": i})
        paths = segment_paths(tmp_path)
        assert len(paths) > 1
        assert writer.records_written == 50
        # Every segment opens with its own replayable header.
        for path in paths:
            first = json.loads(path.read_text().splitlines()[0])
            assert first["type"] == "trace.segment"

    def test_records_roundtrip_in_order(self, tmp_path):
        with RotatingTraceWriter(tmp_path, max_segment_bytes=150) as writer:
            for i in range(30):
                writer.write({"type": "x", "t": float(i), "i": i})
        replayed = [
            r["i"] for r in read_segments(tmp_path) if r["type"] == "x"
        ]
        assert replayed == list(range(30))
        types = [r["type"] for r in read_segments(tmp_path)]
        assert types[-1] == "trace.footer"

    def test_max_segments_prunes_oldest(self, tmp_path):
        writer = RotatingTraceWriter(
            tmp_path, max_segment_bytes=100, max_segments=3
        )
        for i in range(200):
            writer.write({"type": "x", "t": float(i)})
        writer.close()
        assert len(segment_paths(tmp_path)) <= 3
        assert writer.segments_dropped > 0
        # Survivors are the newest records.
        times = [r["t"] for r in read_segments(tmp_path) if r["type"] == "x"]
        assert times == sorted(times)
        assert times[-1] == 199.0

    def test_max_age_prunes_by_sim_time(self, tmp_path):
        writer = RotatingTraceWriter(
            tmp_path, max_segment_bytes=100, max_age_seconds=20.0
        )
        for i in range(200):
            writer.write({"type": "x", "t": float(i)})
        writer.close()
        times = [r["t"] for r in read_segments(tmp_path) if r["type"] == "x"]
        # Everything older than ~20 sim-seconds behind the newest is gone.
        assert times[0] >= 199.0 - 20.0 - 10.0
        assert writer.segments_dropped > 0

    def test_footer_carries_counters(self, tmp_path):
        writer = RotatingTraceWriter(tmp_path)
        writer.write({"type": "x", "t": 0.0})
        writer.close(counters={"events": 1})
        footer = list(read_segments(tmp_path))[-1]
        assert footer["type"] == "trace.footer"
        assert footer["counters"] == {"events": 1}

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            RotatingTraceWriter(tmp_path, max_segment_bytes=0)
        with pytest.raises(ValueError):
            RotatingTraceWriter(tmp_path, max_segments=0)
        with pytest.raises(ValueError):
            RotatingTraceWriter(tmp_path, max_age_seconds=0.0)
        writer = RotatingTraceWriter(tmp_path)
        writer.close()
        with pytest.raises(ValueError):
            writer.write({"type": "x"})


class TestStreamingTracer:
    def test_events_spool_to_disk_not_memory(self, tmp_path):
        with StreamingTracer(tmp_path, max_segment_bytes=4096) as tracer:
            run_workload(tiny_spec(), tracer=tracer)
        assert tracer.events == []
        assert tracer.writer.records_written > 0

    def test_exact_replay_equals_live_fleet(self, tmp_path):
        tracer = StreamingTracer(tmp_path, max_segment_bytes=8192)
        result = run_workload(tiny_spec(), tracer=tracer)
        tracer.close()
        assert fleet_from_trace(read_segments(tmp_path)) == result.fleet

    def test_streaming_replay_equals_live_fleet(self, tmp_path):
        spec = tiny_spec(metrics_mode="streaming")
        tracer = StreamingTracer(tmp_path, max_segment_bytes=8192)
        result = run_workload(spec, tracer=tracer)
        tracer.close()
        replayed = fleet_from_trace(read_segments(tmp_path), exact_threshold=0)
        assert replayed == result.fleet

    def test_meta_lands_in_every_segment_header(self, tmp_path):
        tracer = StreamingTracer(tmp_path, max_segment_bytes=2048)
        run_workload(tiny_spec(), tracer=tracer)
        tracer.close()
        headers = [
            r for r in read_segments(tmp_path) if r["type"] == "trace.segment"
        ]
        assert len(headers) == len(segment_paths(tmp_path))
        for header in headers[1:]:
            # Meta is shared by reference, so even late segments carry it.
            assert header["meta"] == headers[0]["meta"]
        assert "num_clients" in headers[0]["meta"]

    def test_pruned_trace_replays_observable_suffix(self, tmp_path):
        spec = tiny_spec(num_clients=4, metrics_mode="streaming")
        tracer = StreamingTracer(
            tmp_path, max_segment_bytes=2048, max_segments=2
        )
        result = run_workload(spec, tracer=tracer)
        tracer.close()
        assert tracer.writer.segments_dropped > 0
        replayed = fleet_from_trace(read_segments(tmp_path), exact_threshold=0)
        # The suffix can only under-count, never invent queries.
        assert replayed["launched"] <= result.fleet["launched"]
        assert replayed["completed"] <= result.fleet["completed"]
        assert replayed["workload_schema"] == 2
