"""JSONL archive round-trips and Chrome trace_event export validity."""

from __future__ import annotations

import json

from repro.obs import (
    TRACE_SCHEMA,
    Tracer,
    events_only,
    read_jsonl,
    to_chrome,
    trace_counters,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.events import LINK_TRANSFER, MESSAGE_SEND, SPAN_EVENTS


def sample_tracer() -> Tracer:
    tracer = Tracer()
    tracer.meta["algorithm"] = "global"
    tracer.emit(MESSAGE_SEND, 0.5, uid=1, src_host="h0", dst_host="client",
                transport="wire", bytes=100.0)
    tracer.span(LINK_TRANSFER, 0.5, 2.0, src_host="h0", dst_host="client",
                wire_bytes=120.0, bandwidth=80.0, uid=1)
    tracer.incr("sim.events", 7)
    tracer.observe("link.transfer_seconds", 1.5)
    return tracer


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = sample_tracer()
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(tracer, path)
        records = read_jsonl(path)
        assert len(records) == count == len(tracer.events) + 2

        header, footer = records[0], records[-1]
        assert header["type"] == "trace.header"
        assert header["schema"] == TRACE_SCHEMA
        assert header["meta"]["algorithm"] == "global"
        assert footer["type"] == "trace.footer"
        assert footer["counters"]["sim.events"] == 7
        assert footer["histograms"]["link.transfer_seconds"]["count"] == 1

        assert events_only(records) == tracer.events
        assert trace_counters(records) == tracer.counters

    def test_events_survive_verbatim(self, tmp_path):
        tracer = sample_tracer()
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer, path)
        (send, transfer) = events_only(read_jsonl(path))
        assert send["type"] == MESSAGE_SEND
        assert transfer["dur"] == 1.5


class TestChrome:
    def test_written_file_is_strict_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(sample_tracer(), path)
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
        assert payload["displayTimeUnit"] == "ms"

    def test_phases_and_microseconds(self):
        payload = to_chrome(sample_tracer().events)
        real = [e for e in payload["traceEvents"] if e["ph"] != "M"]
        by_name = {e["name"]: e for e in real}

        instant = by_name[MESSAGE_SEND]
        assert instant["ph"] == "i"
        assert instant["s"] == "t"
        assert instant["ts"] == 0.5e6

        span = by_name[LINK_TRANSFER]
        assert span["ph"] == "X"
        assert span["dur"] == 1.5e6
        assert "dur" not in span["args"]
        for event in real:
            assert set(event["args"]) .isdisjoint({"type", "t", "dur"})
            assert event["ph"] == ("X" if event["name"] in SPAN_EVENTS else "i")

    def test_track_metadata_per_host(self):
        payload = to_chrome(sample_tracer().events)
        names = [
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "h0" in names

    def test_non_finite_values_stay_loadable(self, tmp_path):
        tracer = Tracer()
        tracer.emit("planner.search", 0.0, algorithm="download-all",
                    cost=float("inf"))
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, path)
        payload = json.loads(path.read_text())
        (event,) = [e for e in payload["traceEvents"] if e["ph"] != "M"]
        assert event["args"]["cost"] == "inf"
        assert "Infinity" not in path.read_text()
