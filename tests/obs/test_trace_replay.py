"""Replaying a recorded trace must reproduce the live run's metrics.

Every trace event is emitted at the exact code point where the matching
counter increments, so a seeded run's JSONL archive replays to a
:class:`RunMetrics` that matches the live one field-for-field — the
paper-facing aggregates and the event stream cannot drift apart.
"""

from __future__ import annotations

import math

import pytest

from repro.engine.config import Algorithm
from repro.engine.metrics import RunMetrics
from repro.engine.simulation import run_simulation
from repro.obs import Tracer, summarize_records, write_jsonl
from repro.obs.summary import format_trace_summary
from tests.conftest import tiny_spec


def _assert_summaries_match(live: RunMetrics, replayed: RunMetrics) -> None:
    live_summary, replay_summary = live.summary(), replayed.summary()
    for key, value in live_summary.items():
        other = replay_summary[key]
        if isinstance(value, float) and math.isnan(value):
            assert math.isnan(other), key
        else:
            assert other == value, key


@pytest.mark.parametrize("algorithm", list(Algorithm), ids=lambda a: a.value)
def test_replay_matches_live_metrics(algorithm, tmp_path):
    tracer = Tracer()
    live = run_simulation(tiny_spec(algorithm=algorithm, images=5), tracer=tracer)
    path = tmp_path / "run.jsonl"
    write_jsonl(tracer, path)

    replayed = RunMetrics.from_trace(str(path))
    _assert_summaries_match(live, replayed)
    assert replayed.arrival_times == live.arrival_times
    assert replayed.relocation_events == live.relocation_events


def test_from_trace_accepts_records():
    tracer = Tracer()
    live = run_simulation(tiny_spec(algorithm=Algorithm.GLOBAL, images=4),
                          tracer=tracer)
    replayed = RunMetrics.from_trace(tracer.events)
    _assert_summaries_match(live, replayed)


def test_trace_summary_consistent_with_metrics():
    tracer = Tracer()
    live = run_simulation(tiny_spec(algorithm=Algorithm.GLOBAL, images=4),
                          tracer=tracer)
    summary = summarize_records(tracer.events)
    assert summary.arrivals == len(live.arrival_times)
    assert summary.completion_time == live.completion_time
    assert len(summary.relocations) == live.relocations
    assert summary.barrier_stall_seconds == pytest.approx(
        live.barrier_stall_seconds
    )
    wire_bytes = sum(v[1] for v in summary.link_traffic.values())
    assert wire_bytes == pytest.approx(live.bytes_on_wire)


class TestEventHistogram:
    def test_counts_every_non_frame_record(self):
        xfer = {"src_host": "a", "dst_host": "b", "wire_bytes": 10}
        records = [
            {"type": "trace.header", "meta": {}},
            {"type": "link.transfer", "t": 1.0, **xfer},
            {"type": "link.transfer", "t": 2.0, **xfer},
            {"type": "planner.run", "t": 3.0},
            {"type": "trace.footer", "counters": {}},
        ]
        summary = summarize_records(records)
        assert summary.event_histogram == {
            "link.transfer": 2,
            "planner.run": 1,
        }

    def test_histogram_totals_match_stream(self):
        tracer = Tracer()
        run_simulation(tiny_spec(algorithm=Algorithm.GLOBAL, images=4),
                       tracer=tracer)
        summary = summarize_records(tracer.events)
        framed = [e for e in tracer.events
                  if not e.get("type", "").startswith("trace.")]
        assert sum(summary.event_histogram.values()) == len(framed)
        assert summary.event_histogram["link.transfer"] == sum(
            v[0] for v in summary.link_traffic.values()
        )

    def test_report_renders_histogram_and_kernel_counters(self):
        xfer = {"src_host": "a", "dst_host": "b", "wire_bytes": 10}
        summary = summarize_records([
            {"type": "link.transfer", "t": 1.0, **xfer},
            {"type": "link.transfer", "t": 2.0, **xfer},
            {"type": "arrival", "t": 3.0},
            {
                "type": "trace.footer",
                "counters": {
                    "sim.events": 42,
                    "sim.events.Callback": 30,
                    "sim.events.Timeout": 12,
                },
            },
        ])
        report = format_trace_summary(summary)
        assert "trace event histogram (3 records, 2 types):" in report
        # Sorted by descending count.
        lines = report.splitlines()
        histogram_at = lines.index("trace event histogram (3 records, 2 types):")
        assert "link.transfer" in lines[histogram_at + 1]
        assert "arrival" in lines[histogram_at + 2]
        assert "kernel events processed: 42" in report
        assert any("Callback" in line and "30" in line for line in lines)

    def test_report_caps_histogram_rows(self):
        records = [{"type": f"kind.{i:03d}", "t": float(i)} for i in range(30)]
        report = format_trace_summary(summarize_records(records), max_rows=5)
        assert "... 25 more types" in report
