"""Replaying a recorded trace must reproduce the live run's metrics.

Every trace event is emitted at the exact code point where the matching
counter increments, so a seeded run's JSONL archive replays to a
:class:`RunMetrics` that matches the live one field-for-field — the
paper-facing aggregates and the event stream cannot drift apart.
"""

from __future__ import annotations

import math

import pytest

from repro.engine.config import Algorithm
from repro.engine.metrics import RunMetrics
from repro.engine.simulation import run_simulation
from repro.obs import Tracer, summarize_records, write_jsonl
from tests.conftest import tiny_spec


def _assert_summaries_match(live: RunMetrics, replayed: RunMetrics) -> None:
    live_summary, replay_summary = live.summary(), replayed.summary()
    for key, value in live_summary.items():
        other = replay_summary[key]
        if isinstance(value, float) and math.isnan(value):
            assert math.isnan(other), key
        else:
            assert other == value, key


@pytest.mark.parametrize("algorithm", list(Algorithm), ids=lambda a: a.value)
def test_replay_matches_live_metrics(algorithm, tmp_path):
    tracer = Tracer()
    live = run_simulation(tiny_spec(algorithm=algorithm, images=5), tracer=tracer)
    path = tmp_path / "run.jsonl"
    write_jsonl(tracer, path)

    replayed = RunMetrics.from_trace(str(path))
    _assert_summaries_match(live, replayed)
    assert replayed.arrival_times == live.arrival_times
    assert replayed.relocation_events == live.relocation_events


def test_from_trace_accepts_records():
    tracer = Tracer()
    live = run_simulation(tiny_spec(algorithm=Algorithm.GLOBAL, images=4),
                          tracer=tracer)
    replayed = RunMetrics.from_trace(tracer.events)
    _assert_summaries_match(live, replayed)


def test_trace_summary_consistent_with_metrics():
    tracer = Tracer()
    live = run_simulation(tiny_spec(algorithm=Algorithm.GLOBAL, images=4),
                          tracer=tracer)
    summary = summarize_records(tracer.events)
    assert summary.arrivals == len(live.arrival_times)
    assert summary.completion_time == live.completion_time
    assert len(summary.relocations) == live.relocations
    assert summary.barrier_stall_seconds == pytest.approx(
        live.barrier_stall_seconds
    )
    wire_bytes = sum(v[1] for v in summary.link_traffic.values())
    assert wire_bytes == pytest.approx(live.bytes_on_wire)
