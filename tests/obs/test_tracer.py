"""The tracer event bus and its zero-cost-when-disabled contract."""

from __future__ import annotations

from repro.engine.config import Algorithm
from repro.engine.simulation import build_simulation, run_simulation
from repro.obs import NULL_TRACER, NullTracer, Tracer, ensure_tracer
from repro.obs.events import EVENT_KINDS, MESSAGE_SEND, SPAN_EVENTS, is_span
from tests.conftest import tiny_spec


class TestTracer:
    def test_emit_records_ordered_events(self):
        tracer = Tracer()
        tracer.emit("a.b", 1.0, x=1)
        tracer.emit("c.d", 2.0)
        assert [e["type"] for e in tracer.events] == ["a.b", "c.d"]
        assert tracer.events[0] == {"type": "a.b", "t": 1.0, "x": 1}

    def test_span_stores_duration(self):
        tracer = Tracer()
        tracer.span("link.transfer", 1.0, 3.5, src_host="a")
        (event,) = tracer.events
        assert event["t"] == 1.0
        assert event["dur"] == 2.5
        assert event["src_host"] == "a"

    def test_counters_and_histograms(self):
        tracer = Tracer()
        tracer.incr("n")
        tracer.incr("n", 2)
        for value in (1.0, 2.0, 3.0, 4.0):
            tracer.observe("lat", value)
        assert tracer.counters["n"] == 3
        summary = tracer.histogram_summary()["lat"]
        assert summary["count"] == 4
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == 2.5

    def test_kernel_hook_counts_event_classes(self):
        tracer = Tracer()

        class FakeEvent:
            pass

        tracer.kernel_hook(0.0, FakeEvent())
        tracer.kernel_hook(1.0, FakeEvent())
        assert tracer.counters["sim.events"] == 2
        assert tracer.counters["sim.events.FakeEvent"] == 2


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.emit(MESSAGE_SEND, 0.0, x=1)
        tracer.span("link.transfer", 0.0, 1.0)
        tracer.incr("n")
        tracer.observe("lat", 1.0)
        tracer.kernel_hook(0.0, object())

    def test_ensure_tracer(self):
        assert ensure_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert ensure_tracer(tracer) is tracer


class TestZeroCostWhenDisabled:
    """Untraced runs must not install any per-event hook."""

    def test_untraced_build_leaves_kernel_hook_unset(self):
        env, _ = build_simulation(tiny_spec(images=2))
        assert env.trace_hook is None

    def test_traced_build_installs_kernel_hook(self):
        tracer = Tracer()
        env, _ = build_simulation(tiny_spec(images=2), tracer=tracer)
        assert env.trace_hook is not None

    def test_untraced_run_unchanged(self):
        spec = tiny_spec(algorithm=Algorithm.GLOBAL, images=4)
        baseline = run_simulation(spec)
        traced = run_simulation(spec, tracer=Tracer())
        assert traced.summary() == baseline.summary()


class TestEventTaxonomy:
    def test_span_classification(self):
        assert is_span("link.transfer")
        assert is_span("barrier.round")
        assert not is_span(MESSAGE_SEND)
        assert SPAN_EVENTS == frozenset(
            name for name, kind in EVENT_KINDS.items() if kind == "span"
        )
