"""End-to-end resilience: dormant-plan bit-identity, chaos survival,
trace replay under faults, relocation aborts, transfer abandonment."""

import dataclasses
import math

import pytest

from repro.engine.config import Algorithm
from repro.engine.metrics import RunMetrics
from repro.engine.simulation import run_simulation
from repro.faults import (
    FaultPlan,
    HostCrash,
    LinkLoss,
    LinkOutage,
    RetryPolicy,
    reference_chaos_plan,
)
from repro.obs import Tracer
from repro.obs.events import NET_ABANDON, RELOCATION_ABORT
from repro.obs.summary import summarize_records
from tests.conftest import tiny_spec


def _chaos_plan(spec):
    return reference_chaos_plan(spec.all_hosts, seed=1)


def _normalized_events(tracer: Tracer) -> list:
    """Trace events with per-run-relative message uids.

    Message uids come from a process-global counter, so two otherwise
    identical runs in one process differ by a constant uid offset.  Rank
    uids within the run to compare streams structurally.
    """
    uids = sorted(
        {e["uid"] for e in tracer.events if "uid" in e}
    )
    rank = {uid: i for i, uid in enumerate(uids)}
    normalized = []
    for event in tracer.events:
        if "uid" in event:
            event = {**event, "uid": rank[event["uid"]]}
        normalized.append(event)
    return normalized


def _assert_summaries_match(live: RunMetrics, replayed: RunMetrics) -> None:
    live_summary, replay_summary = live.summary(), replayed.summary()
    for key, value in live_summary.items():
        other = replay_summary[key]
        if isinstance(value, float) and math.isnan(value):
            assert math.isnan(other), key
        else:
            assert other == value, key


class TestDormantPlanBitIdentity:
    """``faults=FaultPlan()`` must be indistinguishable from ``faults=None``:
    same metrics, same trace events, same kernel counters."""

    @pytest.mark.parametrize(
        "algorithm", list(Algorithm), ids=lambda a: a.value
    )
    def test_empty_plan_bit_identical(self, algorithm):
        baseline_tracer, empty_tracer = Tracer(), Tracer()
        baseline = run_simulation(
            tiny_spec(algorithm=algorithm, images=5), tracer=baseline_tracer
        )
        empty = run_simulation(
            tiny_spec(algorithm=algorithm, images=5, faults=FaultPlan()),
            tracer=empty_tracer,
        )
        assert empty.summary() == baseline.summary()
        assert empty.arrival_times == baseline.arrival_times
        assert _normalized_events(empty_tracer) == _normalized_events(
            baseline_tracer
        )
        assert empty_tracer.counters == baseline_tracer.counters

    def test_resilience_counters_zero_without_faults(self):
        metrics = run_simulation(tiny_spec(images=4))
        assert metrics.retransmissions == 0
        assert metrics.dropped_bytes == 0.0
        assert metrics.abandoned_messages == 0
        assert metrics.aborted_relocations == 0
        assert metrics.host_downtime_seconds == 0.0
        assert metrics.probe_timeouts == 0
        assert metrics.planner_fallbacks == 0


class TestChaosSurvival:
    """Every algorithm finishes every query under the reference chaos plan
    (no unhandled EventFailed, no truncation) and reports resilience."""

    @pytest.mark.parametrize(
        "algorithm", list(Algorithm), ids=lambda a: a.value
    )
    def test_all_queries_complete(self, algorithm):
        spec = tiny_spec(algorithm=algorithm, images=12)
        spec = dataclasses.replace(spec, faults=_chaos_plan(spec))
        metrics = run_simulation(spec)
        assert not metrics.truncated
        assert len(metrics.arrival_times) == 12
        assert metrics.retransmissions > 0
        assert metrics.dropped_bytes > 0

    def test_downtime_accounted_when_window_elapses(self):
        # download-all is the slowest policy here; with enough images its
        # run outlives the chaos plan's 600..840 s crash window.
        spec = tiny_spec(algorithm=Algorithm.DOWNLOAD_ALL, images=40)
        spec = dataclasses.replace(spec, faults=_chaos_plan(spec))
        metrics = run_simulation(spec)
        assert metrics.host_downtime_seconds == pytest.approx(240.0)


class TestFaultedTraceReplay:
    @pytest.mark.parametrize(
        "algorithm", [Algorithm.DOWNLOAD_ALL, Algorithm.GLOBAL],
        ids=lambda a: a.value,
    )
    def test_replay_matches_live(self, algorithm):
        spec = tiny_spec(algorithm=algorithm, images=12)
        spec = dataclasses.replace(spec, faults=_chaos_plan(spec))
        tracer = Tracer()
        live = run_simulation(spec, tracer=tracer)
        replayed = RunMetrics.from_trace(tracer.events)
        _assert_summaries_match(live, replayed)
        assert replayed.arrival_times == live.arrival_times

    def test_trace_summary_reports_resilience(self):
        spec = tiny_spec(algorithm=Algorithm.DOWNLOAD_ALL, images=12)
        spec = dataclasses.replace(spec, faults=_chaos_plan(spec))
        tracer = Tracer()
        live = run_simulation(spec, tracer=tracer)
        summary = summarize_records(tracer.events)
        assert summary.retransmissions == live.retransmissions
        assert summary.dropped_bytes == pytest.approx(live.dropped_bytes)
        assert summary.host_downtime_seconds == pytest.approx(
            live.host_downtime_seconds
        )
        assert summary.fault_timeline  # boundaries made it into the trace


class TestRelocationAbort:
    def test_crashed_destination_aborts_moves(self):
        # Crash every non-client server host for almost the whole run: any
        # relocation the global controller attempts must roll back.
        spec = tiny_spec(algorithm=Algorithm.GLOBAL, images=40)
        crashes = tuple(
            HostCrash(h, 1.0, 50000.0)
            for h in spec.server_hosts[1:]
        )
        plan = FaultPlan(host_crashes=crashes)
        spec = dataclasses.replace(spec, faults=plan)
        tracer = Tracer()
        metrics = run_simulation(spec, tracer=tracer)
        aborts = [e for e in tracer.events if e["type"] == RELOCATION_ABORT]
        assert metrics.aborted_relocations == len(aborts)
        if aborts:  # every abort names a rollback reason
            assert all(
                e["reason"] in (
                    "destination-down", "timeout", "transfer-abandoned"
                )
                for e in aborts
            )


class TestAbandonment:
    def test_bounded_retries_abandon_and_recover(self):
        # 100% loss on a leaf link with a tiny retry budget: the transfers
        # on that pair are abandoned, the waiters see TransferAbandoned,
        # and the run must still terminate (truncated or not) rather than
        # crash with EventFailed.
        spec = tiny_spec(algorithm=Algorithm.DOWNLOAD_ALL, images=3)
        plan = FaultPlan(
            link_loss=(LinkLoss(spec.server_hosts[0], "client", 1.0),),
            retry=RetryPolicy(timeout=5.0, max_attempts=2),
        )
        spec = dataclasses.replace(
            spec, faults=plan, max_sim_time=20000.0
        )
        tracer = Tracer()
        metrics = run_simulation(spec, tracer=tracer)
        assert metrics.abandoned_messages > 0
        assert any(e["type"] == NET_ABANDON for e in tracer.events)

    def test_outage_retries_until_recovery(self):
        # An outage shorter than the retry horizon: the transfer retries
        # through the window and completes; nothing is abandoned.
        spec = tiny_spec(algorithm=Algorithm.DOWNLOAD_ALL, images=3)
        plan = FaultPlan(
            link_outages=(
                LinkOutage(spec.server_hosts[0], "client", 0.0, 60.0),
            ),
        )
        spec = dataclasses.replace(spec, faults=plan)
        metrics = run_simulation(spec)
        assert not metrics.truncated
        assert len(metrics.arrival_times) == 3
        assert metrics.retransmissions > 0
        assert metrics.abandoned_messages == 0
