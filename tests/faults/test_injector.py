"""FaultInjector: window queries, loss streams, the fault timeline."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    HostCrash,
    LinkLoss,
    LinkOutage,
    ProbeBlackout,
)
from repro.obs import Tracer
from repro.obs.events import (
    FAULT_HOST_DOWN,
    FAULT_HOST_UP,
    FAULT_LINK_DOWN,
    FAULT_LINK_UP,
)


def make_plan(**kwargs):
    defaults = dict(
        link_outages=(LinkOutage("a", "b", 10.0, 20.0),),
        host_crashes=(HostCrash("c", 15.0, 40.0),),
        probe_blackouts=(ProbeBlackout(5.0, 8.0),),
    )
    defaults.update(kwargs)
    return FaultPlan(**defaults)


class TestQueries:
    def test_link_blocked_windows(self, env):
        injector = FaultInjector(make_plan(), env)
        assert injector.link_blocked("a", "b", 9.9) is None
        assert injector.link_blocked("a", "b", 10.0) == "outage"
        assert injector.link_blocked("b", "a", 15.0) == "outage"  # symmetric
        assert injector.link_blocked("a", "b", 20.0) is None  # half-open

    def test_host_down_blocks_every_link(self, env):
        injector = FaultInjector(make_plan(), env)
        assert injector.host_down("c", 20.0)
        assert not injector.host_down("c", 40.0)
        assert injector.link_blocked("a", "c", 20.0) == "host-down"
        assert injector.link_blocked("c", "b", 20.0) == "host-down"

    def test_host_down_outranks_outage(self, env):
        plan = make_plan(
            link_outages=(LinkOutage("a", "c", 10.0, 30.0),),
        )
        injector = FaultInjector(plan, env)
        assert injector.link_blocked("a", "c", 20.0) == "host-down"

    def test_probe_blackout(self, env):
        injector = FaultInjector(make_plan(), env)
        assert not injector.probe_blackout(4.9)
        assert injector.probe_blackout(5.0)
        assert not injector.probe_blackout(8.0)

    def test_has_loss(self, env):
        plan = make_plan(link_loss=(LinkLoss("a", "b", 0.5),))
        injector = FaultInjector(plan, env)
        assert injector.has_loss("a", "b")
        assert injector.has_loss("b", "a")  # canonical pair
        assert not injector.has_loss("a", "c")

    def test_zero_probability_is_not_loss(self, env):
        plan = make_plan(link_loss=(LinkLoss("a", "b", 0.0),))
        assert not FaultInjector(plan, env).has_loss("a", "b")


class TestNextBoundary:
    # make_plan: outage a-b [10, 20), crash c [15, 40).

    def test_finds_outage_edges(self, env):
        injector = FaultInjector(make_plan(), env)
        assert injector.next_boundary(("a", "b"), (), 0.0, 100.0) == 10.0
        assert injector.next_boundary(("a", "b"), (), 12.0, 100.0) == 20.0

    def test_finds_crash_edges(self, env):
        injector = FaultInjector(make_plan(), env)
        assert injector.next_boundary(("a", "c"), ("a", "c"), 0.0, 100.0) == 15.0
        assert injector.next_boundary(("a", "c"), ("a", "c"), 16.0, 100.0) == 40.0

    def test_earliest_across_outage_and_crash(self, env):
        injector = FaultInjector(make_plan(), env)
        # Outage start 10 beats crash start 15 when both windows apply.
        assert injector.next_boundary(("a", "b"), ("c",), 0.0, 100.0) == 10.0

    def test_interval_is_open(self, env):
        injector = FaultInjector(make_plan(), env)
        # Boundaries at exactly t0 or t1 do not count: a transfer that
        # starts at a window edge sees constant fault state.
        assert injector.next_boundary(("a", "b"), (), 10.0, 20.0) is None
        assert injector.next_boundary(("a", "b"), (), 5.0, 10.0) is None

    def test_clear_window_returns_none(self, env):
        injector = FaultInjector(make_plan(), env)
        assert injector.next_boundary(("a", "b"), ("a", "b"), 20.0, 100.0) is None
        assert injector.next_boundary(("x", "y"), ("x", "y"), 0.0, 1e9) is None


class TestLossStreams:
    PLAN = FaultPlan(seed=11, link_loss=(LinkLoss("a", "b", 0.5),))

    def test_stream_deterministic(self, env):
        draws = [
            FaultInjector(self.PLAN, env).drop_message("a", "b")
            for _ in range(2)
        ]
        # Fresh injectors replay the identical stream.
        seq1 = [FaultInjector(self.PLAN, env).drop_message("a", "b")
                for _ in range(1)]
        injector = FaultInjector(self.PLAN, env)
        seq = [injector.drop_message("a", "b") for _ in range(64)]
        again = FaultInjector(self.PLAN, env)
        assert seq == [again.drop_message("a", "b") for _ in range(64)]
        assert draws[0] == draws[1] == seq1[0] == seq[0]

    def test_stream_independent_of_other_pairs(self, env):
        plan = FaultPlan(
            seed=11,
            link_loss=(LinkLoss("a", "b", 0.5), LinkLoss("a", "c", 0.5)),
        )
        lone = FaultInjector(self.PLAN, env)
        expected = [lone.drop_message("a", "b") for _ in range(32)]
        mixed = FaultInjector(plan, env)
        observed = []
        for _ in range(32):
            observed.append(mixed.drop_message("a", "b"))
            mixed.drop_message("a", "c")  # interleaved other-pair traffic
        assert observed == expected

    def test_direction_does_not_matter(self, env):
        fwd = FaultInjector(self.PLAN, env)
        rev = FaultInjector(self.PLAN, env)
        assert [fwd.drop_message("a", "b") for _ in range(32)] == [
            rev.drop_message("b", "a") for _ in range(32)
        ]

    def test_zero_probability_never_draws(self, env):
        plan = FaultPlan(link_loss=(LinkLoss("a", "b", 0.0),))
        injector = FaultInjector(plan, env)
        assert not injector.drop_message("a", "b")
        assert not injector._loss_rngs  # no RNG was even created


class TestTimeline:
    def test_emits_boundaries_and_accumulates_downtime(self, env):
        tracer = Tracer()
        injector = FaultInjector(make_plan(), env, tracer=tracer)
        injector.start()
        env.run(until=100.0)
        kinds = [e["type"] for e in tracer.events
                 if e["type"].startswith("fault.")]
        assert kinds == [
            FAULT_LINK_DOWN, FAULT_HOST_DOWN, FAULT_LINK_UP, FAULT_HOST_UP,
        ]
        assert injector.total_downtime == pytest.approx(25.0)
        assert injector.host_downtime == {"c": pytest.approx(25.0)}

    def test_unreached_recovery_not_counted(self, env):
        injector = FaultInjector(make_plan(), env)
        injector.start()
        env.run(until=30.0)  # crash ends at 40: recovery never happened
        assert injector.total_downtime == 0.0

    def test_no_boundaries_no_process(self, env):
        plan = FaultPlan(link_loss=(LinkLoss("a", "b", 0.1),))
        injector = FaultInjector(plan, env)
        injector.start()
        assert env.peek() == float("inf")  # empty calendar
