"""FaultPlan: validation, serialization, the reference chaos plan."""

import pytest

from repro.faults import (
    FaultPlan,
    HostCrash,
    LinkLoss,
    LinkOutage,
    ProbeBlackout,
    RetryPolicy,
    reference_chaos_plan,
)


class TestWindows:
    def test_outage_needs_distinct_hosts(self):
        with pytest.raises(ValueError, match="distinct"):
            LinkOutage("a", "a", 0.0, 10.0)

    def test_outage_rejects_empty_window(self):
        with pytest.raises(ValueError, match="empty"):
            LinkOutage("a", "b", 10.0, 10.0)

    def test_outage_rejects_negative_start(self):
        with pytest.raises(ValueError, match="negative"):
            LinkOutage("a", "b", -1.0, 10.0)

    def test_outage_pair_is_canonical(self):
        assert LinkOutage("z", "a", 0.0, 1.0).pair == ("a", "z")

    def test_loss_probability_bounds(self):
        LinkLoss("a", "b", 0.0)
        LinkLoss("a", "b", 1.0)
        with pytest.raises(ValueError, match="probability"):
            LinkLoss("a", "b", 1.5)

    def test_crash_rejects_inverted_window(self):
        with pytest.raises(ValueError, match="empty"):
            HostCrash("a", 20.0, 10.0)

    def test_blackout_rejects_negative_start(self):
        with pytest.raises(ValueError, match="negative"):
            ProbeBlackout(-5.0, 5.0)


class TestRetryPolicy:
    def test_backoff_delay_grows_and_caps(self):
        policy = RetryPolicy(timeout=10.0, backoff=2.0, max_backoff=35.0)
        assert policy.backoff_delay(1) == 10.0
        assert policy.backoff_delay(2) == 20.0
        assert policy.backoff_delay(3) == 35.0  # capped
        assert policy.backoff_delay(10) == 35.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=30.0, max_backoff=10.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty()
        assert plan.hosts_mentioned() == set()
        plan.validate_hosts(["a"])  # nothing to complain about

    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(link_outages=[LinkOutage("a", "b", 0.0, 1.0)])
        assert isinstance(plan.link_outages, tuple)
        assert not plan.is_empty()

    def test_duplicate_loss_pair_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(
                link_loss=(LinkLoss("a", "b", 0.1), LinkLoss("b", "a", 0.2))
            )

    def test_validate_hosts_rejects_unknown(self):
        plan = FaultPlan(host_crashes=(HostCrash("ghost", 0.0, 1.0),))
        with pytest.raises(ValueError, match="ghost"):
            plan.validate_hosts(["a", "b"])

    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan(
            seed=7,
            link_outages=(LinkOutage("a", "b", 10.0, 20.0),),
            link_loss=(LinkLoss("a", "c", 0.25),),
            host_crashes=(HostCrash("b", 5.0, 9.0),),
            probe_blackouts=(ProbeBlackout(1.0, 2.0),),
            retry=RetryPolicy(timeout=5.0, max_attempts=3),
        )
        path = tmp_path / "plan.json"
        plan.to_json(path)
        assert FaultPlan.from_json(path) == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"seed": 0, "typo_key": []})

    def test_from_dict_defaults(self):
        plan = FaultPlan.from_dict({})
        assert plan == FaultPlan()


class TestReferenceChaosPlan:
    def test_deterministic_and_complete(self):
        hosts = ["h0", "h1", "h2", "client"]
        plan = reference_chaos_plan(hosts, seed=3)
        assert plan == reference_chaos_plan(hosts, seed=3)
        assert not plan.is_empty()
        assert plan.link_outages
        assert plan.host_crashes
        assert plan.probe_blackouts
        # Loss on every pair of the complete graph.
        assert len(plan.link_loss) == len(hosts) * (len(hosts) - 1) // 2
        plan.validate_hosts(hosts)

    def test_needs_two_hosts(self):
        with pytest.raises(ValueError, match="two hosts"):
            reference_chaos_plan(["only"])
