"""BandwidthTrace semantics: validation, queries, integration."""

import numpy as np
import pytest

from repro.traces import BandwidthTrace, constant_trace
from repro.traces.trace import MIN_RATE, merge_min


class TestConstruction:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTrace([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTrace([0, 1], [10])

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTrace([0, 1, 1], [1, 2, 3])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTrace([0, float("nan")], [1, 2])
        with pytest.raises(ValueError):
            BandwidthTrace([0, 1], [1, float("inf")])

    def test_rates_clamped_to_min(self):
        trace = BandwidthTrace([0, 10], [0.0, -5.0])
        assert trace.rates.min() >= MIN_RATE

    def test_constant_trace(self):
        trace = constant_trace(100.0)
        assert trace.rate_at(0) == 100.0
        assert trace.rate_at(1e9) == 100.0

    def test_constant_trace_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            constant_trace(0)


class TestQueries:
    def trace(self):
        return BandwidthTrace([0, 10, 20], [100, 50, 200], name="t")

    def test_rate_at_steps(self):
        t = self.trace()
        assert t.rate_at(0) == 100
        assert t.rate_at(9.99) == 100
        assert t.rate_at(10) == 50
        assert t.rate_at(19.99) == 50
        assert t.rate_at(25) == 200

    def test_rate_before_start_extends_first(self):
        assert self.trace().rate_at(-5) == 100

    def test_duration_and_bounds(self):
        t = self.trace()
        assert t.start == 0
        assert t.end == 20
        assert t.duration == 20
        assert len(t) == 3

    def test_mean_rate_time_weighted(self):
        t = self.trace()
        # [0,10): 100, [10,20): 50  => mean over [0,20] = 75
        assert t.mean_rate(0, 20) == pytest.approx(75.0)

    def test_mean_rate_degenerate_interval(self):
        t = self.trace()
        assert t.mean_rate(5, 5) == 100.0

    def test_bytes_between(self):
        t = self.trace()
        assert t.bytes_between(0, 10) == pytest.approx(1000)
        assert t.bytes_between(5, 15) == pytest.approx(500 + 250)
        assert t.bytes_between(15, 25) == pytest.approx(250 + 1000)

    def test_bytes_between_rejects_reversed(self):
        with pytest.raises(ValueError):
            self.trace().bytes_between(10, 5)


class TestTransferTime:
    def test_simple_constant(self):
        t = constant_trace(100.0)
        assert t.transfer_time(1000, 0) == pytest.approx(10.0)

    def test_zero_bytes_is_instant(self):
        assert constant_trace(10).transfer_time(0, 123) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            constant_trace(10).transfer_time(-1, 0)

    def test_straddles_rate_change(self):
        t = BandwidthTrace([0, 10], [100, 50])
        # 1000 bytes in first 10s at 100 B/s, then 500 more at 50 B/s.
        assert t.transfer_time(1500, 0) == pytest.approx(20.0)

    def test_start_mid_segment(self):
        t = BandwidthTrace([0, 10], [100, 50])
        assert t.transfer_time(500, 5) == pytest.approx(5.0)

    def test_extends_beyond_trace_end(self):
        t = BandwidthTrace([0, 10], [100, 50])
        # From t=10: everything at 50 B/s.
        assert t.transfer_time(5000, 10) == pytest.approx(100.0)

    def test_start_before_trace(self):
        t = BandwidthTrace([10, 20], [100, 50])
        # First rate extends backwards.
        assert t.transfer_time(500, 0) == pytest.approx(5.0)

    def test_consistency_with_bytes_between(self):
        t = BandwidthTrace([0, 7, 13, 40], [120, 30, 220, 80])
        for nbytes in (1, 500, 5000, 50000):
            for start in (0.0, 3.3, 12.0, 50.0):
                duration = t.transfer_time(nbytes, start)
                assert t.bytes_between(start, start + duration) == pytest.approx(
                    nbytes, rel=1e-9
                )


class TestTransforms:
    def test_shifted(self):
        t = BandwidthTrace([0, 10], [1, 2]).shifted(100)
        assert t.start == 100
        assert t.rate_at(105) == 1

    def test_rebased(self):
        t = BandwidthTrace([50, 60], [1, 2]).rebased(0)
        assert t.start == 0
        assert t.rate_at(5) == 1

    def test_scaled(self):
        t = BandwidthTrace([0, 10], [10, 20]).scaled(3)
        assert t.rate_at(0) == 30
        with pytest.raises(ValueError):
            t.scaled(0)

    def test_segment_preserves_rates(self):
        t = BandwidthTrace([0, 10, 20], [100, 50, 200])
        seg = t.segment(5, 15)
        assert seg.start == 5
        assert seg.end == 15
        assert seg.rate_at(6) == 100
        assert seg.rate_at(12) == 50

    def test_segment_rejects_empty(self):
        t = constant_trace(10)
        with pytest.raises(ValueError):
            t.segment(5, 5)

    def test_equality(self):
        a = BandwidthTrace([0, 1], [2, 3])
        b = BandwidthTrace([0, 1], [2, 3])
        c = BandwidthTrace([0, 1], [2, 4])
        assert a == b
        assert a != c


class TestMergeMin:
    def test_pointwise_minimum(self):
        a = BandwidthTrace([0, 10], [100, 10])
        b = BandwidthTrace([0, 5], [50, 200])
        merged = merge_min([a, b])
        assert merged.rate_at(0) == 50
        assert merged.rate_at(6) == 100
        assert merged.rate_at(12) == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_min([])


class TestTransferTimePrefixSum:
    """The prefix-sum inversion must agree with the reference walk."""

    def test_matches_reference_scan(self):
        rng = np.random.default_rng(11)
        times = np.cumsum(rng.uniform(1.0, 60.0, size=200))
        rates = rng.lognormal(np.log(30 * 1024), 0.8, size=200)
        trace = BandwidthTrace(times, rates)
        for _ in range(300):
            nbytes = float(rng.uniform(0, 5e8))
            t0 = float(rng.uniform(times[0] - 1e3, times[-1] + 1e3))
            fast = trace.transfer_time(nbytes, t0)
            slow = trace._transfer_time_scan(nbytes, t0)
            assert fast >= 0
            assert fast == pytest.approx(slow, rel=1e-9, abs=1e-6)

    def test_spanning_many_segments(self):
        # 1 byte/s for 1000 one-second segments, then 1000 bytes/s.
        n = 1001
        trace = BandwidthTrace(np.arange(n, dtype=float), [1.0] * (n - 1) + [1000.0])
        # 1500 bytes: 1000 s through the slow segments + 0.5 s at the tail.
        assert trace.transfer_time(1500.0, 0.0) == pytest.approx(1000.5)

    def test_single_segment_stays_exact(self):
        trace = BandwidthTrace([0.0, 1e9], [8.0, 8.0])
        # A tiny transfer deep inside a huge segment: exact division, no
        # prefix-sum cancellation.
        assert trace.transfer_time(4.0, 12345.6789) == pytest.approx(0.5)
