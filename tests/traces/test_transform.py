"""Trace transformations: resample, clip, stitch, import."""

import numpy as np
import pytest

from repro.traces import BandwidthTrace, constant_trace
from repro.traces.transform import (
    clip_rates,
    load_trace_measurements,
    resample,
    stitch,
)


class TestResample:
    def test_preserves_bucket_means(self):
        trace = BandwidthTrace([0, 10, 20, 30], [100, 200, 400, 400])
        regular = resample(trace, period=20.0)
        assert regular.rate_at(0) == pytest.approx(150.0)  # mean of 100,200
        assert regular.rate_at(25) == pytest.approx(400.0)

    def test_preserves_total_bytes_approximately(self):
        rng = np.random.default_rng(0)
        times = np.cumsum(rng.uniform(1, 20, size=50))
        rates = rng.uniform(10, 1000, size=50)
        trace = BandwidthTrace(times, rates)
        regular = resample(trace, period=7.0)
        original = trace.bytes_between(trace.start, trace.end)
        regularized = regular.bytes_between(trace.start, trace.end)
        assert regularized == pytest.approx(original, rel=0.15)

    def test_single_sample_passthrough(self):
        trace = constant_trace(100.0)
        assert resample(trace, 10.0).rate_at(0) == 100.0

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            resample(constant_trace(1.0), 0.0)


class TestClip:
    def test_bounds_applied(self):
        trace = BandwidthTrace([0, 1, 2], [5.0, 500.0, 50.0])
        clipped = clip_rates(trace, lo=10.0, hi=100.0)
        assert list(clipped.rates) == [10.0, 100.0, 50.0]

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            clip_rates(constant_trace(1.0), lo=5.0, hi=1.0)


class TestStitch:
    def test_concatenates_in_time(self):
        day1 = BandwidthTrace([0, 10], [100, 200], name="pair")
        day2 = BandwidthTrace([0, 10], [300, 400])
        joined = stitch([day1, day2])
        assert joined.rate_at(5) == 100
        assert joined.rate_at(12) == 300
        assert joined.end == 20
        assert joined.name == "pair"

    def test_gap_inserted(self):
        day1 = BandwidthTrace([0, 10], [100, 200])
        day2 = BandwidthTrace([0, 10], [300, 400])
        joined = stitch([day1, day2], gap=5.0)
        assert joined.rate_at(12) == 200  # still day1's final rate
        assert joined.rate_at(16) == 300

    def test_validation(self):
        with pytest.raises(ValueError):
            stitch([])
        with pytest.raises(ValueError):
            stitch([constant_trace(1.0)], gap=-1)


class TestLoadMeasurements:
    def write(self, tmp_path, text):
        path = tmp_path / "log.txt"
        path.write_text(text)
        return path

    def test_basic_parse(self, tmp_path):
        path = self.write(tmp_path, "0 100\n30 250.5\n60 90\n")
        trace = load_trace_measurements(path)
        assert list(trace.times) == [0.0, 30.0, 60.0]
        assert trace.rate_at(30) == 250.5

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = self.write(
            tmp_path, "# sensor log\n\n0 100  # first\n30 200\n"
        )
        trace = load_trace_measurements(path)
        assert len(trace) == 2

    def test_unit_scale(self, tmp_path):
        path = self.write(tmp_path, "0 8\n")  # 8 megabits/s
        trace = load_trace_measurements(path, unit_scale=125000.0)
        assert trace.rate_at(0) == 1_000_000.0

    def test_out_of_order_sorted(self, tmp_path):
        path = self.write(tmp_path, "30 200\n0 100\n")
        trace = load_trace_measurements(path)
        assert list(trace.times) == [0.0, 30.0]

    def test_duplicate_timestamps_keep_last(self, tmp_path):
        path = self.write(tmp_path, "0 100\n0 900\n30 200\n")
        trace = load_trace_measurements(path)
        assert trace.rate_at(0) == 900.0

    def test_malformed_line_rejected(self, tmp_path):
        path = self.write(tmp_path, "0\n")
        with pytest.raises(ValueError):
            load_trace_measurements(path)

    def test_empty_rejected(self, tmp_path):
        path = self.write(tmp_path, "# nothing\n")
        with pytest.raises(ValueError):
            load_trace_measurements(path)
