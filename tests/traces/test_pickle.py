"""BandwidthTrace pickling across the lazy/eager prefix-sum states.

Sweep workers receive traces through pickles (an injected library rides
the pool initializer), so a trace must round-trip both before its
``_cumbytes`` prefix sums exist and after ``ensure_cum`` populated them —
and the eager and lazy forms must answer every query bit-identically.
"""

import pickle

import numpy as np

from repro.traces.trace import BandwidthTrace


def _trace(seed: int = 0) -> BandwidthTrace:
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(5.0, 60.0, size=200))
    rates = rng.uniform(1e3, 1e5, size=200)
    return BandwidthTrace(times, rates, name="pickle-test")


class TestTracePickle:
    def test_roundtrip_lazy(self):
        trace = _trace()
        assert trace._cumbytes is None
        clone = pickle.loads(pickle.dumps(trace))
        assert clone._cumbytes is None
        assert np.array_equal(clone.times, trace.times)
        assert np.array_equal(clone.rates, trace.rates)
        assert clone.name == trace.name

    def test_roundtrip_eager(self):
        trace = _trace().ensure_cum()
        assert trace._cumbytes is not None
        clone = pickle.loads(pickle.dumps(trace))
        assert clone._cumbytes is not None
        assert np.array_equal(clone._cumbytes, trace._cumbytes)

    def test_eager_and_lazy_clones_bit_identical(self):
        lazy = pickle.loads(pickle.dumps(_trace()))
        eager = pickle.loads(pickle.dumps(_trace().ensure_cum()))
        rng = np.random.default_rng(1)
        starts = rng.uniform(lazy.start - 10.0, lazy.end + 10.0, size=200)
        sizes = rng.uniform(1.0, 1e8, size=200)
        for t, nbytes in zip(starts, sizes):
            assert lazy.transfer_time(float(nbytes), float(t)) == (
                eager.transfer_time(float(nbytes), float(t))
            )
            assert lazy.rate_at(float(t)) == eager.rate_at(float(t))

    def test_lazy_clone_computes_cum_on_demand(self):
        clone = pickle.loads(pickle.dumps(_trace()))
        reference = _trace()
        t0 = float(clone.times[3]) + 1.0
        assert clone.transfer_time(5e6, t0) == reference.transfer_time(5e6, t0)
        assert clone._cumbytes is not None

    def test_ensure_cum_idempotent_and_chainable(self):
        trace = _trace()
        assert trace.ensure_cum() is trace
        first = trace._cumbytes
        assert trace.ensure_cum()._cumbytes is first
