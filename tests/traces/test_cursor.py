"""TraceCursor: amortized locate hints must never change results.

The cursor is a pure optimization: ``transfer_time``/``rate_at`` with a
hint must be bit-identical to the hint-free (plain ``searchsorted``) path
for *any* query order — monotone streams (the fast path), out-of-order
streams (the fallback), and adversarial jumps past the walk limit.
"""

import numpy as np
import pytest

from repro.traces.trace import (
    _CURSOR_MAX_ADVANCE,
    BandwidthTrace,
    TraceCursor,
)


def _step_trace(n_segments: int = 400, seed: int = 0) -> BandwidthTrace:
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(5.0, 60.0, size=n_segments))
    rates = rng.uniform(1e3, 1e5, size=n_segments)
    return BandwidthTrace(times, rates, name="cursor-test")


class TestCursorIdentity:
    def test_monotone_stream_bit_identical(self):
        trace = _step_trace()
        cursor = trace.cursor()
        rng = np.random.default_rng(1)
        t = trace.start
        for _ in range(500):
            t += float(rng.uniform(0.0, 90.0))
            nbytes = float(rng.uniform(1e3, 1e7))
            assert trace.transfer_time(nbytes, t, hint=cursor) == (
                trace.transfer_time(nbytes, t)
            )
            assert trace.rate_at(t, hint=cursor) == trace.rate_at(t)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_query_order_bit_identical(self, seed):
        """Property-style: arbitrary (out-of-order) query times against a
        shared cursor agree exactly with the searchsorted reference."""
        trace = _step_trace(seed=seed)
        cursor = trace.cursor()
        rng = np.random.default_rng(100 + seed)
        times = rng.uniform(
            trace.start - 50.0, trace.end + 50.0, size=300
        )
        sizes = rng.uniform(1.0, 1e8, size=300)
        for t, nbytes in zip(times, sizes):
            with_hint = trace.transfer_time(float(nbytes), float(t), hint=cursor)
            without = trace.transfer_time(float(nbytes), float(t))
            assert with_hint == without

    def test_jump_past_walk_limit_falls_back(self):
        """A forward jump of more than _CURSOR_MAX_ADVANCE segments takes
        the binary-search fallback and still lands on the right segment."""
        trace = _step_trace()
        cursor = trace.cursor()
        t_early = float(trace.times[1]) + 0.5
        trace.rate_at(t_early, hint=cursor)
        far = _CURSOR_MAX_ADVANCE + 50
        t_far = float(trace.times[far]) + 0.5
        assert trace.rate_at(t_far, hint=cursor) == trace.rate_at(t_far)
        assert cursor.index == far

    def test_backward_query_resets_cursor(self):
        trace = _step_trace()
        cursor = trace.cursor()
        t_late = float(trace.times[200]) + 0.5
        trace.rate_at(t_late, hint=cursor)
        assert cursor.index == 200
        t_early = float(trace.times[3]) + 0.5
        assert trace.rate_at(t_early, hint=cursor) == trace.rate_at(t_early)
        assert cursor.index == 3

    def test_before_start_and_after_end(self):
        trace = _step_trace()
        cursor = trace.cursor()
        before = trace.start - 100.0
        assert trace.transfer_time(1e4, before, hint=cursor) == (
            trace.transfer_time(1e4, before)
        )
        after = trace.end + 100.0
        assert trace.transfer_time(1e4, after, hint=cursor) == (
            trace.transfer_time(1e4, after)
        )

    def test_shared_trace_distinct_cursors(self):
        """Two query streams on one (shared, immutable) trace each keep
        their own cursor without interfering."""
        trace = _step_trace()
        c1, c2 = trace.cursor(), trace.cursor()
        rng = np.random.default_rng(7)
        t1 = t2 = trace.start
        for _ in range(200):
            t1 += float(rng.uniform(0.0, 40.0))
            t2 += float(rng.uniform(0.0, 400.0))
            assert trace.rate_at(t1, hint=c1) == trace.rate_at(t1)
            assert trace.rate_at(t2, hint=c2) == trace.rate_at(t2)

    def test_cursor_factory_and_repr(self):
        cursor = _step_trace().cursor()
        assert isinstance(cursor, TraceCursor)
        assert cursor.index == 0
        assert "TraceCursor" in repr(cursor)
