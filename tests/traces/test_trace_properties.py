"""Property-based tests of trace integration (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces import BandwidthTrace


@st.composite
def traces(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    deltas = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1e4),
            min_size=n,
            max_size=n,
        )
    )
    times = np.cumsum(deltas)
    rates = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=1e8),
            min_size=n,
            max_size=n,
        )
    )
    return BandwidthTrace(times, rates)


@given(
    trace=traces(),
    nbytes=st.floats(min_value=0, max_value=1e9),
    start=st.floats(min_value=-1e4, max_value=1e6),
)
@settings(max_examples=120, deadline=None)
def test_transfer_time_inverts_bytes_between(trace, nbytes, start):
    duration = trace.transfer_time(nbytes, start)
    assert duration >= 0
    delivered = trace.bytes_between(start, start + duration)
    # ``start + duration`` rounds to the double grid, which at large start
    # values costs up to ~1e-11 s -> a fraction of a byte at high rates;
    # a tenth of a byte is far below anything the simulation resolves.
    assert np.isclose(delivered, nbytes, rtol=1e-3, atol=0.1)


@given(
    trace=traces(),
    a=st.floats(min_value=0, max_value=1e5),
    b=st.floats(min_value=0, max_value=1e5),
    start=st.floats(min_value=0, max_value=1e5),
)
@settings(max_examples=100, deadline=None)
def test_transfer_time_monotone_in_size(trace, a, b, start):
    small, large = sorted((a, b))
    t_small = trace.transfer_time(small, start)
    t_large = trace.transfer_time(large, start)
    assert t_small <= t_large * (1 + 1e-9) + 1e-9


@given(trace=traces(), t0=st.floats(min_value=0, max_value=1e5), span=st.floats(min_value=0.1, max_value=1e5))
@settings(max_examples=100, deadline=None)
def test_mean_rate_within_observed_bounds(trace, t0, span):
    mean = trace.mean_rate(t0, t0 + span)
    lo, hi = trace.rates.min(), trace.rates.max()
    assert lo * (1 - 1e-6) - 1e-6 <= mean <= hi * (1 + 1e-6) + 1e-6


@given(trace=traces(), offset=st.floats(min_value=-1e6, max_value=1e6))
@settings(max_examples=60, deadline=None)
def test_shift_preserves_relative_queries(trace, offset):
    shifted = trace.shifted(offset)
    # Probe at segment midpoints computed per trace, so float rounding of
    # ``probe + offset`` cannot flip a query across a step boundary.
    assert len(shifted) == len(trace)
    for i in range(len(trace) - 1):
        mid = (trace.times[i] + trace.times[i + 1]) / 2.0
        shifted_mid = (shifted.times[i] + shifted.times[i + 1]) / 2.0
        assert shifted.rate_at(shifted_mid) == trace.rate_at(mid)
    assert shifted.rates[-1] == trace.rates[-1]


@given(trace=traces())
@settings(max_examples=60, deadline=None)
def test_bytes_between_additive(trace):
    t0, t1, t2 = trace.start, trace.start + trace.duration / 3, trace.end
    total = trace.bytes_between(t0, t2)
    split = trace.bytes_between(t0, t1) + trace.bytes_between(t1, t2)
    assert np.isclose(total, split, rtol=1e-9, atol=1e-6)
