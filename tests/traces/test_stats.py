"""Change-interval analysis and trace statistics."""

import numpy as np
import pytest

from repro.traces import BandwidthTrace, trace_stats
from repro.traces.stats import change_intervals, library_change_interval


class TestChangeIntervals:
    def test_constant_trace_has_no_changes(self):
        trace = BandwidthTrace([0, 10, 20], [100, 100, 100])
        assert change_intervals(trace).size == 0

    def test_single_big_change_detected(self):
        trace = BandwidthTrace([0, 10, 20], [100, 100, 200])
        intervals = change_intervals(trace)
        assert list(intervals) == [20.0]

    def test_small_fluctuations_ignored(self):
        trace = BandwidthTrace([0, 10, 20, 30], [100, 105, 95, 102])
        assert change_intervals(trace, threshold=0.10).size == 0

    def test_reference_resets_after_change(self):
        # 100 -> 120 (change at t=10) -> 130 (only +8% vs 120: no change)
        trace = BandwidthTrace([0, 10, 20], [100, 120, 129])
        intervals = change_intervals(trace)
        assert list(intervals) == [10.0]

    def test_drop_counts_as_change(self):
        trace = BandwidthTrace([0, 5], [100, 80])
        assert list(change_intervals(trace)) == [5.0]

    def test_threshold_validation(self):
        trace = BandwidthTrace([0], [1])
        with pytest.raises(ValueError):
            change_intervals(trace, threshold=0.0)
        with pytest.raises(ValueError):
            change_intervals(trace, threshold=1.0)


class TestTraceStats:
    def test_summary_fields(self):
        trace = BandwidthTrace([0, 10, 20], [100, 300, 200], name="x")
        stats = trace_stats(trace)
        assert stats.name == "x"
        assert stats.mean_rate == pytest.approx(200.0)
        assert stats.median_rate == pytest.approx(200.0)
        assert stats.min_rate == 100.0
        assert stats.max_rate == 300.0
        assert stats.n_changes == 2
        assert stats.cv > 0

    def test_nan_interval_when_no_changes(self):
        trace = BandwidthTrace([0, 10], [5, 5])
        stats = trace_stats(trace)
        assert np.isnan(stats.mean_change_interval)


class TestLibraryChangeInterval:
    def test_pooled_mean(self):
        a = BandwidthTrace([0, 10, 20], [100, 200, 400])  # intervals 10, 10
        b = BandwidthTrace([0, 30], [100, 200])  # interval 30
        assert library_change_interval([a, b]) == pytest.approx((10 + 10 + 30) / 3)

    def test_all_constant_gives_nan(self):
        a = BandwidthTrace([0, 10], [5, 5])
        assert np.isnan(library_change_interval([a]))
