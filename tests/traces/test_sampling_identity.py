"""Vectorized/cached library sampling must replay the scalar draws exactly.

``sample_many``/``sample_noon_segments`` batch the PCG64 index draws and
``noon_segment_for`` caches each pair's noon segment; all three must be
indistinguishable (same rng stream consumption, same trace values) from
the scalar, build-per-draw code they replaced.
"""

import numpy as np

from repro.traces.study import InternetStudy, noon_segment


def _library():
    return InternetStudy(seed=77).run()


class TestBatchedDrawIdentity:
    def test_sample_many_matches_scalar_stream(self):
        library = _library()
        batched = library.sample_many(np.random.default_rng(5), 64)
        rng = np.random.default_rng(5)
        scalar = [library.sample(rng) for _ in range(64)]
        assert [t.name for t in batched] == [t.name for t in scalar]

    def test_sample_noon_segments_matches_scalar_stream(self):
        library = _library()
        batched = library.sample_noon_segments(np.random.default_rng(9), 64)
        rng = np.random.default_rng(9)
        scalar = [library.sample_noon_segment(rng) for _ in range(64)]
        assert [id(t) for t in batched] == [id(t) for t in scalar]

    def test_generator_state_advances_identically(self):
        """After a batch of n draws the generator sits exactly where n
        scalar draws would leave it."""
        library = _library()
        rng_batch = np.random.default_rng(3)
        library.sample_noon_segments(rng_batch, 10)
        rng_scalar = np.random.default_rng(3)
        for _ in range(10):
            library.sample_noon_segment(rng_scalar)
        assert rng_batch.integers(1 << 30) == rng_scalar.integers(1 << 30)


class TestNoonSegmentCache:
    def test_cached_segment_matches_fresh_build(self):
        library = _library()
        for key in list(library.pairs())[:8]:
            cached = library.noon_segment_for(key)
            fresh = noon_segment(
                library.trace(*key), library.tz_offsets.get(key, 0.0)
            )
            assert np.array_equal(cached.times, fresh.times)
            assert np.array_equal(cached.rates, fresh.rates)

    def test_repeat_draws_share_one_object(self):
        library = _library()
        key = next(library.pairs())
        assert library.noon_segment_for(key) is library.noon_segment_for(key)

    def test_cached_segments_arrive_with_prefix_sums(self):
        library = _library()
        segment = library.noon_segment_for(next(library.pairs()))
        assert segment._cumbytes is not None

    def test_warm_noon_segments_covers_every_pair(self):
        library = _library()
        assert library.warm_noon_segments() is library
        assert set(library._noon_segments) == set(library.pairs())
        # Warming twice is a no-op (same objects).
        before = dict(library._noon_segments)
        library.warm_noon_segments()
        for key, segment in library._noon_segments.items():
            assert before[key] is segment
