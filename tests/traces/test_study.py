"""The synthetic Internet study and trace libraries."""

import numpy as np
import pytest

from repro.traces.study import (
    DEFAULT_HOSTS,
    InternetStudy,
    StudyHost,
    TraceLibrary,
    noon_segment,
    pair_key,
)
from repro.traces.trace import BandwidthTrace, constant_trace


class TestPairKey:
    def test_canonical_order(self):
        assert pair_key("b", "a") == ("a", "b")
        assert pair_key("a", "b") == ("a", "b")

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError):
            pair_key("a", "a")


class TestInternetStudy:
    def test_default_roster_covers_paper_regions(self):
        regions = {h.region for h in DEFAULT_HOSTS}
        assert {"us-east", "us-west", "us-midwest", "us-south", "eu", "br"} <= regions

    def test_complete_pair_coverage(self):
        library = InternetStudy(seed=1).run()
        n = len(DEFAULT_HOSTS)
        assert len(library) == n * (n - 1) // 2

    def test_deterministic_for_seed(self):
        a = InternetStudy(seed=9).run()
        b = InternetStudy(seed=9).run()
        assert a.trace("umd", "ucla") == b.trace("umd", "ucla")

    def test_seed_changes_traces(self):
        a = InternetStudy(seed=1).run()
        b = InternetStudy(seed=2).run()
        assert a.trace("umd", "ucla") != b.trace("umd", "ucla")

    def test_transatlantic_slower_than_domestic_on_average(self):
        library = InternetStudy(seed=3, pair_rate_sigma=0.0).run()
        domestic = library.trace("umd", "rutgers").mean_rate()
        transatlantic = library.trace("umd", "upm-es").mean_rate()
        assert transatlantic < domestic

    def test_requires_two_hosts(self):
        with pytest.raises(ValueError):
            InternetStudy(hosts=[StudyHost("solo", "us-east", -5.0)])

    def test_duplicate_names_rejected(self):
        hosts = [StudyHost("x", "us-east", -5.0), StudyHost("x", "eu", 1.0)]
        with pytest.raises(ValueError):
            InternetStudy(hosts=hosts)

    def test_unknown_region_pair_raises(self):
        hosts = [StudyHost("a", "mars", 0.0), StudyHost("b", "eu", 1.0)]
        with pytest.raises(KeyError):
            InternetStudy(hosts=hosts).run()

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            InternetStudy(pair_rate_sigma=-0.1)


class TestTraceLibrary:
    def library(self):
        return InternetStudy(seed=4).run()

    def test_trace_lookup_symmetric(self):
        lib = self.library()
        assert lib.trace("umd", "ucla") is lib.trace("ucla", "umd")

    def test_unknown_pair_raises(self):
        with pytest.raises(KeyError):
            self.library().trace("umd", "nowhere")

    def test_sample_deterministic(self):
        lib = self.library()
        a = lib.sample(np.random.default_rng(5))
        b = lib.sample(np.random.default_rng(5))
        assert a is b

    def test_sample_noon_segment_starts_at_zero(self):
        lib = self.library()
        seg = lib.sample_noon_segment(np.random.default_rng(6))
        assert seg.start == 0.0
        assert seg.duration > 12 * 3600

    def test_rejects_traces_for_unknown_hosts(self):
        with pytest.raises(ValueError):
            TraceLibrary(
                DEFAULT_HOSTS[:2],
                {("nobody", "umd"): constant_trace(10)},
            )


class TestNoonSegment:
    def test_utc_noon(self):
        trace = BandwidthTrace(
            np.arange(0, 86400, 3600.0), np.arange(24.0) + 1.0
        )
        seg = noon_segment(trace, tz_offset_hours=0.0)
        assert seg.start == 0.0
        # First sample should carry the rate at 12:00 UTC (13.0).
        assert seg.rate_at(0) == 13.0

    def test_timezone_shifts_noon(self):
        trace = BandwidthTrace(
            np.arange(0, 86400, 3600.0), np.arange(24.0) + 1.0
        )
        # tz -5: local noon at 17:00 UTC.
        seg = noon_segment(trace, tz_offset_hours=-5.0)
        assert seg.rate_at(0) == 18.0


class TestSampleKeyCaching:
    """Sampling draws from a key tuple frozen at construction."""

    def test_sorted_keys_precomputed(self):
        library = TraceLibrary(
            DEFAULT_HOSTS[:3],
            {
                pair_key("umd", "rutgers"): constant_trace(10),
                pair_key("ucla", "umd"): constant_trace(20),
            },
        )
        assert library._sorted_keys == tuple(sorted(library._traces))
        assert list(library.pairs()) == list(library._sorted_keys)

    def test_sample_deterministic_for_seed(self):
        library = InternetStudy(seed=5).run()
        a = [library.sample(np.random.default_rng(3)).name for _ in range(5)]
        b = [library.sample(np.random.default_rng(3)).name for _ in range(5)]
        assert a == b

    def test_sample_immune_to_later_mutation(self):
        library = TraceLibrary(
            DEFAULT_HOSTS[:3],
            {
                pair_key("umd", "rutgers"): constant_trace(10),
                pair_key("ucla", "umd"): constant_trace(20),
            },
        )
        before = [library.sample(np.random.default_rng(9)).name for _ in range(8)]
        # A key sorting before the existing ones would previously have
        # shifted every subsequent draw; the frozen tuple keeps the
        # original draw order.
        library._traces[pair_key("rutgers", "ucla")] = constant_trace(30)
        after = [library.sample(np.random.default_rng(9)).name for _ in range(8)]
        assert before == after
