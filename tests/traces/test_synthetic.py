"""Synthetic trace generator: determinism, calibration, structure."""

import numpy as np
import pytest

from repro.traces import SyntheticTraceModel, TraceGenParams
from repro.traces.stats import change_intervals, library_change_interval
from repro.traces.study import InternetStudy


def generate(seed=0, **kwargs):
    params = TraceGenParams(**kwargs) if kwargs else TraceGenParams()
    model = SyntheticTraceModel(params)
    return model.generate(
        base_rate=32 * 1024, rng=np.random.default_rng(seed), name="test"
    )


class TestGenerator:
    def test_deterministic_for_seed(self):
        a, b = generate(seed=42), generate(seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        assert generate(seed=1) != generate(seed=2)

    def test_rates_positive(self):
        trace = generate()
        assert (trace.rates > 0).all()

    def test_duration_and_sampling(self):
        trace = generate()
        params = TraceGenParams()
        assert trace.duration >= params.duration
        steps = np.diff(trace.times)
        assert np.allclose(steps, params.sample_period)

    def test_rejects_nonpositive_base_rate(self):
        model = SyntheticTraceModel()
        with pytest.raises(ValueError):
            model.generate(base_rate=0, rng=np.random.default_rng(0))

    def test_diurnal_cycle_present(self):
        # With jitter and episodes off, the trace is the pure diurnal
        # shape: afternoon local (14:00) must be the slow point.
        model = SyntheticTraceModel(
            TraceGenParams(
                ar_sigma=1e-9,
                episode_rate_per_hour=0.0,
                long_shifts_per_day=0.0,
                long_shift_sigma=0.0,
            )
        )
        trace = model.generate(
            base_rate=1000.0, rng=np.random.default_rng(0), tz_offset_hours=0.0
        )
        hours = (trace.times / 3600.0) % 24.0
        afternoon = trace.rates[(hours >= 13) & (hours <= 15)].mean()
        night = trace.rates[(hours >= 1) & (hours <= 4)].mean()
        assert afternoon < night

    def test_episodes_reduce_rate(self):
        quiet = SyntheticTraceModel(
            TraceGenParams(ar_sigma=1e-9, episode_rate_per_hour=0.0,
                           long_shifts_per_day=0.0, long_shift_sigma=0.0,
                           diurnal_depth=0.0)
        ).generate(base_rate=1000.0, rng=np.random.default_rng(3))
        busy = SyntheticTraceModel(
            TraceGenParams(ar_sigma=1e-9, episode_rate_per_hour=2.0,
                           long_shifts_per_day=0.0, long_shift_sigma=0.0,
                           diurnal_depth=0.0)
        ).generate(base_rate=1000.0, rng=np.random.default_rng(3))
        assert busy.rates.min() < quiet.rates.min()
        assert busy.mean_rate() < quiet.mean_rate()


class TestCalibration:
    def test_change_interval_near_two_minutes(self):
        """Paper §4: expected time between >=10% changes ~ 2 minutes."""
        library = InternetStudy(seed=7).run()
        interval = library_change_interval(library.all_traces())
        assert 80.0 <= interval <= 180.0

    def test_changes_actually_happen(self):
        trace = generate(seed=5)
        assert change_intervals(trace).size > 100
