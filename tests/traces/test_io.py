"""Trace and library persistence round-trips."""

import numpy as np
import pytest

from repro.traces import (
    BandwidthTrace,
    InternetStudy,
    load_library_json,
    load_trace_csv,
    load_trace_json,
    save_library_json,
    save_trace_csv,
    save_trace_json,
)


def sample_trace():
    return BandwidthTrace([0.0, 30.5, 61.0], [1000.25, 512.5, 99999.0], name="x")


class TestCsv:
    def test_roundtrip_exact(self, tmp_path):
        path = tmp_path / "trace.csv"
        original = sample_trace()
        save_trace_csv(original, path)
        loaded = load_trace_csv(path, name="x")
        assert loaded == original
        assert loaded.name == "x"

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,rate_bytes_per_s\n1.0\n")
        with pytest.raises(ValueError):
            load_trace_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace_csv(path)


class TestJson:
    def test_roundtrip_exact(self, tmp_path):
        path = tmp_path / "trace.json"
        original = sample_trace()
        save_trace_json(original, path)
        loaded = load_trace_json(path)
        assert loaded == original
        assert loaded.name == original.name


class TestLibraryJson:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "library.json"
        library = InternetStudy(seed=11).run()
        save_library_json(library, path)
        loaded = load_library_json(path)
        assert len(loaded) == len(library)
        assert [h.name for h in loaded.hosts] == [h.name for h in library.hosts]
        for pair in library.pairs():
            assert loaded.trace(*pair) == library.trace(*pair)
        assert loaded.tz_offsets == library.tz_offsets
