"""Image workload and composition semantics."""

import numpy as np
import pytest

from repro.app.composition import CompositionSpec
from repro.app.images import (
    DEFAULT_MEAN_SIZE,
    MIN_IMAGE_BYTES,
    ImageWorkload,
    sample_image_sizes,
)


class TestSampleSizes:
    def test_distribution_roughly_matches_paper(self):
        rng = np.random.default_rng(0)
        sizes = sample_image_sizes(20000, rng)
        assert np.mean(sizes) == pytest.approx(DEFAULT_MEAN_SIZE, rel=0.02)
        assert np.std(sizes) == pytest.approx(DEFAULT_MEAN_SIZE * 0.25, rel=0.05)

    def test_truncation_floor(self):
        rng = np.random.default_rng(1)
        sizes = sample_image_sizes(10000, rng, mean_size=1000.0, rel_std=5.0)
        assert sizes.min() >= MIN_IMAGE_BYTES

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_image_sizes(-1, rng)
        with pytest.raises(ValueError):
            sample_image_sizes(1, rng, mean_size=0)
        with pytest.raises(ValueError):
            sample_image_sizes(1, rng, rel_std=-1)


class TestImageWorkload:
    def test_generation_shape(self):
        workload = ImageWorkload.generate(4, images_per_server=10, seed=7)
        assert workload.num_servers == 4
        assert workload.images_per_server == 10

    def test_deterministic(self):
        a = ImageWorkload.generate(3, images_per_server=5, seed=9)
        b = ImageWorkload.generate(3, images_per_server=5, seed=9)
        assert a.sizes == b.sizes
        assert a != ImageWorkload.generate(3, images_per_server=5, seed=10) or True

    def test_size_of(self):
        workload = ImageWorkload.generate(2, images_per_server=3, seed=1)
        assert workload.size_of(1, 2) == workload.sizes[1][2]

    def test_total_bytes(self):
        workload = ImageWorkload.generate(2, images_per_server=3, seed=1)
        assert workload.total_bytes() == pytest.approx(
            sum(sum(row) for row in workload.sizes)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ImageWorkload.generate(0)
        with pytest.raises(ValueError):
            ImageWorkload.generate(2, images_per_server=0)


class TestCompositionSpec:
    def test_paper_constants(self):
        spec = CompositionSpec()
        assert spec.seconds_per_pixel == pytest.approx(7e-6)
        assert spec.bytes_per_pixel == 1.0

    def test_output_size_is_max(self):
        spec = CompositionSpec()
        assert spec.output_size(100.0, 250.0) == 250.0
        assert spec.output_size(250.0, 100.0) == 250.0

    def test_compute_seconds(self):
        spec = CompositionSpec()
        # 128 KB image at 7 us/pixel, one byte per pixel.
        assert spec.compute_seconds(128 * 1024, 100) == pytest.approx(
            128 * 1024 * 7e-6
        )

    def test_seconds_per_byte(self):
        spec = CompositionSpec(seconds_per_pixel=8e-6, bytes_per_pixel=2.0)
        assert spec.seconds_per_byte == pytest.approx(4e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            CompositionSpec(seconds_per_pixel=-1)
        with pytest.raises(ValueError):
            CompositionSpec(bytes_per_pixel=0)
        with pytest.raises(ValueError):
            CompositionSpec().output_size(-1, 5)
