"""Merge and join combiner semantics, and their cost-model propagation."""

import pytest

from repro.app.combine import JoinCombiner, MergeCombiner
from repro.app.composition import CompositionSpec
from repro.dataflow.cost import CostModel, expected_output_sizes
from repro.dataflow.tree import complete_binary_tree

TREE = complete_binary_tree(4)


class TestMergeCombiner:
    def test_output_is_sum(self):
        combiner = MergeCombiner()
        assert combiner.output_size(100.0, 250.0) == 350.0

    def test_compute_linear_in_output(self):
        combiner = MergeCombiner(seconds_per_byte=1e-6)
        assert combiner.compute_seconds(100.0, 200.0) == pytest.approx(3e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            MergeCombiner(seconds_per_byte=-1)
        with pytest.raises(ValueError):
            MergeCombiner().output_size(-1, 5)

    def test_moment_rule(self):
        assert MergeCombiner().moment_rule == "sum"


class TestJoinCombiner:
    def test_output_bounded_by_smaller_side(self):
        combiner = JoinCombiner(match_rate=0.5)
        assert combiner.output_size(100.0, 1000.0) == 50.0
        assert combiner.output_size(1000.0, 100.0) == 50.0

    def test_fanout_rate(self):
        combiner = JoinCombiner(match_rate=2.0)
        assert combiner.output_size(100.0, 200.0) == 200.0

    def test_compute_covers_both_inputs(self):
        combiner = JoinCombiner(seconds_per_byte=1e-6)
        assert combiner.compute_seconds(100.0, 200.0) == pytest.approx(3e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            JoinCombiner(match_rate=0)
        with pytest.raises(ValueError):
            JoinCombiner(seconds_per_byte=-1)

    def test_moment_rule(self):
        assert JoinCombiner().moment_rule == "scaled-min"


class TestMomentPropagation:
    def test_sum_rule_adds_means(self):
        sizes = expected_output_sizes(TREE, 1000.0, 0.0, combiner=MergeCombiner())
        assert sizes["op0"] == pytest.approx(2000.0)
        root = TREE.root_operator.node_id
        assert sizes[root] == pytest.approx(4000.0)

    def test_scaled_min_rule_shrinks(self):
        sizes = expected_output_sizes(
            TREE, 1000.0, 0.0, combiner=JoinCombiner(match_rate=0.5)
        )
        assert sizes["op0"] == pytest.approx(500.0)
        root = TREE.root_operator.node_id
        assert sizes[root] == pytest.approx(250.0)

    def test_max_rule_matches_default(self):
        with_spec = expected_output_sizes(
            TREE, 1000.0, 0.25, combiner=CompositionSpec()
        )
        default = expected_output_sizes(TREE, 1000.0, 0.25)
        assert with_spec == default

    def test_unknown_rule_rejected(self):
        class Weird:
            moment_rule = "geometric"

        with pytest.raises(ValueError):
            expected_output_sizes(TREE, 1000.0, 0.25, combiner=Weird())

    def test_scaled_min_floors_at_one_byte(self):
        sizes = expected_output_sizes(
            TREE, 2.0, 0.0, combiner=JoinCombiner(match_rate=0.01)
        )
        assert all(v >= 1.0 for v in sizes.values())


class TestCostModelCombiner:
    def test_operator_compute_uses_combiner(self):
        sizes = expected_output_sizes(TREE, 1000.0, 0.0, combiner=JoinCombiner())
        model = CostModel(TREE, sizes, combiner=JoinCombiner(seconds_per_byte=1e-3))
        # op0's children are two 1000-byte servers: (1000+1000)*1e-3.
        assert model.node_seconds("op0") == pytest.approx(2.0)

    def test_without_combiner_uses_output_bytes(self):
        sizes = {n.node_id: 1000.0 for n in TREE.nodes()}
        model = CostModel(TREE, sizes, compute_seconds_per_byte=1e-3)
        assert model.node_seconds("op0") == pytest.approx(1.0)
