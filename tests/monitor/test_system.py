"""MonitoringSystem: passive path, estimates, seeding, probes."""

import pytest

from repro.monitor.system import MonitoringConfig, MonitoringSystem
from repro.net.host import Host
from repro.net.link import Link
from repro.net.message import Message, MessageKind
from repro.net.network import Network
from repro.traces import BandwidthTrace, constant_trace


def build(env, rate=1000.0, config=None, hosts=("a", "b", "c")):
    net = Network(env)
    for name in hosts:
        net.add_host(Host(env, name))
    for i, x in enumerate(hosts):
        for y in hosts[i + 1 :]:
            net.add_link(Link(x, y, constant_trace(rate), startup_cost=0.0))
    monitoring = MonitoringSystem(net, config or MonitoringConfig())
    return net, monitoring


def send(net, src_host, dst_host, size):
    net.register_actor(f"src@{src_host}", src_host)
    net.register_actor(f"dst@{dst_host}", dst_host)
    message = Message(
        MessageKind.DATA, f"src@{src_host}", f"dst@{dst_host}", size
    )
    net.send(message, src_host=src_host, dst_host=dst_host)
    return message


class TestPassiveMonitoring:
    def test_large_message_measured_at_both_endpoints(self, env):
        net, monitoring = build(env, rate=1000.0)
        send(net, "a", "b", 32 * 1024)
        env.run()
        for viewer in ("a", "b"):
            estimate = monitoring.estimate(viewer, "a", "b", env.now)
            assert estimate.quality == "fresh"
            assert estimate.bandwidth == pytest.approx(1000.0)
        assert monitoring.stats.passive_measurements == 1

    def test_small_message_not_measured(self, env):
        net, monitoring = build(env)
        send(net, "a", "b", 1024)  # below S_thres
        env.run()
        assert monitoring.estimate("a", "a", "b", env.now).quality == "default"
        assert monitoring.stats.passive_measurements == 0

    def test_third_party_learns_via_piggyback(self, env):
        net, monitoring = build(env)
        send(net, "a", "b", 32 * 1024)  # a-b measured

        def later(env):
            yield env.timeout(100)
            send(net, "a", "c", 32 * 1024)  # carries a-b entry to c

        env.process(later(env))
        env.run()
        estimate = monitoring.estimate("c", "a", "b", env.now)
        assert estimate.quality in ("fresh", "stale")
        assert estimate.bandwidth == pytest.approx(1000.0)

    def test_piggyback_disabled_by_budget_zero(self, env):
        config = MonitoringConfig(piggyback_budget=0)
        net, monitoring = build(env, config=config)
        send(net, "a", "b", 32 * 1024)

        def later(env):
            yield env.timeout(10)
            send(net, "a", "c", 32 * 1024)

        env.process(later(env))
        env.run()
        assert monitoring.estimate("c", "a", "b", env.now).quality == "default"


class TestEstimates:
    def test_default_when_unknown(self, env):
        __, monitoring = build(env)
        estimate = monitoring.estimate("a", "b", "c", 0.0)
        assert estimate.quality == "default"
        assert estimate.bandwidth == monitoring.config.default_estimate

    def test_same_host_is_infinite(self, env):
        __, monitoring = build(env)
        assert monitoring.estimate("a", "b", "b", 0.0).bandwidth == float("inf")

    def test_stale_after_t_thres(self, env):
        net, monitoring = build(env)
        send(net, "a", "b", 32 * 1024)
        env.run()
        t = env.now + monitoring.config.t_thres + 1
        assert monitoring.estimate("a", "a", "b", t).quality == "stale"

    def test_unknown_host_raises(self, env):
        __, monitoring = build(env)
        with pytest.raises(KeyError):
            monitoring.cache_for("ghost")


class TestSeedSnapshot:
    def test_every_host_knows_every_link(self, env):
        net, monitoring = build(env, rate=777.0)
        monitoring.seed_snapshot(0.0)
        for viewer in ("a", "b", "c"):
            for x, y in (("a", "b"), ("a", "c"), ("b", "c")):
                estimate = monitoring.estimate(viewer, x, y, 1.0)
                assert estimate.quality == "fresh"
                assert estimate.bandwidth == pytest.approx(777.0)

    def test_seed_uses_window_average(self, env):
        net = Network(env)
        for name in ("a", "b"):
            net.add_host(Host(env, name))
        trace = BandwidthTrace([0, 15, 30], [100, 300, 300])
        net.add_link(Link("a", "b", trace, startup_cost=0.0))
        monitoring = MonitoringSystem(net)
        monitoring.seed_snapshot(0.0, window=30.0)
        assert monitoring.estimate("a", "a", "b", 0.0).bandwidth == pytest.approx(
            200.0
        )


class TestProbe:
    def test_probe_measures_pair(self, env):
        net, monitoring = build(env, rate=2000.0)

        def prober(env):
            bandwidth = yield from monitoring.probe("a", "b")
            assert bandwidth == pytest.approx(2000.0)

        env.process(prober(env))
        env.run()
        assert monitoring.stats.probes_sent == monitoring.config.probe_samples
        assert monitoring.estimate("a", "a", "b", env.now).quality == "fresh"
        assert monitoring.estimate("b", "a", "b", env.now).quality == "fresh"

    def test_probe_self_rejected(self, env):
        __, monitoring = build(env)
        with pytest.raises(ValueError):
            list(monitoring.probe("a", "a"))

    def test_probe_cleans_up_actor_endpoints(self, env):
        # Regression: probe used to leave its _monitor@<host> endpoints
        # registered, leaking one registry entry (and mailbox) per probe.
        net, monitoring = build(env, rate=2000.0)
        before = dict(net._actor_hosts)

        def prober(env):
            yield from monitoring.probe("a", "b")
            yield from monitoring.probe("b", "c")

        env.process(prober(env))
        env.run()
        assert net._actor_hosts == before
        for host in net.hosts.values():
            assert not any(
                name.startswith("_monitor@") for name in host._mailboxes
            )

    def test_multi_sample_probe_averages(self, env):
        net = Network(env)
        for name in ("a", "b"):
            net.add_host(Host(env, name))
        # Rate changes between the two samples.
        wire = 16 * 1024 + 256
        trace = BandwidthTrace([0.0, wire / 1000.0], [1000.0, 3000.0])
        net.add_link(Link("a", "b", trace, startup_cost=0.0))
        config = MonitoringConfig(probe_samples=2, smoothing=1.0)
        monitoring = MonitoringSystem(net, config)
        results = []

        def prober(env):
            bandwidth = yield from monitoring.probe("a", "b")
            results.append(bandwidth)

        env.process(prober(env))
        env.run()
        assert results[0] == pytest.approx(2000.0)
        assert monitoring.stats.probes_sent == 2
