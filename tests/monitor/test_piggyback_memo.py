"""Piggyback encode/decode memoization: every memo hit is a no-op replay.

The encoder memoizes per cache version+budget; the decoder skips replays
of the same payload against an unchanged cache.  Both must be invisible:
identical payloads, identical merge outcomes, identical hook firings.
"""

import pytest

from repro.monitor.cache import BandwidthCache, CacheEntry
from repro.monitor.piggyback import (
    ENTRY_BYTES,
    decode_piggyback,
    encode_piggyback,
)


def _filled_cache(n: int = 5, t0: float = 0.0) -> BandwidthCache:
    cache = BandwidthCache()
    for i in range(n):
        cache.update("a", f"h{i}", 1000.0 + i, t0 + i)
    return cache


class TestEncodeMemo:
    def test_unchanged_cache_returns_same_payload_object(self):
        cache = _filled_cache()
        assert encode_piggyback(cache) is encode_piggyback(cache)

    def test_update_invalidates_memo(self):
        cache = _filled_cache()
        first = encode_piggyback(cache)
        cache.update("a", "h0", 999.0, 100.0)
        second = encode_piggyback(cache)
        assert second is not first
        newest = max(e.measured_at for e in second["entries"])
        assert newest == 100.0

    def test_budget_is_part_of_the_key(self):
        cache = _filled_cache()
        small = encode_piggyback(cache, budget=2 * ENTRY_BYTES)
        full = encode_piggyback(cache)
        assert len(small["entries"]) == 2
        assert len(full["entries"]) == 5
        # Re-asking with the small budget rebuilds (single-slot memo) but
        # yields the same selection.
        again = encode_piggyback(cache, budget=2 * ENTRY_BYTES)
        assert [e.pair for e in again["entries"]] == [
            e.pair for e in small["entries"]
        ]

    def test_empty_and_tiny_budget_memoized_none(self):
        cache = BandwidthCache()
        assert encode_piggyback(cache) is None
        assert encode_piggyback(cache) is None
        filled = _filled_cache()
        assert encode_piggyback(filled, budget=ENTRY_BYTES - 1) is None

    def test_payload_contents_match_freshest(self):
        cache = _filled_cache()
        payload = encode_piggyback(cache)
        assert payload["bytes"] == 5 * ENTRY_BYTES
        assert payload["entries"] == cache.freshest(5)


class TestDecodeMemo:
    def test_replay_of_same_payload_is_skipped_identically(self):
        sender = _filled_cache()
        payload = encode_piggyback(sender)
        receiver = BandwidthCache()
        first = decode_piggyback(receiver, payload)
        assert first == 5
        entries_after = dict(receiver._entries)
        hook_calls = []
        receiver.on_new_value = lambda *args: hook_calls.append(args)
        assert decode_piggyback(receiver, payload) == 0
        assert receiver._entries == entries_after
        assert hook_calls == []

    def test_intervening_update_reruns_decode(self):
        sender = _filled_cache()
        payload = encode_piggyback(sender)
        receiver = BandwidthCache()
        decode_piggyback(receiver, payload)
        # A *newer* local measurement changes the version; the re-decode
        # runs the merge loop (and still merges nothing new).
        receiver.update("a", "h0", 5.0, 50.0)
        assert decode_piggyback(receiver, payload) == 0

    def test_eviction_allows_re_merge(self):
        sender = _filled_cache()
        payload = encode_piggyback(sender)
        receiver = BandwidthCache()
        assert decode_piggyback(receiver, payload) == 5
        receiver.evict_older_than(100.0)
        assert len(receiver) == 0
        assert decode_piggyback(receiver, payload) == 5

    def test_merge_semantics_match_merge_entry(self):
        sender = _filled_cache()
        payload = encode_piggyback(sender)
        inline = BandwidthCache()
        reference = BandwidthCache()
        # Pre-populate both with one newer and one older entry.
        inline.force_set("a", "h0", 1.0, 99.0)
        reference.force_set("a", "h0", 1.0, 99.0)
        inline.force_set("a", "h1", 2.0, -5.0)
        reference.force_set("a", "h1", 2.0, -5.0)
        merged = decode_piggyback(inline, payload)
        ref_merged = sum(
            reference.merge_entry(e) for e in payload["entries"]
        )
        assert merged == ref_merged
        assert inline._entries == reference._entries

    def test_hook_fires_per_merged_entry(self):
        sender = _filled_cache()
        payload = encode_piggyback(sender)
        receiver = BandwidthCache()
        calls = []
        receiver.on_new_value = lambda pair, bw, t: calls.append(pair)
        decode_piggyback(receiver, payload)
        assert sorted(calls) == sorted(e.pair for e in payload["entries"])

    def test_non_entry_payload_still_raises(self):
        receiver = BandwidthCache()
        with pytest.raises(TypeError):
            decode_piggyback(receiver, {"bytes": 24, "entries": ["junk"]})


class TestVersionCounter:
    def test_every_mutation_bumps_version(self):
        cache = BandwidthCache()
        v0 = cache._version
        cache.update("a", "b", 10.0, 1.0)
        v1 = cache._version
        assert v1 > v0
        # Rejected (older) update leaves the version alone.
        cache.update("a", "b", 20.0, 0.5)
        assert cache._version == v1
        cache.force_set("a", "b", 30.0, 2.0)
        v2 = cache._version
        assert v2 > v1
        assert cache.merge_entry(CacheEntry(("a", "b"), 40.0, 3.0))
        v3 = cache._version
        assert v3 > v2
        assert not cache.merge_entry(CacheEntry(("a", "b"), 50.0, 2.5))
        assert cache._version == v3
        cache.evict_older_than(10.0)
        assert cache._version > v3
        # Eviction with no victims is not a mutation.
        v4 = cache._version
        cache.evict_older_than(10.0)
        assert cache._version == v4
