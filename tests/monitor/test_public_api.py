"""The forecasting classes are part of repro.monitor's public API."""

import repro.monitor as monitor
from repro.monitor import (
    AdaptiveForecaster,
    Ewma,
    LastValue,
    Predictor,
    SlidingMean,
    SlidingMedian,
    default_bank,
)


class TestForecastExports:
    def test_all_names_exported(self):
        for name in (
            "Predictor",
            "LastValue",
            "SlidingMean",
            "SlidingMedian",
            "Ewma",
            "AdaptiveForecaster",
            "default_bank",
        ):
            assert name in monitor.__all__
            assert getattr(monitor, name) is not None

    def test_exports_are_the_forecast_classes(self):
        from repro.monitor import forecast

        assert AdaptiveForecaster is forecast.AdaptiveForecaster
        assert Predictor is forecast.Predictor
        assert default_bank is forecast.default_bank

    def test_bank_members_are_predictors(self):
        bank = default_bank()
        assert bank, "default bank may not be empty"
        assert all(isinstance(p, Predictor) for p in bank)
        kinds = {type(p) for p in bank}
        assert {LastValue, SlidingMean, SlidingMedian, Ewma} <= kinds

    def test_forecaster_usable_through_public_api(self):
        forecaster = AdaptiveForecaster()
        for value in (10.0, 12.0, 11.0, 13.0):
            forecaster.update(value)
        prediction = forecaster.predict()
        assert prediction is not None and prediction > 0
        assert forecaster.best_predictor_name in {
            p.name for p in forecaster.bank
        }
