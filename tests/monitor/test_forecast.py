"""NWS-style forecasting predictors."""

import math

import pytest

from repro.monitor.forecast import (
    AdaptiveForecaster,
    Ewma,
    LastValue,
    SlidingMean,
    SlidingMedian,
    default_bank,
)


class TestLastValue:
    def test_empty_predicts_none(self):
        assert LastValue().predict() is None

    def test_tracks_latest(self):
        p = LastValue()
        p.update(5.0)
        p.update(7.0)
        assert p.predict() == 7.0


class TestSlidingMean:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            SlidingMean(window=0)

    def test_mean_over_window(self):
        p = SlidingMean(window=3)
        for v in (1.0, 2.0, 3.0, 4.0):
            p.update(v)
        assert p.predict() == pytest.approx(3.0)  # last three

    def test_empty_predicts_none(self):
        assert SlidingMean().predict() is None


class TestSlidingMedian:
    def test_odd_window(self):
        p = SlidingMedian(window=5)
        for v in (10.0, 1.0, 100.0):
            p.update(v)
        assert p.predict() == 10.0

    def test_even_count_averages_middle(self):
        p = SlidingMedian(window=4)
        for v in (1.0, 2.0, 3.0, 4.0):
            p.update(v)
        assert p.predict() == pytest.approx(2.5)

    def test_robust_to_spike(self):
        p = SlidingMedian(window=5)
        for v in (10.0, 10.0, 10.0, 10.0, 1e9):
            p.update(v)
        assert p.predict() == 10.0


class TestEwma:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)

    def test_first_value_initializes(self):
        p = Ewma(alpha=0.5)
        p.update(10.0)
        assert p.predict() == 10.0

    def test_blending(self):
        p = Ewma(alpha=0.5)
        p.update(10.0)
        p.update(20.0)
        assert p.predict() == pytest.approx(15.0)


class TestAdaptiveForecaster:
    def test_empty_predicts_none(self):
        assert AdaptiveForecaster().predict() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveForecaster(error_decay=0.0)
        with pytest.raises(ValueError):
            AdaptiveForecaster(bank=[])
        with pytest.raises(ValueError):
            AdaptiveForecaster().update(0.0)

    def test_constant_series_predicts_constant(self):
        f = AdaptiveForecaster()
        for _ in range(10):
            f.update(1000.0)
        assert f.predict() == pytest.approx(1000.0)

    def test_picks_mean_for_noisy_stationary_series(self):
        """On alternating noise around a level, window predictors beat
        last-value, and the adaptive forecast lands near the level."""
        f = AdaptiveForecaster()
        series = [100.0, 200.0] * 20
        for value in series:
            f.update(value)
        prediction = f.predict()
        assert 110.0 < prediction < 190.0

    def test_tracks_regime_change(self):
        """After a persistent shift, the forecast must follow."""
        f = AdaptiveForecaster()
        for _ in range(20):
            f.update(100.0)
        for _ in range(20):
            f.update(1000.0)
        assert f.predict() > 500.0

    def test_best_predictor_name(self):
        f = AdaptiveForecaster()
        assert f.best_predictor_name is None
        for _ in range(5):
            f.update(10.0)
        assert f.best_predictor_name in {
            "last",
            "mean",
            "median",
            "ewma",
        }

    def test_default_bank_composition(self):
        names = [p.name for p in default_bank()]
        assert "last" in names
        assert "mean" in names
        assert "median" in names
        assert "ewma" in names


class TestMonitoringIntegration:
    def test_forecast_mode_validation(self, env):
        from repro.monitor.system import MonitoringConfig, MonitoringSystem
        from repro.net.network import Network

        with pytest.raises(ValueError):
            MonitoringSystem(Network(env), MonitoringConfig(forecast="magic"))

    def test_estimate_uses_forecast(self, env):
        from repro.monitor.system import MonitoringConfig, MonitoringSystem
        from repro.net.host import Host
        from repro.net.link import Link
        from repro.net.network import Network
        from repro.traces import constant_trace

        net = Network(env)
        for name in ("a", "b"):
            net.add_host(Host(env, name))
        net.add_link(Link("a", "b", constant_trace(1000.0)))
        monitoring = MonitoringSystem(net, MonitoringConfig(forecast="mean"))
        cache = monitoring.cache_for("a")
        cache.update("a", "b", 100.0, now=1.0)
        cache.update("a", "b", 300.0, now=2.0)
        estimate = monitoring.estimate("a", "a", "b", now=3.0)
        # Sliding-mean forecast of [100, 300] = 200, not the raw last 300.
        assert estimate.bandwidth == pytest.approx(200.0)
