"""Bandwidth measurement cache semantics."""

import pytest

from repro.monitor.cache import BandwidthCache, CacheEntry


class TestBandwidthCache:
    def test_t_thres_validation(self):
        with pytest.raises(ValueError):
            BandwidthCache(t_thres=0)

    def test_smoothing_validation(self):
        with pytest.raises(ValueError):
            BandwidthCache(smoothing=0)
        with pytest.raises(ValueError):
            BandwidthCache(smoothing=1.5)

    def test_update_and_fresh_lookup(self):
        cache = BandwidthCache(t_thres=40)
        cache.update("a", "b", 1000.0, now=10.0)
        entry = cache.lookup("a", "b", now=30.0)
        assert entry is not None
        assert entry.bandwidth == 1000.0
        assert entry.age(30.0) == 20.0

    def test_lookup_symmetric(self):
        cache = BandwidthCache()
        cache.update("b", "a", 5.0, now=0.0)
        assert cache.lookup("a", "b", now=1.0).bandwidth == 5.0

    def test_timeout_makes_entry_stale(self):
        cache = BandwidthCache(t_thres=40)
        cache.update("a", "b", 1000.0, now=0.0)
        assert cache.lookup("a", "b", now=41.0) is None
        assert cache.lookup_any("a", "b").bandwidth == 1000.0

    def test_is_fresh(self):
        cache = BandwidthCache(t_thres=40)
        cache.update("a", "b", 1.0, now=0.0)
        assert cache.is_fresh("a", "b", now=40.0)
        assert not cache.is_fresh("a", "b", now=40.1)

    def test_newest_measurement_wins(self):
        cache = BandwidthCache()
        cache.update("a", "b", 100.0, now=0.0)
        assert cache.update("a", "b", 200.0, now=5.0)
        assert cache.lookup_any("a", "b").bandwidth == 200.0

    def test_older_update_rejected(self):
        cache = BandwidthCache()
        cache.update("a", "b", 100.0, now=10.0)
        assert not cache.update("a", "b", 50.0, now=5.0)
        assert cache.lookup_any("a", "b").bandwidth == 100.0

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            BandwidthCache().update("a", "b", -1.0, now=0.0)

    def test_smoothing_blends_recent_measurements(self):
        cache = BandwidthCache(t_thres=40, smoothing=0.5)
        cache.update("a", "b", 100.0, now=0.0)
        cache.update("a", "b", 200.0, now=10.0)
        assert cache.lookup_any("a", "b").bandwidth == pytest.approx(150.0)

    def test_smoothing_skipped_beyond_horizon(self):
        cache = BandwidthCache(t_thres=40, smoothing=0.5)  # horizon 160s
        cache.update("a", "b", 100.0, now=0.0)
        cache.update("a", "b", 200.0, now=1000.0)
        assert cache.lookup_any("a", "b").bandwidth == 200.0

    def test_force_set_bypasses_smoothing(self):
        cache = BandwidthCache(smoothing=0.5)
        cache.update("a", "b", 100.0, now=0.0)
        cache.force_set("a", "b", 500.0, now=1.0)
        assert cache.lookup_any("a", "b").bandwidth == 500.0

    def test_merge_entry_newest_wins(self):
        cache = BandwidthCache()
        cache.update("a", "b", 100.0, now=10.0)
        stale = CacheEntry(("a", "b"), 999.0, measured_at=5.0)
        assert not cache.merge_entry(stale)
        fresh = CacheEntry(("a", "b"), 300.0, measured_at=20.0)
        assert cache.merge_entry(fresh)
        assert cache.lookup_any("a", "b").bandwidth == 300.0

    def test_freshest_ordering_and_limit(self):
        cache = BandwidthCache()
        cache.update("a", "b", 1.0, now=1.0)
        cache.update("a", "c", 2.0, now=3.0)
        cache.update("b", "c", 3.0, now=2.0)
        top2 = cache.freshest(2)
        assert [e.pair for e in top2] == [("a", "c"), ("b", "c")]

    def test_evict_older_than(self):
        cache = BandwidthCache()
        cache.update("a", "b", 1.0, now=1.0)
        cache.update("a", "c", 2.0, now=10.0)
        assert cache.evict_older_than(5.0) == 1
        assert len(cache) == 1

    def test_iteration(self):
        cache = BandwidthCache()
        cache.update("a", "b", 1.0, now=0.0)
        assert [e.pair for e in cache] == [("a", "b")]
