"""Piggyback encoding/decoding and budget enforcement."""

import pytest

from repro.monitor.cache import BandwidthCache, CacheEntry
from repro.monitor.piggyback import (
    ENTRY_BYTES,
    PIGGYBACK_BUDGET_BYTES,
    decode_piggyback,
    encode_piggyback,
)


def filled_cache(n_entries, start_time=0.0):
    cache = BandwidthCache()
    for i in range(n_entries):
        cache.update(f"h{i}", f"h{i + 100}", float(i + 1), now=start_time + i)
    return cache


class TestEncode:
    def test_empty_cache_encodes_to_none(self):
        assert encode_piggyback(BandwidthCache()) is None

    def test_budget_too_small_returns_none(self):
        cache = filled_cache(3)
        assert encode_piggyback(cache, budget=ENTRY_BYTES - 1) is None

    def test_fits_within_budget(self):
        cache = filled_cache(100)
        payload = encode_piggyback(cache, budget=PIGGYBACK_BUDGET_BYTES)
        max_entries = PIGGYBACK_BUDGET_BYTES // ENTRY_BYTES
        assert len(payload["entries"]) == max_entries
        assert payload["bytes"] == max_entries * ENTRY_BYTES
        assert payload["bytes"] <= PIGGYBACK_BUDGET_BYTES

    def test_freshest_entries_selected(self):
        cache = filled_cache(100)
        payload = encode_piggyback(cache, budget=2 * ENTRY_BYTES)
        measured = [e.measured_at for e in payload["entries"]]
        assert measured == [99.0, 98.0]

    def test_small_cache_encodes_fully(self):
        cache = filled_cache(3)
        payload = encode_piggyback(cache)
        assert len(payload["entries"]) == 3
        assert payload["bytes"] == 3 * ENTRY_BYTES


class TestDecode:
    def test_merges_new_entries(self):
        src = filled_cache(5)
        dst = BandwidthCache()
        payload = encode_piggyback(src)
        assert decode_piggyback(dst, payload) == 5
        assert len(dst) == 5

    def test_does_not_overwrite_newer(self):
        src = BandwidthCache()
        src.update("a", "b", 100.0, now=1.0)
        dst = BandwidthCache()
        dst.update("a", "b", 500.0, now=10.0)
        payload = encode_piggyback(src)
        assert decode_piggyback(dst, payload) == 0
        assert dst.lookup_any("a", "b").bandwidth == 500.0

    def test_rejects_foreign_entries(self):
        dst = BandwidthCache()
        with pytest.raises(TypeError):
            decode_piggyback(dst, {"entries": [("a", "b", 1.0)]})

    def test_roundtrip_preserves_values(self):
        src = filled_cache(4)
        dst = BandwidthCache()
        decode_piggyback(dst, encode_piggyback(src))
        for entry in src:
            copied = dst.lookup_any(*entry.pair)
            assert copied.bandwidth == entry.bandwidth
            assert copied.measured_at == entry.measured_at
