"""Overload knobs at defaults leave the engine bit-identical.

The overload-protection layer (admission control, deadlines, retry
budgets, circuit breakers — :mod:`repro.workload.overload`) must be
*invisible* when nothing is configured: a workload spec with no
``overload`` policy and no per-class deadlines/SLOs takes exactly the
pre-overload code paths.  This module pins that with a golden generated
before the layer existed: the exact and streaming fleet summaries and a
sha256 digest of the normalized obs stream, for a chaos-faulted fleet
whose mix covers all four placement algorithms.

Regenerate (only when an *intentional* engine change lands)::

    PYTHONPATH=src python tests/workload/test_defaults_equivalence.py --regen
"""

import hashlib
import json
from dataclasses import replace
from pathlib import Path

from repro.engine.config import Algorithm
from repro.faults import reference_chaos_plan
from repro.obs import Tracer
from repro.workload import OpenLoop, QueryClass, WorkloadSpec, run_workload

GOLDEN_PATH = Path(__file__).parent / "data" / "defaults_equivalence.json"


def golden_spec() -> WorkloadSpec:
    """A small chaos-faulted fleet whose mix covers all four algorithms."""
    classes = tuple(
        QueryClass(name=algorithm.value, algorithm=algorithm)
        for algorithm in Algorithm
    )
    hosts = (*[f"h{i}" for i in range(4)], "client")
    return WorkloadSpec(
        classes=classes,
        num_clients=4,
        queries_per_client=2,
        arrivals=OpenLoop(rate=0.01, process="poisson"),
        seed=11,
        num_servers=4,
        images_per_server=3,
        fault_plan=reference_chaos_plan(hosts, seed=3),
    )


def stream_digest(events) -> str:
    """Content hash of an obs stream with run-relative message uids."""
    uids = sorted({e["uid"] for e in events if "uid" in e})
    rank = {uid: i for i, uid in enumerate(uids)}
    normalized = [
        {**e, "uid": rank[e["uid"]]} if "uid" in e else e for e in events
    ]
    return hashlib.sha256(
        json.dumps(normalized, sort_keys=True).encode()
    ).hexdigest()


def compute_current() -> dict:
    """What the engine produces today for the golden spec."""
    spec = golden_spec()
    tracer = Tracer()
    exact = run_workload(spec, tracer=tracer)
    streaming = run_workload(replace(spec, metrics_mode="streaming"))
    algorithms = sorted({q["algorithm"] for q in exact.fleet["queries"]})
    return {
        "algorithms": algorithms,
        "exact_summary": exact.fleet,
        "streaming_summary": streaming.fleet,
        "obs_digest": stream_digest(tracer.events),
    }


def test_defaults_are_bit_identical_to_pre_overload_golden():
    golden = json.loads(GOLDEN_PATH.read_text())
    current = compute_current()
    assert current["algorithms"] == golden["algorithms"]
    # The mix must genuinely exercise every algorithm, faults included.
    assert len(golden["algorithms"]) == len(Algorithm)
    assert current["exact_summary"] == golden["exact_summary"]
    assert current["streaming_summary"] == golden["streaming_summary"]
    assert current["obs_digest"] == golden["obs_digest"]


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        raise SystemExit("pass --regen to rewrite the golden")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(compute_current(), indent=2) + "\n")
    print(f"golden written to {GOLDEN_PATH}")
