"""Mergeable quantile sketches and order-free sums."""

import itertools
import math
import pickle
import random

import pytest

from repro.workload.sketch import OrderFreeSum, QuantileSketch, exact_percentiles


def latencies(n, seed=7):
    """A deterministic heavy-tailed sample, latency-like."""
    rng = random.Random(seed)
    return [rng.lognormvariate(4.0, 1.0) for _ in range(n)]


class TestOrderFreeSum:
    def test_single_part_is_plain_accumulation(self):
        acc = OrderFreeSum()
        plain = 0.0
        for v in latencies(100):
            acc.add(v)
            plain += v
        assert acc.value == plain
        assert len(acc.parts) == 1

    def test_merge_is_permutation_invariant(self):
        values = latencies(60)
        shards = [values[i::3] for i in range(3)]
        totals = set()
        for order in itertools.permutations(range(3)):
            parts = []
            for i in order:
                s = OrderFreeSum()
                for v in shards[i]:
                    s.add(v)
                parts.append(s)
            merged = parts[0]
            for other in parts[1:]:
                merged.merge(other)
            totals.add(merged.value)
        assert len(totals) == 1
        assert math.isclose(totals.pop(), math.fsum(values), rel_tol=1e-12)

    def test_pickle_roundtrip(self):
        s = OrderFreeSum([1.5, 2.5])
        copy = pickle.loads(pickle.dumps(s))
        assert copy.parts == s.parts
        assert copy.value == s.value


class TestQuantileSketch:
    def test_deterministic_state(self):
        a, b = QuantileSketch(0.01), QuantileSketch(0.01)
        for v in latencies(500):
            a.add(v)
            b.add(v)
        assert a.to_state() == b.to_state()
        assert a.percentile(95) == b.percentile(95)

    def test_error_bound_vs_exact(self):
        values = latencies(5000)
        eps = 0.01
        sketch = QuantileSketch(eps)
        sketch.extend(values)
        exact = exact_percentiles(values, (50, 95, 99))
        for p, truth in zip((50, 95, 99), exact):
            estimate = sketch.percentile(p)
            assert abs(estimate - truth) <= 2 * eps * truth

    def test_min_max_mean_are_exact(self):
        values = latencies(300)
        sketch = QuantileSketch(0.02)
        sketch.extend(values)
        assert sketch.min == min(values)
        assert sketch.max == max(values)
        assert math.isclose(sketch.mean, math.fsum(values) / len(values),
                            rel_tol=1e-12)

    def test_merge_permutation_invariant(self):
        values = latencies(900)
        shards = [values[i::4] for i in range(4)]
        states = set()
        for order in itertools.permutations(range(4)):
            parts = []
            for i in order:
                s = QuantileSketch(0.01)
                s.extend(shards[i])
                parts.append(s)
            merged = parts[0]
            for other in parts[1:]:
                merged.merge(other)
            states.add(repr(sorted(merged.to_state()["buckets"].items())))
        assert len(states) == 1

    def test_merge_associative(self):
        shards = [latencies(50, seed=s) for s in range(3)]

        def sketch_of(values):
            s = QuantileSketch(0.01)
            s.extend(values)
            return s

        left = sketch_of(shards[0]).merge(sketch_of(shards[1]))
        left = left.merge(sketch_of(shards[2]))
        right_tail = sketch_of(shards[1]).merge(sketch_of(shards[2]))
        right = sketch_of(shards[0]).merge(right_tail)
        assert left.to_state() == right.to_state()

    def test_merged_equals_single_pass(self):
        values = latencies(400)
        one = QuantileSketch(0.01)
        one.extend(values)
        halves = QuantileSketch(0.01)
        other = QuantileSketch(0.01)
        halves.extend(values[: len(values) // 2])
        other.extend(values[len(values) // 2:])
        halves.merge(other)
        # The bucket histogram is identical; only the fsum partition of
        # the running sum reflects the merge structure.
        assert halves.to_state()["buckets"] == one.to_state()["buckets"]
        assert halves.count == one.count
        assert math.isclose(halves.sum, one.sum, rel_tol=1e-12)
        for p in (50, 95, 99):
            assert halves.percentile(p) == one.percentile(p)

    def test_rejects_negative_and_non_finite(self):
        sketch = QuantileSketch(0.01)
        with pytest.raises(ValueError):
            sketch.add(-1.0)
        with pytest.raises(ValueError):
            sketch.add(float("nan"))

    def test_rejects_bad_relative_error(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.0)
        with pytest.raises(ValueError):
            QuantileSketch(1.0)

    def test_merge_requires_matching_error(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))

    def test_empty_quantiles_are_none(self):
        sketch = QuantileSketch(0.01)
        assert sketch.count == 0
        assert sketch.percentile(50) is None
        assert sketch.mean is None

    def test_state_and_pickle_roundtrip(self):
        sketch = QuantileSketch(0.01)
        sketch.extend(latencies(200))
        rebuilt = QuantileSketch.from_state(sketch.to_state())
        assert rebuilt.to_state() == sketch.to_state()
        assert rebuilt.percentile(99) == sketch.percentile(99)
        pickled = pickle.loads(pickle.dumps(sketch))
        assert pickled.to_state() == sketch.to_state()


class TestExactPercentiles:
    def test_nearest_rank(self):
        # rank = round(q * (n - 1)), the same convention the exact
        # latency block has always used.
        values = list(range(1, 101))
        assert exact_percentiles(values, (50, 95, 99)) == [51.0, 95.0, 99.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exact_percentiles([], (50,))
