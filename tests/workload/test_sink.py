"""The MetricsSink funnel: exact and streaming fleet metrics."""

import copy
import itertools
import json
import random

import pytest

from repro.engine.config import Algorithm
from repro.workload import (
    ClosedLoop,
    ExactFleetMetrics,
    QueryClass,
    QueryStats,
    StreamingFleetMetrics,
    WorkloadSpec,
    client_index_of,
    fleet_metrics_for,
    merge_sinks,
    run_workload,
)


def tiny_spec(**overrides):
    defaults = dict(
        classes=(QueryClass(name="os", algorithm=Algorithm.ONE_SHOT),),
        num_clients=3,
        queries_per_client=2,
        arrivals=ClosedLoop(),
        seed=11,
        num_servers=4,
        images_per_server=2,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


def synthetic_stats(n, num_clients, seed=3):
    """Deterministic finished/truncated QueryStats over a population."""
    rng = random.Random(seed)
    stats = []
    for i in range(n):
        client = i % num_clients
        issued = 10.0 * i
        truncated = rng.random() < 0.1
        stats.append(
            QueryStats(
                query_id=f"c{client}:{i // num_clients}",
                class_name="os" if i % 2 else "gl",
                algorithm="one-shot" if i % 2 else "global",
                issued_at=issued,
                completion_time=None if truncated else issued + rng.uniform(50, 500),
                images_delivered=8,
                truncated=truncated,
                relocations=rng.randrange(3),
                aborted_relocations=0,
                bytes_on_wire=float(rng.randrange(10**6)),
            )
        )
    return stats


class TestQueryStats:
    def test_latency_and_finished(self):
        done = QueryStats(
            query_id="c0:0", class_name="os", algorithm="one-shot",
            issued_at=5.0, completion_time=25.0, images_delivered=4,
            truncated=False, relocations=0, aborted_relocations=0,
            bytes_on_wire=0.0,
        )
        assert done.finished and done.latency == 20.0
        trunc = QueryStats(
            query_id="c1:0", class_name="os", algorithm="one-shot",
            issued_at=5.0, completion_time=None, images_delivered=0,
            truncated=True, relocations=0, aborted_relocations=0,
            bytes_on_wire=0.0,
        )
        assert not trunc.finished and trunc.latency is None

    def test_client_index_of(self):
        assert client_index_of("c0:0") == 0
        assert client_index_of("c17:3") == 17


class TestModeSelection:
    def test_threshold_picks_exact_or_streaming(self):
        exact = fleet_metrics_for(scheduled=10, num_clients=5)
        assert isinstance(exact, ExactFleetMetrics)
        streaming = fleet_metrics_for(
            scheduled=10, num_clients=5, exact_threshold=5
        )
        assert isinstance(streaming, StreamingFleetMetrics)

    def test_forced_modes(self):
        assert isinstance(
            fleet_metrics_for(scheduled=10**6, num_clients=5, mode="exact"),
            ExactFleetMetrics,
        )
        assert isinstance(
            fleet_metrics_for(scheduled=1, num_clients=5, mode="streaming"),
            StreamingFleetMetrics,
        )
        with pytest.raises(ValueError):
            fleet_metrics_for(scheduled=1, num_clients=5, mode="bogus")

    def test_spec_builds_its_sink(self):
        spec = tiny_spec(metrics_mode="streaming")
        assert spec.build_metrics().mode == "streaming"
        assert tiny_spec().build_metrics().mode == "exact"


class TestExactSink:
    def test_small_fleet_summary_unchanged(self):
        """The sink path is byte-identical to the pre-sink goldens."""
        result = run_workload(tiny_spec())
        assert result.fleet["workload_schema"] == 1
        assert result.metrics.mode == "exact"
        assert result.fleet["completed"] == 6
        assert result.fleet == result.metrics.summary(
            result.elapsed, scheduled=result.fleet["scheduled"]
        )

    def test_merge_resorts_stats(self):
        stats = synthetic_stats(8, 4)
        one = ExactFleetMetrics()
        for s in stats:
            one.query_finished(s)
        shards = [ExactFleetMetrics(), ExactFleetMetrics()]
        for i, s in enumerate(stats):
            shards[i % 2].query_finished(s)
        merged = merge_sinks([shards[1], shards[0]])
        assert merged.summary(100.0) == one.summary(100.0)


class TestStreamingSink:
    def feed(self, sink, stats):
        for s in stats:
            sink.query_started(s.query_id, s.class_name, s.issued_at)
            sink.query_finished(s)

    def test_summary_shape(self):
        sink = StreamingFleetMetrics(num_clients=4)
        self.feed(sink, synthetic_stats(20, 4))
        sink.link_transfer("h0", "h1", 1000.0, 2.0, "c0:0")
        summary = sink.summary(500.0, scheduled=20)
        assert summary["workload_schema"] == 2
        assert summary["mode"] == "streaming"
        assert set(summary["latency"]) == {
            "count", "mean", "p50", "p95", "p99", "max",
        }
        assert summary["clients"]["total"] == 4
        assert "queries" not in summary
        json.dumps(summary)  # JSON-safe

    def test_matches_exact_within_error(self):
        stats = synthetic_stats(400, 8)
        exact = ExactFleetMetrics()
        sink = StreamingFleetMetrics(num_clients=8, relative_error=0.01)
        for s in stats:
            exact.query_finished(s)
        self.feed(sink, stats)
        exact_summary = exact.summary(5000.0)
        streaming_summary = sink.summary(5000.0)
        assert streaming_summary["completed"] == exact_summary["completed"]
        assert streaming_summary["truncated"] == exact_summary["truncated"]
        for key in ("p50", "p95", "p99"):
            truth = exact_summary["latency"][key]
            estimate = streaming_summary["latency"][key]
            assert abs(estimate - truth) <= 2 * 0.01 * truth
        assert streaming_summary["latency"]["max"] == (
            exact_summary["latency"]["max"]
        )
        assert abs(
            streaming_summary["fairness_jain"]
            - exact_summary["fairness_jain"]
        ) < 1e-9

    def test_shard_merge_is_order_invariant(self):
        stats = synthetic_stats(60, 6)
        shards = []
        for i in range(3):
            sink = StreamingFleetMetrics(num_clients=6)
            self.feed(sink, [s for s in stats if client_index_of(s.query_id) % 3 == i])
            sink.link_transfer("h0", f"h{i + 1}", 100.0 * (i + 1), 1.0)
            shards.append(sink)
        summaries = set()
        for order in itertools.permutations(range(3)):
            merged = merge_sinks([copy.deepcopy(shards[i]) for i in order])
            summaries.add(json.dumps(merged.summary(600.0, scheduled=60)))
        assert len(summaries) == 1

    def test_merge_guards(self):
        with pytest.raises(ValueError, match="population"):
            StreamingFleetMetrics(4).merge(StreamingFleetMetrics(5))
        with pytest.raises(ValueError, match="accuracy"):
            StreamingFleetMetrics(4, relative_error=0.01).merge(
                StreamingFleetMetrics(4, relative_error=0.02)
            )
        with pytest.raises(TypeError):
            StreamingFleetMetrics(4).merge(ExactFleetMetrics())
        with pytest.raises(TypeError):
            ExactFleetMetrics().merge(StreamingFleetMetrics(4))

    def test_link_bytes_attributed_by_class(self):
        sink = StreamingFleetMetrics(num_clients=2)
        sink.query_started("c0:0", "gl", 0.0)
        sink.link_transfer("h1", "h0", 500.0, 1.0, "c0:0")
        sink.link_transfer("h0", "h1", 300.0, 1.0, "c0:0")
        summary = sink.summary(10.0)
        link = summary["links"]["h0--h1"]
        assert link["bytes"] == 800.0
        assert link["classes"] == {"gl": 800.0}
        assert summary["bytes_on_wire"] == 800.0

    def test_streaming_workload_run(self):
        result = run_workload(tiny_spec(metrics_mode="streaming"))
        fleet = result.fleet
        assert fleet["workload_schema"] == 2
        assert fleet["completed"] == 6
        assert fleet["latency"]["count"] == 6
        assert result.queries == []

    def test_live_streaming_close_to_exact_run(self):
        import math

        exact = run_workload(tiny_spec()).fleet
        streaming = run_workload(tiny_spec(metrics_mode="streaming")).fleet
        assert streaming["completed"] == exact["completed"]
        lats = sorted(
            q["latency"] for q in exact["queries"] if q["latency"] is not None
        )
        # At tiny n the sketch and the exact block round fractional ranks
        # differently, so accept either adjacent order statistic.
        for p in (50, 95, 99):
            rank = (p / 100.0) * (len(lats) - 1)
            candidates = {lats[math.floor(rank)], lats[math.ceil(rank)]}
            estimate = streaming["latency"][f"p{p}"]
            assert any(
                abs(estimate - truth) <= 2 * 0.01 * truth
                for truth in candidates
            )


class TestMergeSinks:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_sinks([])
