"""Arrival processes: seeding, disciplines, and edge cases."""

import pytest

from repro.workload.arrivals import (
    ClosedLoop,
    OpenLoop,
    arrival_rng,
    open_loop_times,
    think_seconds,
)


class TestOpenLoop:
    def test_poisson_times_are_seed_reproducible(self):
        arrivals = OpenLoop(rate=0.5, process="poisson")
        a = open_loop_times(arrivals, 20, arrival_rng(7, 0))
        b = open_loop_times(arrivals, 20, arrival_rng(7, 0))
        assert a == b

    def test_clients_get_independent_streams(self):
        arrivals = OpenLoop(rate=0.5, process="poisson")
        a = open_loop_times(arrivals, 20, arrival_rng(7, 0))
        b = open_loop_times(arrivals, 20, arrival_rng(7, 1))
        assert a != b

    def test_adding_a_client_never_perturbs_existing_ones(self):
        arrivals = OpenLoop(rate=0.5, process="poisson")
        before = [open_loop_times(arrivals, 5, arrival_rng(7, c)) for c in range(2)]
        after = [open_loop_times(arrivals, 5, arrival_rng(7, c)) for c in range(3)]
        assert after[:2] == before

    def test_poisson_times_ascend_and_mean_roughly_matches_rate(self):
        arrivals = OpenLoop(rate=0.1, process="poisson")
        times = open_loop_times(arrivals, 400, arrival_rng(1, 0))
        assert times == sorted(times)
        assert all(t > 0 for t in times)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(10.0, rel=0.2)

    def test_fixed_times_are_exact_multiples(self):
        arrivals = OpenLoop(rate=0.25, process="fixed")
        times = open_loop_times(arrivals, 4, arrival_rng(1, 0))
        assert times == [0.0, 4.0, 8.0, 12.0]

    def test_zero_count_is_empty(self):
        arrivals = OpenLoop(rate=1.0)
        assert open_loop_times(arrivals, 0, arrival_rng(0, 0)) == []

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            OpenLoop(rate=0.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            OpenLoop(rate=-1.0)

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError, match="process"):
            OpenLoop(rate=1.0, process="uniform")


class TestClosedLoop:
    def test_fixed_think_is_exact(self):
        arrivals = ClosedLoop(think_time=3.5, process="fixed")
        rng = arrival_rng(0, 0)
        assert think_seconds(arrivals, rng) == 3.5
        assert think_seconds(arrivals, rng) == 3.5

    def test_poisson_think_is_seed_reproducible(self):
        arrivals = ClosedLoop(think_time=10.0, process="poisson")
        a = [think_seconds(arrivals, arrival_rng(3, 0)) for _ in range(1)]
        b = [think_seconds(arrivals, arrival_rng(3, 0)) for _ in range(1)]
        assert a == b

    def test_poisson_think_varies_across_draws(self):
        arrivals = ClosedLoop(think_time=10.0, process="poisson")
        rng = arrival_rng(3, 0)
        draws = {think_seconds(arrivals, rng) for _ in range(10)}
        assert len(draws) > 1

    def test_zero_think_is_back_to_back(self):
        assert think_seconds(ClosedLoop(think_time=0.0), arrival_rng(0, 0)) == 0.0

    def test_negative_think_rejected(self):
        with pytest.raises(ValueError, match="think_time"):
            ClosedLoop(think_time=-1.0)

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError, match="process"):
            ClosedLoop(think_time=1.0, process="gamma")
