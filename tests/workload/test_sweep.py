"""Workload sweeps: serial/parallel parity and task validation."""

import pytest

from repro.engine.config import Algorithm
from repro.workload import ClosedLoop, QueryClass, WorkloadSpec
from repro.workload.sweep import run_workload_sweep


def tiny_workload(seed):
    return WorkloadSpec(
        classes=(QueryClass(name="os", algorithm=Algorithm.ONE_SHOT),),
        num_clients=2,
        queries_per_client=1,
        arrivals=ClosedLoop(),
        seed=seed,
        num_servers=4,
        images_per_server=2,
    )


class TestRunWorkloadSweep:
    def test_results_keyed_by_name_in_task_order(self):
        tasks = [("a", tiny_workload(1)), ("b", tiny_workload(2))]
        results = run_workload_sweep(tasks, workers=1)
        assert list(results) == ["a", "b"]
        for fleet in results.values():
            assert fleet["workload_schema"] == 1
            assert fleet["completed"] == 2

    def test_parallel_matches_serial(self):
        tasks = [("a", tiny_workload(1)), ("b", tiny_workload(2))]
        serial = run_workload_sweep(tasks, workers=1)
        parallel = run_workload_sweep(tasks, workers=2)
        assert parallel == serial

    def test_duplicate_names_rejected(self):
        tasks = [("a", tiny_workload(1)), ("a", tiny_workload(2))]
        with pytest.raises(ValueError, match="duplicate"):
            run_workload_sweep(tasks, workers=1)

    def test_non_spec_task_rejected(self):
        with pytest.raises(ValueError, match="WorkloadSpec"):
            run_workload_sweep([("a", object())], workers=1)

    def test_progress_fires_in_task_order(self):
        tasks = [("a", tiny_workload(1)), ("b", tiny_workload(2))]
        seen = []
        run_workload_sweep(
            tasks, workers=1, progress=lambda name, fleet: seen.append(name)
        )
        assert seen == ["a", "b"]
