"""Client-hash sharded fleets: partitioning and order-invariant merges."""

import itertools
import json

import pytest

from repro.engine.config import Algorithm
from repro.workload import (
    ClosedLoop,
    FleetPolicy,
    OverloadPolicy,
    QueryClass,
    WorkloadSpec,
    merge_sinks,
    run_workload,
    run_workload_sharded,
    run_workload_sweep,
    shard_clients,
    shard_of,
)


def tiny_spec(**overrides):
    defaults = dict(
        classes=(QueryClass(name="os", algorithm=Algorithm.ONE_SHOT),),
        num_clients=5,
        queries_per_client=1,
        arrivals=ClosedLoop(),
        seed=4,
        num_servers=4,
        images_per_server=2,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestShardOf:
    def test_deterministic_and_in_range(self):
        for client in range(100):
            shard = shard_of(client, 7)
            assert 0 <= shard < 7
            assert shard == shard_of(client, 7)

    def test_spreads_clients(self):
        assignments = {shard_of(c, 4) for c in range(64)}
        assert assignments == {0, 1, 2, 3}


class TestShardClients:
    def test_partition_is_disjoint_and_complete(self):
        spec = tiny_spec(num_clients=16)
        shards = shard_clients(spec, 3)
        seen = [c for s in shards for c in s.client_subset]
        assert sorted(seen) == list(range(16))
        assert len(seen) == len(set(seen))

    def test_mode_resolved_against_full_fleet(self):
        # 16 queries < default threshold: every shard is forced exact
        # even though each sub-population is tiny.
        for shard in shard_clients(tiny_spec(num_clients=16), 3):
            assert shard.metrics_mode == "exact"
        # Force streaming: shards inherit it.
        spec = tiny_spec(num_clients=16, metrics_mode="streaming")
        for shard in shard_clients(spec, 3):
            assert shard.metrics_mode == "streaming"
        # Above the threshold the full fleet resolves streaming.
        spec = tiny_spec(num_clients=16, exact_metrics_threshold=4)
        for shard in shard_clients(spec, 3):
            assert shard.metrics_mode == "streaming"

    def test_empty_buckets_dropped(self):
        shards = shard_clients(tiny_spec(num_clients=2), 8)
        assert 1 <= len(shards) <= 2
        total = sum(len(s.client_subset) for s in shards)
        assert total == 2

    def test_bad_shard_count(self):
        with pytest.raises(ValueError):
            shard_clients(tiny_spec(), 0)


class TestRunWorkloadSharded:
    def test_serial_matches_parallel(self):
        spec = tiny_spec()
        serial = run_workload_sharded(spec, 3, workers=1)
        parallel = run_workload_sharded(spec, 3, workers=3)
        assert serial.fleet == parallel.fleet
        assert serial.fleet["scheduled"] == 5

    def test_shard_order_does_not_matter(self):
        spec = tiny_spec(metrics_mode="streaming")
        shard_specs = shard_clients(spec, 3)
        sinks = [run_workload(s).metrics for s in shard_specs]
        elapsed = 1000.0
        summaries = set()
        for order in itertools.permutations(range(len(sinks))):
            # Re-run each shard so merges never mutate shared sinks.
            parts = [run_workload(shard_specs[i]).metrics for i in order]
            merged = merge_sinks(parts)
            summaries.add(
                json.dumps(merged.summary(elapsed, scheduled=5))
            )
        assert len(summaries) == 1
        assert len(sinks) >= 2  # the permutations actually permuted

    def test_streaming_sharded_run(self):
        spec = tiny_spec(metrics_mode="streaming")
        result = run_workload_sharded(spec, 2, workers=1)
        assert result.fleet["workload_schema"] == 2
        assert result.fleet["launched"] == 5
        assert result.queries == []

    def test_single_shard_equals_unsharded_streaming(self):
        spec = tiny_spec(metrics_mode="streaming")
        whole = run_workload(spec)
        sharded = run_workload_sharded(spec, 1, workers=1)
        assert sharded.fleet == whole.fleet


def overloaded_spec(**overrides):
    """A fleet whose shards all move resilience counters.

    The 40 s class deadline is below every query's completion time, so
    each shard sheds nothing but aborts and retries deterministically;
    the merged summary's ``resilience`` block must not depend on shard
    order.
    """
    defaults = dict(
        classes=(
            QueryClass(
                name="os",
                algorithm=Algorithm.ONE_SHOT,
                deadline=40.0,
                slo_target=30.0,
            ),
        ),
        num_clients=6,
        queries_per_client=2,
        arrivals=ClosedLoop(),
        seed=4,
        num_servers=4,
        images_per_server=2,
        overload=OverloadPolicy(retry_budget=1, retry_backoff=10.0),
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestShardedResilience:
    def test_resilience_merges_order_invariantly(self):
        # Admission is per-engine, so a sharded fleet is its own
        # scenario — but within it, any shard permutation (and any
        # worker count) must fold to the identical resilience block.
        spec = overloaded_spec()
        shard_specs = shard_clients(spec, 3)
        assert len(shard_specs) >= 2
        blocks = set()
        for order in itertools.permutations(range(len(shard_specs))):
            parts = [run_workload(shard_specs[i]).metrics for i in order]
            merged = merge_sinks(parts)
            summary = merged.summary(1000.0, scheduled=12)
            blocks.add(json.dumps(summary["resilience"], sort_keys=True))
        assert len(blocks) == 1
        block = json.loads(next(iter(blocks)))
        assert block["deadline_aborts"] > 0
        assert block["retries"] > 0
        assert block["per_class"]["os"]["slo_eligible"] >= 0

    def test_serial_matches_parallel_with_overload(self):
        spec = overloaded_spec()
        serial = run_workload_sharded(spec, 3, workers=1)
        parallel = run_workload_sharded(spec, 3, workers=3)
        assert serial.fleet == parallel.fleet
        assert serial.fleet["resilience"]["deadline_aborts"] > 0

    def test_streaming_shards_match_exact_shards(self):
        exact = run_workload_sharded(overloaded_spec(), 3, workers=1)
        streaming = run_workload_sharded(
            overloaded_spec(metrics_mode="streaming"), 3, workers=1
        )
        assert (
            exact.fleet["resilience"] == streaming.fleet["resilience"]
        )


def coordinated_spec(**overrides):
    """A fleet whose shards all move coordination counters.

    Replanning global queries under a one-token bucket with a slow
    refill guarantees grants *and* denies in every shard; the merged
    summary's ``fleet`` block must not depend on shard order.
    """
    defaults = dict(
        classes=(
            QueryClass(
                name="g",
                algorithm=Algorithm.GLOBAL,
                overrides={"relocation_period": 60.0},
            ),
        ),
        num_clients=4,
        queries_per_client=1,
        arrivals=ClosedLoop(),
        seed=9,
        num_servers=4,
        images_per_server=12,
        fleet=FleetPolicy(
            mode="coordinated", link_tokens=1.0, token_refill_seconds=600.0
        ),
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestShardedCoordination:
    def test_fleet_block_merges_order_invariantly(self):
        # Coordination is per-engine, so a sharded fleet is its own
        # scenario — but within it, any shard permutation must fold to
        # the identical fleet block (claims, grants, denies, bottleneck
        # histogram and planner-effort totals all commute).
        spec = coordinated_spec()
        shard_specs = shard_clients(spec, 3)
        assert len(shard_specs) >= 2
        blocks = set()
        for order in itertools.permutations(range(len(shard_specs))):
            parts = [run_workload(shard_specs[i]).metrics for i in order]
            merged = merge_sinks(parts)
            summary = merged.summary(10000.0, scheduled=4)
            blocks.add(json.dumps(summary["fleet"], sort_keys=True))
        assert len(blocks) == 1
        block = json.loads(next(iter(blocks)))
        assert block["claims"] == 4
        assert block["grants"] + block["denies"] > 0
        assert block["planner_candidates"] > 0
        assert block["planner_rounds"] > 0
        assert block["planner_links_queried"] > 0

    def test_serial_matches_parallel_with_fleet(self):
        spec = coordinated_spec()
        serial = run_workload_sharded(spec, 3, workers=1)
        parallel = run_workload_sharded(spec, 3, workers=3)
        assert serial.fleet == parallel.fleet
        assert serial.fleet["fleet"]["claims"] == 4

    def test_streaming_shards_match_exact_shards(self):
        exact = run_workload_sharded(coordinated_spec(), 3, workers=1)
        streaming = run_workload_sharded(
            coordinated_spec(metrics_mode="streaming"), 3, workers=1
        )
        assert exact.fleet["fleet"] == streaming.fleet["fleet"]


class TestSweepWithShards:
    def test_sweep_shards_param(self):
        tasks = [("a", tiny_spec(seed=1)), ("b", tiny_spec(seed=2))]
        results = run_workload_sweep(tasks, workers=1, shards=2)
        assert list(results) == ["a", "b"]
        for fleet in results.values():
            assert fleet["scheduled"] == 5

    def test_bad_shards_rejected(self):
        with pytest.raises(ValueError):
            run_workload_sweep([("a", tiny_spec())], shards=0)
