"""Fleet metrics: fairness, latency blocks, link usage, trace replay."""

import pytest

from repro.engine.metrics import RunMetrics
from repro.workload.metrics import (
    LinkUsage,
    LinkUsageRecorder,
    QueryOutcome,
    build_fleet_summary,
    jain_index,
)


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_perfectly_unfair(self):
        # One client gets everything: J -> 1/n.
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero_are_fair_by_convention(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_bounds(self):
        values = [1.0, 2.0, 3.0, 10.0]
        j = jain_index(values)
        assert 1.0 / len(values) <= j <= 1.0

    def test_none_entries_are_ignored(self):
        assert jain_index([None, 5.0, 5.0]) == pytest.approx(1.0)
        assert jain_index([None, None]) == 1.0

    def test_zero_mean_does_not_divide_by_zero(self):
        # All-zero means (every query truncated) must not raise.
        assert jain_index([0.0, 0.0, 0.0]) == 1.0


def outcome(query_id, arrivals, issued_at=0.0, truncated=False, relocations=0):
    metrics = RunMetrics(algorithm="one-shot", num_servers=2, images=len(arrivals))
    metrics.arrival_times = list(arrivals)
    metrics.truncated = truncated
    metrics.relocations = relocations
    return QueryOutcome(
        query_id=query_id,
        class_name="q",
        issued_at=issued_at,
        metrics=metrics,
    )


class TestFleetSummary:
    def test_latency_percentiles(self):
        outcomes = [
            outcome(f"c{i}:0", [10.0 * (i + 1)], issued_at=0.0) for i in range(4)
        ]
        fleet = build_fleet_summary(outcomes, {}, elapsed=100.0)
        assert fleet["latency"]["count"] == 4
        assert fleet["latency"]["mean"] == pytest.approx(25.0)
        assert fleet["latency"]["max"] == pytest.approx(40.0)
        assert fleet["latency"]["p50"] == pytest.approx(25.0)

    def test_truncated_queries_have_no_latency(self):
        outcomes = [
            outcome("c0:0", [10.0]),
            outcome("c1:0", [5.0], truncated=True),
        ]
        fleet = build_fleet_summary(outcomes, {}, elapsed=50.0)
        assert fleet["completed"] == 1
        assert fleet["truncated"] == 1
        assert fleet["latency"]["count"] == 1
        assert fleet["queries"][1]["latency"] is None

    def test_latency_subtracts_issue_time(self):
        fleet = build_fleet_summary(
            [outcome("c0:0", [30.0], issued_at=10.0)], {}, elapsed=30.0
        )
        assert fleet["queries"][0]["latency"] == pytest.approx(20.0)

    def test_per_client_grouping_and_fairness(self):
        outcomes = [
            outcome("c0:0", [10.0]),
            outcome("c0:1", [20.0]),
            outcome("c1:0", [15.0]),
        ]
        fleet = build_fleet_summary(outcomes, {}, elapsed=30.0)
        assert fleet["per_client"]["c0"]["queries"] == 2
        assert fleet["per_client"]["c0"]["mean_latency"] == pytest.approx(15.0)
        assert fleet["per_client"]["c1"]["mean_latency"] == pytest.approx(15.0)
        assert fleet["fairness_jain"] == pytest.approx(1.0)

    def test_relocation_aggregates(self):
        outcomes = [
            outcome("c0:0", [1.0], relocations=2),
            outcome("c1:0", [1.0], relocations=4),
        ]
        fleet = build_fleet_summary(outcomes, {}, elapsed=10.0)
        assert fleet["relocations"]["total"] == 6
        assert fleet["relocations"]["per_query_mean"] == pytest.approx(3.0)

    def test_link_block(self):
        usage = LinkUsage()
        usage.note(1000.0, 2.0, "c0:0")
        usage.note(500.0, 1.0, None)  # engine-internal, untagged
        fleet = build_fleet_summary(
            [outcome("c0:0", [1.0])], {("a", "b"): usage}, elapsed=10.0
        )
        entry = fleet["links"]["a--b"]
        assert entry["bytes"] == 1500.0
        assert entry["transfers"] == 2
        assert entry["utilization"] == pytest.approx(0.3)
        assert entry["queries"] == {"c0:0": 1000.0}

    def test_empty_fleet(self):
        fleet = build_fleet_summary([], {}, elapsed=0.0, scheduled=0)
        assert fleet["latency"]["mean"] is None
        assert fleet["fairness_jain"] == 1.0
        assert fleet["relocations"]["per_query_mean"] == 0.0

    def test_empty_fleet_shape_matches_populated(self):
        from repro.workload.metrics import LATENCY_KEYS

        empty = build_fleet_summary([], {}, elapsed=0.0, scheduled=0)
        # The latency block carries the full key set (None-valued), and
        # the per-client map is present-but-empty, not missing.
        assert tuple(empty["latency"]) == LATENCY_KEYS
        assert empty["per_client"] == {}
        assert empty["queries"] == []
        populated = build_fleet_summary(
            [outcome("c0:0", [10.0])], {}, elapsed=20.0, scheduled=1
        )
        assert set(populated) == set(empty)
        assert tuple(populated["latency"]) == LATENCY_KEYS


class TestLinkUsageRecorder:
    def test_canonicalizes_pairs(self):
        class Obs:
            def __init__(self, src, dst, query_id):
                self.src_host = src
                self.dst_host = dst
                self.wire_bytes = 100.0
                self.started = 0.0
                self.finished = 1.0
                self.query_id = query_id

        recorder = LinkUsageRecorder()
        recorder.observe(Obs("b", "a", "c0:0"))
        recorder.observe(Obs("a", "b", "c1:0"))
        assert list(recorder.links) == [("a", "b")]
        usage = recorder.links[("a", "b")]
        assert usage.transfers == 2
        assert usage.by_query == {"c0:0": 100.0, "c1:0": 100.0}
