"""A one-query workload is bit-identical to run_simulation.

This is the refactor's load-bearing guarantee: the workload engine adds
concurrency *around* the single-query machinery without perturbing it.
Metrics must match field-for-field and the trace event stream must match
record-for-record, modulo the ``query_id`` tag the workload adds (and
modulo the process-global message ``uid`` counter, which both traces
normalize to their own first uid).
"""

import pytest

from repro.engine.config import Algorithm
from repro.engine.simulation import run_simulation
from repro.faults.plan import FaultPlan, LinkOutage
from repro.obs.tracer import Tracer
from repro.workload import WorkloadSpec, run_workload
from tests.conftest import tiny_spec


def normalized_events(events):
    """Events with query_id stripped and uids rebased to the run's first."""
    uids = [e["uid"] for e in events if "uid" in e]
    base = min(uids) if uids else 0
    out = []
    for event in events:
        event = dict(event)
        event.pop("query_id", None)
        if "uid" in event:
            event["uid"] -= base
        out.append(event)
    return out


def run_both(sim_spec):
    single_tracer = Tracer()
    single = run_simulation(sim_spec, tracer=single_tracer)
    workload_tracer = Tracer()
    result = run_workload(
        WorkloadSpec.from_simulation_spec(sim_spec), tracer=workload_tracer
    )
    assert len(result.queries) == 1
    return single, single_tracer, result, workload_tracer


@pytest.mark.parametrize(
    "algorithm",
    [Algorithm.DOWNLOAD_ALL, Algorithm.ONE_SHOT, Algorithm.GLOBAL, Algorithm.LOCAL],
    ids=lambda a: a.value,
)
class TestIdentity:
    def test_metrics_and_trace_bit_identical(self, algorithm):
        sim_spec = tiny_spec(algorithm, images=5)
        single, single_tracer, result, workload_tracer = run_both(sim_spec)
        wrapped = result.queries[0].metrics

        assert wrapped.summary() == single.summary()
        assert wrapped.arrival_times == single.arrival_times
        assert normalized_events(workload_tracer.events) == normalized_events(
            single_tracer.events
        )

    def test_query_events_are_tagged(self, algorithm):
        sim_spec = tiny_spec(algorithm, images=5)
        tracer = Tracer()
        run_workload(WorkloadSpec.from_simulation_spec(sim_spec), tracer=tracer)
        tagged = [e for e in tracer.events if e.get("query_id") == "c0:0"]
        assert tagged, "workload events must carry the query_id tag"


class TestIdentityUnderFaults:
    def test_faulted_run_matches_too(self):
        plan = FaultPlan(
            link_outages=(LinkOutage(a="client", b="h0", start=5.0, end=15.0),)
        )
        sim_spec = tiny_spec(Algorithm.GLOBAL, images=5, faults=plan)
        single, single_tracer, result, workload_tracer = run_both(sim_spec)
        wrapped = result.queries[0].metrics

        assert wrapped.summary() == single.summary()
        assert wrapped.arrival_times == single.arrival_times
        assert normalized_events(workload_tracer.events) == normalized_events(
            single_tracer.events
        )

    def test_fleet_latency_matches_completion_time(self):
        sim_spec = tiny_spec(Algorithm.ONE_SHOT, images=5)
        result = run_workload(WorkloadSpec.from_simulation_spec(sim_spec))
        query = result.queries[0]
        # Issued at t=0, so latency is exactly the completion time.
        assert query.latency == query.metrics.completion_time
