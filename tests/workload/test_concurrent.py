"""Concurrent mixed-planner workloads on one shared network."""

import json

import pytest

from repro.engine.config import Algorithm
from repro.faults.plan import FaultPlan, LinkOutage
from repro.obs.tracer import Tracer
from repro.workload import (
    ClosedLoop,
    OpenLoop,
    QueryClass,
    WorkloadSpec,
    build_schedule,
    fleet_from_trace,
    run_workload,
)


def mixed_spec(**kwargs):
    """>= 8 queries, two planner kinds, faults on, fixed seed."""
    defaults = dict(
        classes=(
            QueryClass(name="gl", algorithm=Algorithm.GLOBAL, weight=1.0),
            QueryClass(name="os", algorithm=Algorithm.ONE_SHOT, weight=1.0),
        ),
        num_clients=4,
        queries_per_client=2,
        arrivals=ClosedLoop(think_time=2.0),
        seed=3,
        num_servers=4,
        images_per_server=3,
        fault_plan=FaultPlan(
            link_outages=(LinkOutage(a="client", b="h0", start=30.0, end=50.0),)
        ),
    )
    defaults.update(kwargs)
    return WorkloadSpec(**defaults)


class TestConcurrentRun:
    def test_mixed_planner_fleet_completes(self):
        result = run_workload(mixed_spec())
        assert result.fleet["scheduled"] == 8
        assert result.fleet["launched"] == 8
        assert result.fleet["completed"] == 8
        algorithms = {q.algorithm for q in result.queries}
        assert len(algorithms) >= 2
        assert all(q.latency is not None and q.latency > 0 for q in result.queries)

    def test_deterministic_under_fixed_seed(self):
        first = run_workload(mixed_spec())
        second = run_workload(mixed_spec())
        assert first.fleet == second.fleet
        assert [q.query_id for q in first.queries] == [
            q.query_id for q in second.queries
        ]

    def test_seed_changes_the_run(self):
        base = run_workload(mixed_spec())
        other = run_workload(mixed_spec(seed=4))
        assert base.fleet != other.fleet

    def test_fleet_summary_is_json_serializable(self):
        fleet = run_workload(mixed_spec()).fleet
        round_tripped = json.loads(json.dumps(fleet))
        assert round_tripped == fleet

    def test_fleet_schema_fields(self):
        fleet = run_workload(mixed_spec()).fleet
        assert fleet["workload_schema"] == 1
        assert set(fleet["latency"]) == {"count", "mean", "p50", "p95", "p99", "max"}
        assert 0.0 < fleet["fairness_jain"] <= 1.0
        assert fleet["links"], "shared links must record usage"
        for entry in fleet["links"].values():
            assert entry["bytes"] > 0 or entry["transfers"] == 0
            assert entry["utilization"] >= 0.0
        assert len(fleet["queries"]) == 8
        assert len(fleet["per_client"]) == 4

    def test_replay_from_trace_equals_live_summary(self):
        tracer = Tracer()
        live = run_workload(mixed_spec(), tracer=tracer)
        assert fleet_from_trace(tracer.events) == live.fleet

    def test_queries_are_namespaced_but_trace_ids_stay_plain(self):
        tracer = Tracer()
        run_workload(mixed_spec(), tracer=tracer)
        relocations = [e for e in tracer.events if e["type"] == "relocation"]
        for event in relocations:
            assert "/" not in event["actor"], (
                "runtime-level events must use plain (un-namespaced) actor ids"
            )


class TestContention:
    def test_shared_network_slows_the_fleet(self):
        """Two concurrent clients contend; one alone does not."""
        solo = run_workload(
            mixed_spec(num_clients=1, queries_per_client=1, fault_plan=None)
        )
        crowd = run_workload(
            mixed_spec(num_clients=6, queries_per_client=1, fault_plan=None)
        )
        assert crowd.fleet["latency"]["max"] > solo.fleet["latency"]["max"]

    def test_per_query_bytes_split_across_links(self):
        result = run_workload(mixed_spec(fault_plan=None))
        by_query_total = {}
        for entry in result.fleet["links"].values():
            for qid, nbytes in entry["queries"].items():
                by_query_total[qid] = by_query_total.get(qid, 0.0) + nbytes
        for query in result.queries:
            assert by_query_total[query.query_id] == pytest.approx(
                query.metrics.bytes_on_wire
            )


class TestOpenLoopWorkload:
    def test_open_loop_launches_at_precomputed_times(self):
        spec = mixed_spec(
            arrivals=OpenLoop(rate=0.02, process="poisson"), fault_plan=None
        )
        result = run_workload(spec)
        assert result.fleet["launched"] == 8
        issued = [q.issued_at for q in result.queries]
        assert issued == sorted(issued)
        assert len(set(issued)) > 1

    def test_fixed_rate_first_query_at_zero(self):
        spec = mixed_spec(
            arrivals=OpenLoop(rate=0.05, process="fixed"),
            queries_per_client=1,
            fault_plan=None,
        )
        result = run_workload(spec)
        assert all(q.issued_at == 0.0 for q in result.queries)


class TestEdges:
    def test_empty_population(self):
        result = run_workload(mixed_spec(num_clients=0))
        assert result.elapsed == 0.0
        assert result.queries == []
        assert result.fleet["scheduled"] == 0
        assert result.fleet["launched"] == 0
        assert result.fleet["fairness_jain"] == 1.0

    def test_schedule_covers_every_slot(self):
        schedule = build_schedule(mixed_spec())
        assert [s.query_id for s in schedule] == [
            f"c{c}:{o}" for c in range(4) for o in range(2)
        ]

    def test_max_sim_time_truncates_unfinished_queries(self):
        spec = mixed_spec(max_sim_time=40.0, fault_plan=None)
        result = run_workload(spec)
        assert result.elapsed <= 40.0
        assert result.fleet["truncated"] + result.fleet["completed"] == (
            result.fleet["launched"]
        )
        assert result.fleet["truncated"] >= 1
