"""The ``repro workload`` CLI subcommand."""

import json

from repro.cli import main
from repro.workload import fleet_from_trace

TINY = [
    "workload",
    "--clients", "2",
    "--queries", "1",
    "--servers", "4",
    "--images", "4",
    "--seed", "1",
]


class TestWorkloadSubcommand:
    def test_json_output_is_a_fleet_summary(self, capsys):
        assert main([*TINY, "--json"]) == 0
        fleet = json.loads(capsys.readouterr().out)
        assert fleet["workload_schema"] == 1
        assert fleet["completed"] == 2
        assert len(fleet["queries"]) == 2

    def test_human_output_mentions_every_query(self, capsys):
        assert main(TINY) == 0
        out = capsys.readouterr().out
        assert "2/2 queries completed" in out
        assert "c0:0" in out and "c1:0" in out
        assert "Jain fairness" in out

    def test_trace_export_replays_to_the_same_fleet(self, capsys, tmp_path):
        from repro.obs import read_jsonl

        trace = tmp_path / "wl.jsonl"
        assert main([*TINY, "--json", "--trace", str(trace)]) == 0
        fleet = json.loads(capsys.readouterr().out)
        assert fleet_from_trace(read_jsonl(trace)) == fleet

    def test_open_loop_arrivals(self, capsys):
        code = main(
            [*TINY, "--arrivals", "open", "--rate", "0.05", "--json"]
        )
        assert code == 0
        fleet = json.loads(capsys.readouterr().out)
        assert fleet["completed"] == 2

    def test_truncation_sets_exit_code(self, capsys):
        assert main([*TINY, "--max-time", "5", "--json"]) == 1
        fleet = json.loads(capsys.readouterr().out)
        assert fleet["truncated"] >= 1

    def test_mix_weights_parse(self, capsys):
        code = main(
            [*TINY, "--mix", "global=2,one-shot=1", "--json"]
        )
        assert code == 0
        fleet = json.loads(capsys.readouterr().out)
        classes = {q["class"] for q in fleet["queries"]}
        assert classes <= {"global", "one-shot"}


class TestStreamingAndSharding:
    def test_forced_streaming_metrics(self, capsys):
        assert main([*TINY, "--metrics", "streaming", "--json"]) == 0
        fleet = json.loads(capsys.readouterr().out)
        assert fleet["workload_schema"] == 2
        assert fleet["completed"] == 2
        assert "queries" not in fleet

    def test_streaming_human_output(self, capsys):
        assert main([*TINY, "--metrics", "streaming"]) == 0
        out = capsys.readouterr().out
        assert "streaming metrics" in out
        assert "2/2 queries completed" in out

    def test_sharded_run(self, capsys):
        code = main([*TINY, "--shards", "2", "--workers", "1", "--json"])
        assert code == 0
        fleet = json.loads(capsys.readouterr().out)
        assert fleet["scheduled"] == 2

    def test_trace_dir_segments_replay(self, capsys, tmp_path):
        from repro.obs import read_segments

        code = main(
            [*TINY, "--json", "--trace-dir", str(tmp_path / "seg")]
        )
        assert code == 0
        fleet = json.loads(capsys.readouterr().out)
        assert fleet_from_trace(read_segments(tmp_path / "seg")) == fleet

    def test_shards_and_tracing_conflict(self):
        import pytest

        with pytest.raises(SystemExit):
            main([*TINY, "--shards", "2", "--trace", "x.jsonl"])
        with pytest.raises(SystemExit):
            main([*TINY, "--shards", "2", "--trace-dir", "segs"])

    def test_trace_and_trace_dir_conflict(self):
        import pytest

        with pytest.raises(SystemExit):
            main([*TINY, "--trace", "x.jsonl", "--trace-dir", "segs"])


class TestOverloadFlags:
    def test_defaults_leave_summary_unchanged(self, capsys):
        # All overload flags at their defaults: no policy is built and
        # the summary has no resilience block.
        assert main([*TINY, "--json"]) == 0
        fleet = json.loads(capsys.readouterr().out)
        assert "resilience" not in fleet

    def test_admission_flags_shed(self, capsys):
        code = main(
            [
                *TINY,
                "--clients", "4",
                "--max-concurrent", "1",
                "--json",
            ]
        )
        assert code == 0
        fleet = json.loads(capsys.readouterr().out)
        assert fleet["resilience"]["shed"] > 0

    def test_deadline_flag_aborts_and_reports(self, capsys):
        code = main([*TINY, "--deadline", "10", "--retry-budget", "1"])
        assert code == 1  # aborted queries finalize truncated
        out = capsys.readouterr().out
        assert "overload:" in out
        assert "deadline aborts 4" in out  # 2 slots + 2 retries

    def test_slo_flag_reports_attainment(self, capsys):
        assert main([*TINY, "--slo", "1e9"]) == 0
        out = capsys.readouterr().out
        # Both default-mix classes completed within the generous target.
        assert "SLO global: 100% of 1 completed queries" in out
        assert "SLO one-shot: 100% of 1 completed queries" in out

    def test_chaos_flag_injects_reference_plan(self, capsys):
        main([*TINY, "--chaos", "--json"])
        fleet = json.loads(capsys.readouterr().out)
        # The reference plan's 8% link loss guarantees retransmissions
        # show up as wire traffic beyond the fault-free run.
        assert fleet["scheduled"] == 2

    def test_chaos_and_faults_conflict(self, tmp_path):
        import pytest

        plan = tmp_path / "plan.json"
        plan.write_text("{}")
        with pytest.raises(SystemExit):
            main([*TINY, "--chaos", "--faults", str(plan)])
