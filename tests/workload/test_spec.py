"""WorkloadSpec / QueryClass: validation, mix draws, spec assembly."""

import pytest

from repro.engine.config import Algorithm
from repro.workload import (
    ClosedLoop,
    QueryClass,
    WorkloadSpec,
    client_of,
    query_id_for,
)
from tests.conftest import complete_links, tiny_spec


def one_class(**kwargs):
    return QueryClass(name="q", algorithm=Algorithm.ONE_SHOT, **kwargs)


def small_workload(**kwargs):
    defaults = dict(
        classes=(one_class(),),
        num_servers=4,
        images_per_server=3,
    )
    defaults.update(kwargs)
    return WorkloadSpec(**defaults)


class TestQueryClass:
    def test_algorithm_string_coerced(self):
        qclass = QueryClass(name="q", algorithm="local")
        assert qclass.algorithm is Algorithm.LOCAL

    def test_overrides_mapping_normalized(self):
        qclass = one_class(overrides={"prefetch": False, "control_seed": 9})
        assert qclass.overrides == (("control_seed", 9), ("prefetch", False))

    def test_structural_override_rejected(self):
        with pytest.raises(ValueError, match="structural"):
            one_class(overrides={"num_servers": 2})

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            one_class(weight=0.0)


class TestWorkloadSpecValidation:
    def test_needs_a_class(self):
        with pytest.raises(ValueError, match="query class"):
            WorkloadSpec(classes=())

    def test_duplicate_class_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            WorkloadSpec(classes=(one_class(), one_class()))

    def test_class_server_count_must_fit_pool(self):
        with pytest.raises(ValueError, match="servers"):
            small_workload(classes=(one_class(num_servers=9),))

    def test_override_hosts_require_explicit_links(self):
        with pytest.raises(ValueError, match="link_traces"):
            small_workload(server_hosts_override=("a", "b", "c", "d"))

    def test_negative_clients_rejected(self):
        with pytest.raises(ValueError, match="num_clients"):
            small_workload(num_clients=-1)


class TestQueryIds:
    def test_round_trip(self):
        qid = query_id_for(3, 7)
        assert qid == "c3:7"
        assert client_of(qid) == "c3"


class TestMix:
    def test_single_class_uses_no_randomness(self):
        spec = small_workload(queries_per_client=5)
        assert spec.mix_for(0) == [spec.classes[0]] * 5

    def test_mix_is_seed_reproducible_and_weighted(self):
        classes = (
            QueryClass(name="a", algorithm=Algorithm.ONE_SHOT, weight=3.0),
            QueryClass(name="b", algorithm=Algorithm.GLOBAL, weight=1.0),
        )
        spec = small_workload(classes=classes, queries_per_client=40, seed=5)
        first = [c.name for c in spec.mix_for(0)]
        again = [c.name for c in spec.mix_for(0)]
        assert first == again
        # With weight 3:1, class "a" should dominate.
        assert first.count("a") > first.count("b")

    def test_class_for_matches_mix(self):
        classes = (
            QueryClass(name="a", algorithm=Algorithm.ONE_SHOT),
            QueryClass(name="b", algorithm=Algorithm.GLOBAL),
        )
        spec = small_workload(classes=classes, queries_per_client=6, seed=2)
        mix = spec.mix_for(1)
        for ordinal in range(6):
            assert spec.class_for(1, ordinal) is mix[ordinal]


class TestQuerySpec:
    def test_seeds_differ_per_slot(self):
        spec = small_workload(num_clients=2, queries_per_client=2)
        seeds = {
            spec.query_spec(spec.classes[0], c, o).workload_seed
            for c in range(2)
            for o in range(2)
        }
        assert len(seeds) == 4

    def test_class_overrides_win(self):
        qclass = one_class(overrides={"workload_seed": 424242, "prefetch": False})
        spec = small_workload(classes=(qclass,))
        qspec = spec.query_spec(qclass, 0, 0)
        assert qspec.workload_seed == 424242
        assert qspec.prefetch is False

    def test_server_subset_is_sorted_and_reproducible(self):
        qclass = one_class(num_servers=2)
        spec = small_workload(classes=(qclass,), num_servers=4)
        hosts = spec.query_servers(qclass, 0, 0)
        assert hosts == spec.query_servers(qclass, 0, 0)
        assert len(hosts) == 2
        assert set(hosts) <= set(spec.server_hosts)
        assert list(hosts) == sorted(hosts, key=spec.server_hosts.index)

    def test_full_pool_skips_subset_draw(self):
        spec = small_workload()
        assert spec.query_servers(spec.classes[0], 0, 0) == spec.server_hosts


class TestFromSimulationSpec:
    def test_wraps_as_one_query_closed_loop(self):
        sim = tiny_spec(Algorithm.LOCAL, images=4)
        wrapped = WorkloadSpec.from_simulation_spec(sim)
        assert wrapped.total_queries == 1
        assert isinstance(wrapped.arrivals, ClosedLoop)
        assert wrapped.arrivals.think_time == 0.0
        rebuilt = wrapped.query_spec(wrapped.classes[0], 0, 0)
        assert rebuilt == sim

    def test_preserves_nondefault_fields(self):
        sim = tiny_spec(
            Algorithm.GLOBAL,
            images=4,
            prefetch=False,
            relocation_period=120.0,
            workload_seed=77,
        )
        wrapped = WorkloadSpec.from_simulation_spec(sim)
        rebuilt = wrapped.query_spec(wrapped.classes[0], 0, 0)
        assert rebuilt == sim


class TestFromExperimentConfig:
    def config(self, **kwargs):
        from repro.experiments import ExperimentConfig

        defaults = dict(
            num_servers=4, images_per_server=6, seed=7, relocation_period=300.0
        )
        defaults.update(kwargs)
        return ExperimentConfig(**defaults)

    def test_substrate_mirrors_the_config(self):
        config = self.config()
        spec = WorkloadSpec.from_experiment_config(
            config, (one_class(),), config_index=2, num_clients=3
        )
        assert spec.num_servers == 4
        assert spec.images_per_server == 6
        assert spec.network_seed == 7
        assert spec.config_index == 2
        assert spec.num_clients == 3
        from repro.experiments.config import make_configuration

        assert spec.resolve_links() == make_configuration(config, 2)

    def test_config_knobs_become_class_overrides(self):
        spec = WorkloadSpec.from_experiment_config(self.config(), (one_class(),))
        qspec = spec.query_spec(spec.classes[0], 0, 0)
        assert qspec.relocation_period == 300.0

    def test_class_override_wins_over_config(self):
        qclass = one_class(overrides={"relocation_period": 60.0})
        spec = WorkloadSpec.from_experiment_config(self.config(), (qclass,))
        qspec = spec.query_spec(spec.classes[0], 0, 0)
        assert qspec.relocation_period == 60.0

    def test_fault_plan_passes_through(self):
        from repro.faults.plan import FaultPlan, LinkOutage

        plan = FaultPlan(
            link_outages=(LinkOutage(a="client", b="h0", start=1.0, end=2.0),)
        )
        spec = WorkloadSpec.from_experiment_config(
            self.config(fault_plan=plan), (one_class(),)
        )
        assert spec.fault_plan is plan
