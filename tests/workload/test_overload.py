"""Fleet-level overload protection: admission, deadlines, breakers.

The policy knobs are exercised one at a time on small fleets whose
behaviour is deterministic given the seed, then together under the
reference chaos plan, where live summaries must reconcile bit-exactly
with trace replays through both sink implementations.
"""

import json
from dataclasses import replace

import pytest

from repro.engine.config import Algorithm
from repro.faults import FaultPlan, HostCrash, reference_chaos_plan
from repro.obs import Tracer
from repro.obs.events import (
    BREAKER_CLOSE,
    BREAKER_OPEN,
    QUERY_DEADLINE_ABORT,
    QUERY_QUEUED,
    QUERY_RETRY,
    QUERY_SHED,
    RETRY_BUDGET_EXHAUSTED,
)
from repro.workload import (
    ClosedLoop,
    OpenLoop,
    OverloadPolicy,
    QueryClass,
    ResilienceCounters,
    StreamingFleetMetrics,
    WorkloadSpec,
    fleet_from_trace,
    run_workload,
)


def overload_spec(policy=None, *, classes=None, **overrides):
    defaults = dict(
        classes=classes
        or (QueryClass(name="os", algorithm=Algorithm.ONE_SHOT),),
        num_clients=4,
        queries_per_client=2,
        arrivals=ClosedLoop(),
        seed=7,
        num_servers=4,
        images_per_server=2,
        overload=policy,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestOverloadPolicy:
    def test_default_is_null(self):
        assert OverloadPolicy().is_null()

    def test_any_limit_engages(self):
        assert not OverloadPolicy(max_concurrent=1).is_null()
        assert not OverloadPolicy(retry_budget=1).is_null()
        assert not OverloadPolicy(breaker_threshold=1).is_null()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_concurrent": 0},
            {"max_queue_depth": -1},
            {"shed_probability": 1.5},
            {"retry_budget": -1},
            {"retry_backoff": -1.0},
            {"breaker_threshold": 0},
            {"breaker_cooldown": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            OverloadPolicy(**kwargs)

    def test_class_deadline_engages_without_policy(self):
        spec = overload_spec(
            classes=(
                QueryClass(
                    name="os", algorithm=Algorithm.ONE_SHOT, deadline=100.0
                ),
            )
        )
        assert spec.overload is None
        assert spec.overload_engaged

    def test_null_policy_does_not_engage(self):
        assert not overload_spec(OverloadPolicy()).overload_engaged

    def test_class_validation(self):
        with pytest.raises(ValueError):
            QueryClass(name="x", algorithm=Algorithm.ONE_SHOT, deadline=0.0)
        with pytest.raises(ValueError):
            QueryClass(
                name="x", algorithm=Algorithm.ONE_SHOT, slo_target=-1.0
            )


class TestAdmission:
    def test_concurrency_limit_sheds_excess(self):
        # Four closed-loop clients all arrive at t=0; one slot and no
        # queue means three first arrivals are shed on the spot.
        tracer = Tracer()
        result = run_workload(
            overload_spec(OverloadPolicy(max_concurrent=1)), tracer=tracer
        )
        # A shed resolves its slot instantly, so the three losing
        # clients burn through BOTH queries at t=0: 6 sheds, and only
        # the winning client's two queries run (sequentially).
        resilience = result.fleet["resilience"]
        assert resilience["shed"] == 6
        assert result.fleet["launched"] == 2
        sheds = [e for e in tracer.events if e["type"] == QUERY_SHED]
        assert len(sheds) == 6
        assert all(e["attempt"] == 0 for e in sheds)
        # Every scheduled slot is accounted for: shed or launched.
        assert resilience["shed"] + result.fleet["launched"] == 8
        assert 0.0 < resilience["shed_rate"] < 1.0

    def test_queue_absorbs_burst(self):
        tracer = Tracer()
        result = run_workload(
            overload_spec(
                OverloadPolicy(max_concurrent=1, max_queue_depth=8)
            ),
            tracer=tracer,
        )
        # The queue serializes the whole fleet through the single slot:
        # every query except the first waits its turn, nothing sheds.
        resilience = result.fleet["resilience"]
        assert resilience["shed"] == 0
        assert resilience["queued"] == 7
        assert resilience["queue_peak"] == 3
        assert result.fleet["completed"] == 8
        assert resilience["goodput"] > 0.0
        depths = [
            e["depth"] for e in tracer.events if e["type"] == QUERY_QUEUED
        ]
        assert depths == [1, 2, 3, 3, 3, 3, 3]
        assert max(depths) == resilience["queue_peak"]

    def test_shed_probability_is_seeded(self):
        policy = OverloadPolicy(
            max_concurrent=1, max_queue_depth=8, shed_probability=0.5
        )
        first = run_workload(overload_spec(policy)).fleet
        second = run_workload(overload_spec(policy)).fleet
        assert first == second
        resilience = first["resilience"]
        # The seeded coin splits saturated arrivals between queue and
        # shed; both outcomes must occur, and every scheduled slot ends
        # up either shed or launched.
        assert resilience["shed"] > 0
        assert resilience["queued"] > 0
        assert resilience["shed"] + first["launched"] == 8

    def test_unprotected_summary_has_no_resilience_block(self):
        assert "resilience" not in run_workload(overload_spec()).fleet


class TestDeadlines:
    def deadline_spec(self, policy=None, **overrides):
        classes = (
            QueryClass(
                name="os", algorithm=Algorithm.ONE_SHOT, deadline=50.0
            ),
        )
        return overload_spec(policy, classes=classes, **overrides)

    def test_deadline_aborts_truncate(self):
        # 50 s is far below any query's completion time: every launched
        # query aborts, and without a retry budget nothing resubmits.
        tracer = Tracer()
        result = run_workload(self.deadline_spec(), tracer=tracer)
        fleet = result.fleet
        assert fleet["completed"] == 0
        assert fleet["truncated"] == 8
        assert fleet["resilience"]["deadline_aborts"] == 8
        aborts = [
            e for e in tracer.events if e["type"] == QUERY_DEADLINE_ABORT
        ]
        assert len(aborts) == 8
        assert all(e["launched"] for e in aborts)
        assert all(e["waited"] == pytest.approx(50.0) for e in aborts)
        # The simulation drains instead of deadlocking on aborted queries.
        assert fleet["elapsed"] < 1000.0

    def test_queued_expiry_never_launches(self):
        # One slot, deep queue: the queue outlives the deadline, so
        # queued arrivals age out unlaunched when a slot frees up.
        tracer = Tracer()
        result = run_workload(
            self.deadline_spec(
                OverloadPolicy(max_concurrent=1, max_queue_depth=8)
            ),
            tracer=tracer,
        )
        aborts = [
            e for e in tracer.events if e["type"] == QUERY_DEADLINE_ABORT
        ]
        unlaunched = [e for e in aborts if not e["launched"]]
        assert len(unlaunched) == 4
        assert all(e["waited"] >= 50.0 for e in unlaunched)
        assert result.fleet["resilience"]["deadline_aborts"] == len(aborts)
        # Unlaunched expiries never reached the sink's per-query path.
        assert result.fleet["launched"] == 8 - len(unlaunched)

    def test_retry_budget_consumed_then_exhausted(self):
        tracer = Tracer()
        result = run_workload(
            self.deadline_spec(
                OverloadPolicy(retry_budget=1, retry_backoff=5.0)
            ),
            tracer=tracer,
        )
        resilience = result.fleet["resilience"]
        # Each of the 4 clients retries once (budget 1, charged on the
        # first abort); the retry aborts again and exhausts the budget.
        assert resilience["retries"] == 4
        assert resilience["retry_budget_exhausted"] == 8
        retries = [e for e in tracer.events if e["type"] == QUERY_RETRY]
        assert sorted(e["query_id"] for e in retries) == [
            "c0:0.r1",
            "c1:0.r1",
            "c2:0.r1",
            "c3:0.r1",
        ]
        assert all(e["wait"] == 5.0 for e in retries)
        exhausted = [
            e for e in tracer.events if e["type"] == RETRY_BUDGET_EXHAUSTED
        ]
        assert len(exhausted) == 8
        # Retries are extra launches on top of the 8 scheduled slots.
        assert result.fleet["launched"] == 12
        assert result.fleet["scheduled"] == 8

    def test_slo_attainment(self):
        classes = (
            QueryClass(
                name="fast",
                algorithm=Algorithm.ONE_SHOT,
                slo_target=1e9,
            ),
            QueryClass(
                name="slow",
                algorithm=Algorithm.ONE_SHOT,
                slo_target=1e-6,
            ),
        )
        result = run_workload(
            overload_spec(classes=classes, seed=3, queries_per_client=4)
        )
        per_class = result.fleet["resilience"]["per_class"]
        assert per_class["fast"]["slo_attainment"] == 1.0
        assert per_class["slow"]["slo_attainment"] == 0.0
        total = (
            per_class["fast"]["slo_eligible"]
            + per_class["slow"]["slo_eligible"]
        )
        assert total == result.fleet["completed"] == 16


class TestBreakers:
    def breaker_spec(self, **overrides):
        # h0 is down for almost the whole run; 60 s deadlines abort the
        # queries stuck on it and every abort blames the down host.
        classes = (
            QueryClass(
                name="os", algorithm=Algorithm.ONE_SHOT, deadline=60.0
            ),
        )
        plan = FaultPlan(
            host_crashes=(HostCrash("h0", start=5.0, end=4000.0),)
        )
        defaults = dict(
            classes=classes,
            num_clients=3,
            queries_per_client=3,
            arrivals=ClosedLoop(),
            seed=9,
            num_servers=4,
            images_per_server=2,
            fault_plan=plan,
            overload=OverloadPolicy(
                breaker_threshold=2, breaker_cooldown=200.0
            ),
        )
        defaults.update(overrides)
        return WorkloadSpec(**defaults)

    def test_breaker_opens_and_degrades(self):
        tracer = Tracer()
        result = run_workload(self.breaker_spec(), tracer=tracer)
        resilience = result.fleet["resilience"]
        assert resilience["breaker"]["opens"] >= 1
        assert "h0" in resilience["breaker"]["hosts"]
        # Queries admitted while the breaker is open replan degraded.
        assert resilience["degraded"] >= 1
        opens = [e for e in tracer.events if e["type"] == BREAKER_OPEN]
        assert opens and all(e["host"] == "h0" for e in opens)
        assert all("query_id" not in e for e in opens)  # fleet-level
        degraded_metas = [
            e
            for e in tracer.events
            if e["type"] == "run.meta" and e.get("degraded")
        ]
        assert len(degraded_metas) == resilience["degraded"]
        assert all(
            e["algorithm"] == Algorithm.DOWNLOAD_ALL.value
            for e in degraded_metas
        )

    def test_breaker_closes_after_cooldown(self):
        # Breakers close lazily at dispatch time, so the run needs
        # arrivals that keep coming past opened_at + cooldown.
        tracer = Tracer()
        run_workload(
            self.breaker_spec(queries_per_client=8), tracer=tracer
        )
        closes = [e for e in tracer.events if e["type"] == BREAKER_CLOSE]
        assert closes
        assert all(e["host"] == "h0" for e in closes)
        assert all(e["open_seconds"] >= 200.0 for e in closes)

    def test_no_injector_means_no_breakers(self):
        # Deadline aborts still happen without faults (the queries are
        # just slower than 60 s), but no host is ever *down*, so no
        # failure is attributed and no breaker opens.
        result = run_workload(self.breaker_spec(fault_plan=None))
        resilience = result.fleet["resilience"]
        assert resilience["deadline_aborts"] > 0
        assert resilience["breaker"]["opens"] == 0
        assert resilience["degraded"] == 0


class TestReconciliation:
    def chaos_spec(self, **overrides):
        classes = (
            QueryClass(
                name="gold",
                algorithm=Algorithm.GLOBAL,
                deadline=400.0,
                slo_target=250.0,
            ),
            QueryClass(name="bulk", algorithm=Algorithm.ONE_SHOT),
        )
        hosts = (*[f"h{i}" for i in range(4)], "client")
        defaults = dict(
            classes=classes,
            num_clients=6,
            queries_per_client=3,
            arrivals=OpenLoop(rate=0.02, process="poisson"),
            seed=11,
            num_servers=4,
            images_per_server=3,
            fault_plan=reference_chaos_plan(hosts, seed=3),
            overload=OverloadPolicy(
                max_concurrent=3,
                max_queue_depth=2,
                shed_probability=0.15,
                retry_budget=2,
                retry_backoff=45.0,
                breaker_threshold=2,
                breaker_cooldown=300.0,
            ),
        )
        defaults.update(overrides)
        return WorkloadSpec(**defaults)

    def test_full_policy_is_deterministic(self):
        first = run_workload(self.chaos_spec()).fleet
        second = run_workload(self.chaos_spec()).fleet
        assert first == second
        resilience = first["resilience"]
        assert resilience["shed"] > 0
        assert resilience["deadline_aborts"] > 0
        assert resilience["retries"] > 0

    def test_exact_live_matches_replay(self):
        tracer = Tracer()
        result = run_workload(self.chaos_spec(), tracer=tracer)
        assert fleet_from_trace(tracer.events) == result.fleet

    def test_streaming_live_matches_replay(self):
        tracer = Tracer()
        result = run_workload(
            self.chaos_spec(metrics_mode="streaming"), tracer=tracer
        )
        headed = [
            {"type": "trace.header", "meta": dict(tracer.meta)},
            *tracer.events,
        ]
        assert fleet_from_trace(headed, exact_threshold=0) == result.fleet

    def test_streaming_matches_exact_counters(self):
        exact = run_workload(self.chaos_spec()).fleet
        streaming = run_workload(
            self.chaos_spec(metrics_mode="streaming")
        ).fleet
        assert exact["resilience"] == streaming["resilience"]


class TestResilienceCounters:
    def test_merge_is_order_invariant(self):
        def sample(n):
            counters = ResilienceCounters()
            for _ in range(n):
                counters.note("shed", "a")
                counters.note("queued", "a", value=n)
                counters.note("breaker_open", host=f"h{n}")
                counters.note("slo", "b", value=n % 2 == 0)
            return counters

        import itertools

        blocks = set()
        for order in itertools.permutations([1, 2, 3]):
            merged = ResilienceCounters()
            for n in order:
                merged.merge(sample(n))
            blocks.add(
                json.dumps(merged.block(10, 5, 100.0), sort_keys=True)
            )
        assert len(blocks) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ResilienceCounters().note("bogus")

    def test_dormant_counters_not_engaged(self):
        assert not ResilienceCounters().engaged


class TestFaultPlanValidation:
    def test_workload_rejects_unknown_hosts(self):
        # Regression: _install_faults validates the plan against the
        # network's real host set before installing anything.
        plan = FaultPlan(
            host_crashes=(HostCrash("nonexistent", start=1.0, end=2.0),)
        )
        with pytest.raises(ValueError, match="unknown hosts"):
            run_workload(overload_spec(fault_plan=plan))

    def test_chaos_scale_one_is_the_classic_plan(self):
        hosts = ("h0", "h1", "h2", "client")
        assert (
            reference_chaos_plan(hosts, seed=5).to_dict()
            == reference_chaos_plan(hosts, seed=5, scale=1).to_dict()
        )

    def test_chaos_scale_adds_staggered_waves(self):
        hosts = ("h0", "h1", "h2", "client")
        base = reference_chaos_plan(hosts, seed=5)
        scaled = reference_chaos_plan(hosts, seed=5, scale=3)
        assert len(scaled.link_outages) == len(base.link_outages) + 4
        assert len(scaled.host_crashes) == len(base.host_crashes) + 2
        # Extra waves land strictly later, deepening the chaos.
        extra = scaled.link_outages[len(base.link_outages):]
        assert min(o.start for o in extra) >= 1800.0
        with pytest.raises(ValueError):
            reference_chaos_plan(hosts, scale=0)
