"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.engine.config import Algorithm, SimulationSpec
from repro.sim import Environment
from repro.traces import constant_trace


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


def complete_links(hosts, rate=50 * 1024.0):
    """Constant-rate traces for the complete graph over ``hosts``."""
    links = {}
    for i, a in enumerate(hosts):
        for b in hosts[i + 1 :]:
            key = (a, b) if a < b else (b, a)
            links[key] = constant_trace(rate, name=f"{key[0]}~{key[1]}")
    return links


def tiny_spec(
    algorithm: Algorithm = Algorithm.DOWNLOAD_ALL,
    num_servers: int = 4,
    images: int = 6,
    rate: float = 50 * 1024.0,
    **overrides,
) -> SimulationSpec:
    """A small, fast simulation spec on constant-rate links."""
    hosts = tuple(f"h{i}" for i in range(num_servers))
    links = overrides.pop("link_traces", None) or complete_links(
        [*hosts, "client"], rate
    )
    return SimulationSpec(
        algorithm=algorithm,
        tree_shape=overrides.pop("tree_shape", "binary"),
        num_servers=num_servers,
        link_traces=links,
        server_hosts=hosts,
        images_per_server=images,
        **overrides,
    )
