"""Network transfer engine: NIC serialization, priorities, forwarding."""

import pytest

from repro.net.host import Host
from repro.net.link import Link
from repro.net.message import Message, MessageKind
from repro.net.network import Network
from repro.traces import constant_trace


def build_network(env, hosts=("a", "b", "c"), rate=1000.0, startup=0.0):
    net = Network(env)
    for name in hosts:
        net.add_host(Host(env, name))
    for i, x in enumerate(hosts):
        for y in hosts[i + 1 :]:
            net.add_link(Link(x, y, constant_trace(rate), startup_cost=startup))
    return net


def data_message(src, dst, size=1000, priority=None):
    # Sizes here are payloads; wire size adds the 256-byte header.
    return Message(MessageKind.DATA, src, dst, size, priority=priority)


class TestTopology:
    def test_duplicate_host_rejected(self, env):
        net = Network(env)
        net.add_host(Host(env, "a"))
        with pytest.raises(ValueError):
            net.add_host(Host(env, "a"))

    def test_link_requires_known_hosts(self, env):
        net = Network(env)
        net.add_host(Host(env, "a"))
        with pytest.raises(ValueError):
            net.add_link(Link("a", "ghost", constant_trace(10)))

    def test_duplicate_link_rejected(self, env):
        net = build_network(env, hosts=("a", "b"))
        with pytest.raises(ValueError):
            net.add_link(Link("a", "b", constant_trace(10)))

    def test_link_lookup_symmetric(self, env):
        net = build_network(env)
        assert net.link("a", "b") is net.link("b", "a")
        with pytest.raises(KeyError):
            net.link("a", "ghost")

    def test_bandwidth_oracles(self, env):
        net = build_network(env, rate=123.0)
        assert net.bandwidth_at("a", "b", 0) == 123.0
        assert net.bandwidth_at("a", "a", 0) == float("inf")
        assert net.mean_bandwidth("a", "b", 0, 10) == 123.0

    def test_bandwidth_oracle_negative_time_rejected(self, env):
        net = build_network(env)
        with pytest.raises(ValueError, match="negative time"):
            net.bandwidth_at("a", "b", -1.0)
        with pytest.raises(ValueError, match="negative time"):
            net.bandwidth_at("a", "a", -1.0)  # even the self-link shortcut

    def test_mean_bandwidth_invalid_window_rejected(self, env):
        net = build_network(env)
        with pytest.raises(ValueError, match="negative window start"):
            net.mean_bandwidth("a", "b", -0.5, 10.0)
        with pytest.raises(ValueError, match="precedes start"):
            net.mean_bandwidth("a", "b", 10.0, 5.0)
        assert net.mean_bandwidth("a", "b", 5.0, 5.0) >= 0  # empty window ok


class TestActorRegistry:
    def test_register_and_lookup(self, env):
        net = build_network(env)
        net.register_actor("op1", "a")
        assert net.actor_host("op1") == "a"

    def test_unknown_actor_raises(self, env):
        net = build_network(env)
        with pytest.raises(KeyError):
            net.actor_host("nobody")

    def test_register_unknown_host_rejected(self, env):
        net = build_network(env)
        with pytest.raises(ValueError):
            net.register_actor("op1", "ghost")

    def test_move_actor_drains_old_mailbox(self, env):
        net = build_network(env)
        net.register_actor("op1", "a")
        message = data_message("x", "op1")
        net.hosts["a"].mailbox("op1").deliver(message)
        env.run()
        pending = net.move_actor("op1", "b")
        assert pending == [message]
        assert net.actor_host("op1") == "b"

    def test_move_to_same_host_is_noop(self, env):
        net = build_network(env)
        net.register_actor("op1", "a")
        assert net.move_actor("op1", "a") == []


class TestTransfers:
    def test_local_delivery_instant(self, env):
        net = build_network(env)
        net.register_actor("s", "a")
        net.register_actor("d", "a")
        message = data_message("s", "d")
        net.send(message)
        env.run()
        assert message.delivered_at == 0.0
        assert net.stats.local_deliveries == 1
        assert net.stats.transfers == 0

    def test_remote_transfer_time(self, env):
        net = build_network(env, rate=1000.0, startup=0.5)
        net.register_actor("s", "a")
        net.register_actor("d", "b")
        message = data_message("s", "d", size=1000 - 256)  # wire = 1000
        net.send(message)
        env.run()
        assert message.delivered_at == pytest.approx(1.5)

    def test_nic_serializes_two_senders_to_one_receiver(self, env):
        net = build_network(env, rate=1000.0)
        for actor, host in (("s1", "a"), ("s2", "b"), ("d", "c")):
            net.register_actor(actor, host)
        m1 = data_message("s1", "d", size=1000 - 256)
        m2 = data_message("s2", "d", size=1000 - 256)
        net.send(m1)
        net.send(m2)
        env.run()
        # c's single NIC receives them one at a time: 1s then 2s.
        assert sorted([m1.delivered_at, m2.delivered_at]) == [
            pytest.approx(1.0),
            pytest.approx(2.0),
        ]

    def test_sender_nic_also_serializes(self, env):
        net = build_network(env, rate=1000.0)
        for actor, host in (("s", "a"), ("d1", "b"), ("d2", "c")):
            net.register_actor(actor, host)
        m1 = data_message("s", "d1", size=1000 - 256)
        m2 = data_message("s", "d2", size=1000 - 256)
        net.send(m1)
        net.send(m2)
        env.run()
        assert sorted([m1.delivered_at, m2.delivered_at]) == [
            pytest.approx(1.0),
            pytest.approx(2.0),
        ]

    def test_priority_message_overtakes_queued_data(self, env):
        net = build_network(env, rate=1000.0)
        for actor, host in (("s1", "a"), ("s2", "b"), ("ctl", "b"), ("d", "c")):
            net.register_actor(actor, host)
        bulk1 = data_message("s1", "d", size=1000 - 256)
        bulk2 = data_message("s2", "d", size=1000 - 256)
        barrier = Message(MessageKind.BARRIER, "ctl", "d", 0)
        net.send(bulk1)
        net.send(bulk2)
        net.send(barrier)
        env.run()
        # The barrier (wire 256B) overtakes the queued second bulk message.
        assert barrier.delivered_at < bulk2.delivered_at

    def test_no_deadlock_on_bidirectional_traffic(self, env):
        net = build_network(env, rate=1000.0)
        net.register_actor("x", "a")
        net.register_actor("y", "b")
        messages = []
        for i in range(10):
            src, dst = ("x", "y") if i % 2 == 0 else ("y", "x")
            message = data_message(src, dst, size=500)
            messages.append(message)
            net.send(message)
        env.run()
        assert all(m.delivered_at == m.delivered_at for m in messages)
        assert net.stats.transfers == 10

    def test_forwarding_after_actor_move(self, env):
        net = build_network(env, rate=1000.0)
        net.register_actor("s", "a")
        net.register_actor("d", "b")
        message = data_message("s", "d", size=1000 - 256)

        def mover(env):
            yield env.timeout(0.5)  # mid-flight
            net.move_actor("d", "c")

        net.send(message)
        env.process(mover(env))
        env.run()
        assert net.stats.forwarded == 1
        # Delivered at c's mailbox, not b's.
        assert len(net.hosts["c"].mailbox("d")) == 1
        assert len(net.hosts["b"].mailbox("d")) == 0

    def test_observers_see_transfers(self, env):
        net = build_network(env, rate=1000.0, startup=0.5)
        seen = []
        net.observers.append(seen.append)
        net.register_actor("s", "a")
        net.register_actor("d", "b")
        net.send(data_message("s", "d", size=1000 - 256))
        env.run()
        assert len(seen) == 1
        obs = seen[0]
        assert obs.src_host == "a" and obs.dst_host == "b"
        assert obs.wire_bytes == 1000
        assert obs.data_seconds == pytest.approx(1.0)
        assert obs.measured_bandwidth == pytest.approx(1000.0)

    def test_host_stats_updated(self, env):
        net = build_network(env, rate=1000.0)
        net.register_actor("s", "a")
        net.register_actor("d", "b")
        net.send(data_message("s", "d", size=744))  # wire 1000
        env.run()
        assert net.hosts["a"].stats.messages_sent == 1
        assert net.hosts["a"].stats.bytes_sent == 1000
        assert net.hosts["b"].stats.messages_received == 1
        assert net.hosts["b"].stats.nic_busy_time == pytest.approx(1.0)

    def test_fluid_counter_splits_from_des(self, env):
        net = build_network(env, rate=1000.0)
        net.register_actor("s", "a")
        net.register_actor("d", "b")
        net.send(data_message("s", "d"))
        env.run()
        assert net.stats.fluid_transfers == 1
        assert net.stats.des_transfers == 0

    def test_forced_slow_path_counts_des(self, env):
        net = build_network(env, rate=1000.0)
        net.fluid_fast_path = False
        net.register_actor("s", "a")
        net.register_actor("d", "b")
        message = data_message("s", "d", size=1000 - 256)
        net.send(message)
        env.run()
        assert message.delivered_at == pytest.approx(1.0)
        assert net.stats.fluid_transfers == 0
        assert net.stats.des_transfers == 1

    def test_post_delivers_without_done_event(self, env):
        net = build_network(env, rate=1000.0)
        net.register_actor("s", "a")
        net.register_actor("d", "b")
        message = data_message("s", "d", size=1000 - 256)
        assert net.post(message) is None
        env.run()
        assert message.delivered_at == pytest.approx(1.0)
        assert len(net.hosts["b"].mailbox("d")) == 1

    def test_post_and_send_same_timing(self, env):
        timings = {}
        for use_post in (False, True):
            fresh_env = type(env)()
            net = build_network(fresh_env, rate=1000.0)
            net.register_actor("s", "a")
            net.register_actor("d", "b")
            message = data_message("s", "d", size=500)
            (net.post if use_post else net.send)(message)
            fresh_env.run()
            timings[use_post] = message.delivered_at
        assert timings[True] == timings[False]

    def test_post_falls_back_to_send_when_slow(self, env):
        net = build_network(env, rate=1000.0)
        net.fluid_fast_path = False
        net.register_actor("s", "a")
        net.register_actor("d", "b")
        message = data_message("s", "d")
        net.post(message)
        env.run()
        assert message.delivered_at is not None
        assert net.stats.des_transfers == 1

    def test_piggyback_hooks_called(self, env):
        net = build_network(env)
        calls = {"source": 0, "sink": 0}

        def source(src, dst):
            calls["source"] += 1
            return {"bytes": 24, "entries": []}

        def sink(dst, piggyback, query_id):
            calls["sink"] += 1
            assert query_id is None

        net.piggyback_source = source
        net.piggyback_sink = sink
        net.register_actor("s", "a")
        net.register_actor("d", "b")
        net.send(data_message("s", "d"))
        env.run()
        assert calls == {"source": 1, "sink": 1}
