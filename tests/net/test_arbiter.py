"""Transfer-arbiter scheduling properties."""

import pytest

from repro.net.host import Host
from repro.net.link import Link
from repro.net.message import Message, MessageKind
from repro.net.network import Network
from repro.traces import constant_trace


def build(env, hosts, rate=1000.0, nic_capacity=1):
    net = Network(env)
    for name in hosts:
        net.add_host(Host(env, name, nic_capacity=nic_capacity))
    for i, a in enumerate(hosts):
        for b in hosts[i + 1 :]:
            net.add_link(Link(a, b, constant_trace(rate), startup_cost=0.0))
    return net


def send(net, src, dst, size=744, priority=None):
    actor_s, actor_d = f"@{src}", f"@{dst}"
    net.register_actor(actor_s, src)
    net.register_actor(actor_d, dst)
    message = Message(MessageKind.DATA, actor_s, actor_d, size, priority=priority)
    net.send(message, src_host=src, dst_host=dst)
    return message


class TestWorkConservation:
    def test_disjoint_pairs_run_concurrently(self, env):
        net = build(env, ("a", "b", "c", "d"))
        m1 = send(net, "a", "b")  # wire 1000 bytes at 1000 B/s
        m2 = send(net, "c", "d")
        env.run()
        assert m1.delivered_at == pytest.approx(1.0)
        assert m2.delivered_at == pytest.approx(1.0)

    def test_blocked_head_does_not_block_disjoint_transfer(self, env):
        """A high-priority transfer waiting for a busy endpoint must not
        stop an unrelated lower-priority transfer from starting."""
        net = build(env, ("a", "b", "c", "d"))
        bulk = send(net, "a", "b")  # occupies a and b
        vip = send(net, "c", "a", priority=0)  # needs busy a: waits
        other = send(net, "c", "d", priority=9)  # disjoint: must run now

        def check(env):
            yield env.timeout(0.5)
            # "other" is in flight even though "vip" (better priority)
            # is parked waiting for host a.
            assert net._active_transfers["d"] == 1

        env.process(check(env))
        env.run()
        assert other.delivered_at == pytest.approx(1.0)
        assert vip.delivered_at == pytest.approx(2.0)

    def test_freed_interface_prefers_priority(self, env):
        net = build(env, ("a", "b", "c", "d"))
        send(net, "a", "b")  # busy until t=1
        late_bulk = send(net, "c", "b", priority=9)
        vip = send(net, "d", "b", priority=0)
        env.run()
        assert vip.delivered_at < late_bulk.delivered_at


class TestNicCapacity:
    def test_capacity_two_allows_two_concurrent(self, env):
        net = build(env, ("hub", "x", "y"), nic_capacity=2)
        m1 = send(net, "x", "hub")
        m2 = send(net, "y", "hub")
        env.run()
        assert m1.delivered_at == pytest.approx(1.0)
        assert m2.delivered_at == pytest.approx(1.0)

    def test_capacity_still_bounds_concurrency(self, env):
        net = build(env, ("hub", "x", "y", "z"), nic_capacity=2)
        times = [send(net, h, "hub").uid for h in ("x", "y", "z")]
        peak = []

        def watcher(env):
            while net._active_transfers["hub"] < 2:
                yield env.timeout(0.01)
            peak.append(net._active_transfers["hub"])

        env.process(watcher(env))
        env.run()
        assert peak and peak[0] == 2

    def test_invalid_capacity_rejected(self, env):
        with pytest.raises(ValueError):
            Host(env, "bad", nic_capacity=0)
