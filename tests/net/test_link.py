"""Link transmission timing."""

import pytest

from repro.net.link import DEFAULT_STARTUP_COST, Link
from repro.traces import BandwidthTrace, constant_trace


class TestLink:
    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "a", constant_trace(10))

    def test_negative_startup_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "b", constant_trace(10), startup_cost=-1)

    def test_key_canonical(self):
        link = Link("z", "a", constant_trace(10))
        assert link.key == ("a", "z")
        assert link.connects("a") and link.connects("z")
        assert not link.connects("b")

    def test_default_startup_is_50ms(self):
        assert DEFAULT_STARTUP_COST == pytest.approx(0.050)

    def test_transmission_time_adds_startup(self):
        link = Link("a", "b", constant_trace(100), startup_cost=0.05)
        assert link.transmission_time(1000, 0) == pytest.approx(10.05)

    def test_zero_bytes_costs_startup_only(self):
        link = Link("a", "b", constant_trace(100), startup_cost=0.05)
        assert link.transmission_time(0, 0) == pytest.approx(0.05)

    def test_negative_bytes_rejected(self):
        link = Link("a", "b", constant_trace(100))
        with pytest.raises(ValueError):
            link.transmission_time(-1, 0)

    def test_negative_start_time_rejected(self):
        # A negative start would silently integrate the trace before t=0
        # (clamped rates), producing a plausible-looking wrong duration.
        link = Link("a", "b", constant_trace(100))
        with pytest.raises(ValueError, match="negative start time"):
            link.transmission_time(1000, -0.5)

    def test_transmission_integrates_trace(self):
        trace = BandwidthTrace([0, 10], [100, 50])
        link = Link("a", "b", trace, startup_cost=0.0)
        # 1000 bytes in first 10 s, 500 more at 50 B/s = 10 s.
        assert link.transmission_time(1500, 0) == pytest.approx(20.0)

    def test_startup_shifts_integration_window(self):
        trace = BandwidthTrace([0, 10], [100, 50])
        link = Link("a", "b", trace, startup_cost=10.0)
        # Bytes only start flowing at t=10, when the rate is 50.
        assert link.transmission_time(500, 0) == pytest.approx(10.0 + 10.0)

    def test_bandwidth_at(self):
        trace = BandwidthTrace([0, 10], [100, 50])
        link = Link("a", "b", trace)
        assert link.bandwidth_at(5) == 100
        assert link.bandwidth_at(15) == 50

    def test_bandwidth_at_negative_time_rejected(self):
        # Same guard transmission_time has: a negative query would
        # silently read the first segment's rate.
        link = Link("a", "b", constant_trace(100))
        with pytest.raises(ValueError, match="negative time"):
            link.bandwidth_at(-0.1)

    def test_bandwidth_at_zero_allowed(self):
        link = Link("a", "b", constant_trace(100))
        assert link.bandwidth_at(0.0) == 100
