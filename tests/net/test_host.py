"""Host facilities: mailboxes, disk, CPU."""

import pytest

from repro.net.host import Host
from repro.net.message import Message, MessageKind


def make_host(env, name="h0", disk_rate=1000.0):
    return Host(env, name, disk_rate=disk_rate)


def msg(kind=MessageKind.DATA, priority=None, uid_tag=""):
    return Message(kind, "src" + uid_tag, "dst", 10, priority=priority)


class TestHost:
    def test_disk_rate_validation(self, env):
        with pytest.raises(ValueError):
            Host(env, "x", disk_rate=0)

    def test_disk_read_takes_size_over_rate(self, env):
        host = make_host(env, disk_rate=1000.0)
        finished = []

        def proc(env):
            yield from host.disk_read(500)
            finished.append(env.now)

        env.process(proc(env))
        env.run()
        assert finished == [0.5]

    def test_disk_serializes_concurrent_reads(self, env):
        host = make_host(env, disk_rate=100.0)
        finished = []

        def proc(env, tag):
            yield from host.disk_read(100)
            finished.append((env.now, tag))

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        assert finished == [(1.0, "a"), (2.0, "b")]

    def test_disk_read_rejects_negative(self, env):
        host = make_host(env)
        with pytest.raises(ValueError):
            list(host.disk_read(-1))

    def test_compute_occupies_cpu(self, env):
        host = make_host(env)
        finished = []

        def proc(env, tag):
            yield from host.compute(2.0)
            finished.append((env.now, tag))

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        assert finished == [(2.0, "a"), (4.0, "b")]

    def test_compute_rejects_negative(self, env):
        with pytest.raises(ValueError):
            list(make_host(env).compute(-0.1))


class TestMailbox:
    def test_priority_delivery(self, env):
        host = make_host(env)
        box = host.mailbox("actor")
        got = []

        def consumer(env):
            yield env.timeout(1)
            for _ in range(3):
                message = yield box.get()
                got.append(message.kind)

        box.deliver(msg(MessageKind.DATA))
        box.deliver(msg(MessageKind.DEMAND))
        box.deliver(msg(MessageKind.BARRIER))
        env.process(consumer(env))
        env.run()
        assert got == [MessageKind.BARRIER, MessageKind.DEMAND, MessageKind.DATA]

    def test_mailbox_get_unwraps_message(self, env):
        host = make_host(env)
        box = host.mailbox("a")
        original = msg()
        box.deliver(original)
        received = []

        def consumer(env):
            message = yield box.get()
            received.append(message)

        env.process(consumer(env))
        env.run()
        assert received == [original]

    def test_mailbox_created_once(self, env):
        host = make_host(env)
        assert host.mailbox("a") is host.mailbox("a")

    def test_remove_mailbox_returns_pending(self, env):
        host = make_host(env)
        box = host.mailbox("a")
        m1, m2 = msg(uid_tag="1"), msg(uid_tag="2")
        box.deliver(m1)
        box.deliver(m2)
        env.run()
        drained = host.remove_mailbox("a")
        assert drained == [m1, m2]
        assert host.remove_mailbox("a") == []  # already gone

    def test_len(self, env):
        host = make_host(env)
        box = host.mailbox("a")
        box.deliver(msg())
        env.run()
        assert len(box) == 1
