"""Message taxonomy, priorities and wire sizes."""

import pytest

from repro.net.message import (
    HEADER_BYTES,
    PRIORITY_BARRIER,
    PRIORITY_CONTROL,
    PRIORITY_DATA,
    PRIORITY_DEMAND,
    Message,
    MessageKind,
)


class TestPriorities:
    def test_barrier_beats_everything(self):
        assert PRIORITY_BARRIER < PRIORITY_CONTROL < PRIORITY_DEMAND < PRIORITY_DATA

    def test_default_priority_from_kind(self):
        msg = Message(MessageKind.BARRIER, "a", "b", 0)
        assert msg.priority == PRIORITY_BARRIER
        msg = Message(MessageKind.DATA, "a", "b", 100)
        assert msg.priority == PRIORITY_DATA

    def test_explicit_priority_wins(self):
        msg = Message(MessageKind.BARRIER, "a", "b", 0, priority=PRIORITY_DATA)
        assert msg.priority == PRIORITY_DATA


class TestMessage:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(MessageKind.DATA, "a", "b", -1)

    def test_wire_size_adds_header(self):
        msg = Message(MessageKind.DATA, "a", "b", 1000)
        assert msg.wire_size == 1000 + HEADER_BYTES

    def test_wire_size_includes_piggyback(self):
        msg = Message(MessageKind.DATA, "a", "b", 1000)
        msg.piggyback = {"bytes": 240, "entries": []}
        assert msg.wire_size == 1000 + HEADER_BYTES + 240

    def test_uids_unique_and_increasing(self):
        a = Message(MessageKind.DEMAND, "x", "y", 0)
        b = Message(MessageKind.DEMAND, "x", "y", 0)
        assert b.uid > a.uid

    def test_kind_enum_roundtrip(self):
        assert MessageKind("data") is MessageKind.DATA
