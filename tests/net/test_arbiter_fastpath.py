"""The send() fast path must be order-identical to always-full-scanning.

``Network.send`` skips the heap rescan when no NIC capacity has been
released since the last full dispatch (``_scan_needed`` clear).  Forcing
the flag permanently on makes every send take the slow full-scan path;
whole simulations run both ways must produce identical metrics and obs
event streams.
"""

import json
import hashlib

import pytest

import repro.net.network as network_module
from repro.engine.config import Algorithm
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_configuration
from repro.faults import reference_chaos_plan
from repro.obs import Tracer


@pytest.fixture
def force_full_scans(monkeypatch):
    """Disable the fast path: every send sees _scan_needed=True."""
    original = network_module.Network.send

    def slow_send(self, message, src_host=None, dst_host=None):
        self._scan_needed = True
        return original(self, message, src_host=src_host, dst_host=dst_host)

    monkeypatch.setattr(network_module.Network, "send", slow_send)


def _fingerprint(setup, algorithm):
    tracer = Tracer()
    metrics = run_configuration(setup, 0, algorithm, tracer=tracer)
    uids = sorted({e["uid"] for e in tracer.events if "uid" in e})
    rank = {uid: i for i, uid in enumerate(uids)}
    events = [
        {**e, "uid": rank[e["uid"]]} if "uid" in e else e
        for e in tracer.events
    ]
    blob = json.dumps(events, sort_keys=True)
    return (
        dict(metrics.summary()),
        list(metrics.arrival_times),
        len(events),
        hashlib.sha256(blob.encode()).hexdigest(),
    )


SETUP = ExperimentConfig(num_servers=4, images_per_server=12)


#: Fast-path fingerprints, computed unpatched before the slow-path runs.
_FAST_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _capture_fast_results():
    for algorithm in (Algorithm.DOWNLOAD_ALL, Algorithm.GLOBAL):
        _FAST_RESULTS[algorithm] = _fingerprint(SETUP, algorithm)
    yield
    _FAST_RESULTS.clear()


@pytest.mark.parametrize(
    "algorithm",
    [Algorithm.DOWNLOAD_ALL, Algorithm.GLOBAL],
    ids=lambda a: a.value,
)
class TestFastPathEquivalence:
    def test_run_identical_with_and_without_fast_path(
        self, algorithm, force_full_scans
    ):
        slow = _fingerprint(SETUP, algorithm)
        assert slow == _FAST_RESULTS[algorithm]

    def test_faulted_run_identical(self, algorithm, force_full_scans):
        hosts = (*SETUP.server_hosts, SETUP.client_host)
        faulted = ExperimentConfig(
            num_servers=4,
            images_per_server=12,
            fault_plan=reference_chaos_plan(hosts, seed=1),
        )
        slow = _fingerprint(faulted, algorithm)
        assert slow == _FAULTED_FAST[algorithm]


_FAULTED_FAST = {}


@pytest.fixture(scope="module", autouse=True)
def _capture_faulted_fast():
    hosts = (*SETUP.server_hosts, SETUP.client_host)
    faulted = ExperimentConfig(
        num_servers=4,
        images_per_server=12,
        fault_plan=reference_chaos_plan(hosts, seed=1),
    )
    for algorithm in (Algorithm.DOWNLOAD_ALL, Algorithm.GLOBAL):
        _FAULTED_FAST[algorithm] = _fingerprint(faulted, algorithm)
    yield
    _FAULTED_FAST.clear()


class TestFlagBookkeeping:
    def test_flag_clear_after_full_scan(self):
        from repro.net.host import Host
        from repro.net.link import Link
        from repro.net.message import Message, MessageKind
        from repro.net.network import Network
        from repro.sim import Environment
        from repro.traces import constant_trace

        env = Environment()
        net = Network(env)
        for name in ("a", "b"):
            net.add_host(Host(env, name, nic_capacity=1))
        net.add_link(Link("a", "b", constant_trace(1000.0), startup_cost=0.0))
        net.register_actor("@a", "a")
        net.register_actor("@b", "b")

        assert net._scan_needed is False
        message = Message(MessageKind.DATA, "@a", "@b", 744)
        net.send(message, src_host="a", dst_host="b")
        # Fast path started the transfer directly; nothing queued.
        assert net._waiting == []
        assert net._active_transfers == {"a": 1, "b": 1}
        env.run()
        # Completion released NICs and ran the trailing full scan.
        assert net._scan_needed is False
        assert net._active_transfers == {"a": 0, "b": 0}
        # 744 payload + 256 header bytes = 1000 wire bytes at 1000 B/s.
        assert message.delivered_at == pytest.approx(1.0)
