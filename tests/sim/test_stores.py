"""Store, PriorityStore and FilterStore semantics."""

import pytest

from repro.sim import FilterStore, PriorityStore, Store
from repro.sim.stores import PriorityItem


class TestStore:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_put_then_get_fifo(self, env):
        store = Store(env)
        got = []

        def producer(env):
            for item in ("a", "b", "c"):
                yield store.put(item)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == ["a", "b", "c"]

    def test_get_blocks_until_item(self, env):
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(5)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(5.0, "late")]

    def test_bounded_put_blocks_when_full(self, env):
        store = Store(env, capacity=1)
        times = []

        def producer(env):
            yield store.put("x")
            times.append(env.now)
            yield store.put("y")
            times.append(env.now)

        def consumer(env):
            yield env.timeout(4)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [0.0, 4.0]

    def test_len_reflects_items(self, env):
        store = Store(env)
        store.put("a")
        store.put("b")
        env.run()
        assert len(store) == 2

    def test_none_is_a_valid_item(self, env):
        store = Store(env)
        got = []

        def roundtrip(env):
            yield store.put(None)
            item = yield store.get()
            got.append(item)

        env.process(roundtrip(env))
        env.run()
        assert got == [None]


class TestPriorityStore:
    def test_delivery_in_priority_order(self, env):
        store = PriorityStore(env)
        got = []

        def producer(env):
            yield store.put(PriorityItem(5, "bulk"))
            yield store.put(PriorityItem(0, "vip"))
            yield store.put(PriorityItem(3, "mid"))

        def consumer(env):
            yield env.timeout(1)
            for _ in range(3):
                entry = yield store.get()
                got.append(entry.item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == ["vip", "mid", "bulk"]

    def test_fifo_within_priority(self, env):
        store = PriorityStore(env)
        got = []

        def producer(env):
            for tag in ("first", "second", "third"):
                yield store.put(PriorityItem(1, tag))

        def consumer(env):
            yield env.timeout(1)
            for _ in range(3):
                entry = yield store.get()
                got.append(entry.item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == ["first", "second", "third"]

    def test_items_property_sorted(self, env):
        store = PriorityStore(env)
        store.put(PriorityItem(2, "b"))
        store.put(PriorityItem(1, "a"))
        env.run()
        assert [e.item for e in store.items] == ["a", "b"]

    def test_clear_returns_in_order(self, env):
        store = PriorityStore(env)
        store.put(PriorityItem(3, "z"))
        store.put(PriorityItem(1, "a"))
        env.run()
        drained = store.clear()
        assert [e.item for e in drained] == ["a", "z"]
        assert len(store) == 0

    def test_items_not_assignable(self, env):
        store = PriorityStore(env)
        with pytest.raises(ValueError):
            store.items = [PriorityItem(1, "x")]

    def test_waiting_getter_served_on_put(self, env):
        store = PriorityStore(env)
        got = []

        def consumer(env):
            entry = yield store.get()
            got.append((env.now, entry.item))

        def producer(env):
            yield env.timeout(2)
            yield store.put(PriorityItem(1, "x"))

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(2.0, "x")]


class TestPriorityItem:
    def test_ordering_by_priority(self):
        assert PriorityItem(0, "a") < PriorityItem(1, "b")
        assert not PriorityItem(1, "a") < PriorityItem(1, "b")

    def test_equality_on_priority(self):
        assert PriorityItem(1, "x") == PriorityItem(1, "y")
        assert PriorityItem(1, "x") != PriorityItem(2, "x")

    def test_hash_is_identity_based(self):
        a, b = PriorityItem(1, "x"), PriorityItem(1, "x")
        assert hash(a) != hash(b) or a is b


class TestFilterStore:
    def test_filtered_get(self, env):
        store = FilterStore(env)
        got = []

        def producer(env):
            yield store.put({"kind": "noise", "n": 1})
            yield store.put({"kind": "signal", "n": 2})

        def consumer(env):
            item = yield store.get(lambda i: i["kind"] == "signal")
            got.append(item["n"])

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [2]

    def test_non_matching_items_stay(self, env):
        store = FilterStore(env)

        def flow(env):
            yield store.put("a")
            yield store.put("b")
            item = yield store.get(lambda i: i == "b")
            assert item == "b"

        env.process(flow(env))
        env.run()
        assert store.items == ["a"]

    def test_filtered_get_waits_for_match(self, env):
        store = FilterStore(env)
        got = []

        def consumer(env):
            item = yield store.get(lambda i: i > 5)
            got.append((env.now, item))

        def producer(env):
            yield store.put(1)
            yield env.timeout(3)
            yield store.put(9)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(3.0, 9)]
