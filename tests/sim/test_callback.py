"""Callback one-shots, the events-processed counter, try_acquire."""

import pytest

from repro.sim import Callback, Environment, Resource, Timeout, URGENT
from repro.sim.errors import SimulationError


class TestScheduleCallback:
    def test_fires_at_delay(self, env):
        fired = []
        env.schedule_callback(2.5, lambda: fired.append(env.now))
        env.run()
        assert fired == [2.5]

    def test_returns_callback_event(self, env):
        event = env.schedule_callback(1.0, lambda: None)
        assert isinstance(event, Callback)
        assert event.triggered  # pre-succeeded, like a Timeout

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.schedule_callback(-1.0, lambda: None)

    def test_fires_exactly_once(self, env):
        count = []
        env.schedule_callback(0.0, lambda: count.append(1))
        env.run()
        assert count == [1]

    def test_single_calendar_event(self, env):
        env.schedule_callback(1.0, lambda: None)
        env.run()
        assert env.events_processed == 1

    def test_urgent_beats_same_time_normal(self, env):
        order = []
        env.schedule_callback(1.0, lambda: order.append("normal"))
        env.schedule_callback(1.0, lambda: order.append("urgent"), priority=URGENT)
        env.run()
        assert order == ["urgent", "normal"]

    def test_same_priority_ties_fire_in_schedule_order(self, env):
        order = []
        env.schedule_callback(1.0, lambda: order.append("first"))
        env.schedule_callback(1.0, lambda: order.append("second"))
        env.run()
        assert order == ["first", "second"]

    def test_callback_may_schedule_callbacks(self, env):
        fired = []
        env.schedule_callback(
            1.0,
            lambda: env.schedule_callback(1.0, lambda: fired.append(env.now)),
        )
        env.run()
        assert fired == [2.0]

    def test_repr_names_function(self, env):
        def completion():
            pass  # pragma: no cover

        assert "completion" in repr(env.schedule_callback(1.0, completion))


class TestEventsProcessed:
    def test_starts_at_zero(self):
        assert Environment().events_processed == 0

    def test_run_counts_every_event(self, env):
        def proc():
            yield env.timeout(1.0)  # init event + timeout
            yield env.timeout(1.0)

        env.process(proc())
        env.run()
        # init + 2 timeouts + process-completion event
        assert env.events_processed == 4

    def test_step_counts(self, env):
        env.schedule_callback(1.0, lambda: None)
        env.step()
        assert env.events_processed == 1

    def test_counts_accumulate_across_runs(self, env):
        env.schedule_callback(1.0, lambda: None)
        env.run()
        env.schedule_callback(1.0, lambda: None)
        env.run()
        assert env.events_processed == 2

    def test_counts_with_trace_hook_installed(self, env):
        seen = []
        env.trace_hook = lambda now, event: seen.append(type(event).__name__)
        env.schedule_callback(1.0, lambda: None)
        env.run()
        assert env.events_processed == 1
        assert seen == ["Callback"]

    def test_process_path_costs_more_than_callback(self):
        des, fluid = Environment(), Environment()

        def transfer():
            yield des.timeout(1.0)

        des.process(transfer())
        des.run()
        fluid.schedule_callback(1.0, lambda: None)
        fluid.run()
        assert des.events_processed == 3  # init, timeout, completion
        assert fluid.events_processed == 1


class TestTryAcquire:
    def test_grants_free_slot_without_event(self, env):
        disk = Resource(env, capacity=1)
        hold = disk.try_acquire()
        assert hold is not None and hold.granted
        assert disk.count == 1
        assert env.peek() == float("inf")  # nothing on the calendar

    def test_none_when_full(self, env):
        disk = Resource(env, capacity=1)
        assert disk.try_acquire() is not None
        assert disk.try_acquire() is None

    def test_release_wakes_queued_request(self, env):
        disk = Resource(env, capacity=1)
        hold = disk.try_acquire()
        order = []

        def waiter():
            with disk.request() as req:
                yield req
                order.append(env.now)

        env.process(waiter())

        def releaser():
            yield env.timeout(5.0)
            disk.release(hold)

        env.process(releaser())
        env.run()
        assert order == [5.0]

    def test_mixed_protocols_queue_behind_each_other(self, env):
        disk = Resource(env, capacity=2)
        a = disk.try_acquire()

        def holder():
            with disk.request() as req:
                yield req
                yield env.timeout(3.0)

        env.process(holder())
        env.run(until=1.0)
        assert disk.count == 2
        assert disk.try_acquire() is None
        disk.release(a)
        assert disk.count == 1

    def test_double_release_is_harmless(self, env):
        disk = Resource(env, capacity=1)
        hold = disk.try_acquire()
        disk.release(hold)
        disk.release(hold)
        assert disk.count == 0
