"""Environment and process semantics."""

import pytest

from repro.sim import Environment, Interrupt
from repro.sim.errors import EventFailed, SimulationError


class TestEnvironmentRun:
    def test_run_until_time_stops_clock(self, env):
        def ticker(env):
            while True:
                yield env.timeout(1)

        env.process(ticker(env))
        env.run(until=10.5)
        assert env.now == 10.5

    def test_run_until_past_time_rejected(self, env):
        env.process(iter_timeout(env, 5))
        env.run(until=5)
        with pytest.raises(ValueError):
            env.run(until=1)

    def test_run_until_event_returns_value(self, env):
        def proc(env):
            yield env.timeout(2)
            return "answer"

        p = env.process(proc(env))
        assert env.run(until=p) == "answer"

    def test_run_until_already_processed_event(self, env):
        def proc(env):
            yield env.timeout(1)
            return 7

        p = env.process(proc(env))
        env.run()
        assert env.run(until=p) == 7

    def test_run_until_unreachable_event_raises(self, env):
        never = env.event()
        env.process(iter_timeout(env, 1))
        with pytest.raises(SimulationError):
            env.run(until=never)

    def test_run_drains_calendar(self, env):
        done = []

        def proc(env):
            yield env.timeout(3)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [3]
        assert env.peek() == float("inf")

    def test_step_with_empty_calendar_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_same_time_events_fire_in_schedule_order(self, env):
        order = []

        def proc(env, tag):
            yield env.timeout(5)
            order.append(tag)

        for tag in ("a", "b", "c"):
            env.process(proc(env, tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_initial_time(self):
        env = Environment(initial_time=100.0)
        assert env.now == 100.0
        fired = []

        def proc(env):
            yield env.timeout(5)
            fired.append(env.now)

        env.process(proc(env))
        env.run()
        assert fired == [105.0]


class TestProcess:
    def test_process_requires_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_return_value_becomes_event_value(self, env):
        def child(env):
            yield env.timeout(1)
            return {"status": "ok"}

        collected = []

        def parent(env):
            value = yield env.process(child(env))
            collected.append(value)

        env.process(parent(env))
        env.run()
        assert collected == [{"status": "ok"}]

    def test_yield_non_event_is_error(self, env):
        def proc(env):
            yield 42

        env.process(proc(env))
        with pytest.raises(Exception):
            env.run()

    def test_exception_propagates_to_waiter(self, env):
        def child(env):
            yield env.timeout(1)
            raise KeyError("lost")

        caught = []

        def parent(env):
            try:
                yield env.process(child(env))
            except KeyError as exc:
                caught.append(exc.args[0])

        env.process(parent(env))
        env.run()
        assert caught == ["lost"]

    def test_unwaited_crash_surfaces_from_run(self, env):
        def child(env):
            yield env.timeout(1)
            raise RuntimeError("unobserved")

        env.process(child(env))
        with pytest.raises(EventFailed):
            env.run()

    def test_is_alive_transitions(self, env):
        def proc(env):
            yield env.timeout(5)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_yield_already_processed_event_resumes(self, env):
        t = env.timeout(1, value="early")
        got = []

        def late(env):
            yield env.timeout(3)
            value = yield t
            got.append((env.now, value))

        env.process(late(env))
        env.run()
        assert got == [(3.0, "early")]

    def test_active_process_visible_during_execution(self, env):
        seen = []

        def proc(env):
            seen.append(env.active_process)
            yield env.timeout(1)

        p = env.process(proc(env))
        env.run()
        assert seen == [p]
        assert env.active_process is None

    def test_processes_can_chain(self, env):
        def grandchild(env):
            yield env.timeout(2)
            return 2

        def child(env):
            inner = yield env.process(grandchild(env))
            yield env.timeout(1)
            return inner + 1

        def parent(env):
            value = yield env.process(child(env))
            return value + 1

        p = env.process(parent(env))
        assert env.run(until=p) == 4
        assert env.now == 3


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        causes = []

        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt as i:
                causes.append(i.cause)

        def attacker(env, target):
            yield env.timeout(5)
            target.interrupt("reason")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert causes == ["reason"]
        assert env.now >= 5

    def test_interrupted_process_can_continue(self, env):
        trace = []

        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                trace.append(("interrupted", env.now))
            yield env.timeout(10)
            trace.append(("done", env.now))

        def attacker(env, target):
            yield env.timeout(2)
            target.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert trace == [("interrupted", 2.0), ("done", 12.0)]

    def test_interrupt_dead_process_raises(self, env):
        def victim(env):
            yield env.timeout(1)

        v = env.process(victim(env))
        env.run()
        with pytest.raises(SimulationError):
            v.interrupt()

    def test_self_interrupt_rejected(self, env):
        failures = []

        def proc(env):
            try:
                env.active_process.interrupt()
            except SimulationError:
                failures.append(True)
            yield env.timeout(1)

        env.process(proc(env))
        env.run()
        assert failures == [True]

    def test_stale_target_after_interrupt_is_ignored(self, env):
        # The victim is interrupted away from a timeout; when the timeout
        # later fires it must not resume the victim a second time.
        log = []

        def victim(env):
            try:
                yield env.timeout(10)
                log.append("timeout-completed")
            except Interrupt:
                log.append("interrupted")
            yield env.timeout(100)
            log.append("second-wait-done")

        def attacker(env, target):
            yield env.timeout(1)
            target.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert log == ["interrupted", "second-wait-done"]


def iter_timeout(env, delay):
    yield env.timeout(delay)
