"""Resource and PriorityResource semantics."""

import pytest

from repro.sim import Environment, PriorityResource, Resource


def hold(env, resource, log, tag, duration, priority=None):
    request = (
        resource.request()
        if priority is None
        else resource.request(priority=priority)
    )
    with request as req:
        yield req
        log.append((env.now, tag))
        yield env.timeout(duration)


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_immediate_grant_when_free(self, env):
        res = Resource(env)
        log = []
        env.process(hold(env, res, log, "a", 1))
        env.run()
        assert log == [(0.0, "a")]

    def test_fifo_order(self, env):
        res = Resource(env)
        log = []

        def spawn(env):
            env.process(hold(env, res, log, "a", 10))
            yield env.timeout(1)
            env.process(hold(env, res, log, "b", 10))
            yield env.timeout(1)
            env.process(hold(env, res, log, "c", 10))

        env.process(spawn(env))
        env.run()
        assert log == [(0.0, "a"), (10.0, "b"), (20.0, "c")]

    def test_capacity_two_runs_concurrently(self, env):
        res = Resource(env, capacity=2)
        log = []
        env.process(hold(env, res, log, "a", 10))
        env.process(hold(env, res, log, "b", 10))
        env.process(hold(env, res, log, "c", 10))
        env.run()
        assert log == [(0.0, "a"), (0.0, "b"), (10.0, "c")]

    def test_count_and_queue_length(self, env):
        res = Resource(env)
        observed = []

        def observer(env):
            yield env.timeout(0.5)
            observed.append((res.count, res.queue_length))

        env.process(hold(env, res, [], "a", 5))
        env.process(hold(env, res, [], "b", 5))
        env.process(observer(env))
        env.run()
        assert observed == [(1, 1)]

    def test_release_without_grant_is_noop(self, env):
        res = Resource(env)
        req = res.request()
        res.release(req)
        res.release(req)  # double release tolerated

    def test_context_manager_releases_on_exception(self, env):
        res = Resource(env)
        log = []

        def crasher(env):
            with res.request() as req:
                yield req
                raise RuntimeError("die")

        def follower(env):
            yield env.timeout(1)
            yield from hold(env, res, log, "next", 1)

        p = env.process(crasher(env))

        def supervisor(env):
            try:
                yield p
            except RuntimeError:
                pass

        env.process(supervisor(env))
        env.process(follower(env))
        env.run()
        assert log == [(1.0, "next")]

    def test_queued_request_can_be_cancelled(self, env):
        res = Resource(env)
        log = []

        def canceller(env):
            req = res.request()
            yield env.timeout(1)  # still queued behind holder
            res.release(req)

        env.process(hold(env, res, log, "holder", 10))
        env.process(canceller(env))
        env.process(hold(env, res, log, "after", 1))
        env.run()
        # "after" was queued third but runs second because the middle
        # request withdrew.
        assert log == [(0.0, "holder"), (10.0, "after")]


class TestPriorityResource:
    def test_lower_priority_value_served_first(self, env):
        res = PriorityResource(env)
        log = []

        def spawn(env):
            env.process(hold(env, res, log, "first", 10, priority=5))
            yield env.timeout(1)
            env.process(hold(env, res, log, "bulk", 10, priority=5))
            env.process(hold(env, res, log, "urgent", 10, priority=0))

        env.process(spawn(env))
        env.run()
        assert [tag for _, tag in log] == ["first", "urgent", "bulk"]

    def test_fifo_within_priority_class(self, env):
        res = PriorityResource(env)
        log = []

        def spawn(env):
            env.process(hold(env, res, log, "holder", 5, priority=1))
            yield env.timeout(1)
            for tag in ("a", "b", "c"):
                env.process(hold(env, res, log, tag, 1, priority=3))

        env.process(spawn(env))
        env.run()
        assert [tag for _, tag in log] == ["holder", "a", "b", "c"]

    def test_no_preemption_of_running_holder(self, env):
        res = PriorityResource(env)
        log = []

        def spawn(env):
            env.process(hold(env, res, log, "bulk", 10, priority=9))
            yield env.timeout(1)
            env.process(hold(env, res, log, "vip", 1, priority=0))

        env.process(spawn(env))
        env.run()
        assert log == [(0.0, "bulk"), (10.0, "vip")]

    def test_withdrawn_priority_request_skipped(self, env):
        res = PriorityResource(env)
        log = []

        def canceller(env):
            req = res.request(priority=0)
            yield env.timeout(1)
            res.release(req)

        env.process(hold(env, res, log, "holder", 5, priority=1))
        env.process(canceller(env))
        env.process(hold(env, res, log, "b", 1, priority=2))
        env.run()
        assert [tag for _, tag in log] == ["holder", "b"]

    def test_queue_length_excludes_withdrawn(self, env):
        res = PriorityResource(env)
        holder = res.request(priority=0)
        q1 = res.request(priority=1)
        assert res.queue_length == 1
        res.release(q1)
        assert res.queue_length == 0
        res.release(holder)
