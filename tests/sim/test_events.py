"""Event lifecycle and condition events."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, Timeout
from repro.sim.errors import SimulationError
from repro.sim.events import ConditionValue


class TestEventLifecycle:
    def test_new_event_is_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_unavailable_before_trigger(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_ok_unavailable_before_trigger(self, env):
        with pytest.raises(SimulationError):
            env.event().ok

    def test_succeed_sets_value(self, env):
        event = env.event().succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_twice_raises(self, env):
        event = env.event().succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_fail_stores_exception(self, env):
        exc = RuntimeError("boom")
        event = env.event().fail(exc)
        event.defused = True
        assert not event.ok
        assert event.value is exc

    def test_callbacks_run_on_processing(self, env):
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("hello")
        env.run()
        assert seen == ["hello"]
        assert event.processed

    def test_unhandled_failure_raises_from_run(self, env):
        env.event().fail(ValueError("unnoticed"))
        with pytest.raises(Exception):
            env.run()

    def test_defused_failure_does_not_raise(self, env):
        event = env.event()
        event.fail(ValueError("noticed"))
        event.defused = True
        env.run()  # no exception


class TestTimeout:
    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            Timeout(env, -1.0)

    def test_timeout_fires_at_right_time(self, env):
        fired = []

        def proc(env):
            yield env.timeout(3.5)
            fired.append(env.now)

        env.process(proc(env))
        env.run()
        assert fired == [3.5]

    def test_timeout_carries_value(self, env):
        result = []

        def proc(env):
            value = yield env.timeout(1, value="payload")
            result.append(value)

        env.process(proc(env))
        env.run()
        assert result == ["payload"]

    def test_zero_delay_allowed(self, env):
        t = env.timeout(0)
        env.run()
        assert t.processed


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        t1, t2 = env.timeout(1), env.timeout(5)
        done = []

        def proc(env):
            yield AllOf(env, [t1, t2])
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [5]

    def test_any_of_fires_on_first(self, env):
        t1, t2 = env.timeout(1), env.timeout(5)
        done = []

        def proc(env):
            yield AnyOf(env, [t1, t2])
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [1]

    def test_all_of_empty_fires_immediately(self, env):
        done = []

        def proc(env):
            yield AllOf(env, [])
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [0]

    def test_any_of_empty_fires_immediately(self, env):
        done = []

        def proc(env):
            yield AnyOf(env, [])
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [0]

    def test_condition_value_maps_events(self, env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        results = []

        def proc(env):
            value = yield AllOf(env, [t1, t2])
            results.append((value[t1], value[t2]))

        env.process(proc(env))
        env.run()
        assert results == [("a", "b")]

    def test_condition_value_contains_and_len(self, env):
        t1 = env.timeout(1)
        value = ConditionValue([t1])
        assert t1 in value
        assert len(value) == 1

    def test_condition_value_missing_key(self, env):
        t1, t2 = env.timeout(1), env.timeout(2)
        value = ConditionValue([t1])
        with pytest.raises(KeyError):
            value[t2]

    def test_condition_propagates_failure(self, env):
        bad = env.event()
        caught = []

        def failer(env):
            yield env.timeout(1)
            bad.fail(RuntimeError("inner"))

        def waiter(env):
            try:
                yield AllOf(env, [bad, env.timeout(10)])
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(failer(env))
        env.process(waiter(env))
        env.run()
        assert caught == ["inner"]

    def test_cross_environment_events_rejected(self, env):
        other = Environment()
        t = other.timeout(1)
        with pytest.raises(ValueError):
            AllOf(env, [t])

    def test_already_processed_subevent(self, env):
        t = env.timeout(1)
        done = []

        def late(env):
            yield env.timeout(2)
            yield AllOf(env, [t])  # t fired at 1 already
            done.append(env.now)

        env.process(late(env))
        env.run()
        assert done == [2]
