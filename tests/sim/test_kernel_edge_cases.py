"""Kernel edge cases beyond the basic semantics suite."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Interrupt, Resource
from repro.sim.errors import SimulationError


class TestNestedConditions:
    def test_all_of_any_of(self, env):
        done = []

        def proc(env):
            first_pair = AnyOf(env, [env.timeout(5), env.timeout(9)])
            second_pair = AnyOf(env, [env.timeout(7), env.timeout(20)])
            yield AllOf(env, [first_pair, second_pair])
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [7]

    def test_condition_over_processes(self, env):
        def worker(env, delay, value):
            yield env.timeout(delay)
            return value

        results = []

        def coordinator(env):
            a = env.process(worker(env, 2, "a"))
            b = env.process(worker(env, 4, "b"))
            value = yield AllOf(env, [a, b])
            results.append((value[a], value[b], env.now))

        env.process(coordinator(env))
        env.run()
        assert results == [("a", "b", 4)]


class TestInterruptDuringResourceWait:
    def test_interrupted_waiter_leaves_queue(self, env):
        resource = Resource(env)
        order = []

        def holder(env):
            with resource.request() as req:
                yield req
                yield env.timeout(10)

        def victim(env):
            request = resource.request()
            try:
                yield request
                order.append("victim-acquired")
            except Interrupt:
                resource.release(request)
                order.append("victim-gone")

        def third(env):
            yield env.timeout(2)
            with resource.request() as req:
                yield req
                order.append(("third", env.now))

        env.process(holder(env))
        v = env.process(victim(env))
        env.process(third(env))

        def attacker(env):
            yield env.timeout(1)
            v.interrupt()

        env.process(attacker(env))
        env.run()
        # The interrupted victim withdrew; third gets the slot at t=10.
        assert order == ["victim-gone", ("third", 10.0)]


class TestRunSemantics:
    def test_run_until_failed_process_raises(self, env):
        def crasher(env):
            yield env.timeout(1)
            raise RuntimeError("expected")

        p = env.process(crasher(env))
        with pytest.raises(RuntimeError, match="expected"):
            env.run(until=p)

    def test_environment_isolated(self):
        env_a, env_b = Environment(), Environment()

        def proc(env):
            yield env.timeout(5)

        env_a.process(proc(env_a))
        env_b.process(proc(env_b))
        env_a.run()
        assert env_a.now == 5
        assert env_b.now == 0  # untouched

    def test_stop_from_callback(self, env):
        t = env.timeout(3)
        t.callbacks.append(lambda event: env.stop("early"))
        env.timeout(100)
        assert env.run() == "early"
        assert env.now == 3

    def test_peek(self, env):
        assert env.peek() == float("inf")
        env.timeout(7)
        assert env.peek() == 7
