"""Property-based tests of the simulation kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, PriorityResource, Resource, Store
from repro.sim.stores import PriorityItem, PriorityStore


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []

    def proc(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(proc(env, delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert env.now == max(delays)


@given(
    capacity=st.integers(min_value=1, max_value=5),
    holds=st.lists(
        st.floats(min_value=0.1, max_value=10), min_size=1, max_size=25
    ),
)
@settings(max_examples=50, deadline=None)
def test_resource_never_exceeds_capacity(capacity, holds):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    concurrency = []

    def user(env, duration):
        with resource.request() as req:
            yield req
            concurrency.append(resource.count)
            yield env.timeout(duration)

    for duration in holds:
        env.process(user(env, duration))
    env.run()
    assert len(concurrency) == len(holds)  # everyone was eventually served
    assert max(concurrency) <= capacity


@given(
    priorities=st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=20)
)
@settings(max_examples=50, deadline=None)
def test_priority_resource_serves_waiting_queue_in_priority_order(priorities):
    env = Environment()
    resource = PriorityResource(env, capacity=1)
    served = []

    def holder(env):
        with resource.request(priority=-1) as req:
            yield req
            yield env.timeout(1)  # everyone else queues behind this

    def user(env, priority, index):
        with resource.request(priority=priority) as req:
            yield req
            served.append((priority, index))
            yield env.timeout(0.01)

    env.process(holder(env))
    for index, priority in enumerate(priorities):
        env.process(user(env, priority, index))
    env.run()
    # Served order must be sorted by (priority, arrival index).
    assert served == sorted(served)


@given(
    items=st.lists(st.integers(), min_size=1, max_size=30),
    capacity=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=50, deadline=None)
def test_store_conserves_items_fifo(items, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items


@given(
    entries=st.lists(
        st.tuples(st.integers(min_value=0, max_value=5), st.integers()),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_priority_store_delivers_stable_sorted(entries):
    env = Environment()
    store = PriorityStore(env)
    received = []

    def producer(env):
        for priority, payload in entries:
            yield store.put(PriorityItem(priority, payload))

    def consumer(env):
        yield env.timeout(1)  # let the producer enqueue everything first
        for _ in entries:
            entry = yield store.get()
            received.append((entry.priority, entry.item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    # Stable sort by priority: payload order preserved within a class.
    expected = sorted(
        [(p, payload) for p, payload in entries],
        key=lambda pair: pair[0],
    )
    # Compare priorities exactly and the within-class payload sequences.
    assert [p for p, _ in received] == [p for p, _ in expected]
    for klass in set(p for p, _ in entries):
        want = [payload for p, payload in entries if p == klass]
        got = [payload for p, payload in received if p == klass]
        assert got == want
