"""The global algorithm's barrier change-over protocol (§2.2)."""

import pytest

from repro.dataflow.placement import Placement
from repro.engine.config import Algorithm
from repro.engine.controllers import GlobalController
from repro.engine.simulation import build_simulation
from repro.traces import BandwidthTrace
from tests.conftest import complete_links, tiny_spec


def run_with_forced_install(spec, target_assignment_change, at_time):
    """Run a simulation, forcing one placement install at ``at_time``."""
    env, runtime = build_simulation(spec)
    installs = []
    controller = None
    # Find the controller the builder spawned by reaching into the env is
    # fragile; instead drive a fresh controller's _install directly.
    from repro.placement.global_planner import GlobalPlanner
    from repro.dataflow.cost import CostModel, expected_output_sizes

    sizes = expected_output_sizes(
        runtime.tree, spec.mean_image_size, spec.image_rel_std
    )
    cost_model = CostModel(runtime.tree, sizes)
    planner = GlobalPlanner(runtime.tree, list(spec.all_hosts), cost_model)
    client_actor = None
    # The builder registered the client actor process; rebuild a handle.
    # Simplest: grab it from runtime.operators' sibling structure — the
    # client actor is reachable via the controller; here we recreate the
    # messaging through a minimal shim object.

    class Shim:
        pass

    def forced(env):
        yield env.timeout(at_time)
        new_assignment = runtime.current_placement.as_dict()
        new_assignment.update(target_assignment_change)
        placement = Placement(new_assignment)
        controller = GlobalController(runtime, planner, runtime.client_actor)
        yield from controller._install(placement)
        installs.append(env.now)

    env.process(forced(env))
    stop = env.any_of([runtime.done, env.timeout(spec.max_sim_time)])
    env.run(until=stop)
    return runtime, installs


class TestBarrier:
    def spec(self, **overrides):
        # download-all keeps the built-in controller out of the way so the
        # test can drive its own barrier.
        overrides.setdefault("images", 30)
        return tiny_spec(algorithm=Algorithm.DOWNLOAD_ALL, **overrides)

    def test_forced_changeover_completes_and_moves_operator(self):
        spec = self.spec()
        runtime, installs = run_with_forced_install(
            spec, {"op0": "h0"}, at_time=20.0
        )
        assert installs, "barrier never completed"
        assert len(runtime.metrics.arrival_times) == 30
        assert runtime.metrics.relocations == 1
        assert runtime.network.actor_host("op0") == "h0"

    def test_changeover_preserves_every_image(self):
        spec = self.spec()
        runtime, __ = run_with_forced_install(spec, {"op0": "h1", "op2": "h2"}, 15.0)
        assert runtime.metrics.arrival_times == sorted(
            runtime.metrics.arrival_times
        )
        assert len(runtime.metrics.arrival_times) == 30

    def test_late_changeover_past_end_is_harmless(self):
        """A barrier whose switch iteration lands after the workload ends
        must not stall the servers."""
        spec = self.spec(images=8)
        runtime, installs = run_with_forced_install(spec, {"op0": "h3"}, 1.0)
        assert len(runtime.metrics.arrival_times) == 8

    def test_barrier_stall_tracked(self):
        spec = self.spec()
        runtime, __ = run_with_forced_install(spec, {"op1": "h2"}, 10.0)
        assert runtime.metrics.barrier_rounds == 1
        assert runtime.metrics.barrier_stall_seconds > 0
