"""Location/timestamp vector semantics (§2.3)."""

import pytest

from repro.engine.vectors import VectorStore


def store(**locations):
    return VectorStore(locations or {"op0": "h0", "op1": "h1"})


class TestVectorStore:
    def test_initial_state(self):
        s = store()
        assert s.location_of("op0") == "h0"
        assert s.timestamps == {"op0": 0, "op1": 0}

    def test_unknown_operator_raises(self):
        with pytest.raises(KeyError):
            store().location_of("ghost")
        with pytest.raises(KeyError):
            store().record_move("ghost", "h2")

    def test_record_move_bumps_timestamp(self):
        s = store()
        s.record_move("op0", "h5")
        assert s.location_of("op0") == "h5"
        assert s.timestamps["op0"] == 1

    def test_dominance_definition(self):
        s = store()
        s.record_move("op0", "h5")  # ts = {op0: 1, op1: 0}
        assert s.dominates({"op0": 2, "op1": 0})
        assert s.dominates({"op0": 1, "op1": 1})
        assert not s.dominates({"op0": 1, "op1": 0})  # equal, not dominant
        assert not s.dominates({"op0": 0, "op1": 5})  # one entry smaller

    def test_merge_overwrites_on_dominance(self):
        s = store()
        incoming_ts = {"op0": 2, "op1": 1}
        incoming_loc = {"op0": "h7", "op1": "h8"}
        assert s.merge(incoming_ts, incoming_loc)
        assert s.location_of("op0") == "h7"
        assert s.location_of("op1") == "h8"
        assert s.timestamps == incoming_ts

    def test_merge_rejected_without_dominance(self):
        s = store()
        s.record_move("op0", "h5")
        # Incomparable: newer op1 but older op0.
        assert not s.merge({"op0": 0, "op1": 3}, {"op0": "x", "op1": "y"})
        assert s.location_of("op0") == "h5"
        assert s.location_of("op1") == "h1"

    def test_refresh_entry_single_operator(self):
        s = store()
        assert s.refresh_entry("op0", "h9", timestamp=2)
        assert s.location_of("op0") == "h9"
        assert s.timestamps["op0"] == 2
        # op1 untouched.
        assert s.location_of("op1") == "h1"

    def test_refresh_entry_stale_rejected(self):
        s = store()
        s.refresh_entry("op0", "h9", timestamp=3)
        assert not s.refresh_entry("op0", "h2", timestamp=1)
        assert s.location_of("op0") == "h9"

    def test_refresh_unknown_operator_ignored(self):
        assert not store().refresh_entry("ghost", "h1", timestamp=1)

    def test_snapshot_is_a_copy(self):
        s = store()
        ts, loc = s.snapshot()
        ts["op0"] = 99
        loc["op0"] = "mars"
        assert s.timestamps["op0"] == 0
        assert s.location_of("op0") == "h0"

    def test_carry_from_takes_newest_entries(self):
        a = store()
        b = store()
        a.record_move("op0", "h3")  # a knows op0 moved
        b.record_move("op1", "h4")
        b.record_move("op1", "h5")  # b knows op1 moved twice
        a.carry_from(b)
        assert a.location_of("op0") == "h3"  # kept own newer entry
        assert a.location_of("op1") == "h5"  # adopted b's newer entry

    def test_eventual_convergence_via_refresh(self):
        """Two stores with incomparable vectors converge entry-wise."""
        a, b = store(), store()
        a.record_move("op0", "h3")
        b.record_move("op1", "h4")
        # Message from op0 (at h3) reaches b; from op1 (at h4) reaches a.
        b.refresh_entry("op0", "h3", a.timestamps["op0"])
        a.refresh_entry("op1", "h4", b.timestamps["op1"])
        assert a.locations == b.locations
