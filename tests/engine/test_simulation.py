"""End-to-end engine tests: all algorithms on small workloads."""

import pytest

from repro.engine.config import Algorithm
from repro.engine.simulation import build_simulation, build_tree, run_simulation
from repro.traces import BandwidthTrace
from tests.conftest import complete_links, tiny_spec


class TestPipelineCorrectness:
    @pytest.mark.parametrize("algorithm", list(Algorithm))
    def test_all_images_delivered_in_order(self, algorithm):
        spec = tiny_spec(algorithm=algorithm, images=8)
        metrics = run_simulation(spec)
        assert not metrics.truncated
        assert len(metrics.arrival_times) == 8
        assert metrics.arrival_times == sorted(metrics.arrival_times)

    @pytest.mark.parametrize("shape", ["binary", "left-deep"])
    def test_tree_shapes_complete(self, shape):
        spec = tiny_spec(tree_shape=shape, images=5)
        metrics = run_simulation(spec)
        assert len(metrics.arrival_times) == 5

    def test_odd_server_count(self):
        spec = tiny_spec(num_servers=5, images=4)
        metrics = run_simulation(spec)
        assert len(metrics.arrival_times) == 4

    def test_two_servers_minimal_tree(self):
        spec = tiny_spec(num_servers=2, images=4)
        metrics = run_simulation(spec)
        assert len(metrics.arrival_times) == 4

    def test_deterministic_repetition(self):
        a = run_simulation(tiny_spec(algorithm=Algorithm.GLOBAL, images=6))
        b = run_simulation(tiny_spec(algorithm=Algorithm.GLOBAL, images=6))
        assert a.arrival_times == b.arrival_times
        assert a.relocations == b.relocations

    def test_download_all_time_matches_hand_model(self):
        """4 servers, constant 50 KB/s links, all ops at the client: per
        image the client NIC receives 4 transfers serially."""
        rate = 50 * 1024.0
        size = 128 * 1024.0
        spec = tiny_spec(
            algorithm=Algorithm.DOWNLOAD_ALL,
            images=6,
            rate=rate,
            mean_image_size=size,
            image_rel_std=0.0,
        )
        metrics = run_simulation(spec)
        per_transfer = 0.05 + (size + 256) / rate
        expected_interval = 4 * per_transfer
        # Pipelined steady state; allow compute/demand slack.
        assert metrics.mean_interarrival == pytest.approx(
            expected_interval, rel=0.25
        )

    def test_prefetch_improves_throughput(self):
        base = tiny_spec(images=10)
        with_prefetch = run_simulation(base)
        without = run_simulation(tiny_spec(images=10, prefetch=False))
        assert with_prefetch.completion_time < without.completion_time

    def test_compute_charged(self):
        """Composition at 7 us/pixel must slow down completion."""
        fast = run_simulation(tiny_spec(images=6))
        from repro.app.composition import CompositionSpec

        slow = run_simulation(
            tiny_spec(images=6, compose=CompositionSpec(seconds_per_pixel=7e-4))
        )
        assert slow.completion_time > fast.completion_time


class TestRelocationBehaviour:
    def test_static_algorithms_never_move(self):
        for algorithm in (Algorithm.DOWNLOAD_ALL, Algorithm.ONE_SHOT):
            metrics = run_simulation(tiny_spec(algorithm=algorithm, images=6))
            assert metrics.relocations == 0
            assert metrics.barrier_rounds == 0

    def test_global_reacts_to_bandwidth_collapse(self):
        """The links into one helper host collapse mid-run; the global
        algorithm must relocate and beat a one-shot placement."""
        hosts = [f"h{i}" for i in range(4)] + ["client"]
        links = complete_links(hosts, rate=60 * 1024.0)

        def crashing(key):
            # Links touching h1 are fast until t=200 then almost dead.
            return BandwidthTrace([0.0, 200.0], [80 * 1024.0, 0.5 * 1024.0],
                                  name=f"{key[0]}~{key[1]}")

        for key in list(links):
            if "h1" in key:
                links[key] = crashing(key)
        common = dict(
            images=40,
            link_traces=links,
            relocation_period=120.0,
            workload_seed=3,
        )
        one_shot = run_simulation(
            tiny_spec(algorithm=Algorithm.ONE_SHOT, **common)
        )
        adaptive = run_simulation(
            tiny_spec(algorithm=Algorithm.GLOBAL, **common)
        )
        assert adaptive.relocations > 0
        assert adaptive.completion_time < one_shot.completion_time

    def test_global_counts_barrier_rounds(self):
        spec = tiny_spec(
            algorithm=Algorithm.GLOBAL, images=30, relocation_period=50.0
        )
        metrics = run_simulation(spec)
        assert metrics.planner_runs > 0
        assert metrics.placements_installed == metrics.barrier_rounds

    def test_local_moves_execute_in_windows(self):
        hosts = [f"h{i}" for i in range(4)] + ["client"]
        links = complete_links(hosts, rate=40 * 1024.0)
        # Client links are awful: local ops should drift off the client.
        for key in list(links):
            if "client" in key:
                links[key] = BandwidthTrace([0.0], [4 * 1024.0])
        spec = tiny_spec(
            algorithm=Algorithm.LOCAL,
            images=60,
            link_traces=links,
            relocation_period=100.0,
        )
        metrics = run_simulation(spec)
        assert len(metrics.arrival_times) == 60

    def test_oracle_monitoring_runs(self):
        spec = tiny_spec(
            algorithm=Algorithm.GLOBAL,
            images=10,
            oracle_monitoring=True,
            relocation_period=60.0,
        )
        metrics = run_simulation(spec)
        assert metrics.probes_sent == 0
        assert len(metrics.arrival_times) == 10

    def test_probe_before_planning_generates_probes(self):
        spec = tiny_spec(
            algorithm=Algorithm.GLOBAL,
            images=40,
            probe_before_planning=True,
            relocation_period=40.0,
        )
        metrics = run_simulation(spec)
        assert metrics.probes_sent > 0

    def test_barrier_priority_ablation_runs(self):
        spec = tiny_spec(
            algorithm=Algorithm.GLOBAL,
            images=10,
            barrier_priority=False,
            relocation_period=60.0,
        )
        metrics = run_simulation(spec)
        assert len(metrics.arrival_times) == 10


class TestBuildSimulation:
    def test_build_tree_shapes(self):
        spec = tiny_spec()
        assert build_tree(spec).depth() == 2
        spec = tiny_spec(tree_shape="left-deep")
        assert build_tree(spec).depth() == 3

    def test_initial_placement_per_algorithm(self):
        env, runtime = build_simulation(tiny_spec(Algorithm.DOWNLOAD_ALL))
        assert all(
            runtime.initial_placement.host_of(op.node_id) == "client"
            for op in runtime.tree.operators()
        )
        env2, runtime2 = build_simulation(
            tiny_spec(Algorithm.ONE_SHOT, rate=10 * 1024.0)
        )
        moved = [
            op.node_id
            for op in runtime2.tree.operators()
            if runtime2.initial_placement.host_of(op.node_id) != "client"
        ]
        assert moved  # uniform slow links: congestion must be relieved

    def test_actors_registered(self):
        env, runtime = build_simulation(tiny_spec())
        for node in runtime.tree.nodes():
            assert runtime.network.actor_host(node.node_id) == (
                runtime.initial_placement.host_of(node.node_id)
            )

    def test_max_sim_time_truncates(self):
        spec = tiny_spec(images=50, rate=64.0, max_sim_time=100.0)
        metrics = run_simulation(spec)
        assert metrics.truncated
        assert len(metrics.arrival_times) < 50
