"""Runtime plumbing units: messaging, vectors-in-flight, probes."""

import pytest

from repro.engine.config import Algorithm
from repro.engine.simulation import build_simulation
from repro.net.message import MessageKind
from tests.conftest import tiny_spec


def build(algorithm=Algorithm.DOWNLOAD_ALL, **overrides):
    return build_simulation(tiny_spec(algorithm=algorithm, **overrides))


class TestSend:
    def test_local_mode_attaches_vectors(self):
        env, runtime = build(Algorithm.LOCAL)
        message = runtime.send(
            MessageKind.DEMAND, "client", "s0", 0,
            payload={"type": "noop"},
            dst_host=runtime.pinned_hosts["s0"],
        )
        assert "_vec_ts" in message.payload
        assert "_vec_loc" in message.payload
        assert message.payload["_from_host"] == "client"

    def test_non_local_mode_skips_vectors(self):
        env, runtime = build(Algorithm.GLOBAL)
        message = runtime.send(
            MessageKind.DEMAND, "client", "s0", 0,
            payload={"type": "noop"},
            dst_host=runtime.pinned_hosts["s0"],
        )
        assert "_vec_ts" not in message.payload

    def test_barrier_priority_switch(self):
        env, runtime = build(barrier_priority=True)
        assert runtime.barrier_msg_priority() == 0
        env2, runtime2 = build(barrier_priority=False)
        assert runtime2.barrier_msg_priority() == 3


class TestIngestVectors:
    def test_dominant_vector_overwrites(self):
        env, runtime = build(Algorithm.LOCAL)
        ops = sorted(runtime.operators) or [
            op.node_id for op in runtime.tree.operators()
        ]
        target = ops[0]
        incoming_ts = {op: 1 for op in runtime.vectors["h0"].timestamps}
        incoming_loc = {op: "h2" for op in incoming_ts}

        class Fake:
            payload = {
                "type": "noop",
                "_vec_ts": incoming_ts,
                "_vec_loc": incoming_loc,
                "_from_host": "h2",
            }
            src_actor = target

        runtime.ingest_vectors(Fake(), "h0")
        assert runtime.vectors["h0"].locations[target] == "h2"

    def test_plain_message_ignored(self):
        env, runtime = build(Algorithm.LOCAL)

        class Fake:
            payload = {"type": "noop"}
            src_actor = "x"

        before = dict(runtime.vectors["h0"].locations)
        runtime.ingest_vectors(Fake(), "h0")
        assert runtime.vectors["h0"].locations == before


class TestRelocate:
    def test_relocate_counts_and_reregisters(self):
        env, runtime = build(Algorithm.GLOBAL)
        op = runtime.tree.operators()[0].node_id
        old = runtime.host_of(op)
        target = "h2" if old != "h2" else "h3"

        def mover(env):
            yield from runtime.relocate(op, target)

        env.process(mover(env))
        env.run(until=30.0)
        assert runtime.host_of(op) == target
        assert runtime.metrics.relocations == 1
        assert runtime.metrics.relocation_events[0].actor == op

    def test_relocate_same_host_is_free(self):
        env, runtime = build(Algorithm.GLOBAL)
        op = runtime.tree.operators()[0].node_id
        here = runtime.host_of(op)

        def mover(env):
            yield from runtime.relocate(op, here)

        env.process(mover(env))
        env.run(until=10.0)
        assert runtime.metrics.relocations == 0

    def test_relocate_redelivers_pending_mail(self):
        env, runtime = build(Algorithm.GLOBAL)
        op = runtime.tree.operators()[0].node_id
        old = runtime.host_of(op)
        from repro.net.message import Message

        parked = Message(MessageKind.DATA, "x", op, 10, payload={"type": "noop"})
        runtime.network.hosts[old].mailbox(op).deliver(parked)

        def mover(env):
            yield from runtime.relocate(op, "h3")

        env.process(mover(env))
        env.run(until=30.0)
        assert len(runtime.network.hosts["h3"].mailbox(op)) >= 1


class TestRemoteProbe:
    def test_endpoint_probe_direct(self):
        env, runtime = build(Algorithm.GLOBAL)
        results = []

        def prober(env):
            bandwidth = yield from runtime.remote_probe("client", "client", "h0")
            results.append(bandwidth)

        env.process(prober(env))
        env.run(until=60.0)
        assert results and results[0] > 0
        # Direct probe: exactly probe_samples messages.
        assert runtime.monitoring.stats.probes_sent == 1

    def test_third_party_probe_updates_requester_cache(self):
        env, runtime = build(Algorithm.GLOBAL)
        results = []

        def prober(env):
            bandwidth = yield from runtime.remote_probe("client", "h0", "h1")
            results.append(bandwidth)

        env.process(prober(env))
        env.run(until=60.0)
        estimate = runtime.monitoring.estimate("client", "h0", "h1", env.now)
        assert estimate.quality in ("fresh", "stale")
        assert results[0] == pytest.approx(estimate.bandwidth, rel=0.2)


class TestSnapshotEstimator:
    def test_matrix_frozen(self):
        env, runtime = build(Algorithm.GLOBAL)
        estimator = runtime.snapshot_estimator("client")
        first = estimator("h0", "h1")
        # Mutate the cache afterwards: the snapshot must not change.
        runtime.monitoring.cache_for("client").force_set(
            "h0", "h1", first * 100, now=env.now
        )
        assert estimator("h0", "h1") == first
        assert estimator("h1", "h0") == first
        assert estimator("h0", "h0") == float("inf")
