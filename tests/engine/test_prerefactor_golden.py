"""Pin run_simulation to its pre-workload-refactor behaviour.

The golden file was captured before ``build_simulation`` was factored
into :func:`repro.engine.simulation.build_query` and before the
namespace/query_id plumbing landed.  Every summary field and every
arrival time must match bit-for-bit: the refactor promised that the
single-query path is a pure reorganization.
"""

import json
from pathlib import Path

import pytest

from repro.engine.config import Algorithm
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_configuration

GOLDEN = Path(__file__).parent / "data" / "golden_prerefactor.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


@pytest.mark.parametrize(
    "algorithm",
    [Algorithm.DOWNLOAD_ALL, Algorithm.ONE_SHOT, Algorithm.GLOBAL, Algorithm.LOCAL],
    ids=lambda a: a.value,
)
class TestPreRefactorGolden:
    def test_summary_and_arrivals_bit_identical(self, algorithm, golden):
        setup = ExperimentConfig(num_servers=4, images_per_server=12)
        metrics = run_configuration(setup, 0, algorithm)
        expected = golden[algorithm.value]
        got = dict(metrics.summary())
        got["arrival_times"] = list(metrics.arrival_times)
        assert got == expected
