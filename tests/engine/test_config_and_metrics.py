"""SimulationSpec validation and RunMetrics computations."""

import math

import pytest

from repro.engine.config import Algorithm, SimulationSpec
from repro.engine.metrics import RunMetrics
from tests.conftest import complete_links


class TestAlgorithm:
    def test_values(self):
        assert Algorithm("download-all") is Algorithm.DOWNLOAD_ALL
        assert Algorithm.GLOBAL.is_online
        assert Algorithm.LOCAL.is_online
        assert not Algorithm.ONE_SHOT.is_online
        assert not Algorithm.DOWNLOAD_ALL.is_online


def spec_kwargs(**overrides):
    hosts = tuple(f"h{i}" for i in range(4))
    kwargs = dict(
        algorithm=Algorithm.DOWNLOAD_ALL,
        tree_shape="binary",
        num_servers=4,
        link_traces=complete_links([*hosts, "client"]),
        server_hosts=hosts,
    )
    kwargs.update(overrides)
    return kwargs


class TestSimulationSpec:
    def test_valid_spec_builds(self):
        spec = SimulationSpec(**spec_kwargs())
        assert spec.all_hosts == (*spec.server_hosts, "client")

    def test_unknown_tree_shape(self):
        with pytest.raises(ValueError):
            SimulationSpec(**spec_kwargs(tree_shape="bushy"))

    def test_host_count_mismatch(self):
        with pytest.raises(ValueError):
            SimulationSpec(**spec_kwargs(num_servers=3))

    def test_client_collision(self):
        kwargs = spec_kwargs()
        kwargs["client_host"] = "h0"
        with pytest.raises(ValueError):
            SimulationSpec(**kwargs)

    def test_missing_link_rejected(self):
        kwargs = spec_kwargs()
        links = dict(kwargs["link_traces"])
        links.pop(("h0", "h1"))
        kwargs["link_traces"] = links
        with pytest.raises(ValueError):
            SimulationSpec(**kwargs)

    def test_positive_period_required(self):
        with pytest.raises(ValueError):
            SimulationSpec(**spec_kwargs(relocation_period=0))

    def test_images_required(self):
        with pytest.raises(ValueError):
            SimulationSpec(**spec_kwargs(images_per_server=0))

    def test_negative_extras_rejected(self):
        with pytest.raises(ValueError):
            SimulationSpec(**spec_kwargs(local_extra_candidates=-1))


class TestRunMetrics:
    def test_completion_and_interarrival(self):
        metrics = RunMetrics(images=4, arrival_times=[10.0, 20.0, 35.0, 40.0])
        assert metrics.completion_time == 40.0
        assert metrics.mean_interarrival == 10.0

    def test_empty_metrics_are_nan(self):
        metrics = RunMetrics()
        assert math.isnan(metrics.completion_time)
        assert math.isnan(metrics.mean_interarrival)
        assert math.isnan(metrics.median_gap)

    def test_median_gap(self):
        metrics = RunMetrics(arrival_times=[10.0, 20.0, 40.0])
        # Gaps: 10, 10, 20 -> median 10.
        assert metrics.median_gap == 10.0

    def test_speedup_over(self):
        fast = RunMetrics(arrival_times=[50.0])
        slow = RunMetrics(arrival_times=[100.0])
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_summary_keys(self):
        summary = RunMetrics(algorithm="global", num_servers=8).summary()
        for key in (
            "algorithm",
            "completion_time",
            "mean_interarrival",
            "relocations",
            "barrier_rounds",
            "probes_sent",
            "truncated",
        ):
            assert key in summary
