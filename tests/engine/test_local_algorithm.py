"""Local-algorithm engine behaviour: marks, epochs, vector propagation."""

import pytest

from repro.engine.config import Algorithm
from repro.engine.simulation import build_simulation, run_simulation
from repro.traces import BandwidthTrace
from tests.conftest import complete_links, tiny_spec


class TestLaterMarks:
    def test_exactly_one_producer_marked_per_iteration(self):
        """The root operator marks exactly one of its two producers as
        'later' per iteration, and the marks land on the producer whose
        delivery is slower (the remote one, when its sibling is local)."""
        hosts = [f"h{i}" for i in range(4)] + ["client"]
        links = complete_links(hosts, rate=100 * 1024.0)
        for key in list(links):
            if "h0" in key or "h1" in key:
                links[key] = BandwidthTrace([0.0], [4 * 1024.0])
        spec = tiny_spec(
            Algorithm.LOCAL,
            images=20,
            link_traces=links,
            relocation_period=1e9,  # epochs never fire: counters persist
        )
        env, runtime = build_simulation(spec)
        stop = env.any_of([runtime.done, env.timeout(spec.max_sim_time)])
        env.run(until=stop)
        root = runtime.operators[runtime.tree.root_operator.node_id]
        children = [runtime.operators[c] for c in root.producers]
        total_marks = sum(c.later_marks_in_epoch for c in children)
        # One mark per root demand (the mark for the final iteration has
        # no follow-up demand to ride on).
        assert root.dispatches_in_epoch - 1 <= total_marks
        assert total_marks <= root.dispatches_in_epoch
        # The producer co-located with the root delivers instantly and is
        # never the later one; its remote sibling absorbs the marks.
        root_host = runtime.host_of(root.actor_id)
        for child in children:
            if runtime.host_of(child.actor_id) == root_host:
                assert child.later_marks_in_epoch <= 1
            else:
                assert (
                    child.later_marks_in_epoch
                    > child.dispatches_in_epoch / 2
                )

    def test_client_always_marks_root(self):
        spec = tiny_spec(Algorithm.LOCAL, images=10, relocation_period=1e9)
        env, runtime = build_simulation(spec)
        stop = env.any_of([runtime.done, env.timeout(spec.max_sim_time)])
        env.run(until=stop)
        root = runtime.operators[runtime.tree.root_operator.node_id]
        # The client's single producer is always the "later" one.
        assert root.later_marks_in_epoch >= root.dispatches_in_epoch - 1
        assert root.consumer_critical


class TestVectorPropagation:
    def test_move_becomes_known_across_hosts(self):
        """After a local move, peers that exchange messages with the moved
        operator learn its location through the piggybacked vectors."""
        hosts = [f"h{i}" for i in range(4)] + ["client"]
        links = complete_links(hosts, rate=60 * 1024.0)
        for key in list(links):
            if "client" in key:
                links[key] = BandwidthTrace([0.0], [3 * 1024.0])
        spec = tiny_spec(
            Algorithm.LOCAL,
            images=50,
            link_traces=links,
            relocation_period=120.0,
        )
        env, runtime = build_simulation(spec)
        stop = env.any_of([runtime.done, env.timeout(spec.max_sim_time)])
        env.run(until=stop)
        if runtime.metrics.relocations == 0:
            pytest.skip("no move happened in this configuration")
        for event in runtime.metrics.relocation_events:
            truth = runtime.network.actor_host(event.actor)
            # The hosts of the moved operator's tree neighbours must agree
            # with ground truth by the end of the run.
            node = runtime.tree.node(event.actor)
            neighbours = [*node.children, node.parent]
            for neighbour in neighbours:
                host = runtime.network.actor_host(neighbour)
                believed = runtime.vectors[host].location_of(event.actor)
                assert believed == truth

    def test_epochs_respect_wavefront_staggering(self):
        """Level-0 operators act at epoch boundaries before level-1 ones."""
        from repro.engine.controllers import LocalController

        spec = tiny_spec(Algorithm.LOCAL, images=40, relocation_period=60.0)
        env, runtime = build_simulation(spec)
        acted = []
        original = LocalController._act

        def spying_act(self, op_id, rng):
            acted.append((env.now, runtime.tree.node(op_id).level))
            yield from original(self, op_id, rng)

        LocalController._act = spying_act
        try:
            stop = env.any_of([runtime.done, env.timeout(400.0)])
            env.run(until=stop)
        finally:
            LocalController._act = original
        assert acted, "no epoch decisions fired"
        depth = runtime.tree.depth()
        epoch_len = 60.0 / depth
        for time, level in acted:
            boundary = round(time / epoch_len)
            assert boundary % depth == (level + 1) % depth
