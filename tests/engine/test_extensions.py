"""Extensions the paper marks as relaxable assumptions.

* multiple network interfaces per host (assumption 2 relaxed);
* replicated datasets with replica switching (assumption 3 relaxed).
"""

import pytest

from repro.engine.config import Algorithm
from repro.engine.simulation import (
    build_simulation,
    derive_server_replicas,
    run_simulation,
)
from tests.conftest import tiny_spec


class TestNicCapacity:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            tiny_spec(nic_capacity=0)

    def test_more_interfaces_speed_up_download_all(self):
        """Download-all's pain is the client's single NIC; with four
        interfaces the four servers stream concurrently."""
        single = run_simulation(tiny_spec(images=10, nic_capacity=1))
        quad = run_simulation(tiny_spec(images=10, nic_capacity=4))
        assert quad.completion_time < 0.5 * single.completion_time

    def test_capacity_preserves_delivery(self):
        metrics = run_simulation(tiny_spec(images=10, nic_capacity=2))
        assert len(metrics.arrival_times) == 10
        assert metrics.arrival_times == sorted(metrics.arrival_times)


class TestReplication:
    def test_factor_validation(self):
        with pytest.raises(ValueError):
            tiny_spec(replication_factor=0)
        with pytest.raises(ValueError):
            tiny_spec(num_servers=4, replication_factor=9)

    def test_derive_replicas_shape(self):
        spec = tiny_spec(num_servers=4, replication_factor=3)
        server_hosts = {f"s{i}": f"h{i}" for i in range(4)}
        replicas = derive_server_replicas(spec, server_hosts)
        for server, hosts in replicas.items():
            assert hosts[0] == server_hosts[server]  # primary first
            assert len(hosts) == 3
            assert len(set(hosts)) == 3

    def test_derive_replicas_deterministic(self):
        spec = tiny_spec(num_servers=4, replication_factor=2)
        server_hosts = {f"s{i}": f"h{i}" for i in range(4)}
        assert derive_server_replicas(spec, server_hosts) == derive_server_replicas(
            spec, server_hosts
        )

    def test_unreplicated_servers_pinned(self):
        env, runtime = build_simulation(tiny_spec(num_servers=4))
        for server in runtime.tree.servers():
            assert server.node_id in runtime.pinned_hosts

    def test_replicated_servers_not_pinned(self):
        env, runtime = build_simulation(
            tiny_spec(num_servers=4, replication_factor=2)
        )
        for server in runtime.tree.servers():
            assert server.node_id not in runtime.pinned_hosts
            # ... but tracked in the vector stores instead.
            store = next(iter(runtime.vectors.values()))
            assert server.node_id in store.locations

    def test_initial_placement_respects_replica_sets(self):
        env, runtime = build_simulation(
            tiny_spec(Algorithm.ONE_SHOT, num_servers=4, replication_factor=2)
        )
        for server in runtime.tree.servers():
            host = runtime.initial_placement.host_of(server.node_id)
            assert host in runtime.server_replicas[server.node_id]

    @pytest.mark.parametrize(
        "algorithm", [Algorithm.ONE_SHOT, Algorithm.GLOBAL, Algorithm.LOCAL]
    )
    def test_replicated_run_delivers_everything(self, algorithm):
        spec = tiny_spec(algorithm, images=10, replication_factor=2)
        metrics = run_simulation(spec)
        assert not metrics.truncated
        assert len(metrics.arrival_times) == 10

    def test_replica_switch_happens_under_bandwidth_collapse(self):
        """When a serving replica's links collapse, the global algorithm
        must switch to another replica mid-run."""
        from repro.traces import BandwidthTrace, constant_trace
        from tests.conftest import complete_links

        hosts = [f"h{i}" for i in range(4)] + ["client"]
        links = complete_links(hosts, rate=60 * 1024.0)
        for key in list(links):
            if "h0" in key:
                links[key] = BandwidthTrace(
                    [0.0, 150.0], [60 * 1024.0, 1 * 1024.0],
                    name=f"{key[0]}~{key[1]}",
                )
        spec = tiny_spec(
            Algorithm.GLOBAL,
            images=60,
            link_traces=links,
            relocation_period=100.0,
            replication_factor=3,
        )
        env, runtime = build_simulation(spec)
        stop = env.any_of([runtime.done, env.timeout(spec.max_sim_time)])
        env.run(until=stop)
        # s0's serving host must have left the collapsed h0.
        assert runtime.network.actor_host("s0") != "h0"
        assert len(runtime.metrics.arrival_times) == 60
