"""Vectorized vs scalar planner engine: bit-identical full runs.

The engine switch must be *observationally invisible*: a run with
``planner_engine="scalar"`` (the reference per-candidate search) and the
default vectorized run must agree on every metric, every arrival time
and the byte-exact obs event stream, across all four algorithms, with
and without the reference chaos plan, and under the concurrent
fleet-coordinated workload.
"""

import hashlib
import json

import pytest

from repro.engine.config import Algorithm, SimulationSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_configuration
from repro.faults import reference_chaos_plan
from repro.obs import Tracer

ALGORITHMS = [
    Algorithm.DOWNLOAD_ALL,
    Algorithm.ONE_SHOT,
    Algorithm.LOCAL,
    Algorithm.GLOBAL,
]

SETUP = ExperimentConfig(num_servers=4, images_per_server=8)


def _stream_digest(tracer: Tracer) -> str:
    """Content hash of the obs stream with run-relative message uids."""
    uids = sorted({e["uid"] for e in tracer.events if "uid" in e})
    rank = {uid: i for i, uid in enumerate(uids)}
    events = [
        {**e, "uid": rank[e["uid"]]} if "uid" in e else e
        for e in tracer.events
    ]
    return hashlib.sha256(
        json.dumps(events, sort_keys=True).encode()
    ).hexdigest()


def _pair(setup, index, algorithm):
    """(vectorized, scalar) metrics+digest for one configuration."""
    fast_tracer, ref_tracer = Tracer(), Tracer()
    fast = run_configuration(
        setup, index, algorithm, tracer=fast_tracer,
        planner_engine="vectorized",
    )
    ref = run_configuration(
        setup, index, algorithm, tracer=ref_tracer, planner_engine="scalar"
    )
    return fast, _stream_digest(fast_tracer), ref, _stream_digest(ref_tracer)


class TestSpecValidation:
    def test_unknown_engine_rejected(self):
        from repro.experiments.config import build_spec

        with pytest.raises(ValueError, match="planner engine"):
            build_spec(SETUP, 0, Algorithm.GLOBAL, planner_engine="simd")

    def test_experiment_config_forwards_engine(self):
        from repro.experiments.config import build_spec

        setup = ExperimentConfig(
            num_servers=4, images_per_server=8, planner_engine="scalar"
        )
        assert build_spec(setup, 0, Algorithm.GLOBAL).planner_engine == "scalar"
        assert (
            build_spec(SETUP, 0, Algorithm.GLOBAL).planner_engine
            == "vectorized"
        )


class TestRunEquivalence:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_no_fault_runs_identical(self, algorithm):
        fast, fd, ref, rd = _pair(SETUP, 0, algorithm)
        assert fast.summary() == ref.summary()
        assert fast.arrival_times == ref.arrival_times
        assert fd == rd

    @pytest.mark.parametrize(
        "algorithm", [Algorithm.GLOBAL, Algorithm.ONE_SHOT]
    )
    def test_chaos_runs_identical(self, algorithm):
        hosts = (*SETUP.server_hosts, SETUP.client_host)
        setup = ExperimentConfig(
            num_servers=4,
            images_per_server=8,
            fault_plan=reference_chaos_plan(hosts, seed=1),
        )
        fast, fd, ref, rd = _pair(setup, 0, algorithm)
        assert fast.summary() == ref.summary()
        assert fast.arrival_times == ref.arrival_times
        assert fd == rd


class TestWorkloadEquivalence:
    def test_fleet_coordinated_workload_identical(self):
        from repro.fleet import FleetPolicy
        from repro.workload import (
            ClosedLoop,
            QueryClass,
            WorkloadSpec,
            run_workload,
        )

        def build(engine: str):
            return WorkloadSpec(
                classes=(
                    QueryClass(name="global", algorithm=Algorithm.GLOBAL),
                    QueryClass(name="one-shot", algorithm=Algorithm.ONE_SHOT),
                ),
                num_clients=2,
                queries_per_client=1,
                arrivals=ClosedLoop(think_time=2.0),
                seed=11,
                num_servers=4,
                images_per_server=4,
                fleet=FleetPolicy(mode="coordinated"),
                planner_engine=engine,
            )

        fast_tracer, ref_tracer = Tracer(), Tracer()
        fast = run_workload(build("vectorized"), tracer=fast_tracer)
        ref = run_workload(build("scalar"), tracer=ref_tracer)
        assert fast.to_dict() == ref.to_dict()
        assert _stream_digest(fast_tracer) == _stream_digest(ref_tracer)


class TestCliSmoke:
    def test_compare_byte_identical_under_chaos(self, tmp_path, capsys):
        from repro.cli import main

        hosts = tuple(f"h{i}" for i in range(4)) + ("client",)
        plan_path = tmp_path / "chaos.json"
        reference_chaos_plan(hosts, seed=1).to_json(plan_path)
        outputs = {}
        for engine in ("vectorized", "scalar"):
            code = main(
                [
                    "compare",
                    "--servers",
                    "4",
                    "--images",
                    "6",
                    "--configs",
                    "1",
                    "--faults",
                    str(plan_path),
                    "--planner-engine",
                    engine,
                ]
            )
            assert code == 0
            outputs[engine] = capsys.readouterr().out
        assert outputs["vectorized"] == outputs["scalar"]
        assert "download-all" in outputs["vectorized"]
