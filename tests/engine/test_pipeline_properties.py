"""Property-based end-to-end tests of the execution engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.config import Algorithm
from repro.engine.simulation import run_simulation
from tests.conftest import complete_links, tiny_spec


@given(
    num_servers=st.integers(min_value=2, max_value=6),
    images=st.integers(min_value=1, max_value=8),
    algorithm=st.sampled_from(list(Algorithm)),
    rate_kb=st.floats(min_value=2.0, max_value=500.0),
    shape=st.sampled_from(["binary", "left-deep"]),
)
@settings(max_examples=25, deadline=None)
def test_every_configuration_delivers_all_images_in_order(
    num_servers, images, algorithm, rate_kb, shape
):
    spec = tiny_spec(
        algorithm=algorithm,
        num_servers=num_servers,
        images=images,
        rate=rate_kb * 1024.0,
        tree_shape=shape,
        relocation_period=90.0,
    )
    metrics = run_simulation(spec)
    assert not metrics.truncated
    assert len(metrics.arrival_times) == images
    assert metrics.arrival_times == sorted(metrics.arrival_times)
    assert metrics.completion_time > 0


@given(
    seed=st.integers(min_value=0, max_value=50),
    replication=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=15, deadline=None)
def test_replicated_runs_complete(seed, replication):
    spec = tiny_spec(
        algorithm=Algorithm.GLOBAL,
        images=6,
        replication_factor=replication,
        workload_seed=seed,
        relocation_period=60.0,
    )
    metrics = run_simulation(spec)
    assert not metrics.truncated
    assert len(metrics.arrival_times) == 6


@given(capacity=st.integers(min_value=1, max_value=4))
@settings(max_examples=8, deadline=None)
def test_nic_capacity_never_slows_the_system(capacity):
    base = run_simulation(tiny_spec(images=8, nic_capacity=1))
    scaled = run_simulation(tiny_spec(images=8, nic_capacity=capacity))
    # More interfaces may only help (work-conserving arbiter).
    assert scaled.completion_time <= base.completion_time * 1.001
