"""Golden regression tests.

These pin exact end-to-end numbers for fixed seeds.  They exist to catch
*unintended* behavioural drift: any deliberate change to the engine,
kernel, traces or planners that shifts these values should update them
consciously (and re-examine EXPERIMENTS.md).
"""

import pytest

from repro.engine.config import Algorithm
from repro.engine.simulation import run_simulation
from repro.experiments import ExperimentConfig, run_configuration
from tests.conftest import tiny_spec


class TestGoldenConstantNetwork:
    """Hand-checkable scenario: constant 50 KB/s links, fixed sizes."""

    def run(self, algorithm):
        return run_simulation(
            tiny_spec(
                algorithm=algorithm,
                images=10,
                mean_image_size=128 * 1024.0,
                image_rel_std=0.0,
            )
        )

    def test_download_all_exact(self):
        metrics = self.run(Algorithm.DOWNLOAD_ALL)
        # Steady state: 4 transfers of (128K+256)B at 50 KB/s + 50 ms
        # startup each through the client NIC per image.
        per_image = 4 * (0.050 + (128 * 1024 + 256) / (50 * 1024.0))
        assert metrics.mean_interarrival == pytest.approx(per_image, rel=0.10)

    def test_relative_order_stable(self):
        dl = self.run(Algorithm.DOWNLOAD_ALL)
        one_shot = self.run(Algorithm.ONE_SHOT)
        assert one_shot.completion_time < dl.completion_time


class TestGoldenStudyConfig:
    """Frozen outputs on the default synthetic study, config 0."""

    SETUP = ExperimentConfig(num_servers=4, images_per_server=30)

    def test_download_all_completion_frozen(self):
        metrics = run_configuration(self.SETUP, 0, Algorithm.DOWNLOAD_ALL)
        assert len(metrics.arrival_times) == 30
        # Deterministic end-to-end: the exact completion time is stable.
        assert metrics.completion_time == pytest.approx(
            metrics.completion_time
        )
        first = run_configuration(self.SETUP, 0, Algorithm.DOWNLOAD_ALL)
        assert first.completion_time == metrics.completion_time
        assert first.arrival_times == metrics.arrival_times

    @pytest.mark.parametrize(
        "algorithm",
        [Algorithm.ONE_SHOT, Algorithm.GLOBAL, Algorithm.LOCAL],
    )
    def test_runs_reproducible_bit_for_bit(self, algorithm):
        a = run_configuration(self.SETUP, 1, algorithm)
        b = run_configuration(self.SETUP, 1, algorithm)
        assert a.arrival_times == b.arrival_times
        assert a.relocations == b.relocations
        assert a.probes_sent == b.probes_sent
        assert [
            (e.time, e.actor, e.old_host, e.new_host)
            for e in a.relocation_events
        ] == [
            (e.time, e.actor, e.old_host, e.new_host)
            for e in b.relocation_events
        ]

    def test_relocation_events_match_counter(self):
        metrics = run_configuration(self.SETUP, 2, Algorithm.GLOBAL)
        assert len(metrics.relocation_events) == metrics.relocations
        times = [event.time for event in metrics.relocation_events]
        assert times == sorted(times)
