"""Fluid fast path vs forced full DES: bit-identical results.

The hybrid fluid/DES kernel collapse (single-callback transfers, elided
fire-and-forget delivery events, synchronous facility holds) must be
*observationally invisible*: a run with ``fluid_fast_path=False`` — the
classic all-process schedule — and the default fast-path run must agree
on every metric, every arrival time, and the byte-exact obs event
stream, with and without fault plans.  The only permitted differences
are the kernel-accounting diagnostics (``kernel_events``,
``fluid_transfers``/``des_transfers``), which exist precisely to measure
the collapse.
"""

import hashlib
import json

import pytest

from repro.engine.config import Algorithm
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_configuration
from repro.faults import reference_chaos_plan
from repro.faults.plan import FaultPlan, HostCrash, LinkOutage
from repro.obs import Tracer

ALGORITHMS = [
    Algorithm.DOWNLOAD_ALL,
    Algorithm.ONE_SHOT,
    Algorithm.LOCAL,
    Algorithm.GLOBAL,
]

SETUP = ExperimentConfig(num_servers=4, images_per_server=8)


def _stream_digest(tracer: Tracer) -> str:
    """Content hash of the obs stream with run-relative message uids."""
    uids = sorted({e["uid"] for e in tracer.events if "uid" in e})
    rank = {uid: i for i, uid in enumerate(uids)}
    events = [
        {**e, "uid": rank[e["uid"]]} if "uid" in e else e
        for e in tracer.events
    ]
    return hashlib.sha256(
        json.dumps(events, sort_keys=True).encode()
    ).hexdigest()


def _pair(setup, index, algorithm):
    """(fast metrics+digest, forced-slow metrics+digest) for one run."""
    fast_tracer, slow_tracer = Tracer(), Tracer()
    fast = run_configuration(setup, index, algorithm, tracer=fast_tracer)
    slow = run_configuration(
        setup, index, algorithm, tracer=slow_tracer, fluid_fast_path=False
    )
    return fast, _stream_digest(fast_tracer), slow, _stream_digest(slow_tracer)


def _assert_equivalent(fast, fast_digest, slow, slow_digest):
    assert fast.summary() == slow.summary()
    assert fast.arrival_times == slow.arrival_times
    assert fast_digest == slow_digest
    # Forced-slow runs the classic schedule: nothing may go fluid, and
    # the collapse must actually have removed calendar events.
    assert slow.fluid_transfers == 0
    assert slow.des_transfers == slow.transfers
    assert fast.kernel_events < slow.kernel_events


def _no_loss_plan(hosts) -> FaultPlan:
    """Outages and crashes but no loss streams: transfers outside the
    windows stay eligible for the fluid path, so this exercises the
    under-faults launch-callback variant rather than the full decline."""
    return FaultPlan(
        seed=3,
        link_outages=(
            LinkOutage(hosts[0], hosts[1], start=40.0, end=90.0),
            LinkOutage(hosts[1], "client", start=150.0, end=200.0),
        ),
        host_crashes=(HostCrash(hosts[2], start=260.0, end=320.0),),
    )


class TestNoFaultEquivalence:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_fast_equals_forced_slow(self, algorithm, index):
        fast, fd, slow, sd = _pair(SETUP, index, algorithm)
        _assert_equivalent(fast, fd, slow, sd)
        # Without an injector every transfer goes fluid.
        assert fast.fluid_transfers == fast.transfers > 0
        assert fast.des_transfers == 0

    def test_counters_partition_transfers(self):
        fast = run_configuration(SETUP, 0, Algorithm.GLOBAL)
        assert fast.fluid_transfers + fast.des_transfers == fast.transfers


class TestFaultedEquivalence:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_no_loss_plan_mixes_fluid_and_des(self, algorithm):
        setup = ExperimentConfig(
            num_servers=4,
            images_per_server=8,
            fault_plan=_no_loss_plan(SETUP.server_hosts),
        )
        fast, fd, slow, sd = _pair(setup, 0, algorithm)
        _assert_equivalent(fast, fd, slow, sd)
        # Outage/crash windows force some transfers onto the DES path,
        # the rest must still collapse.
        assert fast.fluid_transfers > 0

    @pytest.mark.parametrize(
        "algorithm", [Algorithm.DOWNLOAD_ALL, Algorithm.GLOBAL]
    )
    def test_chaos_plan_equivalent(self, algorithm):
        hosts = (*SETUP.server_hosts, SETUP.client_host)
        setup = ExperimentConfig(
            num_servers=4,
            images_per_server=8,
            fault_plan=reference_chaos_plan(hosts, seed=1),
        )
        fast, fd, slow, sd = _pair(setup, 0, algorithm)
        assert fast.summary() == slow.summary()
        assert fd == sd
        # Loss streams require per-attempt RNG draws, so every lossy
        # pair must decline the fluid path.
        assert fast.fluid_transfers == 0


class TestWorkloadEquivalence:
    def test_concurrent_workload_equal_streams(self):
        from repro.workload import (
            ClosedLoop,
            QueryClass,
            WorkloadSpec,
            run_workload,
        )

        def build(fluid: bool):
            return WorkloadSpec(
                classes=(
                    QueryClass(name="global", algorithm=Algorithm.GLOBAL),
                    QueryClass(name="one-shot", algorithm=Algorithm.ONE_SHOT),
                ),
                num_clients=2,
                queries_per_client=1,
                arrivals=ClosedLoop(think_time=2.0),
                seed=11,
                num_servers=4,
                images_per_server=4,
                fluid_fast_path=fluid,
            )

        fast_tracer, slow_tracer = Tracer(), Tracer()
        fast = run_workload(build(True), tracer=fast_tracer)
        slow = run_workload(build(False), tracer=slow_tracer)
        assert fast.to_dict() == slow.to_dict()
        assert _stream_digest(fast_tracer) == _stream_digest(slow_tracer)
        assert sum(q.metrics.fluid_transfers for q in fast.queries) > 0
        assert sum(q.metrics.fluid_transfers for q in slow.queries) == 0
