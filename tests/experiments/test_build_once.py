"""Build-once SampledConfig artifacts: sample each configuration once.

``sample_config`` must be a pure function of ``(setup, config_index)``
whose memoized artifact fans out across algorithms without any observable
difference from per-run resampling.
"""

from repro.engine.config import Algorithm
from repro.experiments.config import (
    ExperimentConfig,
    SampledConfig,
    build_spec,
    build_spec_from_config,
    make_configuration,
    sample_config,
)


SETUP = ExperimentConfig(num_servers=4, images_per_server=12)


class TestSampleConfig:
    def test_artifact_matches_make_configuration(self):
        sampled = sample_config(SETUP, 0, cache=False)
        assert isinstance(sampled, SampledConfig)
        assert sampled.config_index == 0
        assert sampled.link_traces == make_configuration(SETUP, 0)
        assert sampled.workload_seed == SETUP.seed
        assert sampled.control_seed == SETUP.seed

    def test_memo_returns_same_artifact(self):
        setup = ExperimentConfig(num_servers=4, images_per_server=12)
        assert sample_config(setup, 1) is sample_config(setup, 1)

    def test_cache_false_resamples(self):
        setup = ExperimentConfig(num_servers=4, images_per_server=12)
        memoized = sample_config(setup, 1)
        fresh = sample_config(setup, 1, cache=False)
        assert fresh is not memoized
        assert fresh.link_traces == memoized.link_traces

    def test_fresh_and_memoized_draw_identical_traces(self):
        setup = ExperimentConfig(num_servers=4, images_per_server=12)
        a = sample_config(setup, 2)
        b = sample_config(setup, 2, cache=False)
        for key, trace in a.link_traces.items():
            # The cached path returns the library's shared noon-segment
            # objects; a forced resample returns the same objects again
            # (they come from the same per-pair cache).
            assert b.link_traces[key] is trace

    def test_distinct_setups_do_not_collide(self):
        setup_a = ExperimentConfig(num_servers=4, images_per_server=12)
        setup_b = ExperimentConfig(num_servers=4, images_per_server=12, seed=2024)
        a = sample_config(setup_a, 0)
        b = sample_config(setup_b, 0)
        assert a.link_traces != b.link_traces


class TestBuildSpecFromConfig:
    def test_matches_build_spec(self):
        for algorithm in (Algorithm.DOWNLOAD_ALL, Algorithm.GLOBAL):
            direct = build_spec(SETUP, 1, algorithm)
            sampled = sample_config(SETUP, 1)
            via_artifact = build_spec_from_config(SETUP, sampled, algorithm)
            assert via_artifact == direct

    def test_algorithms_share_link_traces(self):
        sampled = sample_config(SETUP, 0)
        specs = [
            build_spec_from_config(SETUP, sampled, a)
            for a in (Algorithm.ONE_SHOT, Algorithm.LOCAL, Algorithm.GLOBAL)
        ]
        for spec in specs[1:]:
            assert spec.link_traces is specs[0].link_traces

    def test_overrides_forwarded(self):
        sampled = sample_config(SETUP, 0)
        spec = build_spec_from_config(
            SETUP, sampled, Algorithm.GLOBAL, relocation_period=123.0
        )
        assert spec.relocation_period == 123.0
