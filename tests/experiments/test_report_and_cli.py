"""Report generation and the command-line interface."""

import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.experiments import ExperimentConfig
from repro.experiments.report import ascii_curve, generate_report


class TestAsciiCurve:
    def test_renders_series(self):
        chart = ascii_curve(
            {"global": [1.0, 2.0, 4.0], "one-shot": [1.0, 1.5, 2.0]},
            title="demo",
        )
        assert "demo" in chart
        assert "configurations sorted by speedup (n=3)" in chart
        assert "=global" in chart and "=one-shot" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_curve({})
        with pytest.raises(ValueError):
            ascii_curve({"x": []})

    def test_flat_series_does_not_crash(self):
        chart = ascii_curve({"flat": [2.0, 2.0, 2.0]})
        assert "flat" in chart


@pytest.fixture(scope="module")
def tiny_setup():
    return ExperimentConfig(num_servers=4, images_per_server=10)


class TestGenerateReport:
    def test_fig6_only_report(self, tiny_setup, tmp_path):
        config = replace(
            tiny_setup,
            n_configs=2,
            include_fig7=False,
            include_fig8=False,
            include_fig9=False,
            include_fig10=False,
        )
        result = generate_report(
            config, out_dir=tmp_path, echo=lambda *a: None
        )
        assert "Figure 6" in result["markdown"]
        assert (tmp_path / "report.md").exists()
        data = json.loads((tmp_path / "report.json").read_text())
        assert "fig6" in data
        assert data["fig6"]["global"]["mean"] > 0

    def test_report_scale_knobs_on_config(self):
        config = ExperimentConfig(n_configs=30)
        assert config.configs_for("fig8") == 10
        config = ExperimentConfig(n_configs=30, fig8_configs=3)
        assert config.configs_for("fig8") == 3


class TestCli:
    def test_run_json(self, capsys):
        code = main(
            [
                "run",
                "--servers", "4",
                "--images", "8",
                "--algorithm", "download-all",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "download-all"
        assert payload["images"] == 8

    def test_run_plain(self, capsys):
        assert main(["run", "--servers", "4", "--images", "6"]) == 0
        out = capsys.readouterr().out
        assert "completion_time" in out

    def test_compare(self, capsys):
        code = main(
            ["compare", "--servers", "4", "--images", "6", "--configs", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "download-all" in out and "global" in out

    def test_figure_2(self, capsys):
        assert main(["figure", "2"]) == 0
        assert "change interval" in capsys.readouterr().out

    def test_figure_6_small(self, capsys):
        code = main(
            [
                "figure", "6",
                "--servers", "4",
                "--images", "6",
                "--configs", "1",
            ]
        )
        assert code == 0
        assert "speedup over download-all" in capsys.readouterr().out

    def test_study_export(self, tmp_path, capsys):
        assert main(["study", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "trace_library.json").exists()

    def test_report_command(self, tmp_path, capsys):
        code = main(
            [
                "report",
                "--servers", "4",
                "--images", "6",
                "--configs", "2",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "report.md").exists()

    def test_run_with_trace_exports(self, tmp_path, capsys):
        jsonl = tmp_path / "run.jsonl"
        chrome = tmp_path / "run.chrome.json"
        code = main(
            [
                "run",
                "--servers", "4",
                "--images", "6",
                "--algorithm", "global",
                "--trace", str(jsonl),
                "--chrome-trace", str(chrome),
            ]
        )
        assert code == 0
        records = [
            json.loads(line) for line in jsonl.read_text().splitlines()
        ]
        assert records[0]["type"] == "trace.header"
        assert records[-1]["type"] == "trace.footer"
        assert json.loads(chrome.read_text())["traceEvents"]

    def test_trace_command_summarizes(self, tmp_path, capsys):
        jsonl = tmp_path / "run.jsonl"
        main(
            [
                "run",
                "--servers", "4",
                "--images", "6",
                "--algorithm", "global",
                "--trace", str(jsonl),
            ]
        )
        capsys.readouterr()
        assert main(["trace", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "relocation timeline" in out
        assert "per-link traffic" in out
        assert "barrier:" in out

    def test_compare_with_trace_dir(self, tmp_path, capsys):
        code = main(
            [
                "compare",
                "--servers", "4",
                "--images", "6",
                "--configs", "1",
                "--trace", str(tmp_path / "traces"),
            ]
        )
        assert code == 0
        written = sorted(p.name for p in (tmp_path / "traces").iterdir())
        assert written == [
            "config0-download-all.jsonl",
            "config0-global.jsonl",
            "config0-local.jsonl",
            "config0-one-shot.jsonl",
        ]

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
