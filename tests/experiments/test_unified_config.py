"""The unified ExperimentConfig (its deprecated aliases are gone)."""

from __future__ import annotations

import pickle
import warnings
from dataclasses import replace

import pytest

import repro.experiments
import repro.experiments.report
from repro.engine.metrics import SUMMARY_SCHEMA, RunMetrics
from repro.experiments import ExperimentConfig
from repro.experiments.persistence import metrics_from_dict, metrics_to_dict


class TestExperimentConfig:
    def test_carries_workload_and_report_knobs(self):
        config = ExperimentConfig(num_servers=4, n_configs=12, workers=2)
        assert config.server_hosts == ("h0", "h1", "h2", "h3")
        assert config.n_configs == 12
        assert config.workers == 2

    def test_no_deprecation_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ExperimentConfig(num_servers=4)

    def test_configs_for_default_and_override(self):
        config = ExperimentConfig(n_configs=30)
        assert config.configs_for("fig8") == 10
        assert replace(config, fig8_configs=3).configs_for("fig8") == 3
        assert ExperimentConfig(n_configs=3).configs_for("fig9") == 2

    def test_pickles_without_warning(self):
        config = ExperimentConfig(num_servers=4)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            copy = pickle.loads(pickle.dumps(config))
        assert copy == config


class TestAliasesAreRemoved:
    """The PR-2 deprecation cycle is over: the aliases no longer exist."""

    def test_experiment_setup_is_gone(self):
        assert not hasattr(repro.experiments, "ExperimentSetup")
        with pytest.raises(ImportError):
            from repro.experiments import ExperimentSetup  # noqa: F401

    def test_report_options_is_gone(self):
        assert not hasattr(repro.experiments.report, "ReportOptions")
        with pytest.raises(ImportError):
            from repro.experiments.report import ReportOptions  # noqa: F401


class TestSummarySchemaVersions:
    def test_summary_declares_schema(self):
        assert RunMetrics().summary()["schema"] == SUMMARY_SCHEMA == 3

    def test_reader_accepts_v3(self):
        metrics = RunMetrics(algorithm="global", transfers=9,
                             local_deliveries=4, passive_measurements=2,
                             piggyback_entries_merged=7,
                             retransmissions=5, aborted_relocations=1)
        rebuilt = metrics_from_dict(metrics_to_dict(metrics))
        assert rebuilt.transfers == 9
        assert rebuilt.piggyback_entries_merged == 7
        assert rebuilt.retransmissions == 5
        assert rebuilt.aborted_relocations == 1

    def test_reader_accepts_v2(self):
        metrics = RunMetrics(algorithm="global", transfers=9,
                             local_deliveries=4, passive_measurements=2,
                             piggyback_entries_merged=7)
        payload = metrics_to_dict(metrics)
        payload["schema"] = 2
        for key in ("retransmissions", "dropped_bytes", "abandoned_messages",
                    "aborted_relocations", "host_downtime_seconds",
                    "probe_timeouts", "planner_fallbacks"):
            payload.pop(key, None)
        rebuilt = metrics_from_dict(payload)
        assert rebuilt.transfers == 9
        assert rebuilt.piggyback_entries_merged == 7
        assert rebuilt.retransmissions == 0

    def test_reader_accepts_v1(self):
        payload = metrics_to_dict(RunMetrics(algorithm="local", relocations=3))
        del payload["schema"]
        for key in ("transfers", "local_deliveries", "passive_measurements",
                    "piggyback_entries_merged", "median_gap"):
            payload.pop(key, None)
        rebuilt = metrics_from_dict(payload)
        assert rebuilt.algorithm == "local"
        assert rebuilt.relocations == 3
        assert rebuilt.transfers == 0

    def test_reader_rejects_unknown_schema(self):
        payload = metrics_to_dict(RunMetrics())
        payload["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            metrics_from_dict(payload)
