"""Runners and the per-figure reproduction functions (smoke scale)."""

import numpy as np
import pytest

from repro.engine.config import Algorithm
from repro.experiments import (
    ExperimentConfig,
    compare_algorithms,
    fig6_main_comparison,
    fig7_extra_sites,
    fig8_server_scaling,
    fig9_relocation_period,
    fig10_tree_shape,
    run_configuration,
    speedup_series,
)
from repro.experiments.runner import AlgorithmSummary


@pytest.fixture(scope="module")
def small_setup():
    """A fast setup: few images, few servers."""
    return ExperimentConfig(num_servers=4, images_per_server=12)


class TestRunner:
    def test_run_configuration(self, small_setup):
        metrics = run_configuration(small_setup, 0, Algorithm.DOWNLOAD_ALL)
        assert len(metrics.arrival_times) == 12
        assert not metrics.truncated

    def test_compare_algorithms_paired(self, small_setup):
        summaries = compare_algorithms(
            small_setup,
            [Algorithm.DOWNLOAD_ALL, Algorithm.ONE_SHOT],
            n_configs=2,
        )
        assert set(summaries) == {"download-all", "one-shot"}
        for summary in summaries.values():
            assert len(summary.completion_times) == 2

    def test_speedup_series(self):
        base = AlgorithmSummary("base")
        fast = AlgorithmSummary("fast")
        base.completion_times = [100.0, 200.0]
        fast.completion_times = [50.0, 100.0]
        assert list(speedup_series(fast, base)) == [2.0, 2.0]

    def test_speedup_series_length_mismatch(self):
        a, b = AlgorithmSummary("a"), AlgorithmSummary("b")
        a.completion_times = [1.0]
        b.completion_times = [1.0, 2.0]
        with pytest.raises(ValueError):
            speedup_series(a, b)

    def test_progress_callback(self, small_setup):
        calls = []
        compare_algorithms(
            small_setup,
            [Algorithm.DOWNLOAD_ALL],
            n_configs=1,
            progress=lambda i, algo, m: calls.append((i, algo)),
        )
        assert calls == [(0, Algorithm.DOWNLOAD_ALL)]


class TestFigureFunctions:
    def test_fig6(self, small_setup):
        result = fig6_main_comparison(small_setup, n_configs=2)
        assert len(result.global_speedups) == 2
        series = result.sorted_series()
        assert list(series["global"]) == sorted(series["global"])
        table = result.format_table()
        assert "speedup over download-all" in table
        assert "interarrival" in table
        assert result.median_global_over_one_shot > 0

    def test_fig7(self, small_setup):
        result = fig7_extra_sites(small_setup, n_configs=1, ks=(0, 2))
        assert result.ks == (0, 2)
        assert len(result.mean_speedups) == 2
        assert result.spread() >= 0
        assert "k extra random candidate sites" in result.format_table()

    def test_fig8(self, small_setup):
        result = fig8_server_scaling(
            small_setup, n_configs=1, server_counts=(2, 4)
        )
        assert result.server_counts == (2, 4)
        assert set(result.mean_speedups) == {"one-shot", "local", "global"}
        assert "number of servers" in result.format_table()

    def test_fig9(self, small_setup):
        result = fig9_relocation_period(
            small_setup, n_configs=1, periods=(60.0, 600.0)
        )
        assert result.periods == (60.0, 600.0)
        assert result.best_period in result.periods
        assert "relocation period" in result.format_table()

    def test_fig10(self, small_setup):
        result = fig10_tree_shape(small_setup, n_configs=1)
        assert result.global_binary.shape == (1,)
        assert "left-deep" in result.format_table()
