"""The vectorized bootstrap fast path is bit-identical to the fallback."""

import numpy as np
import pytest

from repro.experiments.stats import _AXIS_AWARE, Interval, bootstrap


def reference_bootstrap(values, statistic, n_resamples=2000, confidence=0.95, seed=0):
    """The pre-optimization implementation, verbatim."""
    data = np.asarray(list(values), dtype=float)
    rng = np.random.default_rng(seed)
    point = float(statistic(data))
    if data.size == 1:
        return Interval(point, point, point, confidence)
    indices = rng.integers(0, data.size, size=(n_resamples, data.size))
    stats = np.apply_along_axis(statistic, 1, data[indices])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(stats, [alpha, 1.0 - alpha])
    return Interval(point, float(low), float(high), confidence)


@pytest.mark.parametrize("statistic", _AXIS_AWARE, ids=lambda s: s.__name__)
@pytest.mark.parametrize("n", [2, 3, 17, 100])
def test_fast_path_bit_identical_to_apply_along_axis(statistic, n):
    rng = np.random.default_rng(42)
    values = rng.normal(100.0, 25.0, size=n)
    fast = bootstrap(values, statistic=statistic, n_resamples=500, seed=3)
    slow = reference_bootstrap(values, statistic, n_resamples=500, seed=3)
    assert fast == slow  # exact float equality, not approx


def test_custom_statistic_uses_fallback_and_matches():
    def trimmed_mean(row):
        ordered = np.sort(row)
        return float(ordered[1:-1].mean())

    values = np.linspace(1.0, 50.0, 20)
    fast = bootstrap(values, statistic=trimmed_mean, n_resamples=200, seed=1)
    slow = reference_bootstrap(values, trimmed_mean, n_resamples=200, seed=1)
    assert fast == slow


def test_single_value_short_circuit():
    interval = bootstrap([42.0], statistic=np.mean)
    assert interval.point == interval.low == interval.high == 42.0
