"""Experiment configuration generation."""

import pytest

from repro.engine.config import Algorithm
from repro.experiments.config import (
    ExperimentConfig,
    build_spec,
    make_configuration,
)


class TestExperimentConfig:
    def test_defaults_match_paper(self):
        setup = ExperimentConfig()
        assert setup.num_servers == 8
        assert setup.images_per_server == 180
        assert setup.relocation_period == 600.0
        assert setup.tree_shape == "binary"

    def test_host_names(self):
        setup = ExperimentConfig(num_servers=3)
        assert setup.server_hosts == ("h0", "h1", "h2")
        assert setup.client_host == "client"

    def test_library_cached_per_seed(self):
        a = ExperimentConfig(study_seed=5)
        b = ExperimentConfig(study_seed=5)
        assert a.trace_library() is b.trace_library()


class TestMakeConfiguration:
    def test_covers_complete_graph(self):
        setup = ExperimentConfig(num_servers=4)
        links = make_configuration(setup, 0)
        assert len(links) == 5 * 4 // 2

    def test_deterministic_per_index(self):
        setup = ExperimentConfig(num_servers=4)
        a = make_configuration(setup, 3)
        b = make_configuration(setup, 3)
        for key in a:
            assert a[key] == b[key]

    def test_indices_differ(self):
        setup = ExperimentConfig(num_servers=4)
        a = make_configuration(setup, 0)
        b = make_configuration(setup, 1)
        assert any(a[key] != b[key] for key in a)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            make_configuration(ExperimentConfig(), -1)

    def test_traces_start_at_zero(self):
        setup = ExperimentConfig(num_servers=4)
        for trace in make_configuration(setup, 0).values():
            assert trace.start == 0.0


class TestBuildSpec:
    def test_spec_fields(self):
        setup = ExperimentConfig(num_servers=4, images_per_server=12)
        spec = build_spec(setup, 0, Algorithm.GLOBAL)
        assert spec.algorithm is Algorithm.GLOBAL
        assert spec.num_servers == 4
        assert spec.images_per_server == 12

    def test_overrides_forwarded(self):
        setup = ExperimentConfig(num_servers=4)
        spec = build_spec(
            setup, 0, Algorithm.GLOBAL, relocation_period=120.0, prefetch=False
        )
        assert spec.relocation_period == 120.0
        assert not spec.prefetch

    def test_same_config_same_workload_across_algorithms(self):
        """Paired comparison: all algorithms see identical inputs."""
        setup = ExperimentConfig(num_servers=4)
        a = build_spec(setup, 2, Algorithm.DOWNLOAD_ALL)
        b = build_spec(setup, 2, Algorithm.GLOBAL)
        assert a.workload_seed == b.workload_seed
        for key in a.link_traces:
            assert a.link_traces[key] == b.link_traces[key]
