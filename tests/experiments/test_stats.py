"""Bootstrap statistics helpers."""

import numpy as np
import pytest

from repro.experiments.stats import Interval, bootstrap, paired_ratio, summarize, win_rate


class TestBootstrap:
    def test_point_estimate_is_exact(self):
        interval = bootstrap([1.0, 2.0, 3.0, 4.0, 5.0], statistic=np.median)
        assert interval.point == 3.0

    def test_interval_brackets_point(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10.0, 2.0, size=200)
        interval = bootstrap(values, statistic=np.mean)
        assert interval.low <= interval.point <= interval.high

    def test_interval_narrows_with_sample_size(self):
        rng = np.random.default_rng(1)
        small = bootstrap(rng.normal(0, 1, 20), statistic=np.mean, seed=2)
        large = bootstrap(rng.normal(0, 1, 2000), statistic=np.mean, seed=2)
        assert (large.high - large.low) < (small.high - small.low)

    def test_single_value_degenerate(self):
        interval = bootstrap([7.0])
        assert interval.low == interval.point == interval.high == 7.0

    def test_deterministic_for_seed(self):
        values = [1.0, 5.0, 2.0, 8.0]
        assert bootstrap(values, seed=3) == bootstrap(values, seed=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap([])
        with pytest.raises(ValueError):
            bootstrap([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap([1.0], n_resamples=0)

    def test_str_formatting(self):
        text = str(Interval(1.5, 1.2, 1.9, 0.95))
        assert text == "1.50 [1.20, 1.90]"


class TestPairedRatio:
    def test_median_ratio(self):
        num = [2.0, 4.0, 6.0]
        den = [1.0, 2.0, 3.0]
        interval = paired_ratio(num, den)
        assert interval.point == pytest.approx(2.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_ratio([1.0], [1.0, 2.0])

    def test_zero_denominator(self):
        with pytest.raises(ValueError):
            paired_ratio([1.0], [0.0])


class TestWinRate:
    def test_basic(self):
        assert win_rate([2, 3, 1], [1, 1, 2]) == pytest.approx(2 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            win_rate([], [])
        with pytest.raises(ValueError):
            win_rate([1], [1, 2])


class TestSummarize:
    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["median"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["p25"] <= summary["median"] <= summary["p75"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
