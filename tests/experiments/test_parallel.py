"""The parallel sweep layer: determinism, fallback, worker resolution."""

import numpy as np
import pytest

from repro.engine.config import Algorithm
from repro.experiments import (
    ExperimentConfig,
    build_spec,
    compare_algorithms,
    resolve_workers,
    run_sweep,
)
from repro.experiments.parallel import WORKERS_ENV, _init_worker, _run_task
from repro.experiments.runner import AlgorithmSummary
from repro.traces import InternetStudy


@pytest.fixture(scope="module")
def small_setup():
    return ExperimentConfig(num_servers=4, images_per_server=12)


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_zero_means_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_bad_env_value(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_workers(None)


class TestRunSweep:
    def test_duplicate_task_rejected(self, small_setup):
        with pytest.raises(ValueError, match="duplicate"):
            run_sweep(
                small_setup,
                [(0, Algorithm.DOWNLOAD_ALL), (0, Algorithm.DOWNLOAD_ALL)],
            )

    def test_malformed_task_rejected(self, small_setup):
        with pytest.raises(ValueError, match="task must be"):
            run_sweep(small_setup, [(0,)])

    def test_per_task_overrides_win(self, small_setup):
        # The shared override would make the run longer; the per-task one
        # restores the default, so both runs must match a plain run.
        plain = run_sweep(small_setup, [(0, Algorithm.GLOBAL)])
        merged = run_sweep(
            small_setup,
            [(0, Algorithm.GLOBAL, {"relocation_period": 600.0})],
            overrides={"relocation_period": 60.0},
        )
        key = (0, Algorithm.GLOBAL.value)
        assert merged[key].arrival_times == plain[key].arrival_times

    def test_progress_order_is_serial_order(self, small_setup):
        tasks = [
            (i, a)
            for i in range(2)
            for a in (Algorithm.DOWNLOAD_ALL, Algorithm.ONE_SHOT)
        ]
        for workers in (1, 2):
            seen = []
            run_sweep(
                small_setup,
                tasks,
                workers=workers,
                progress=lambda i, a, m: seen.append((i, a.value)),
            )
            assert seen == [
                (0, "download-all"),
                (0, "one-shot"),
                (1, "download-all"),
                (1, "one-shot"),
            ]


class TestDeterminism:
    ALGOS = [Algorithm.DOWNLOAD_ALL, Algorithm.GLOBAL]

    def test_parallel_bit_identical_to_serial(self, small_setup):
        serial = compare_algorithms(small_setup, self.ALGOS, 4, workers=1)
        parallel = compare_algorithms(small_setup, self.ALGOS, 4, workers=2)
        assert set(serial) == set(parallel)
        for name in serial:
            assert serial[name].completion_times == parallel[name].completion_times
            assert serial[name].interarrivals == parallel[name].interarrivals
            assert serial[name].relocations == parallel[name].relocations

    def test_injected_library_reaches_workers(self):
        # A custom (non-default-seed) library must produce the same results
        # under the worker-init path as in-process: the setup, library
        # included, ships to each worker once via the pool initializer.
        library = InternetStudy(seed=777).run()
        setup = ExperimentConfig(
            num_servers=4, images_per_server=8, library=library, study_seed=777
        )
        serial = run_sweep(setup, [(0, Algorithm.GLOBAL), (1, Algorithm.GLOBAL)])
        parallel = run_sweep(
            setup, [(0, Algorithm.GLOBAL), (1, Algorithm.GLOBAL)], workers=2
        )
        for key, metrics in serial.items():
            assert metrics.arrival_times == parallel[key].arrival_times

    def test_build_spec_under_worker_init(self):
        # Regression: build_spec with library= injected must work when the
        # worker globals (not the caller) hold the setup.
        library = InternetStudy(seed=42).run()
        setup = ExperimentConfig(
            num_servers=4, images_per_server=8, library=library, study_seed=42
        )
        _init_worker(setup)
        key, metrics = _run_task((0, Algorithm.DOWNLOAD_ALL.value, ()))
        assert key == (0, "download-all")
        expected = build_spec(setup, 0, Algorithm.DOWNLOAD_ALL)
        assert metrics.num_servers == expected.num_servers
        assert len(metrics.arrival_times) == 8


class TestPoolUnavailableFallback:
    """run_sweep degrades to the serial loop on every pool-failure mode."""

    TASKS = [(0, Algorithm.DOWNLOAD_ALL), (1, Algorithm.DOWNLOAD_ALL)]

    @pytest.mark.parametrize(
        "error",
        [
            ImportError("no multiprocessing"),
            NotImplementedError("no sem_open"),
            OSError("fork failed"),
            PermissionError("sandbox denies semaphores"),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_fallback_matches_serial(self, small_setup, monkeypatch, error):
        from repro.experiments import parallel

        def broken_pool(*args, **kwargs):
            raise error

        monkeypatch.setattr(parallel, "_run_parallel", broken_pool)
        fallen_back = run_sweep(small_setup, self.TASKS, workers=4)
        serial = run_sweep(small_setup, self.TASKS, workers=1)
        assert set(fallen_back) == set(serial)
        for key in serial:
            assert fallen_back[key].arrival_times == serial[key].arrival_times
            assert fallen_back[key].summary() == serial[key].summary()

    def test_fallback_preserves_progress_order(self, small_setup, monkeypatch):
        from repro.experiments import parallel

        monkeypatch.setattr(
            parallel,
            "_run_parallel",
            lambda *a, **k: (_ for _ in ()).throw(OSError("no pool")),
        )
        seen = []
        run_sweep(
            small_setup,
            self.TASKS,
            workers=4,
            progress=lambda i, a, m: seen.append((i, a.value)),
        )
        assert seen == [(0, "download-all"), (1, "download-all")]

    def test_unrelated_errors_propagate(self, small_setup, monkeypatch):
        from repro.experiments import parallel

        def broken_pool(*args, **kwargs):
            raise RuntimeError("a real bug, not a missing pool")

        monkeypatch.setattr(parallel, "_run_parallel", broken_pool)
        with pytest.raises(RuntimeError, match="a real bug"):
            run_sweep(small_setup, self.TASKS, workers=4)


class TestSummaryMerge:
    def _summary(self, name, completions):
        s = AlgorithmSummary(name)
        s.completion_times = list(completions)
        s.interarrivals = [c / 10.0 for c in completions]
        s.relocations = [int(c) for c in completions]
        return s

    def test_merge_concatenates_in_order(self):
        a = self._summary("global", [1.0, 2.0])
        b = self._summary("global", [3.0])
        merged = a.merge(b)
        assert merged is a
        assert a.completion_times == [1.0, 2.0, 3.0]
        assert a.interarrivals == [0.1, 0.2, 0.3]
        assert a.relocations == [1, 2, 3]

    def test_merge_rejects_other_algorithm(self):
        with pytest.raises(ValueError, match="cannot merge"):
            self._summary("global", [1.0]).merge(self._summary("local", [1.0]))

    def test_from_parts(self):
        parts = [
            self._summary("local", [1.0, 2.0]),
            self._summary("local", [3.0, 4.0]),
        ]
        merged = AlgorithmSummary.from_parts(parts)
        assert merged.completion_times == [1.0, 2.0, 3.0, 4.0]
        # Parts are untouched.
        assert parts[0].completion_times == [1.0, 2.0]

    def test_from_parts_empty(self):
        with pytest.raises(ValueError):
            AlgorithmSummary.from_parts([])

    def test_sharded_sweep_equals_whole_sweep(self, small_setup):
        """Two 2-config shards merge into exactly the 4-config summary."""
        whole = compare_algorithms(small_setup, [Algorithm.ONE_SHOT], 4)
        shard_summaries = []
        for indices in ((0, 1), (2, 3)):
            shard = AlgorithmSummary(Algorithm.ONE_SHOT.value)
            results = run_sweep(
                small_setup, [(i, Algorithm.ONE_SHOT) for i in indices]
            )
            for i in indices:
                shard.add(results[(i, Algorithm.ONE_SHOT.value)])
            shard_summaries.append(shard)
        merged = AlgorithmSummary.from_parts(shard_summaries)
        assert merged.completion_times == whole["one-shot"].completion_times
        assert merged.interarrivals == whole["one-shot"].interarrivals
        assert merged.relocations == whole["one-shot"].relocations

    def test_speedup_series_mismatch_still_raises(self):
        from repro.experiments import speedup_series

        a = self._summary("a", [1.0])
        b = self._summary("b", [1.0, 2.0])
        with pytest.raises(ValueError, match="different numbers"):
            speedup_series(a, b)
