"""Run-metrics persistence round-trips."""

import csv

import pytest

from repro.engine.config import Algorithm
from repro.engine.metrics import RelocationEvent, RunMetrics
from repro.engine.simulation import run_simulation
from repro.experiments.persistence import (
    CSV_FIELDS,
    load_runs_json,
    metrics_from_dict,
    metrics_to_dict,
    save_runs_csv,
    save_runs_json,
)
from tests.conftest import tiny_spec


def sample_metrics():
    metrics = RunMetrics(
        algorithm="global",
        num_servers=4,
        images=3,
        arrival_times=[10.0, 20.0, 30.0],
        relocations=1,
        planner_runs=2,
        placements_installed=1,
        barrier_rounds=1,
        barrier_stall_seconds=1.5,
        probes_sent=4,
        probe_bytes=65536.0,
        forwarded_messages=2,
        bytes_on_wire=1e6,
    )
    metrics.relocation_events.append(RelocationEvent(12.0, "op0", "client", "h1"))
    return metrics


class TestDictRoundtrip:
    def test_roundtrip_preserves_fields(self):
        original = sample_metrics()
        rebuilt = metrics_from_dict(metrics_to_dict(original))
        assert rebuilt.summary() == original.summary()
        assert rebuilt.arrival_times == original.arrival_times
        assert rebuilt.relocation_events == original.relocation_events

    def test_arrivals_optional(self):
        payload = metrics_to_dict(sample_metrics(), include_arrivals=False)
        assert "arrival_times" not in payload


class TestJson:
    def test_roundtrip_real_runs(self, tmp_path):
        runs = [
            run_simulation(tiny_spec(algorithm=algo, images=4))
            for algo in (Algorithm.DOWNLOAD_ALL, Algorithm.GLOBAL)
        ]
        path = tmp_path / "runs.json"
        save_runs_json(runs, path)
        loaded = load_runs_json(path)
        assert len(loaded) == 2
        for original, copy in zip(runs, loaded):
            assert copy.completion_time == original.completion_time
            assert copy.algorithm == original.algorithm


class TestCsv:
    def test_csv_shape(self, tmp_path):
        path = tmp_path / "runs.csv"
        save_runs_csv([sample_metrics(), sample_metrics()], path)
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert tuple(rows[0].keys()) == CSV_FIELDS
        assert rows[0]["algorithm"] == "global"
        assert float(rows[0]["completion_time"]) == 30.0
