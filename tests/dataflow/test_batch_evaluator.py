"""BatchMoveEvaluator: bit-identical to the scalar evaluators.

The vectorized planner engine is only admissible because every float it
produces is *bitwise* equal to the scalar search's — these tests compare
with ``==`` on raw floats (no pytest.approx anywhere) across randomized
trees, placements and asymmetric estimators, including the incremental
``apply_move`` path.
"""

import random

import pytest

from repro.dataflow.cost import CostModel, RecordingEstimator
from repro.dataflow.critical import (
    BatchMoveEvaluator,
    SingleMoveEvaluator,
    critical_path,
)
from repro.dataflow.placement import Placement
from repro.dataflow.tree import complete_binary_tree, left_deep_tree


def random_case(rng):
    """A random (tree, hosts, cost model, placement, estimator) tuple."""
    n = rng.choice([2, 3, 4, 5, 8])
    shape = rng.choice(["binary", "left-deep"])
    tree = complete_binary_tree(n) if shape == "binary" else left_deep_tree(n)
    hosts = [f"h{i}" for i in range(n)] + ["client"]
    sizes = {node.node_id: rng.uniform(1e4, 1e6) for node in tree.nodes()}
    model = CostModel(tree, sizes, startup_cost=0.05, disk_rate=3e6)
    server_hosts = {
        s.node_id: hosts[i] for i, s in enumerate(tree.servers())
    }
    placement = Placement.all_at_client(tree, server_hosts, "client")
    # Scatter the operators to random hosts first, so placements are not
    # all download-all shaped.
    for op in tree.operators():
        if rng.random() < 0.6:
            placement = placement.with_move(op.node_id, rng.choice(hosts))

    bw = {}

    def estimator(a, b):
        key = (a, b)  # deliberately asymmetric: (a, b) != (b, a)
        if key not in bw:
            bw[key] = rng.uniform(0.5, 1e7)  # sometimes below min_bandwidth
        return bw[key]

    return tree, hosts, model, placement, estimator


def scalar_round(tree, model, placement, estimator, moves, best_cost):
    """One scalar pricing round: the one-shot inner loop, verbatim."""
    evaluator = SingleMoveEvaluator(tree, placement, model, estimator)
    best_move = None
    cells = 0
    for node_id, candidate_hosts in moves:
        current_host = placement.host_of(node_id)
        for host in candidate_hosts:
            if host == current_host:
                continue
            cells += 1
            cost = evaluator.cost_of_move(node_id, host)
            if cost <= best_cost:
                best_cost = cost
                best_move = (node_id, host)
    return cells, best_cost, best_move


def all_moves(tree, hosts):
    return [(op.node_id, tuple(hosts)) for op in tree.operators()]


class TestBitIdentity:
    @pytest.mark.parametrize("seed", range(25))
    def test_critical_path_matches_scalar(self, seed):
        rng = random.Random(seed)
        tree, hosts, model, placement, estimator = random_case(rng)
        scalar = critical_path(tree, placement, model, estimator)
        batch = BatchMoveEvaluator(tree, placement, model, estimator, hosts)
        assert batch.critical_path().cost == scalar.cost
        assert batch.critical_path().nodes == scalar.nodes

    @pytest.mark.parametrize("seed", range(25))
    def test_round_winner_matches_scalar(self, seed):
        rng = random.Random(1000 + seed)
        tree, hosts, model, placement, estimator = random_case(rng)
        start = critical_path(tree, placement, model, estimator).cost
        moves = all_moves(tree, hosts)
        want = scalar_round(tree, model, placement, estimator, moves, start)
        batch = BatchMoveEvaluator(tree, placement, model, estimator, hosts)
        got = batch.price_moves(moves, start)
        assert got == want  # cells, bitwise best cost, identical move

    @pytest.mark.parametrize("seed", range(15))
    def test_apply_move_is_bit_identical_to_rebuild(self, seed):
        rng = random.Random(2000 + seed)
        tree, hosts, model, placement, estimator = random_case(rng)
        batch = BatchMoveEvaluator(tree, placement, model, estimator, hosts)
        moves = all_moves(tree, hosts)
        for _ in range(3):
            op = rng.choice([o.node_id for o in tree.operators()])
            host = rng.choice(hosts)
            if host == placement.host_of(op):
                continue
            placement = placement.with_move(op, host)
            batch.apply_move(op, host)
            fresh = BatchMoveEvaluator(
                tree, placement, model, estimator, hosts
            )
            assert batch.critical_path().cost == fresh.critical_path().cost
            assert batch.critical_path().nodes == fresh.critical_path().nodes
            start = batch.critical_path().cost
            assert batch.price_moves(moves, start) == fresh.price_moves(
                moves, start
            )

    @pytest.mark.parametrize("seed", range(10))
    def test_grid_cells_match_cost_of_move(self, seed):
        # Cell-level check: price one node at a time so the returned
        # minimum is comparable against each scalar cost directly.
        rng = random.Random(3000 + seed)
        tree, hosts, model, placement, estimator = random_case(rng)
        scalar = SingleMoveEvaluator(tree, placement, model, estimator)
        batch = BatchMoveEvaluator(tree, placement, model, estimator, hosts)
        for op in tree.operators():
            for host in hosts:
                if host == placement.host_of(op.node_id):
                    continue
                want = scalar.cost_of_move(op.node_id, host)
                cells, got, move = batch.price_moves(
                    [(op.node_id, (host,))], float("inf")
                )
                assert cells == 1
                assert got == want
                assert move == (op.node_id, host)


class TestRecorderSemantics:
    @pytest.mark.parametrize("seed", range(10))
    def test_links_match_recording_estimator(self, seed):
        rng = random.Random(4000 + seed)
        tree, hosts, model, placement, estimator = random_case(rng)
        recorder = RecordingEstimator(estimator)
        critical_path(tree, placement, model, recorder)
        scalar = SingleMoveEvaluator(tree, placement, model, recorder)
        batch = BatchMoveEvaluator(tree, placement, model, estimator, hosts)
        for op in tree.operators():
            for host in hosts:
                if host != placement.host_of(op.node_id):
                    scalar.cost_of_move(op.node_id, host)
        batch.price_moves(all_moves(tree, hosts), float("inf"))
        assert batch.links_queried() == frozenset(recorder.queried)

    def test_links_are_canonical_pairs(self):
        rng = random.Random(7)
        tree, hosts, model, placement, estimator = random_case(rng)
        batch = BatchMoveEvaluator(tree, placement, model, estimator, hosts)
        batch.price_moves(all_moves(tree, hosts), float("inf"))
        for a, b in batch.links_queried():
            assert a < b
