"""Placement mapping semantics."""

import pytest

from repro.dataflow.placement import Placement
from repro.dataflow.tree import CLIENT_ID, complete_binary_tree

TREE = complete_binary_tree(4)
SERVER_HOSTS = {f"s{i}": f"h{i}" for i in range(4)}
HOSTS = [f"h{i}" for i in range(4)] + ["client"]


def download_all():
    return Placement.all_at_client(TREE, SERVER_HOSTS, "client")


class TestConstruction:
    def test_all_at_client(self):
        placement = download_all()
        for op in TREE.operators():
            assert placement.host_of(op.node_id) == "client"
        for server, host in SERVER_HOSTS.items():
            assert placement.host_of(server) == host

    def test_validated_accepts_complete(self):
        placement = Placement.validated(
            TREE, download_all().as_dict(), HOSTS, SERVER_HOSTS, "client"
        )
        assert placement == download_all()

    def test_validated_rejects_missing_node(self):
        partial = download_all().as_dict()
        del partial["op0"]
        with pytest.raises(ValueError):
            Placement.validated(TREE, partial, HOSTS, SERVER_HOSTS, "client")

    def test_validated_rejects_unknown_host(self):
        assignment = download_all().as_dict()
        assignment["op0"] = "mars"
        with pytest.raises(ValueError):
            Placement.validated(TREE, assignment, HOSTS, SERVER_HOSTS, "client")

    def test_validated_rejects_moved_server(self):
        assignment = download_all().as_dict()
        assignment["s0"] = "h1"
        with pytest.raises(ValueError):
            Placement.validated(TREE, assignment, HOSTS, SERVER_HOSTS, "client")

    def test_validated_rejects_moved_client(self):
        assignment = download_all().as_dict()
        assignment[CLIENT_ID] = "h0"
        with pytest.raises(ValueError):
            Placement.validated(TREE, assignment, HOSTS, SERVER_HOSTS, "client")

    def test_validated_rejects_unknown_node(self):
        assignment = download_all().as_dict()
        assignment["ghost"] = "h0"
        with pytest.raises(ValueError):
            Placement.validated(TREE, assignment, HOSTS, SERVER_HOSTS, "client")


class TestOperations:
    def test_with_move_is_functional(self):
        base = download_all()
        moved = base.with_move("op0", "h0")
        assert moved.host_of("op0") == "h0"
        assert base.host_of("op0") == "client"

    def test_with_move_unknown_node(self):
        with pytest.raises(KeyError):
            download_all().with_move("ghost", "h0")

    def test_moves_from(self):
        base = download_all()
        changed = base.with_move("op0", "h0").with_move("op2", "h3")
        moves = changed.moves_from(base)
        assert moves == [("op0", "client", "h0"), ("op2", "client", "h3")]

    def test_equality_and_hash(self):
        assert download_all() == download_all()
        assert hash(download_all()) == hash(download_all())
        assert download_all() != download_all().with_move("op0", "h1")

    def test_hosts_used(self):
        placement = download_all().with_move("op0", "h2")
        assert placement.hosts_used() == {"h0", "h1", "h2", "h3", "client"}

    def test_items_sorted(self):
        items = download_all().items()
        assert items == sorted(items)

    def test_assignment_view_matches_dict(self):
        placement = download_all()
        assert dict(placement.assignment) == placement.as_dict()

    def test_getitem_and_contains(self):
        placement = download_all()
        assert placement["op0"] == "client"
        assert "op0" in placement
        assert "ghost" not in placement
        with pytest.raises(KeyError):
            placement["ghost"]
