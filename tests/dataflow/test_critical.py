"""Critical-path computation and the single-move evaluator."""

import numpy as np
import pytest

from repro.dataflow.cost import CostModel
from repro.dataflow.critical import (
    CriticalPath,
    SingleMoveEvaluator,
    critical_path,
    host_occupancy,
    placement_cost,
)
from repro.dataflow.placement import Placement
from repro.dataflow.tree import complete_binary_tree

TREE = complete_binary_tree(4)
SERVER_HOSTS = {f"s{i}": f"h{i}" for i in range(4)}
HOSTS = [f"h{i}" for i in range(4)] + ["client"]


def model(size=1000.0, startup=0.0, compute=0.0, disk=1e12):
    sizes = {node.node_id: size for node in TREE.nodes()}
    return CostModel(
        TREE,
        sizes,
        startup_cost=startup,
        compute_seconds_per_byte=compute,
        disk_rate=disk,
    )


def flat(rate):
    return lambda a, b: float("inf") if a == b else rate


def download_all():
    return Placement.all_at_client(TREE, SERVER_HOSTS, "client")


class TestHostOccupancy:
    def test_download_all_concentrates_on_client(self):
        cm = model(size=1000.0)
        edges, occupancy = host_occupancy(TREE, download_all(), cm, flat(100.0))
        # Client receives all four server transfers (10 s each).
        assert occupancy["client"] == pytest.approx(40.0)
        for i in range(4):
            assert occupancy[f"h{i}"] == pytest.approx(10.0)

    def test_colocated_edges_free(self):
        cm = model()
        placement = download_all().with_move("op0", "h0")
        edges, __ = host_occupancy(TREE, placement, cm, flat(100.0))
        assert edges["s0"] == 0.0  # s0 and op0 both on h0
        assert edges["s1"] > 0

    def test_occupancy_includes_compute_and_disk(self):
        cm = model(size=1000.0, compute=1e-3, disk=10000.0)
        __, occupancy = host_occupancy(TREE, download_all(), cm, flat(100.0))
        # Client: 4 transfers + 3 composes (1 s each).
        assert occupancy["client"] == pytest.approx(43.0)
        # Server host: disk read (0.1) + transfer (10).
        assert occupancy["h0"] == pytest.approx(10.1)


class TestCriticalPath:
    def test_download_all_bottleneck_is_client(self):
        cm = model()
        cp = critical_path(TREE, download_all(), cm, flat(100.0))
        assert cp.cost == pytest.approx(40.0)
        assert cp.nodes[-1] == "client"

    def test_heterogeneous_rates_pick_slowest_server(self):
        cm = model()

        def estimator(a, b):
            if a == b:
                return float("inf")
            # h2's link is ten times slower than everyone else's.
            if "h2" in (a, b):
                return 10.0
            return 100.0

        cp = critical_path(TREE, download_all(), cm, estimator)
        # Client occupancy: 3 * 10 + 100 = 130.
        assert cp.cost == pytest.approx(130.0)

    def test_latency_term_dominates_long_remote_chains(self):
        cm = model(startup=0.0)
        # Stack the whole left spine on distinct hosts, making a long
        # remote chain with low per-host occupancy.
        placement = (
            download_all().with_move("op0", "h1").with_move("op2", "h2")
        )
        cp = critical_path(TREE, placement, cm, flat(10.0))
        edges, occupancy = host_occupancy(TREE, placement, cm, flat(10.0))
        latencies = []
        for path in cm.server_paths:
            total = sum(edges[n] for n in path[:-1])
            latencies.append(total)
        assert cp.cost >= max(latencies)
        assert cp.cost >= max(occupancy.values())

    def test_operators_property(self):
        cp = CriticalPath(nodes=("s0", "op0", "op2", "client"), cost=1.0)
        assert cp.operators == ("op0", "op2")
        assert "op0" in cp
        assert "s1" not in cp

    def test_placement_cost_matches_critical_path(self):
        cm = model()
        placement = download_all()
        assert placement_cost(TREE, placement, cm, flat(50.0)) == critical_path(
            TREE, placement, cm, flat(50.0)
        ).cost


class TestSingleMoveEvaluator:
    def test_base_cost_matches_full(self):
        cm = model(size=1000.0, compute=1e-4, disk=1e5)
        placement = download_all()
        evaluator = SingleMoveEvaluator(TREE, placement, cm, flat(100.0))
        assert evaluator.base_cost() == pytest.approx(
            placement_cost(TREE, placement, cm, flat(100.0))
        )

    def test_noop_move_equals_base(self):
        cm = model()
        evaluator = SingleMoveEvaluator(TREE, download_all(), cm, flat(100.0))
        assert evaluator.cost_of_move("op0", "client") == evaluator.base_cost()

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_full_recomputation_randomized(self, seed):
        rng = np.random.default_rng(seed)
        cm = model(size=1000.0, startup=0.05, compute=1e-4, disk=1e5)
        rates = {}

        def estimator(a, b):
            if a == b:
                return float("inf")
            key = (a, b) if a < b else (b, a)
            if key not in rates:
                rates[key] = float(rng.uniform(5.0, 500.0))
            return rates[key]

        assignment = download_all().as_dict()
        for op in TREE.operators():
            assignment[op.node_id] = HOSTS[rng.integers(len(HOSTS))]
        base = Placement(assignment)
        evaluator = SingleMoveEvaluator(TREE, base, cm, estimator)
        for op in TREE.operators():
            for host in HOSTS:
                expected = placement_cost(
                    TREE, base.with_move(op.node_id, host), cm, estimator
                )
                actual = evaluator.cost_of_move(op.node_id, host)
                assert actual == pytest.approx(expected, rel=1e-12)
