"""Cost model: expected sizes, node and edge costs."""

import math
import time

import numpy as np
import pytest

from repro.dataflow.cost import (
    CostModel,
    RecordingEstimator,
    clark_max,
    expected_output_sizes,
    snapshot_safe,
)
from repro.dataflow.placement import Placement
from repro.dataflow.tree import complete_binary_tree, left_deep_tree

TREE = complete_binary_tree(4)
SERVER_HOSTS = {f"s{i}": f"h{i}" for i in range(4)}


def flat_estimator(rate):
    return lambda a, b: float("inf") if a == b else rate


class TestClarkMax:
    def test_degenerate_variance(self):
        mean, var = clark_max(5.0, 0.0, 3.0, 0.0)
        assert mean == 5.0
        assert var == 0.0

    def test_identical_normals(self):
        # E[max(X, Y)] for iid N(mu, s^2) = mu + s/sqrt(pi).
        mu, sigma = 100.0, 10.0
        mean, __ = clark_max(mu, sigma**2, mu, sigma**2)
        assert mean == pytest.approx(mu + sigma / math.sqrt(math.pi), rel=1e-6)

    def test_dominant_input(self):
        mean, __ = clark_max(1000.0, 1.0, 0.0, 1.0)
        assert mean == pytest.approx(1000.0, rel=1e-6)

    def test_symmetry(self):
        a = clark_max(10.0, 4.0, 12.0, 9.0)
        b = clark_max(12.0, 9.0, 10.0, 4.0)
        assert a[0] == pytest.approx(b[0])
        assert a[1] == pytest.approx(b[1])


class TestExpectedSizes:
    def test_sizes_grow_up_the_tree(self):
        sizes = expected_output_sizes(TREE, 128 * 1024, 0.25)
        leaf = sizes["s0"]
        mid = sizes["op0"]
        root = sizes[TREE.root_operator.node_id]
        assert leaf < mid < root
        assert sizes["client"] == root

    def test_zero_variance_keeps_mean(self):
        sizes = expected_output_sizes(TREE, 1000.0, 0.0)
        assert all(v == pytest.approx(1000.0) for v in sizes.values())

    def test_left_deep_running_max(self):
        tree = left_deep_tree(8)
        sizes = expected_output_sizes(tree, 1000.0, 0.25)
        chain = [sizes[f"op{i}"] for i in range(7)]
        assert chain == sorted(chain)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_output_sizes(TREE, 0.0, 0.25)
        with pytest.raises(ValueError):
            expected_output_sizes(TREE, 100.0, -1.0)


class TestCostModel:
    def model(self):
        sizes = {node.node_id: 1000.0 for node in TREE.nodes()}
        return CostModel(
            TREE,
            sizes,
            startup_cost=0.05,
            compute_seconds_per_byte=1e-3,
            disk_rate=10000.0,
        )

    def test_missing_sizes_rejected(self):
        with pytest.raises(ValueError):
            CostModel(TREE, {"s0": 1.0})

    def test_node_seconds(self):
        model = self.model()
        assert model.node_seconds("s0") == pytest.approx(0.1)  # disk
        assert model.node_seconds("op0") == pytest.approx(1.0)  # compose
        assert model.node_seconds("client") == 0.0

    def test_edge_seconds_colocated_is_free(self):
        model = self.model()
        placement = Placement.all_at_client(TREE, SERVER_HOSTS, "client")
        # op0 and its parent op2 are both at the client.
        assert model.edge_seconds("op0", placement, flat_estimator(100)) == 0.0

    def test_edge_seconds_remote(self):
        model = self.model()
        placement = Placement.all_at_client(TREE, SERVER_HOSTS, "client")
        # s0@h0 -> op0@client: startup + 1000/100.
        cost = model.edge_seconds("s0", placement, flat_estimator(100.0))
        assert cost == pytest.approx(0.05 + 10.0)

    def test_min_bandwidth_floor(self):
        model = self.model()
        placement = Placement.all_at_client(TREE, SERVER_HOSTS, "client")
        cost = model.edge_seconds("s0", placement, flat_estimator(1e-9))
        assert cost == pytest.approx(0.05 + 1000.0)  # floored at 1 B/s

    def test_edge_detail(self):
        model = self.model()
        placement = Placement.all_at_client(TREE, SERVER_HOSTS, "client")
        edge = model.edge("s0", placement, flat_estimator(100.0))
        assert edge.child == "s0" and edge.parent == "op0"
        assert not edge.is_local
        with pytest.raises(ValueError):
            model.edge("client", placement, flat_estimator(100.0))

    def test_precomputed_paths_cover_all_servers(self):
        model = self.model()
        assert len(model.server_paths) == 4
        for path in model.server_paths:
            assert path[-1] == "client"


class TestRecordingEstimator:
    def test_records_canonical_pairs(self):
        recorder = RecordingEstimator(flat_estimator(5.0))
        recorder("b", "a")
        recorder("a", "b")
        recorder("a", "a")
        assert recorder.queried == {("a", "b")}

    def test_passes_values_through(self):
        recorder = RecordingEstimator(flat_estimator(5.0))
        assert recorder("x", "y") == 5.0


class TestSnapshotSafe:
    def test_plain_callables_are_safe(self):
        assert snapshot_safe(flat_estimator(5.0))
        assert snapshot_safe(RecordingEstimator(flat_estimator(5.0)))

    def test_marked_estimators_opt_out(self):
        def live(a, b):
            return 5.0

        live.snapshot_safe = False
        assert not snapshot_safe(live)
        live.snapshot_safe = True
        assert snapshot_safe(live)


def _model_for(tree):
    sizes = {node.node_id: 1000.0 for node in tree.nodes()}
    return CostModel(tree, sizes, startup_cost=0.05, disk_rate=10000.0)


class TestPathsThrough:
    @pytest.mark.parametrize("make", [complete_binary_tree, left_deep_tree])
    def test_matches_brute_force(self, make):
        model = _model_for(make(9))
        for node_id in {n for path in model.server_paths for n in path}:
            expected = tuple(
                i
                for i, path in enumerate(model.server_paths)
                if node_id in path
            )
            assert model.paths_through[node_id] == expected

    def test_indices_are_in_path_order(self):
        model = _model_for(complete_binary_tree(8))
        for indices in model.paths_through.values():
            assert list(indices) == sorted(indices)

    def test_construction_scales_with_path_elements(self):
        # The old tuple-append build (`through[n] += (index,)`) rebuilt a
        # tuple per path, so nodes near the root cost O(paths^2) — a
        # complete binary tree's whole build degraded from
        # O(paths * depth) to O(paths^2).  Quadrupling the servers must
        # scale construction like path elements (~4.7x here), nowhere
        # near the old 16x.
        def build_seconds(num_servers):
            tree = complete_binary_tree(num_servers)
            sizes = {node.node_id: 1000.0 for node in tree.nodes()}
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                CostModel(tree, sizes, startup_cost=0.05, disk_rate=10000.0)
                best = min(best, time.perf_counter() - start)
            return best

        small, big = build_seconds(512), build_seconds(2048)
        assert big < 10 * small + 0.05


class TestCostModelArrays:
    def test_arrays_are_cached(self):
        model = _model_for(complete_binary_tree(4))
        assert model.arrays() is model.arrays()

    @pytest.mark.parametrize("make", [complete_binary_tree, left_deep_tree])
    def test_mirror_matches_scalar_structures(self, make):
        tree = make(6)
        model = _model_for(tree)
        arrays = model.arrays()
        index = arrays.node_index
        assert list(arrays.node_ids) == [n.node_id for n in tree.nodes()]
        for i, node_id in enumerate(arrays.node_ids):
            node = tree.node(node_id)
            assert arrays.node_seconds[i] == model.node_seconds(node_id)
            assert arrays.sizes[i] == model.sizes[node_id]
            parent = -1 if node.parent is None else index[node.parent]
            assert arrays.parent[i] == parent
            children = [index[c] for c in node.children]
            assert arrays.child1[i] == (children[0] if children else -1)
            assert arrays.child2[i] == (
                children[1] if len(children) > 1 else -1
            )
        for e, (child, parent, size) in enumerate(model.edges):
            assert arrays.edge_child[e] == index[child]
            assert arrays.edge_parent[e] == index[parent]
            assert arrays.edge_size[e] == size
        assert np.array_equal(
            arrays.path_node_sums, np.array(model.path_node_sums)
        )

    def test_incidence_matches_paths_through(self):
        model = _model_for(complete_binary_tree(8))
        arrays = model.arrays()
        for node_id, indices in model.paths_through.items():
            i = arrays.node_index[node_id]
            assert list(np.flatnonzero(arrays.on_path[i])) == list(indices)
            hits = arrays.affected[i][arrays.affected_valid[i]]
            assert list(hits) == list(indices)
            # The child masks tag exactly the affected columns whose path
            # also passes through that child.
            for mask, child in (
                (arrays.affected_child1[i], arrays.child1[i]),
                (arrays.affected_child2[i], arrays.child2[i]),
            ):
                if child < 0:
                    assert not mask.any()
                else:
                    expected = arrays.on_path[child, hits]
                    assert np.array_equal(mask[: hits.size], expected)
