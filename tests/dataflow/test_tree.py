"""Combination tree builders and validation."""

import pytest

from repro.dataflow.tree import (
    CLIENT_ID,
    CombinationTree,
    TreeNode,
    complete_binary_tree,
    left_deep_tree,
)


class TestCompleteBinaryTree:
    def test_eight_servers_shape(self):
        tree = complete_binary_tree(8)
        assert len(tree.servers()) == 8
        assert len(tree.operators()) == 7
        assert len(tree) == 16  # 8 + 7 + client
        assert tree.depth() == 3

    def test_power_of_two_counts(self):
        for n in (2, 4, 16, 32):
            tree = complete_binary_tree(n)
            assert len(tree.servers()) == n
            assert len(tree.operators()) == n - 1

    def test_non_power_of_two(self):
        tree = complete_binary_tree(6)
        assert len(tree.servers()) == 6
        assert len(tree.operators()) == 5

    def test_minimum_two_servers(self):
        with pytest.raises(ValueError):
            complete_binary_tree(1)

    def test_client_consumes_root(self):
        tree = complete_binary_tree(4)
        assert tree.client.node_id == CLIENT_ID
        root = tree.root_operator
        assert root.parent == CLIENT_ID
        assert root.is_operator

    def test_operator_levels_stagger_bottom_up(self):
        tree = complete_binary_tree(8)
        # Leaf operators (fed by servers) at level 0, root at level 2.
        leaf_ops = [
            op
            for op in tree.operators()
            if all(tree.node(c).is_server for c in op.children)
        ]
        assert {op.level for op in leaf_ops} == {0}
        assert tree.root_operator.level == 2

    def test_depths_from_client(self):
        tree = complete_binary_tree(4)
        assert tree.client.depth == 0
        assert tree.root_operator.depth == 1
        for server in tree.servers():
            assert server.depth == 3


class TestLeftDeepTree:
    def test_chain_shape(self):
        tree = left_deep_tree(8)
        assert len(tree.servers()) == 8
        assert len(tree.operators()) == 7
        assert tree.depth() == 7

    def test_chain_linkage(self):
        tree = left_deep_tree(4)
        # op0 combines s0+s1; op1 combines op0+s2; op2 combines op1+s3.
        assert tuple(tree.node("op0").children) == ("s0", "s1")
        assert tuple(tree.node("op1").children) == ("op0", "s2")
        assert tuple(tree.node("op2").children) == ("op1", "s3")
        assert tree.root_operator.node_id == "op2"

    def test_minimum_two_servers(self):
        with pytest.raises(ValueError):
            left_deep_tree(1)


class TestTreeQueries:
    def test_path_to_client(self):
        tree = complete_binary_tree(4)
        path = tree.path_to_client("s0")
        assert path[0] == "s0"
        assert path[-1] == CLIENT_ID
        assert len(path) == 4

    def test_subtree_servers(self):
        tree = complete_binary_tree(8)
        assert tree.subtree_servers(tree.root_operator.node_id) == [
            f"s{i}" for i in range(8)
        ]
        assert tree.subtree_servers("s3") == ["s3"]

    def test_children_and_parent(self):
        tree = complete_binary_tree(4)
        children = tree.children_of("op0")
        assert [c.node_id for c in children] == ["s0", "s1"]
        assert tree.parent_of("s0").node_id == "op0"
        assert tree.parent_of(CLIENT_ID) is None

    def test_unknown_node_raises(self):
        tree = complete_binary_tree(4)
        with pytest.raises(KeyError):
            tree.node("nope")

    def test_contains_and_len(self):
        tree = complete_binary_tree(2)
        assert "s0" in tree
        assert "ghost" not in tree
        assert len(tree) == 4


class TestValidation:
    def test_missing_client_rejected(self):
        nodes = [TreeNode("s0", "server")]
        with pytest.raises(ValueError):
            CombinationTree(nodes)

    def test_duplicate_ids_rejected(self):
        nodes = [
            TreeNode(CLIENT_ID, "client", children=("s0",)),
            TreeNode("s0", "server", parent=CLIENT_ID),
            TreeNode("s0", "server", parent=CLIENT_ID),
        ]
        with pytest.raises(ValueError):
            CombinationTree(nodes)

    def test_operator_arity_enforced(self):
        nodes = [
            TreeNode(CLIENT_ID, "client", children=("op0",)),
            TreeNode("op0", "operator", children=("s0",), parent=CLIENT_ID),
            TreeNode("s0", "server", parent="op0"),
        ]
        with pytest.raises(ValueError):
            CombinationTree(nodes)

    def test_unmirrored_link_rejected(self):
        nodes = [
            TreeNode(CLIENT_ID, "client", children=("op0",)),
            TreeNode("op0", "operator", children=("s0", "s1"), parent=CLIENT_ID),
            TreeNode("s0", "server", parent="op0"),
            TreeNode("s1", "server", parent=CLIENT_ID),  # wrong parent
        ]
        with pytest.raises(ValueError):
            CombinationTree(nodes)

    def test_unreachable_node_rejected(self):
        nodes = [
            TreeNode(CLIENT_ID, "client", children=("op0",)),
            TreeNode("op0", "operator", children=("s0", "s1"), parent=CLIENT_ID),
            TreeNode("s0", "server", parent="op0"),
            TreeNode("s1", "server", parent="op0"),
            TreeNode("orphan", "server", parent=None),
        ]
        with pytest.raises(ValueError):
            CombinationTree(nodes)
