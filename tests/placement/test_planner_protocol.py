"""Every registered planner family conforms to the Planner protocol."""

from __future__ import annotations

import math

import pytest

import repro.fleet  # noqa: F401  — registers the fleet-* planner family
from repro.dataflow.cost import CostModel, expected_output_sizes
from repro.dataflow.tree import complete_binary_tree
from repro.obs import Tracer
from repro.obs.events import PLANNER_SEARCH
from repro.placement import (
    DownloadAllPlanner,
    GlobalPlanner,
    LocalRulesPlanner,
    OneShotPlanner,
    Planner,
    PlanResult,
    download_all_placement,
    planner_for,
    planner_registry,
)

HOSTS = ["h0", "h1", "h2", "h3", "client"]


def make_problem():
    tree = complete_binary_tree(4)
    sizes = expected_output_sizes(tree, 100 * 1024.0, 0.1)
    cost_model = CostModel(tree, sizes, startup_cost=1.0, disk_rate=1e9)
    server_hosts = {
        server.node_id: f"h{i}" for i, server in enumerate(tree.servers())
    }
    initial = download_all_placement(tree, server_hosts, "client")
    return tree, cost_model, initial


def estimator(a: str, b: str) -> float:
    return 50 * 1024.0


@pytest.mark.parametrize("name", planner_registry())
class TestProtocolConformance:
    """Runs over the full ``planner_for`` registry — the four paper
    algorithms plus the fleet-coordinated wrappers."""

    def test_factory_builds_conforming_planner(self, name):
        tree, cost_model, initial = make_problem()
        planner = planner_for(name, tree, HOSTS, cost_model)
        assert isinstance(planner, Planner)
        assert planner.name == name

    def test_plan_returns_labelled_result(self, name):
        tree, cost_model, initial = make_problem()
        planner = planner_for(name, tree, HOSTS, cost_model)
        result = planner.plan(estimator, initial, seed=7)
        assert isinstance(result, PlanResult)
        assert result.algorithm == name
        assert math.isfinite(result.cost)
        assert set(result.placement.as_dict()) == set(initial.as_dict())

    def test_plan_is_deterministic(self, name):
        tree, cost_model, initial = make_problem()
        planner = planner_for(name, tree, HOSTS, cost_model)
        a = planner.plan(estimator, initial, seed=3)
        b = planner.plan(estimator, initial, seed=3)
        assert a.placement.as_dict() == b.placement.as_dict()
        assert a.cost == b.cost

    def test_plan_emits_one_search_event(self, name):
        tree, cost_model, initial = make_problem()
        planner = planner_for(name, tree, HOSTS, cost_model)
        tracer = Tracer()
        planner.plan(estimator, initial, tracer=tracer, now=5.0)
        searches = [
            e for e in tracer.events if e["type"] == PLANNER_SEARCH
        ]
        assert len(searches) == 1
        assert searches[0]["algorithm"] == name
        assert searches[0]["t"] == 5.0

    def test_fresh_factories_agree(self, name):
        """Two independently built planners produce identical plans —
        no hidden cross-instance state (fleet planners carry a private
        coordinator each)."""
        tree, cost_model, initial = make_problem()
        a = planner_for(name, tree, HOSTS, cost_model).plan(
            estimator, initial, seed=11
        )
        b = planner_for(name, tree, HOSTS, cost_model).plan(
            estimator, initial, seed=11
        )
        assert a.placement.as_dict() == b.placement.as_dict()
        assert a.cost == b.cost


class TestFactory:
    def test_accepts_plain_strings(self):
        tree, cost_model, _ = make_problem()
        assert isinstance(
            planner_for("one-shot", tree, HOSTS, cost_model), OneShotPlanner
        )
        assert isinstance(
            planner_for("global", tree, HOSTS, cost_model), GlobalPlanner
        )
        assert isinstance(
            planner_for("local", tree, HOSTS, cost_model), LocalRulesPlanner
        )
        assert isinstance(
            planner_for("download-all", tree, HOSTS, cost_model),
            DownloadAllPlanner,
        )

    def test_unknown_algorithm_raises(self):
        tree, cost_model, _ = make_problem()
        with pytest.raises(ValueError, match="unknown placement algorithm"):
            planner_for("simulated-annealing", tree, HOSTS, cost_model)

    def test_download_all_plan_is_identity(self):
        tree, cost_model, initial = make_problem()
        planner = planner_for("download-all", tree, HOSTS, cost_model)
        result = planner.plan(estimator, initial)
        assert result.placement is initial
        assert result.rounds == 0
