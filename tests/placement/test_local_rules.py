"""Local algorithm decision rules (§2.3)."""

import pytest

from repro.placement.local_rules import (
    choose_local_site,
    is_on_critical_path,
    local_path_cost,
)


def flat(rate):
    return lambda a, b: float("inf") if a == b else rate


class TestIsOnCriticalPath:
    def test_majority_rule(self):
        assert is_on_critical_path(6, 10, True)
        assert not is_on_critical_path(5, 10, True)  # exactly half: no

    def test_requires_consumer_on_path(self):
        assert not is_on_critical_path(10, 10, False)

    def test_no_dispatches_means_no(self):
        assert not is_on_critical_path(0, 0, True)

    def test_in_flight_mark_overflow_tolerated(self):
        # Marks ride on the consumer's next demand, so they can exceed
        # the dispatch count by one at an epoch boundary.
        assert is_on_critical_path(10, 9, True)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            is_on_critical_path(-1, 5, True)
        with pytest.raises(ValueError):
            is_on_critical_path(1, -5, True)


class TestLocalPathCost:
    def test_all_colocated_is_compute_only(self):
        cost = local_path_cost(
            site="h0",
            producer_hosts=["h0", "h0"],
            producer_sizes=[100.0, 100.0],
            consumer_host="h0",
            output_size=100.0,
            estimator=flat(10.0),
            startup_cost=0.05,
            compute_seconds=2.0,
        )
        assert cost == pytest.approx(2.0)

    def test_max_over_producers(self):
        cost = local_path_cost(
            site="x",
            producer_hosts=["p1", "p2"],
            producer_sizes=[100.0, 1000.0],
            consumer_host="c",
            output_size=1000.0,
            estimator=flat(10.0),
            startup_cost=0.0,
        )
        # slower input (100 s) + output (100 s)
        assert cost == pytest.approx(100.0 + 100.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            local_path_cost(
                "x", ["p1"], [1.0, 2.0], "c", 1.0, flat(1.0), 0.0
            )


class TestChooseLocalSite:
    def test_prefers_consumer_when_output_dominates(self):
        # Large output, tiny inputs: sitting at the consumer removes the
        # expensive output edge.
        decision = choose_local_site(
            current_host="x",
            producer_hosts=["p1", "p2"],
            producer_sizes=[10.0, 10.0],
            consumer_host="c",
            output_size=10000.0,
            estimator=flat(10.0),
            startup_cost=0.0,
        )
        assert decision.best_site == "c"
        assert decision.should_move

    def test_avoids_paying_a_bad_link_twice(self):
        # p1 sits behind a terrible link, so its data costs 1000 s no
        # matter what; the winner avoids routing the *output* through
        # that link too (anywhere but p1; the consumer is cheapest).
        def estimator(a, b):
            if a == b:
                return float("inf")
            if "p1" in (a, b):
                return 1.0
            return 1000.0

        decision = choose_local_site(
            current_host="x",
            producer_hosts=["p1", "p2"],
            producer_sizes=[1000.0, 1000.0],
            consumer_host="c",
            output_size=1000.0,
            estimator=estimator,
            startup_cost=0.0,
        )
        assert decision.best_site == "c"
        assert decision.costs["p1"] > decision.costs["c"]

    def test_stays_when_current_is_best(self):
        decision = choose_local_site(
            current_host="c",
            producer_hosts=["p1", "p2"],
            producer_sizes=[10.0, 10.0],
            consumer_host="c",
            output_size=10000.0,
            estimator=flat(10.0),
            startup_cost=0.0,
        )
        assert decision.best_site == "c"
        assert not decision.should_move

    def test_extra_candidates_considered(self):
        def estimator(a, b):
            if a == b:
                return float("inf")
            if "magic" in (a, b):
                return 1e9  # the extra site has perfect links
            return 1.0

        decision = choose_local_site(
            current_host="x",
            producer_hosts=["p1", "p2"],
            producer_sizes=[100.0, 100.0],
            consumer_host="c",
            output_size=100.0,
            estimator=estimator,
            startup_cost=0.0,
            extra_candidates=["magic"],
        )
        assert decision.best_site == "magic"

    def test_costs_reported_for_all_candidates(self):
        decision = choose_local_site(
            current_host="x",
            producer_hosts=["p1", "p2"],
            producer_sizes=[1.0, 1.0],
            consumer_host="c",
            output_size=1.0,
            estimator=flat(10.0),
            startup_cost=0.0,
        )
        assert set(decision.costs) == {"x", "p1", "p2", "c"}

    def test_tie_breaks_toward_current(self):
        # All sites equivalent: no move.
        decision = choose_local_site(
            current_host="x",
            producer_hosts=["x", "x"],
            producer_sizes=[0.0, 0.0],
            consumer_host="x",
            output_size=0.0,
            estimator=flat(10.0),
            startup_cost=0.0,
        )
        assert decision.best_site == "x"
        assert not decision.should_move
