"""Download-all placement and the global planner wrapper."""

import pytest

from repro.dataflow.cost import CostModel, expected_output_sizes
from repro.dataflow.critical import placement_cost
from repro.dataflow.tree import complete_binary_tree
from repro.placement import (
    GlobalPlanner,
    OneShotPlanner,
    download_all_placement,
)

TREE = complete_binary_tree(4)
SERVER_HOSTS = {f"s{i}": f"h{i}" for i in range(4)}
HOSTS = [f"h{i}" for i in range(4)] + ["client"]


def model():
    return CostModel(TREE, expected_output_sizes(TREE, 128 * 1024, 0.25))


def flat(rate):
    return lambda a, b: float("inf") if a == b else rate


class TestDownloadAll:
    def test_places_all_operators_at_client(self):
        placement = download_all_placement(TREE, SERVER_HOSTS, "client")
        assert all(
            placement.host_of(op.node_id) == "client" for op in TREE.operators()
        )


class TestGlobalPlanner:
    def test_warm_start_from_current(self):
        cm = model()
        planner = GlobalPlanner(TREE, HOSTS, cm)
        dl = download_all_placement(TREE, SERVER_HOSTS, "client")
        first = planner.plan(flat(10 * 1024.0), dl)
        # From its own output, planning again cannot regress.
        second = planner.plan(flat(10 * 1024.0), first.placement)
        assert second.cost <= first.cost * (1 + 1e-9)

    def test_matches_one_shot_procedure(self):
        """§2.2: the global planner IS the one-shot procedure with a
        different initialization."""
        cm = model()
        dl = download_all_placement(TREE, SERVER_HOSTS, "client")
        one_shot = OneShotPlanner(TREE, HOSTS, cm).plan(flat(8 * 1024.0), dl)
        global_plan = GlobalPlanner(TREE, HOSTS, cm).plan(flat(8 * 1024.0), dl)
        assert one_shot.placement == global_plan.placement

    def test_adapts_to_changed_bandwidths(self):
        cm = model()
        planner = GlobalPlanner(TREE, HOSTS, cm)
        dl = download_all_placement(TREE, SERVER_HOSTS, "client")
        stable = planner.plan(flat(10 * 1024.0), dl).placement

        def degraded(a, b):
            if a == b:
                return float("inf")
            # Every host used by the current placement except pinned ones
            # becomes slow; somewhere else is now better.
            if "h0" in (a, b):
                return 128.0
            return 10 * 1024.0

        replanned = planner.plan(degraded, stable)
        cost_if_stayed = placement_cost(TREE, stable, cm, degraded)
        assert replanned.cost <= cost_if_stayed

    def test_exposes_cost_model_and_hosts(self):
        cm = model()
        planner = GlobalPlanner(TREE, HOSTS, cm)
        assert planner.cost_model is cm
        assert set(planner.hosts) == set(HOSTS)
        assert planner.tree is TREE
