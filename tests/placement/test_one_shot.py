"""One-shot planner behaviour."""

import pytest

from repro.dataflow.cost import CostModel, expected_output_sizes
from repro.dataflow.critical import placement_cost
from repro.dataflow.tree import complete_binary_tree
from repro.placement import OneShotPlanner, download_all_placement

TREE = complete_binary_tree(8)
SERVER_HOSTS = {f"s{i}": f"h{i}" for i in range(8)}
HOSTS = [f"h{i}" for i in range(8)] + ["client"]


def model():
    sizes = expected_output_sizes(TREE, 128 * 1024, 0.25)
    return CostModel(TREE, sizes)


def flat(rate):
    return lambda a, b: float("inf") if a == b else rate


def download_all():
    return download_all_placement(TREE, SERVER_HOSTS, "client")


class TestOneShot:
    def test_validation(self):
        with pytest.raises(ValueError):
            OneShotPlanner(TREE, [], model())
        with pytest.raises(ValueError):
            OneShotPlanner(TREE, HOSTS, model(), max_rounds=0)

    def test_never_worse_than_initial(self):
        planner = OneShotPlanner(TREE, HOSTS, model())
        initial = download_all()
        estimator = flat(10 * 1024.0)
        result = planner.plan(estimator, initial)
        initial_cost = placement_cost(TREE, initial, model(), estimator)
        assert result.cost <= initial_cost

    def test_escapes_all_at_client_congestion(self):
        """With uniform links, download-all serializes 8 transfers at the
        client; the planner must distribute operators to relieve it."""
        planner = OneShotPlanner(TREE, HOSTS, model())
        result = planner.plan(flat(10 * 1024.0), download_all())
        off_client = [
            op.node_id
            for op in TREE.operators()
            if result.placement.host_of(op.node_id) != "client"
        ]
        assert len(off_client) >= 4
        initial_cost = placement_cost(TREE, download_all(), model(), flat(10 * 1024.0))
        assert result.cost < 0.6 * initial_cost

    def test_result_cost_is_consistent(self):
        planner = OneShotPlanner(TREE, HOSTS, model())
        estimator = flat(20 * 1024.0)
        result = planner.plan(estimator, download_all())
        assert result.cost == pytest.approx(
            placement_cost(TREE, result.placement, model(), estimator)
        )

    def test_deterministic(self):
        planner = OneShotPlanner(TREE, HOSTS, model())
        a = planner.plan(flat(10 * 1024.0), download_all())
        b = planner.plan(flat(10 * 1024.0), download_all())
        assert a.placement == b.placement
        assert a.cost == b.cost

    def test_servers_and_client_stay_pinned(self):
        planner = OneShotPlanner(TREE, HOSTS, model())
        result = planner.plan(flat(10 * 1024.0), download_all())
        for server, host in SERVER_HOSTS.items():
            assert result.placement.host_of(server) == host
        assert result.placement.host_of("client") == "client"

    def test_avoids_slow_hosts(self):
        """A host whose links are all terrible must not receive operators."""

        def estimator(a, b):
            if a == b:
                return float("inf")
            if "h7" in (a, b):
                return 64.0  # almost unusable
            return 20 * 1024.0

        planner = OneShotPlanner(TREE, HOSTS, model())
        result = planner.plan(estimator, download_all())
        for op in TREE.operators():
            if op.node_id != "op3":  # op3 consumes s7's data either way
                assert result.placement.host_of(op.node_id) != "h7"

    def test_links_queried_recorded(self):
        planner = OneShotPlanner(TREE, HOSTS, model())
        result = planner.plan(flat(10 * 1024.0), download_all())
        assert result.links_queried
        for a, b in result.links_queried:
            assert a < b

    def test_rounds_bounded(self):
        planner = OneShotPlanner(TREE, HOSTS, model(), max_rounds=1)
        result = planner.plan(flat(10 * 1024.0), download_all())
        assert result.rounds == 1

    def test_warm_start_keeps_good_placement(self):
        planner = OneShotPlanner(TREE, HOSTS, model())
        estimator = flat(10 * 1024.0)
        first = planner.plan(estimator, download_all())
        second = planner.plan(estimator, first.placement)
        assert second.cost <= first.cost
