"""The vectorized planner engine: equal plans, engine selection, fallback."""

import random

import pytest

from repro.dataflow.cost import CostModel
from repro.dataflow.tree import complete_binary_tree, left_deep_tree
from repro.placement import planner_for
from repro.placement.download_all import download_all_placement
from repro.placement.global_planner import GlobalPlanner
from repro.placement.one_shot import OneShotPlanner


def random_setup(rng, with_replicas=False):
    n = rng.choice([2, 3, 4, 5, 8])
    shape = rng.choice(["binary", "left-deep"])
    tree = complete_binary_tree(n) if shape == "binary" else left_deep_tree(n)
    hosts = [f"h{i}" for i in range(n)] + ["client"]
    sizes = {node.node_id: rng.uniform(1e4, 1e6) for node in tree.nodes()}
    model = CostModel(tree, sizes, startup_cost=0.05, disk_rate=3e6)
    server_hosts = {
        s.node_id: hosts[i] for i, s in enumerate(tree.servers())
    }
    start = download_all_placement(tree, server_hosts, "client")
    replicas = None
    if with_replicas:
        replicas = {
            s: (server_hosts[s], rng.choice(hosts)) for s in server_hosts
        }

    bw = {}

    def estimator(a, b):
        key = (a, b)  # asymmetric estimator
        if key not in bw:
            bw[key] = rng.uniform(1e4, 1e7)
        return bw[key]

    return tree, hosts, model, start, replicas, estimator


def assert_same_result(scalar, vectorized):
    assert scalar.placement == vectorized.placement
    assert scalar.cost == vectorized.cost  # bitwise
    assert scalar.rounds == vectorized.rounds
    assert scalar.candidates_evaluated == vectorized.candidates_evaluated
    assert scalar.links_queried == vectorized.links_queried
    assert scalar.algorithm == vectorized.algorithm


class TestPlanEquality:
    @pytest.mark.parametrize("seed", range(20))
    def test_one_shot_plans_identical(self, seed):
        rng = random.Random(seed)
        with_replicas = seed % 3 == 0
        tree, hosts, model, start, replicas, est = random_setup(
            rng, with_replicas
        )
        scalar = OneShotPlanner(tree, hosts, model, 200, replicas, "scalar")
        vector = OneShotPlanner(
            tree, hosts, model, 200, replicas, "vectorized"
        )
        assert_same_result(scalar.plan(est, start), vector.plan(est, start))
        assert scalar.last_engine == "scalar"
        assert vector.last_engine == "vectorized"

    @pytest.mark.parametrize("seed", range(10))
    def test_global_warm_start_plans_identical(self, seed):
        rng = random.Random(500 + seed)
        tree, hosts, model, start, _, est = random_setup(rng)
        scalar = GlobalPlanner(tree, hosts, model, 200, None, "scalar")
        vector = GlobalPlanner(tree, hosts, model, 200, None, "vectorized")
        # Warm-start from a scalar one-shot plan, as the controller does.
        warm = scalar.plan(est, start).placement
        assert_same_result(scalar.plan(est, warm), vector.plan(est, warm))

    def test_recording_semantics_on_asymmetric_estimator(self):
        # The satellite check: the vectorized engine's links_queried must
        # equal the scalar RecordingEstimator set even when bandwidth is
        # direction-dependent (the recorder canonicalizes pairs, the
        # matrix must too).
        for seed in range(8):
            rng = random.Random(900 + seed)
            tree, hosts, model, start, _, est = random_setup(rng)
            scalar = OneShotPlanner(tree, hosts, model, engine="scalar")
            vector = OneShotPlanner(tree, hosts, model, engine="vectorized")
            s, v = scalar.plan(est, start), vector.plan(est, start)
            assert s.links_queried == v.links_queried
            assert all(a < b for a, b in v.links_queried)


class TestEngineSelection:
    def setup_method(self):
        rng = random.Random(42)
        (self.tree, self.hosts, self.model, self.start, _, self.est) = (
            random_setup(rng)
        )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            OneShotPlanner(self.tree, self.hosts, self.model, engine="simd")

    def test_scalar_escape_hatch(self):
        planner = OneShotPlanner(
            self.tree, self.hosts, self.model, engine="scalar"
        )
        planner.plan(self.est, self.start)
        assert planner.last_engine == "scalar"

    def test_unsafe_estimator_falls_back_to_scalar(self):
        calls = []

        def live(a, b):
            calls.append((a, b))
            return 1e6

        live.snapshot_safe = False
        planner = OneShotPlanner(
            self.tree, self.hosts, self.model, engine="vectorized"
        )
        result = planner.plan(live, self.start)
        assert planner.last_engine == "scalar"
        # The scalar path must not have snapshotted the full matrix up
        # front: it queries only as the search needs values.
        scalar = OneShotPlanner(
            self.tree, self.hosts, self.model, engine="scalar"
        )
        assert_same_result(scalar.plan(live, self.start), result)

    def test_global_planner_forwards_engine(self):
        planner = GlobalPlanner(
            self.tree, self.hosts, self.model, engine="scalar"
        )
        assert planner.engine == "scalar"
        planner.plan(self.est, self.start)
        assert planner.last_engine == "scalar"

    def test_planner_for_forwards_engine(self):
        for name in ("one-shot", "global"):
            planner = planner_for(
                name,
                self.tree,
                self.hosts,
                self.model,
                planner_engine="scalar",
            )
            planner.plan(self.est, self.start)
            assert planner.last_engine == "scalar"
        # Planners without a move grid accept and ignore the knob.
        planner_for(
            "download-all",
            self.tree,
            self.hosts,
            self.model,
            planner_engine="scalar",
        ).plan(self.est, self.start)

    def test_fleet_planner_passes_engine_through(self):
        planner = planner_for(
            "fleet-coordinated",
            self.tree,
            self.hosts,
            self.model,
            planner_engine="vectorized",
        )
        result = planner.plan(self.est, self.start)
        assert planner.inner.last_engine == "vectorized"
        scalar = planner_for(
            "fleet-coordinated",
            self.tree,
            self.hosts,
            self.model,
            planner_engine="scalar",
        )
        expected = scalar.plan(self.est, self.start)
        assert scalar.inner.last_engine == "scalar"
        assert result.placement == expected.placement
        assert result.cost == expected.cost
