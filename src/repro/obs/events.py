"""The run-trace event taxonomy.

Every trace record is a flat JSON-serializable dict with at least a
``"type"`` (one of the constants below) and a ``"t"`` (simulation time in
seconds).  *Span* events additionally carry ``"dur"`` (seconds); *point*
events do not.  The remaining fields are type-specific and documented
here; exporters and the summarizer rely only on the fields listed.

Point events
------------

``message.send``
    A message handed to the transport.  Fields: ``uid``, ``kind``,
    ``src_actor``, ``dst_actor``, ``src_host``, ``dst_host``, ``bytes``
    (payload size) and ``transport`` (``"wire"`` or ``"local"``).
``message.recv``
    Final delivery into the destination actor's mailbox.  Fields:
    ``uid``, ``actor``, ``host``, ``kind``.
``message.forward``
    The destination actor moved while the message was in flight; the
    message pays for another hop.  Fields: ``uid``, ``actor``,
    ``from_host``, ``to_host``.
``relocation``
    One actor move (operator, or replica-switching server).  Fields:
    ``actor``, ``old_host``, ``new_host``, ``state_bytes``.
``planner.run``
    A controller executed one planning round (this is the event
    :attr:`~repro.engine.metrics.RunMetrics.planner_runs` counts).
    Fields: ``algorithm`` and, for the local algorithm, ``actor``.
``planner.search``
    One invocation of a :class:`~repro.placement.base.Planner`'s search
    (the global controller may search several times per planning round).
    Fields: ``algorithm``, ``rounds``, ``candidates``, ``links``,
    ``cost``.
``placement.install``
    The global controller committed a new placement.  Fields:
    ``plan_seq``, ``moves`` (actors whose host changes).
``monitor.estimate``
    A bandwidth-estimate query answered from a host's cache.  Fields:
    ``viewer``, ``a``, ``b``, ``quality`` (``"fresh"``/``"stale"``/
    ``"default"``), ``age``.
``monitor.passive``
    A passive measurement recorded from a large-enough transfer.
    Fields: ``a``, ``b``, ``bandwidth``.
``monitor.probe``
    One active probe message sent.  Fields: ``a``, ``b``, ``bytes``.
``monitor.probe_result``
    The (multi-sample averaged) outcome of an active probe.  Fields:
    ``a``, ``b``, ``bandwidth``, ``samples``.
``monitor.piggyback``
    Piggybacked cache entries merged at a receiving host.  Fields:
    ``host``, ``merged``.
``arrival``
    A composed image reached the client.  Fields: ``iteration``.
``net.retransmit``
    A transfer attempt failed (outage, crashed endpoint, or loss) and
    will be retried after a backoff.  Fields: ``src_host``, ``dst_host``,
    ``uid``, ``attempt`` (1-based failed attempt), ``reason``
    (``"outage"``/``"host-down"``/``"loss"``), ``wait`` (seconds until
    the next attempt).
``net.drop``
    A transfer attempt's bytes went on the wire and were lost.  Fields:
    ``src_host``, ``dst_host``, ``uid``, ``bytes``.
``net.abandon``
    A transfer exhausted its retry budget; the message is dropped and
    the delivery event fails with ``TransferAbandoned``.  Fields:
    ``src_host``, ``dst_host``, ``uid``, ``attempts``, ``reason``.
``relocation.abort``
    A two-phase relocation rolled back to the source placement.  Fields:
    ``actor``, ``old_host``, ``new_host``, ``reason``
    (``"destination-down"``/``"timeout"``/``"transfer-abandoned"``).
``fault.link_down`` / ``fault.link_up``
    A planned link outage window opened / closed.  Fields: ``a``, ``b``
    (canonical pair); ``fault.link_up`` adds ``outage`` (window seconds).
``fault.host_down`` / ``fault.host_up``
    A planned host crash window opened / closed.  Fields: ``host``;
    ``fault.host_up`` adds ``downtime`` (window seconds) — this is the
    increment :attr:`~repro.engine.metrics.RunMetrics.
    host_downtime_seconds` accumulates.
``monitor.probe_timeout``
    An active probe sample produced no measurement.  Fields: ``a``,
    ``b``, ``reason`` (``"blackout"``/``"timeout"``/``"abandoned"``).
``planner.fallback``
    A controller declined to plan on a degraded monitoring view and fell
    back.  Fields: ``algorithm``, ``mode`` (``"last-known-good"``/
    ``"download-all"``/``"skip-down-host"``) and optionally ``coverage``
    or ``actor``.
``run.meta``
    First event of a run: ``algorithm``, ``num_servers``, ``images``,
    ``tree_shape``, ``hosts``.  Workload queries add ``query_class``;
    a class with an SLO target adds ``slo`` (seconds) and a query
    rerouted by an open circuit breaker adds ``degraded: true``.
``run.end``
    Last event of a run: ``truncated``, ``images_delivered``,
    ``completion_time``.
``query.shed``
    The admission controller rejected a query at arrival (concurrency
    and queue limits exhausted, or the seeded shed coin fired).  Fields:
    ``query_class``, ``attempt`` (0 for first submissions, the retry
    number otherwise).
``query.queued``
    A query arrived while the fleet was at its concurrency limit and
    joined the admission queue.  Fields: ``query_class``, ``depth``
    (queue depth after the enqueue — its running max is the summary's
    ``queue_peak``).
``query.deadline_abort``
    A query exceeded its class deadline and was aborted (its pipeline
    drains through the cooperative cancellation path).  Fields:
    ``query_class``, ``deadline``, ``waited`` (seconds since arrival),
    ``launched`` (false when the query expired while still queued).
``query.retry``
    An aborted query will be resubmitted after a backoff, charged to
    its client's retry budget.  Fields: ``query_class``, ``attempt``
    (1-based retry number), ``wait`` (backoff seconds).
``retry.budget_exhausted``
    An aborted query could not be retried: its client's retry budget is
    spent.  Fields: ``query_class``, ``client``.
``breaker.open``
    A per-host circuit breaker tripped after repeated failures involving
    a down host; queries touching the host are planned degraded until
    the breaker closes.  Fields: ``host``, ``failures``.
``breaker.close``
    A circuit breaker's cooldown elapsed; the host serves normal plans
    again.  Fields: ``host``, ``open_seconds``.
``fleet.claim``
    The fleet coordinator registered a query's link claims (at launch,
    or after a granted relocation updated its placement).  Fields:
    ``query_class``, ``links`` (distinct cross-host links claimed).
``fleet.grant``
    The relocation-budget arbiter granted a proposed placement change.
    Fields: ``query_class``, ``moves`` (count of actors whose host
    changes), ``links`` (distinct link/host buckets the moveset
    charges), ``urgency``.
``fleet.deny``
    The arbiter denied a proposed placement change (token bucket or
    fairness reserve exhausted on some link/host).  Fields:
    ``query_class``, ``moves``, ``bottleneck`` (the ``"a|b"`` link or
    host bucket that ran dry), ``urgency``.
``fleet.rebalance``
    A granted relocation re-registered the query's claims; the
    coordinator's residual-bandwidth view changed.  Fields:
    ``query_class``, ``links_before``, ``links_after``.

Span events
-----------

``link.transfer``
    One wire transfer occupying both endpoints' NICs.  Fields:
    ``src_host``, ``dst_host``, ``kind``, ``wire_bytes``, ``bandwidth``
    (the observed application-level bandwidth fed to monitors), ``uid``.
``barrier.round``
    One full barrier change-over, from the PREPARE fan-out until every
    actor was committed.  Fields: ``plan_seq``.  ``dur`` is the stall
    :attr:`~repro.engine.metrics.RunMetrics.barrier_stall_seconds`
    accumulates.
``barrier.suspend``
    One server's suspension window between its PREPARE and COMMIT.
    Fields: ``actor``, ``plan_seq``.
``compute``
    An operator composing its inputs.  Fields: ``actor``, ``host``,
    ``iteration``.

The ``query_id`` tag
--------------------

In a concurrent workload run (:mod:`repro.workload`) every event that is
attributable to one query additionally carries a ``query_id`` field: the
per-query engine components emit through a
:class:`~repro.obs.tracer.ScopedTracer`, and the shared network/monitor
layers copy the tag from the message or transfer that triggered the
event.  Events of shared machinery — monitoring estimates answered from
a host cache, fault-plan timeline boundaries, frame records — stay
untagged.  Single-query runs through
:func:`repro.engine.simulation.run_simulation` never set the field, so
their traces are byte-identical to pre-workload ones.  Use
:func:`repro.obs.summary.query_records` to slice one query's replayable
view out of a shared trace.
"""

from __future__ import annotations

MESSAGE_SEND = "message.send"
MESSAGE_RECV = "message.recv"
MESSAGE_FORWARD = "message.forward"
LINK_TRANSFER = "link.transfer"
RELOCATION = "relocation"
BARRIER_ROUND = "barrier.round"
BARRIER_SUSPEND = "barrier.suspend"
PLANNER_RUN = "planner.run"
PLANNER_SEARCH = "planner.search"
PLACEMENT_INSTALL = "placement.install"
MONITOR_ESTIMATE = "monitor.estimate"
MONITOR_PASSIVE = "monitor.passive"
MONITOR_PROBE = "monitor.probe"
MONITOR_PROBE_RESULT = "monitor.probe_result"
MONITOR_PIGGYBACK = "monitor.piggyback"
COMPUTE = "compute"
ARRIVAL = "arrival"
RUN_META = "run.meta"
RUN_END = "run.end"
NET_RETRANSMIT = "net.retransmit"
NET_DROP = "net.drop"
NET_ABANDON = "net.abandon"
RELOCATION_ABORT = "relocation.abort"
FAULT_LINK_DOWN = "fault.link_down"
FAULT_LINK_UP = "fault.link_up"
FAULT_HOST_DOWN = "fault.host_down"
FAULT_HOST_UP = "fault.host_up"
MONITOR_PROBE_TIMEOUT = "monitor.probe_timeout"
PLANNER_FALLBACK = "planner.fallback"
QUERY_SHED = "query.shed"
QUERY_QUEUED = "query.queued"
QUERY_DEADLINE_ABORT = "query.deadline_abort"
QUERY_RETRY = "query.retry"
RETRY_BUDGET_EXHAUSTED = "retry.budget_exhausted"
BREAKER_OPEN = "breaker.open"
BREAKER_CLOSE = "breaker.close"
FLEET_CLAIM = "fleet.claim"
FLEET_GRANT = "fleet.grant"
FLEET_DENY = "fleet.deny"
FLEET_REBALANCE = "fleet.rebalance"

#: Event type -> "point" | "span".  Exporters use this to pick the Chrome
#: ``trace_event`` phase; anything absent defaults to "point".
EVENT_KINDS: dict[str, str] = {
    MESSAGE_SEND: "point",
    MESSAGE_RECV: "point",
    MESSAGE_FORWARD: "point",
    LINK_TRANSFER: "span",
    RELOCATION: "point",
    BARRIER_ROUND: "span",
    BARRIER_SUSPEND: "span",
    PLANNER_RUN: "point",
    PLANNER_SEARCH: "point",
    PLACEMENT_INSTALL: "point",
    MONITOR_ESTIMATE: "point",
    MONITOR_PASSIVE: "point",
    MONITOR_PROBE: "point",
    MONITOR_PROBE_RESULT: "point",
    MONITOR_PIGGYBACK: "point",
    COMPUTE: "span",
    ARRIVAL: "point",
    RUN_META: "point",
    RUN_END: "point",
    NET_RETRANSMIT: "point",
    NET_DROP: "point",
    NET_ABANDON: "point",
    RELOCATION_ABORT: "point",
    FAULT_LINK_DOWN: "point",
    FAULT_LINK_UP: "point",
    FAULT_HOST_DOWN: "point",
    FAULT_HOST_UP: "point",
    MONITOR_PROBE_TIMEOUT: "point",
    PLANNER_FALLBACK: "point",
    QUERY_SHED: "point",
    QUERY_QUEUED: "point",
    QUERY_DEADLINE_ABORT: "point",
    QUERY_RETRY: "point",
    RETRY_BUDGET_EXHAUSTED: "point",
    BREAKER_OPEN: "point",
    BREAKER_CLOSE: "point",
    FLEET_CLAIM: "point",
    FLEET_GRANT: "point",
    FLEET_DENY: "point",
    FLEET_REBALANCE: "point",
}

SPAN_EVENTS = frozenset(k for k, v in EVENT_KINDS.items() if v == "span")


def is_span(event_type: str) -> bool:
    """True if ``event_type`` is a span (has a duration)."""
    return event_type in SPAN_EVENTS
