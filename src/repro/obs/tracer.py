"""The tracer: an in-memory event bus with counters and histograms.

Two implementations share one interface:

* :class:`Tracer` — records everything; hand one to
  :func:`repro.engine.simulation.run_simulation` (or ``repro run
  --trace``) and export with :mod:`repro.obs.exporters`.
* :class:`NullTracer` — the default.  ``enabled`` is False and every
  method is a no-op, so instrumentation sites can guard their payload
  construction with ``if tracer.enabled:`` and cost nothing when tracing
  is off.  :data:`NULL_TRACER` is the shared singleton.

Events are plain dicts (see :mod:`repro.obs.events` for the taxonomy);
counters are monotonically increasing integers/floats; histograms collect
raw float observations and summarize on export.
"""

from __future__ import annotations

import math
from typing import Any, Optional


class Tracer:
    """Recording tracer: typed span/point events, counters, histograms."""

    __slots__ = ("events", "counters", "meta", "_histograms")

    #: Instrumentation sites test this before building event payloads.
    enabled = True

    def __init__(self) -> None:
        #: Chronological event records (dicts with ``type`` and ``t``).
        self.events: list[dict[str, Any]] = []
        #: Monotonic counters, e.g. ``sim.events``.
        self.counters: dict[str, float] = {}
        #: Free-form run metadata (exported in the JSONL header).
        self.meta: dict[str, Any] = {}
        self._histograms: dict[str, list[float]] = {}

    # -- events -------------------------------------------------------------
    def emit(self, event_type: str, t: float, **fields: Any) -> None:
        """Record a point event at simulation time ``t``."""
        self.events.append({"type": event_type, "t": t, **fields})

    def span(
        self, event_type: str, start: float, end: float, **fields: Any
    ) -> None:
        """Record a span event covering ``[start, end]``."""
        self.events.append(
            {"type": event_type, "t": start, "dur": end - start, **fields}
        )

    # -- counters & histograms ---------------------------------------------
    def incr(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        self._histograms.setdefault(name, []).append(value)

    def histogram_summary(self) -> dict[str, dict[str, float]]:
        """Per-histogram count/min/max/mean/p50/p95."""
        summary: dict[str, dict[str, float]] = {}
        for name, values in self._histograms.items():
            ordered = sorted(values)
            n = len(ordered)
            summary[name] = {
                "count": n,
                "min": ordered[0],
                "max": ordered[-1],
                "mean": math.fsum(ordered) / n,
                "p50": ordered[(n - 1) // 2],
                "p95": ordered[min(n - 1, math.ceil(0.95 * n) - 1)],
            }
        return summary

    # -- kernel hook --------------------------------------------------------
    def kernel_hook(self, now: float, event: Any) -> None:
        """Per-step hook for :class:`repro.sim.Environment`.

        Counts processed calendar events overall and by event class —
        cheap enough to run on every step of a *traced* run, and never
        installed on an untraced one.
        """
        counters = self.counters
        counters["sim.events"] = counters.get("sim.events", 0) + 1
        key = "sim.events." + type(event).__name__
        counters[key] = counters.get(key, 0) + 1


class NullTracer:
    """The do-nothing default tracer.

    ``enabled`` is False; hot paths guard with ``if tracer.enabled:`` and
    skip payload construction entirely, so an untraced run pays only that
    one attribute test per instrumented site.
    """

    __slots__ = ()

    enabled = False

    def emit(self, event_type: str, t: float, **fields: Any) -> None:
        pass

    def span(
        self, event_type: str, start: float, end: float, **fields: Any
    ) -> None:
        pass

    def incr(self, name: str, value: float = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def histogram_summary(self) -> dict[str, dict[str, float]]:
        return {}

    def kernel_hook(self, now: float, event: Any) -> None:
        pass


class ScopedTracer:
    """A view of another tracer that stamps fixed fields on every event.

    The workload engine hands each query's runtime a
    ``ScopedTracer(shared, query_id=...)`` so every event the query emits
    carries its ``query_id`` while all queries still share one
    chronological event stream.  Counters, histograms, metadata and the
    kernel hook delegate to the wrapped tracer unscoped.

    ``enabled`` is snapshotted from the wrapped tracer at construction,
    so the ``if tracer.enabled:`` zero-cost-off guards keep working: a
    scoped view of the :data:`NULL_TRACER` is itself disabled.
    """

    __slots__ = ("_inner", "_fields", "enabled")

    def __init__(self, inner: "Tracer | NullTracer | ScopedTracer", **fields: Any) -> None:
        self._inner = inner
        self._fields = fields
        self.enabled = inner.enabled

    def emit(self, event_type: str, t: float, **fields: Any) -> None:
        self._inner.emit(event_type, t, **{**self._fields, **fields})

    def span(
        self, event_type: str, start: float, end: float, **fields: Any
    ) -> None:
        self._inner.span(event_type, start, end, **{**self._fields, **fields})

    def incr(self, name: str, value: float = 1) -> None:
        self._inner.incr(name, value)

    def observe(self, name: str, value: float) -> None:
        self._inner.observe(name, value)

    def histogram_summary(self) -> dict[str, dict[str, float]]:
        return self._inner.histogram_summary()

    def kernel_hook(self, now: float, event: Any) -> None:
        self._inner.kernel_hook(now, event)

    @property
    def meta(self) -> dict[str, Any]:
        """The wrapped tracer's (shared) run metadata."""
        return getattr(self._inner, "meta", {})

    @property
    def bound_fields(self) -> dict[str, Any]:
        """The fields this view stamps onto every event."""
        return dict(self._fields)


#: Shared no-op tracer: the default everywhere a tracer is accepted.
NULL_TRACER = NullTracer()


def ensure_tracer(tracer: "Optional[Tracer | NullTracer]") -> "Tracer | NullTracer":
    """``tracer`` if given, else the shared :data:`NULL_TRACER`."""
    return NULL_TRACER if tracer is None else tracer
