"""repro.obs — structured run-trace observability.

A zero-cost-when-disabled tracing subsystem: hand a :class:`Tracer` to
:func:`repro.engine.simulation.run_simulation` (or pass ``--trace`` on
the CLI) and every hot seam of the stack — DES kernel, network links,
actors, controllers, monitors and planners — records typed span/point
events plus counters and histograms.  Export as JSONL or a Chrome
``trace_event`` file (Perfetto-loadable), summarize with ``repro
trace``, or replay the aggregates via ``RunMetrics.from_trace``.

The default is :data:`NULL_TRACER`, whose methods are no-ops and whose
``enabled`` is False, so untraced runs pay a single attribute test per
instrumented site.

For runs too long to buffer in memory, :class:`StreamingTracer` spools
events to rotating, size/age-budgeted JSONL segments
(:class:`RotatingTraceWriter`) that :func:`read_segments` replays
lazily — see :mod:`repro.obs.rotating`.
"""

from repro.obs import events
from repro.obs.events import EVENT_KINDS, SPAN_EVENTS, is_span
from repro.obs.exporters import (
    TRACE_SCHEMA,
    events_only,
    read_jsonl,
    to_chrome,
    trace_counters,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.rotating import (
    SEGMENT_HEADER,
    RotatingTraceWriter,
    StreamingTracer,
    read_segments,
    segment_paths,
)
from repro.obs.summary import (
    TraceSummary,
    format_trace_summary,
    query_records,
    replay_aggregates,
    summarize_records,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    ScopedTracer,
    Tracer,
    ensure_tracer,
)

__all__ = [
    "events",
    "EVENT_KINDS",
    "SPAN_EVENTS",
    "is_span",
    "TRACE_SCHEMA",
    "events_only",
    "read_jsonl",
    "to_chrome",
    "trace_counters",
    "write_chrome_trace",
    "write_jsonl",
    "SEGMENT_HEADER",
    "RotatingTraceWriter",
    "StreamingTracer",
    "read_segments",
    "segment_paths",
    "TraceSummary",
    "format_trace_summary",
    "query_records",
    "replay_aggregates",
    "summarize_records",
    "NULL_TRACER",
    "NullTracer",
    "ScopedTracer",
    "Tracer",
    "ensure_tracer",
]
