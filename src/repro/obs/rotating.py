"""Bounded-memory tracing: rotating JSONL segments and a streaming tracer.

A buffered :class:`~repro.obs.tracer.Tracer` holds every event in memory
until :func:`~repro.obs.exporters.write_jsonl` archives it — fine for one
query, unworkable for a day-long open-loop fleet.  This module bounds
both memory and disk:

* :class:`RotatingTraceWriter` spools records straight to
  ``segment-NNNNNN.jsonl`` files in a directory, rotating when a segment
  reaches ``max_segment_bytes`` and pruning the *oldest* segments to
  honor ``max_segments`` and/or ``max_age_seconds`` (simulation-time age,
  measured between segment timestamps).  Every segment opens with a
  ``trace.segment`` header carrying the run meta, so any surviving
  suffix of segments is independently replayable.
* :class:`StreamingTracer` is a drop-in :class:`Tracer` that forwards
  events to a writer instead of buffering them (counters, histograms and
  meta stay in memory — they are tiny).
* :func:`read_segments` streams the surviving records back in order,
  lazily, for :func:`repro.workload.fleet_from_trace`'s single-pass
  streaming replay.

A trace whose early segments were pruned replays the *observable
suffix*: queries whose full lifecycle survived are summarized; orphan
``run.end`` records are skipped.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional, Union

from repro.obs.exporters import TRACE_SCHEMA
from repro.obs.tracer import Tracer

PathLike = Union[str, Path]

#: Per-segment header record type (also accepted as a trace header by
#: the workload replay's mode detection).
SEGMENT_HEADER = "trace.segment"

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"

#: Default rotation point: 8 MiB per segment.
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024


class _Segment:
    __slots__ = ("index", "path", "bytes", "first_t", "last_t")

    def __init__(self, index: int, path: Path) -> None:
        self.index = index
        self.path = path
        self.bytes = 0
        self.first_t: Optional[float] = None
        self.last_t: Optional[float] = None


class RotatingTraceWriter:
    """Write trace records to rotating, budgeted JSONL segments."""

    def __init__(
        self,
        directory: PathLike,
        *,
        max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        max_segments: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        meta: Optional[dict[str, Any]] = None,
    ) -> None:
        if max_segment_bytes < 1:
            raise ValueError("max_segment_bytes must be >= 1")
        if max_segments is not None and max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        if max_age_seconds is not None and max_age_seconds <= 0:
            raise ValueError("max_age_seconds must be > 0")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = int(max_segment_bytes)
        self.max_segments = max_segments
        self.max_age_seconds = max_age_seconds
        #: Run metadata embedded in every segment header.  Held by
        #: reference: a :class:`StreamingTracer` shares its ``meta`` dict
        #: so later updates land in subsequently opened segments.
        self.meta: dict[str, Any] = meta if meta is not None else {}
        self.records_written = 0
        self.segments_dropped = 0
        self._segments: list[_Segment] = []
        self._fh = None
        self._closed = False

    # -- segments -------------------------------------------------------
    def _open_segment(self) -> None:
        index = self._segments[-1].index + 1 if self._segments else 0
        path = self.directory / f"{_SEGMENT_PREFIX}{index:06d}{_SEGMENT_SUFFIX}"
        segment = _Segment(index, path)
        self._fh = open(path, "w")
        self._segments.append(segment)
        header = {
            "type": SEGMENT_HEADER,
            "schema": TRACE_SCHEMA,
            "segment": index,
            "meta": dict(self.meta),
        }
        self._write_line(header, segment)

    def _write_line(self, record: dict[str, Any], segment: _Segment) -> None:
        line = json.dumps(record) + "\n"
        self._fh.write(line)
        segment.bytes += len(line)

    def _rotate(self) -> None:
        if self._fh is not None:
            self._fh.close()
        self._open_segment()
        self._enforce_budget()

    def _enforce_budget(self) -> None:
        def drop_oldest() -> None:
            oldest = self._segments.pop(0)
            oldest.path.unlink(missing_ok=True)
            self.segments_dropped += 1

        if self.max_segments is not None:
            while len(self._segments) > self.max_segments:
                drop_oldest()
        if self.max_age_seconds is not None:
            newest = next(
                (
                    s.last_t
                    for s in reversed(self._segments)
                    if s.last_t is not None
                ),
                None,
            )
            while (
                newest is not None
                and len(self._segments) > 1
                and self._segments[0].last_t is not None
                and newest - self._segments[0].last_t > self.max_age_seconds
            ):
                drop_oldest()

    # -- the write path -------------------------------------------------
    def write(self, record: dict[str, Any]) -> None:
        """Append one record, rotating/pruning as budgets require."""
        if self._closed:
            raise ValueError("writer is closed")
        if (
            self._fh is None
            or self._segments[-1].bytes >= self.max_segment_bytes
        ):
            self._rotate()
        segment = self._segments[-1]
        self._write_line(record, segment)
        t = record.get("t")
        if t is not None:
            if segment.first_t is None:
                segment.first_t = t
            segment.last_t = t
        self.records_written += 1

    def close(
        self,
        counters: Optional[dict[str, float]] = None,
        histograms: Optional[dict[str, Any]] = None,
    ) -> None:
        """Write a ``trace.footer`` into the last segment and close."""
        if self._closed:
            return
        if self._fh is None:
            self._open_segment()
        footer: dict[str, Any] = {"type": "trace.footer"}
        if counters is not None:
            footer["counters"] = counters
        if histograms is not None:
            footer["histograms"] = histograms
        self._write_line(footer, self._segments[-1])
        self._fh.close()
        self._fh = None
        self._closed = True

    @property
    def segment_paths(self) -> list[Path]:
        """The surviving segment files, oldest first."""
        return [segment.path for segment in self._segments]

    def __enter__(self) -> "RotatingTraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StreamingTracer(Tracer):
    """A tracer that spools events to a :class:`RotatingTraceWriter`.

    Drop-in for :class:`~repro.obs.tracer.Tracer` anywhere a tracer is
    accepted (the workload engine, ``ScopedTracer`` views, the kernel
    hook): events go straight to disk, ``events`` stays empty, and
    counters/histograms/meta remain in memory.  The writer shares this
    tracer's ``meta`` dict, so engine-set metadata appears in every
    segment header.  Call :meth:`close` (or use as a context manager) to
    write the footer.
    """

    __slots__ = ("writer",)

    def __init__(
        self,
        writer: Union[RotatingTraceWriter, PathLike],
        **writer_kwargs: Any,
    ) -> None:
        super().__init__()
        if isinstance(writer, RotatingTraceWriter):
            self.writer = writer
        else:
            self.writer = RotatingTraceWriter(writer, **writer_kwargs)
        self.writer.meta = self.meta

    def emit(self, event_type: str, t: float, **fields: Any) -> None:
        self.writer.write({"type": event_type, "t": t, **fields})

    def span(
        self, event_type: str, start: float, end: float, **fields: Any
    ) -> None:
        self.writer.write(
            {"type": event_type, "t": start, "dur": end - start, **fields}
        )

    def close(self) -> None:
        self.writer.close(
            counters=self.counters, histograms=self.histogram_summary()
        )

    def __enter__(self) -> "StreamingTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def segment_paths(directory: PathLike) -> list[Path]:
    """The segment files under ``directory``, in index order."""

    def index_of(path: Path) -> int:
        stem = path.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
        return int(stem)

    return sorted(
        Path(directory).glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"),
        key=index_of,
    )


def read_segments(directory: PathLike) -> Iterator[dict[str, Any]]:
    """Stream every record of the surviving segments, oldest first.

    Lazy — one line is parsed at a time, so a day-long trace replays in
    constant memory.  Feed the result to
    :func:`repro.workload.fleet_from_trace`, which recognizes the
    per-segment headers.
    """
    for path in segment_paths(directory):
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield json.loads(line)
