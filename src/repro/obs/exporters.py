"""Trace exporters: JSONL archives and Chrome ``trace_event`` files.

JSONL layout (one JSON object per line):

* a ``trace.header`` record (``schema``, free-form ``meta``);
* the event records, chronologically, exactly as the tracer emitted them;
* a ``trace.footer`` record carrying the tracer's counters and histogram
  summaries.

The Chrome exporter converts the same records into the `trace_event
format <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
(the JSON flavour ``chrome://tracing`` and `Perfetto
<https://ui.perfetto.dev>`_ open directly): span events become complete
(``"ph": "X"``) events, point events become instants (``"ph": "i"``), and
each simulated host gets its own named track.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Iterable, Union

from repro.obs.events import is_span
from repro.obs.tracer import Tracer

PathLike = Union[str, Path]

#: Version of the JSONL trace layout.
TRACE_SCHEMA = 1

#: Record types that frame a JSONL archive (not simulation events).
FRAME_TYPES = ("trace.header", "trace.footer")


# -- JSONL ------------------------------------------------------------------
def write_jsonl(tracer: Tracer, path: PathLike) -> int:
    """Archive a tracer's events as JSONL; returns the record count."""
    records = [
        {"type": "trace.header", "schema": TRACE_SCHEMA, "meta": tracer.meta},
        *tracer.events,
        {
            "type": "trace.footer",
            "counters": tracer.counters,
            "histograms": tracer.histogram_summary(),
        },
    ]
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
    return len(records)


def read_jsonl(path: PathLike) -> list[dict[str, Any]]:
    """Load every record (header, events, footer) of a JSONL trace."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def events_only(records: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Drop the header/footer frame records, keeping simulation events."""
    return [r for r in records if r.get("type") not in FRAME_TYPES]


def trace_counters(records: Iterable[dict[str, Any]]) -> dict[str, float]:
    """The footer's counters (empty dict if the trace has no footer)."""
    for record in records:
        if record.get("type") == "trace.footer":
            return dict(record.get("counters", {}))
    return {}


# -- Chrome trace_event -----------------------------------------------------
_TRACK_FIELDS = ("host", "src_host", "viewer", "actor", "algorithm")


def _track_of(event: dict[str, Any]) -> str:
    """The display track (Chrome ``tid``) an event belongs to."""
    for field in _TRACK_FIELDS:
        value = event.get(field)
        if value:
            return str(value)
    return "run"


def _json_safe(value: Any) -> Any:
    """Strict-JSON stand-in: Perfetto rejects Infinity/NaN literals."""
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    return value


def to_chrome(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Convert trace records to a Chrome ``trace_event`` JSON object."""
    events = events_only(list(records))
    tracks: dict[str, int] = {}
    trace_events: list[dict[str, Any]] = []

    for event in events:
        etype = event["type"]
        track = _track_of(event)
        tid = tracks.setdefault(track, len(tracks) + 1)
        args = {
            k: _json_safe(v)
            for k, v in event.items()
            if k not in ("type", "t", "dur")
        }
        ts = float(event["t"]) * 1e6  # trace_event wants microseconds
        out: dict[str, Any] = {
            "name": etype,
            "cat": etype.split(".", 1)[0],
            "pid": 1,
            "tid": tid,
            "ts": ts,
            "args": args,
        }
        if is_span(etype):
            out["ph"] = "X"
            out["dur"] = float(event.get("dur", 0.0)) * 1e6
        else:
            out["ph"] = "i"
            out["s"] = "t"  # instant scoped to its thread/track
        trace_events.append(out)

    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro simulation"},
        }
    ]
    for track, tid in sorted(tracks.items(), key=lambda kv: kv[1]):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
        )
    counters = trace_counters(records)
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"counters": counters} if counters else {},
    }


def write_chrome_trace(
    source: "Tracer | Iterable[dict[str, Any]]", path: PathLike
) -> int:
    """Write a Chrome/Perfetto-loadable trace file.

    ``source`` may be a :class:`Tracer` or the records returned by
    :func:`read_jsonl`.  Returns the number of ``traceEvents`` written.
    """
    if isinstance(source, Tracer):
        records: list[dict[str, Any]] = [
            *source.events,
            {"type": "trace.footer", "counters": source.counters},
        ]
    else:
        records = list(source)
    payload = to_chrome(records)
    Path(path).write_text(json.dumps(payload))
    return len(payload["traceEvents"])
