"""Trace analysis: human-readable summaries and metric replay.

Two consumers share this module:

* ``repro trace`` renders :class:`TraceSummary` — the relocation
  timeline, per-link traffic, barrier-stall breakdown, planner and
  monitor activity of a recorded run.
* :meth:`repro.engine.metrics.RunMetrics.from_trace` replays a trace's
  events through :func:`replay_aggregates` to rebuild the aggregate
  counters independently of the live run.  Because every trace event is
  emitted at the exact code point where the corresponding counter
  increments, the replayed aggregates match the live ``RunMetrics``
  *exactly* (including floating-point accumulation order).

To keep :mod:`repro.obs` importable without the engine, everything here
returns plain dicts/dataclasses; ``from_trace`` does the final
conversion on the engine side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs import events as ev
from repro.obs.exporters import events_only


def query_records(
    records: Iterable[dict[str, Any]], query_id: str
) -> list[dict[str, Any]]:
    """One query's slice of a concurrent-workload trace.

    Keeps every record that is tagged with ``query_id`` *or* carries no
    ``query_id`` at all.  Untagged records are shared context — frame
    records, monitoring estimates, fault-timeline boundaries — that each
    query's replay must still see (e.g. ``fault.host_up`` increments
    ``host_downtime_seconds`` for every query of the run, exactly as the
    live :meth:`~repro.engine.runtime.Runtime.finalize_metrics` copies
    the shared injector's downtime into every query's metrics).

    Feeding the slice to :func:`replay_aggregates` (or
    :meth:`repro.engine.metrics.RunMetrics.from_trace`) rebuilds that
    query's ``RunMetrics`` bit-exactly.
    """
    return [
        record
        for record in records
        if record.get("query_id", query_id) == query_id
    ]


def replay_aggregates(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Rebuild :class:`~repro.engine.metrics.RunMetrics` fields from a trace.

    Accepts the full record list of a JSONL trace (header/footer are
    ignored).  Floats are accumulated in event order with plain ``+=``,
    mirroring how the live counters accrue, so the result is
    bit-identical to the run that produced the trace.
    """
    agg: dict[str, Any] = {
        "algorithm": "",
        "num_servers": 0,
        "images": 0,
        "arrival_times": [],
        "relocations": 0,
        "relocation_events": [],
        "planner_runs": 0,
        "placements_installed": 0,
        "barrier_rounds": 0,
        "barrier_stall_seconds": 0.0,
        "probes_sent": 0,
        "probe_bytes": 0.0,
        "forwarded_messages": 0,
        "bytes_on_wire": 0.0,
        "truncated": False,
        "transfers": 0,
        "local_deliveries": 0,
        "passive_measurements": 0,
        "piggyback_entries_merged": 0,
        "retransmissions": 0,
        "dropped_bytes": 0.0,
        "abandoned_messages": 0,
        "aborted_relocations": 0,
        "host_downtime_seconds": 0.0,
        "probe_timeouts": 0,
        "planner_fallbacks": 0,
        "planner_rounds": 0,
        "planner_candidates": 0,
        "planner_links_queried": 0,
    }
    for event in events_only(records):
        etype = event["type"]
        if etype == ev.LINK_TRANSFER:
            agg["transfers"] += 1
            agg["bytes_on_wire"] += event["wire_bytes"]
        elif etype == ev.MESSAGE_SEND:
            if event.get("transport") == "local":
                agg["local_deliveries"] += 1
        elif etype == ev.MESSAGE_FORWARD:
            agg["forwarded_messages"] += 1
        elif etype == ev.ARRIVAL:
            agg["arrival_times"].append(event["t"])
        elif etype == ev.RELOCATION:
            agg["relocations"] += 1
            agg["relocation_events"].append(
                {
                    "time": event["t"],
                    "actor": event["actor"],
                    "old_host": event["old_host"],
                    "new_host": event["new_host"],
                }
            )
        elif etype == ev.PLANNER_RUN:
            agg["planner_runs"] += 1
        elif etype == ev.PLANNER_SEARCH:
            agg["planner_rounds"] += event.get("rounds", 0)
            agg["planner_candidates"] += event.get("candidates", 0)
            agg["planner_links_queried"] += event.get("links", 0)
        elif etype == ev.PLACEMENT_INSTALL:
            agg["placements_installed"] += 1
        elif etype == ev.BARRIER_ROUND:
            agg["barrier_rounds"] += 1
            agg["barrier_stall_seconds"] += event["dur"]
        elif etype == ev.MONITOR_PROBE:
            agg["probes_sent"] += 1
            agg["probe_bytes"] += event["bytes"]
        elif etype == ev.MONITOR_PASSIVE:
            agg["passive_measurements"] += 1
        elif etype == ev.MONITOR_PIGGYBACK:
            agg["piggyback_entries_merged"] += event["merged"]
        elif etype == ev.NET_RETRANSMIT:
            agg["retransmissions"] += 1
        elif etype == ev.NET_DROP:
            agg["dropped_bytes"] += event["bytes"]
        elif etype == ev.NET_ABANDON:
            agg["abandoned_messages"] += 1
        elif etype == ev.RELOCATION_ABORT:
            agg["aborted_relocations"] += 1
        elif etype == ev.FAULT_HOST_UP:
            agg["host_downtime_seconds"] += event["downtime"]
        elif etype == ev.MONITOR_PROBE_TIMEOUT:
            agg["probe_timeouts"] += 1
        elif etype == ev.PLANNER_FALLBACK:
            agg["planner_fallbacks"] += 1
        elif etype == ev.RUN_META:
            agg["algorithm"] = event["algorithm"]
            agg["num_servers"] = event["num_servers"]
            agg["images"] = event["images"]
        elif etype == ev.RUN_END:
            agg["truncated"] = event["truncated"]
    return agg


# -- human-readable summary -------------------------------------------------
@dataclass
class TraceSummary:
    """What ``repro trace`` reports about one recorded run."""

    meta: dict[str, Any] = field(default_factory=dict)
    #: (time, actor, old_host, new_host, state_bytes) in order.
    relocations: list[tuple[float, str, str, str, float]] = field(
        default_factory=list
    )
    #: (src_host, dst_host) -> [transfers, wire_bytes, busy_seconds].
    link_traffic: dict[tuple[str, str], list[float]] = field(
        default_factory=dict
    )
    #: (start, dur, plan_seq) per barrier round.
    barrier_rounds: list[tuple[float, float, int]] = field(
        default_factory=list
    )
    planner_runs: int = 0
    planner_searches: int = 0
    candidates_evaluated: int = 0
    #: estimate quality -> count ("fresh"/"stale"/"default").
    estimate_quality: dict[str, int] = field(default_factory=dict)
    probes_sent: int = 0
    forwarded: int = 0
    arrivals: int = 0
    completion_time: float = float("nan")
    truncated: bool = False
    counters: dict[str, float] = field(default_factory=dict)
    #: Resilience counters (non-zero only for fault-injected runs).
    retransmissions: int = 0
    dropped_bytes: float = 0.0
    abandoned_messages: int = 0
    aborted_relocations: int = 0
    probe_timeouts: int = 0
    planner_fallbacks: int = 0
    host_downtime_seconds: float = 0.0
    #: (time, event_type, detail) fault timeline in order.
    fault_timeline: list[tuple[float, str, str]] = field(default_factory=list)
    #: Trace record type -> count over the whole stream (header/footer
    #: excluded).  What the run actually spent its events on.
    event_histogram: dict[str, int] = field(default_factory=dict)

    @property
    def barrier_stall_seconds(self) -> float:
        return sum(dur for _, dur, _ in self.barrier_rounds)


def summarize_records(records: Iterable[dict[str, Any]]) -> TraceSummary:
    """Digest trace records into a :class:`TraceSummary`."""
    summary = TraceSummary()
    histogram = summary.event_histogram
    for record in records:
        etype = record.get("type")
        if etype is not None and not etype.startswith("trace."):
            histogram[etype] = histogram.get(etype, 0) + 1
        if etype == "trace.header":
            summary.meta = dict(record.get("meta", {}))
        elif etype == "trace.footer":
            summary.counters = dict(record.get("counters", {}))
        elif etype == ev.RUN_META:
            meta = {k: v for k, v in record.items() if k not in ("type", "t")}
            summary.meta.update(meta)
        elif etype == ev.RELOCATION:
            summary.relocations.append(
                (
                    record["t"],
                    record["actor"],
                    record["old_host"],
                    record["new_host"],
                    record.get("state_bytes", 0.0),
                )
            )
        elif etype == ev.LINK_TRANSFER:
            key = (record["src_host"], record["dst_host"])
            entry = summary.link_traffic.setdefault(key, [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += record["wire_bytes"]
            entry[2] += record.get("dur", 0.0)
        elif etype == ev.BARRIER_ROUND:
            summary.barrier_rounds.append(
                (record["t"], record["dur"], record.get("plan_seq", -1))
            )
        elif etype == ev.PLANNER_RUN:
            summary.planner_runs += 1
        elif etype == ev.PLANNER_SEARCH:
            summary.planner_searches += 1
            summary.candidates_evaluated += record.get("candidates", 0)
        elif etype == ev.MONITOR_ESTIMATE:
            quality = record.get("quality", "?")
            summary.estimate_quality[quality] = (
                summary.estimate_quality.get(quality, 0) + 1
            )
        elif etype == ev.MONITOR_PROBE:
            summary.probes_sent += 1
        elif etype == ev.MESSAGE_FORWARD:
            summary.forwarded += 1
        elif etype == ev.ARRIVAL:
            summary.arrivals += 1
            summary.completion_time = record["t"]
        elif etype == ev.NET_RETRANSMIT:
            summary.retransmissions += 1
        elif etype == ev.NET_DROP:
            summary.dropped_bytes += record.get("bytes", 0.0)
        elif etype == ev.NET_ABANDON:
            summary.abandoned_messages += 1
        elif etype == ev.RELOCATION_ABORT:
            summary.aborted_relocations += 1
        elif etype == ev.MONITOR_PROBE_TIMEOUT:
            summary.probe_timeouts += 1
        elif etype == ev.PLANNER_FALLBACK:
            summary.planner_fallbacks += 1
        elif etype in (ev.FAULT_LINK_DOWN, ev.FAULT_LINK_UP):
            summary.fault_timeline.append(
                (record["t"], etype, f"{record.get('a')}~{record.get('b')}")
            )
        elif etype in (ev.FAULT_HOST_DOWN, ev.FAULT_HOST_UP):
            if etype == ev.FAULT_HOST_UP:
                summary.host_downtime_seconds += record.get("downtime", 0.0)
            summary.fault_timeline.append(
                (record["t"], etype, str(record.get("host")))
            )
        elif etype == ev.RUN_END:
            summary.truncated = record.get("truncated", False)
            summary.completion_time = record.get(
                "completion_time", summary.completion_time
            )
    return summary


def format_trace_summary(summary: TraceSummary, max_rows: int = 20) -> str:
    """Render a :class:`TraceSummary` as the ``repro trace`` report."""
    lines: list[str] = []
    meta = summary.meta
    if meta:
        head = ", ".join(
            f"{k}={meta[k]}"
            for k in ("algorithm", "num_servers", "images", "tree_shape")
            if k in meta
        )
        lines.append(f"run: {head}" if head else f"run: {meta}")
    lines.append(
        f"arrivals: {summary.arrivals}"
        f" (completion {summary.completion_time:.1f}s"
        f"{', TRUNCATED' if summary.truncated else ''})"
    )

    lines.append("")
    lines.append(f"relocation timeline ({len(summary.relocations)} moves):")
    shown = summary.relocations[:max_rows]
    for t, actor, old, new, state_bytes in shown:
        lines.append(
            f"  {t:10.1f}s  {actor:<10} {old} -> {new}"
            f"  ({state_bytes / 1024.0:.0f} KiB state)"
        )
    if len(summary.relocations) > len(shown):
        lines.append(f"  ... {len(summary.relocations) - len(shown)} more")
    if not summary.relocations:
        lines.append("  (none)")

    lines.append("")
    lines.append(f"per-link traffic ({len(summary.link_traffic)} links):")
    ranked = sorted(
        summary.link_traffic.items(), key=lambda kv: kv[1][1], reverse=True
    )
    for (src, dst), (count, nbytes, busy) in ranked[:max_rows]:
        lines.append(
            f"  {src} -> {dst}: {int(count)} transfers,"
            f" {nbytes / (1024.0 * 1024.0):.2f} MiB, {busy:.1f}s busy"
        )
    if len(ranked) > max_rows:
        lines.append(f"  ... {len(ranked) - max_rows} more")
    if not ranked:
        lines.append("  (none)")

    lines.append("")
    lines.append(
        f"barrier: {len(summary.barrier_rounds)} rounds,"
        f" {summary.barrier_stall_seconds:.2f}s total stall"
    )
    for start, dur, plan_seq in summary.barrier_rounds[:max_rows]:
        lines.append(f"  {start:10.1f}s  plan #{plan_seq}: {dur:.2f}s stall")
    if len(summary.barrier_rounds) > max_rows:
        lines.append(
            f"  ... {len(summary.barrier_rounds) - max_rows} more"
        )

    lines.append("")
    lines.append(
        f"planner: {summary.planner_runs} runs,"
        f" {summary.planner_searches} searches,"
        f" {summary.candidates_evaluated} candidates evaluated"
    )
    quality = ", ".join(
        f"{k}={v}" for k, v in sorted(summary.estimate_quality.items())
    )
    lines.append(
        f"monitor: {summary.probes_sent} probes,"
        f" estimates [{quality or 'none'}]"
    )
    lines.append(f"forwarded messages: {summary.forwarded}")

    faulted = (
        summary.fault_timeline
        or summary.retransmissions
        or summary.dropped_bytes
        or summary.abandoned_messages
        or summary.aborted_relocations
        or summary.probe_timeouts
        or summary.planner_fallbacks
    )
    if faulted:
        lines.append("")
        lines.append(
            "resilience:"
            f" {summary.retransmissions} retransmissions,"
            f" {summary.dropped_bytes / 1024.0:.1f} KiB dropped,"
            f" {summary.abandoned_messages} abandoned,"
            f" {summary.aborted_relocations} aborted relocations,"
            f" {summary.probe_timeouts} probe timeouts,"
            f" {summary.planner_fallbacks} planner fallbacks,"
            f" {summary.host_downtime_seconds:.1f}s host downtime"
        )
        if summary.fault_timeline:
            lines.append(
                f"fault timeline ({len(summary.fault_timeline)} boundaries):"
            )
            for t, etype, detail in summary.fault_timeline[:max_rows]:
                lines.append(f"  {t:10.1f}s  {etype:<16} {detail}")
            if len(summary.fault_timeline) > max_rows:
                lines.append(
                    f"  ... {len(summary.fault_timeline) - max_rows} more"
                )

    if summary.event_histogram:
        total = sum(summary.event_histogram.values())
        lines.append("")
        lines.append(
            f"trace event histogram ({total} records,"
            f" {len(summary.event_histogram)} types):"
        )
        ranked_types = sorted(
            summary.event_histogram.items(), key=lambda kv: (-kv[1], kv[0])
        )
        for etype, count in ranked_types[:max_rows]:
            lines.append(f"  {etype:<24} {count}")
        if len(ranked_types) > max_rows:
            lines.append(f"  ... {len(ranked_types) - max_rows} more types")

    if summary.counters:
        sim_events = summary.counters.get("sim.events")
        if sim_events is not None:
            lines.append("")
            lines.append(f"kernel events processed: {int(sim_events)}")
            per_type = sorted(
                (key, value)
                for key, value in summary.counters.items()
                if key.startswith("sim.events.")
            )
            for key, value in per_type:
                lines.append(
                    f"  {key.removeprefix('sim.events.'):<24} {int(value)}"
                )
    return "\n".join(lines)
