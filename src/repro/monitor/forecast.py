"""NWS-style bandwidth forecasting.

The paper points at the Network Weather Service [19] for monitoring
support.  NWS's defining idea is that a *forecast* beats the raw last
measurement: it runs a bank of simple predictors over the measurement
history and, for each new prediction, uses whichever predictor has been
most accurate so far.

This module implements that scheme.  It is optional —
``MonitoringConfig(forecast="adaptive")`` routes every estimate through a
per-pair :class:`AdaptiveForecaster` — and ablated in the benchmarks;
the paper's own model (raw cached measurements) remains the default.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional


class Predictor:
    """Base class: one-step-ahead bandwidth prediction."""

    name = "base"

    def update(self, value: float) -> None:
        """Feed one measurement (called oldest-first)."""
        raise NotImplementedError

    def predict(self) -> Optional[float]:
        """Predicted next value, or None before any data."""
        raise NotImplementedError


class LastValue(Predictor):
    """Predict the most recent measurement (the paper's implicit model)."""

    name = "last"

    def __init__(self) -> None:
        self._last: Optional[float] = None

    def update(self, value: float) -> None:
        self._last = value

    def predict(self) -> Optional[float]:
        return self._last


class SlidingMean(Predictor):
    """Mean of the last ``window`` measurements."""

    name = "mean"

    def __init__(self, window: int = 8) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        self._values: Deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._values.append(value)

    def predict(self) -> Optional[float]:
        if not self._values:
            return None
        return sum(self._values) / len(self._values)


class SlidingMedian(Predictor):
    """Median of the last ``window`` measurements (robust to spikes)."""

    name = "median"

    def __init__(self, window: int = 8) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        self._values: Deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._values.append(value)

    def predict(self) -> Optional[float]:
        if not self._values:
            return None
        ordered = sorted(self._values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0


class Ewma(Predictor):
    """Exponentially weighted moving average."""

    name = "ewma"

    def __init__(self, alpha: float = 0.4) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
        self.alpha = alpha
        self._state: Optional[float] = None

    def update(self, value: float) -> None:
        if self._state is None:
            self._state = value
        else:
            self._state = self.alpha * value + (1 - self.alpha) * self._state

    def predict(self) -> Optional[float]:
        return self._state


def default_bank() -> list[Predictor]:
    """The NWS-flavoured predictor bank."""
    return [
        LastValue(),
        SlidingMean(window=4),
        SlidingMean(window=16),
        SlidingMedian(window=8),
        Ewma(alpha=0.25),
        Ewma(alpha=0.6),
    ]


class AdaptiveForecaster:
    """Best-of-bank forecasting (the NWS scheme).

    Every incoming measurement first scores each predictor on how well it
    would have predicted that measurement (squared relative error on the
    log scale, which treats over- and under-estimation symmetrically for
    a quantity spanning orders of magnitude), then updates the bank.  A
    prediction comes from the predictor with the lowest accumulated,
    exponentially decayed error.
    """

    def __init__(
        self,
        bank: Optional[list[Predictor]] = None,
        error_decay: float = 0.9,
    ) -> None:
        if not 0 < error_decay <= 1:
            raise ValueError(f"error_decay must be in (0, 1], got {error_decay!r}")
        self.bank = bank if bank is not None else default_bank()
        if not self.bank:
            raise ValueError("the predictor bank may not be empty")
        self.error_decay = error_decay
        self._errors = [0.0] * len(self.bank)
        self._scored = [0] * len(self.bank)

    def update(self, value: float) -> None:
        """Score the bank against ``value``, then absorb it."""
        if value <= 0:
            raise ValueError(f"bandwidth must be positive, got {value!r}")
        log_value = math.log(value)
        for index, predictor in enumerate(self.bank):
            prediction = predictor.predict()
            if prediction is not None and prediction > 0:
                error = (math.log(prediction) - log_value) ** 2
                self._errors[index] = (
                    self.error_decay * self._errors[index] + error
                )
                self._scored[index] += 1
            predictor.update(value)

    def predict(self) -> Optional[float]:
        """The current best predictor's forecast (None before any data)."""
        best_index = None
        best_error = math.inf
        for index, predictor in enumerate(self.bank):
            if predictor.predict() is None:
                continue
            # Unscored predictors rank behind any scored one.
            error = self._errors[index] if self._scored[index] else math.inf
            if error < best_error or best_index is None:
                best_error = error
                best_index = index
        if best_index is None:
            return None
        return self.bank[best_index].predict()

    @property
    def best_predictor_name(self) -> Optional[str]:
        """Name of the predictor a prediction would come from."""
        prediction = self.predict()
        if prediction is None:
            return None
        for index, predictor in enumerate(self.bank):
            if predictor.predict() == prediction:
                if self._scored[index] or len(self.bank) == 1:
                    return predictor.name
        # Fall back to the first matching forecast.
        for predictor in self.bank:
            if predictor.predict() == prediction:
                return predictor.name
        return None
