"""Bandwidth monitoring (paper §3 and §4).

The paper models an on-demand, user-level monitoring scheme (in the spirit
of Komodo / the Network Weather Service):

1. **Passive monitoring** — any message of at least ``S_thres`` (16 KB)
   bytes yields a bandwidth measurement known to *both* endpoints.
2. **Measurement cache** — each host caches measurements; entries time out
   after ``T_thres`` seconds (40 s in the main experiments, chosen from
   the ~2 min expected interval between >=10 % bandwidth changes).
3. **Piggybacking** — the most recent measurements that fit within 1 KB
   ride along on every outgoing message and are merged into the
   receiver's cache.
4. **Active probing** — a host can measure any pair on demand by asking
   the pair to exchange a probe message (16 KB, so passive monitoring
   records it); the placement algorithms use this to fill gaps before
   planning.

:class:`~repro.monitor.system.MonitoringSystem` wires all of this onto a
:class:`~repro.net.Network`.

Forecasting (NWS-style) lives in :mod:`repro.monitor.forecast`: a bank of
:class:`Predictor` strategies (:class:`LastValue`, :class:`SlidingMean`,
:class:`SlidingMedian`, :class:`Ewma`) raced per link by an
:class:`AdaptiveForecaster` that forwards whichever predictor currently
has the lowest decayed squared log error; :func:`default_bank` builds
the standard bank.
"""

from repro.monitor.cache import BandwidthCache, CacheEntry
from repro.monitor.forecast import (
    AdaptiveForecaster,
    Ewma,
    LastValue,
    Predictor,
    SlidingMean,
    SlidingMedian,
    default_bank,
)
from repro.monitor.piggyback import PIGGYBACK_BUDGET_BYTES, decode_piggyback, encode_piggyback
from repro.monitor.system import MonitoringConfig, MonitoringSystem

__all__ = [
    "AdaptiveForecaster",
    "BandwidthCache",
    "CacheEntry",
    "Ewma",
    "LastValue",
    "MonitoringConfig",
    "MonitoringSystem",
    "PIGGYBACK_BUDGET_BYTES",
    "Predictor",
    "SlidingMean",
    "SlidingMedian",
    "decode_piggyback",
    "default_bank",
    "encode_piggyback",
]
