"""Per-host bandwidth measurement caches with timeout semantics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.traces.study import pair_key


@dataclass
class CacheStats:
    """Lookup outcomes of one cache: fresh hits, stale hits, misses."""

    hits: int = 0
    stale: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.stale + self.misses


@dataclass(frozen=True)
class CacheEntry:
    """One bandwidth measurement for an unordered host pair."""

    pair: tuple[str, str]
    #: Measured application-level bandwidth, bytes/second.
    bandwidth: float
    #: Simulation time the measurement was taken.
    measured_at: float

    def age(self, now: float) -> float:
        """Seconds since the measurement was taken."""
        return now - self.measured_at


class BandwidthCache:
    """A host's cache of pairwise bandwidth measurements.

    ``lookup`` distinguishes *fresh* entries (younger than ``t_thres``)
    from stale ones; the placement algorithms may fall back to stale
    entries as a best guess but know they are stale.

    ``smoothing`` exponentially averages successive measurements of the
    same pair (NWS-style forecasting): the stored value is
    ``alpha * measured + (1 - alpha) * previous``.  ``smoothing=1``
    disables it (keep raw last measurements).
    """

    def __init__(self, t_thres: float = 40.0, smoothing: float = 1.0) -> None:
        if t_thres <= 0:
            raise ValueError(f"t_thres must be positive, got {t_thres!r}")
        if not 0 < smoothing <= 1:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing!r}")
        self.t_thres = t_thres
        self.smoothing = smoothing
        #: Smoothing only blends measurements taken close together; a new
        #: measurement replaces (rather than averages with) one older than
        #: this horizon, so stale history cannot drag estimates around.
        self.smoothing_horizon = 4.0 * t_thres
        self._entries: dict[tuple[str, str], CacheEntry] = {}
        #: Content version: bumped on every mutation of ``_entries``.  The
        #: piggyback layer memoizes encode/decode work against it — any
        #: two observations of the same version saw identical contents.
        self._version = 0
        #: Piggyback memo slots (owned by :mod:`repro.monitor.piggyback`):
        #: the last encode result as ``(version, budget, payload)`` and the
        #: last no-op decode as ``(payload, version)``.
        self._encode_memo: Optional[tuple] = None
        self._decode_memo: Optional[tuple] = None
        #: Lookup-outcome counters (observability; trivially cheap).
        self.stats = CacheStats()
        #: Optional hook fired whenever a strictly newer measurement is
        #: stored: ``on_new_value(pair, bandwidth, measured_at)``.  The
        #: monitoring system uses it to feed forecasters.
        self.on_new_value = None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CacheEntry]:
        return iter(self._entries.values())

    def update(self, a: str, b: str, bandwidth: float, now: float) -> bool:
        """Record a measurement; keeps only the newest per pair.

        Returns True if the cache changed.
        """
        if bandwidth < 0:
            raise ValueError(f"negative bandwidth {bandwidth!r}")
        key = pair_key(a, b)
        existing = self._entries.get(key)
        if existing is not None and existing.measured_at >= now:
            return False
        if (
            existing is not None
            and self.smoothing < 1.0
            and now - existing.measured_at <= self.smoothing_horizon
        ):
            bandwidth = (
                self.smoothing * bandwidth
                + (1.0 - self.smoothing) * existing.bandwidth
            )
        self._entries[key] = CacheEntry(key, bandwidth, now)
        self._version += 1
        if self.on_new_value is not None:
            self.on_new_value(key, bandwidth, now)
        return True

    def force_set(self, a: str, b: str, bandwidth: float, now: float) -> None:
        """Overwrite the pair's entry, bypassing smoothing.

        Used by multi-sample probes, which compute their own average.
        """
        if bandwidth < 0:
            raise ValueError(f"negative bandwidth {bandwidth!r}")
        key = pair_key(a, b)
        self._entries[key] = CacheEntry(key, bandwidth, now)
        self._version += 1
        if self.on_new_value is not None:
            self.on_new_value(key, bandwidth, now)

    def merge_entry(self, entry: CacheEntry) -> bool:
        """Merge a (possibly piggybacked) entry; newest measurement wins."""
        existing = self._entries.get(entry.pair)
        if existing is not None and existing.measured_at >= entry.measured_at:
            return False
        self._entries[entry.pair] = entry
        self._version += 1
        if self.on_new_value is not None:
            self.on_new_value(entry.pair, entry.bandwidth, entry.measured_at)
        return True

    def lookup(self, a: str, b: str, now: float) -> Optional[CacheEntry]:
        """The *fresh* entry for the pair, or None if absent/timed out."""
        entry = self._entries.get(pair_key(a, b))
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.age(now) > self.t_thres:
            self.stats.stale += 1
            return None
        self.stats.hits += 1
        return entry

    def lookup_any(self, a: str, b: str) -> Optional[CacheEntry]:
        """The entry for the pair regardless of age (stale fallback)."""
        return self._entries.get(pair_key(a, b))

    def is_fresh(self, a: str, b: str, now: float) -> bool:
        """True if a non-timed-out measurement exists for the pair."""
        return self.lookup(a, b, now) is not None

    def freshest(self, limit: int) -> list[CacheEntry]:
        """Up to ``limit`` entries, most recently measured first."""
        ordered = sorted(
            self._entries.values(), key=lambda e: e.measured_at, reverse=True
        )
        return ordered[:limit]

    def evict_older_than(self, cutoff: float) -> int:
        """Drop entries measured before ``cutoff``; returns the count dropped."""
        victims = [k for k, e in self._entries.items() if e.measured_at < cutoff]
        for key in victims:
            del self._entries[key]
        if victims:
            self._version += 1
        return len(victims)
