"""The monitoring system: passive observation, caches, piggyback, probes.

One :class:`MonitoringSystem` instance serves a whole simulation.  It owns
one :class:`~repro.monitor.cache.BandwidthCache` per host and hooks into
the network's transfer observer and piggyback slots.  Placement algorithms
consult it through :meth:`estimate` (a host's local view) and drive active
measurements through :meth:`probe`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.monitor.cache import BandwidthCache
from repro.monitor.forecast import (
    AdaptiveForecaster,
    Ewma,
    SlidingMean,
    SlidingMedian,
)
from repro.monitor.piggyback import (
    PIGGYBACK_BUDGET_BYTES,
    decode_piggyback,
    encode_piggyback,
)
from repro.faults.plan import TransferAbandoned
from repro.net.message import Message, MessageKind
from repro.net.network import Network, TransferObservation
from repro.obs.events import (
    MONITOR_ESTIMATE,
    MONITOR_PASSIVE,
    MONITOR_PIGGYBACK,
    MONITOR_PROBE,
    MONITOR_PROBE_RESULT,
    MONITOR_PROBE_TIMEOUT,
)
from repro.obs.tracer import ensure_tracer

#: 16 KB, the paper's passive-monitoring threshold and probe size.
DEFAULT_S_THRES = 16 * 1024


@dataclass(frozen=True)
class MonitoringConfig:
    """Knobs of the monitoring model (paper defaults)."""

    #: Passive measurement threshold, bytes.
    s_thres: float = DEFAULT_S_THRES
    #: Cache entry timeout, seconds.
    t_thres: float = 40.0
    #: Per-message piggyback budget, bytes (0 disables piggybacking).
    piggyback_budget: int = PIGGYBACK_BUDGET_BYTES
    #: Probe message size, bytes (>= s_thres so probes are observed).
    probe_size: float = DEFAULT_S_THRES
    #: Estimate used when a pair has never been measured, bytes/second.
    default_estimate: float = 16 * 1024.0
    #: EWMA weight for successive measurements of a pair (NWS-style
    #: forecasting; 1.0 keeps raw last measurements).
    smoothing: float = 1.0
    #: Optional NWS-style forecasting of estimates: None (paper model —
    #: raw cached measurements), or one of "adaptive", "ewma", "mean",
    #: "median" (see :mod:`repro.monitor.forecast`).
    forecast: Optional[str] = None
    #: Back-to-back messages per active probe; the samples are averaged.
    #: Multiple samples fight the winner's curse: the planner optimizes
    #: over many links at once, so single noisy samples systematically
    #: lure it toward over-estimated bandwidths.
    probe_samples: int = 1
    #: Seconds a probe sample waits for its delivery before giving up.
    #: Only consulted when a fault plan is installed; unfaulted runs
    #: never time a probe out.
    probe_timeout: float = 60.0


@dataclass
class MonitoringStats:
    """Counters for monitoring activity."""

    passive_measurements: int = 0
    piggyback_entries_merged: int = 0
    probes_sent: int = 0
    probe_bytes: float = 0.0
    #: Probe samples that produced no measurement (faulted runs only).
    probe_timeouts: int = 0


@dataclass(frozen=True)
class Estimate:
    """A bandwidth estimate with provenance."""

    bandwidth: float
    #: Age of the underlying measurement in seconds (inf for defaults).
    age: float
    #: "fresh" (within t_thres), "stale" (timed out) or "default".
    quality: str


class MonitoringSystem:
    """Wires the paper's monitoring model onto a network."""

    def __init__(
        self,
        network: Network,
        config: Optional[MonitoringConfig] = None,
        tracer=None,
    ) -> None:
        self.network = network
        self.config = config or MonitoringConfig()
        self.stats = MonitoringStats()
        #: Per-query monitoring counters, keyed by the query tag carried
        #: on probe messages / transfer observations (workload runs only).
        self.query_stats: dict[str, MonitoringStats] = {}
        self._tracer = ensure_tracer(tracer)
        #: Fault injector, set by the simulation builder when a fault
        #: plan is active; None keeps probes on the unfaulted path.
        self.faults = None
        self.caches: dict[str, BandwidthCache] = {
            name: BandwidthCache(self.config.t_thres, self.config.smoothing) for name in network.hosts
        }
        #: (viewer host, pair) -> forecaster, when forecasting is on.
        self._forecasters: dict[tuple[str, tuple[str, str]], object] = {}
        if self.config.forecast is not None:
            _validate_forecast_mode(self.config.forecast)
            for name, cache in self.caches.items():
                cache.on_new_value = self._feed_forecaster(name)
        network.observers.append(self._observe)
        if self.config.piggyback_budget > 0:
            network.piggyback_source = self._piggyback_source
            network.piggyback_sink = self._piggyback_sink

    def stats_for(self, query_id: str) -> MonitoringStats:
        """The per-query monitoring counters (created at zero)."""
        stats = self.query_stats.get(query_id)
        if stats is None:
            stats = self.query_stats[query_id] = MonitoringStats()
        return stats

    def cache_for(self, host: str) -> BandwidthCache:
        """The measurement cache of ``host`` (created lazily for new hosts)."""
        cache = self.caches.get(host)
        if cache is None:
            if host not in self.network.hosts:
                raise KeyError(f"unknown host {host!r}")
            cache = BandwidthCache(self.config.t_thres, self.config.smoothing)
            if self.config.forecast is not None:
                cache.on_new_value = self._feed_forecaster(host)
            self.caches[host] = cache
        return cache

    # -- forecasting --------------------------------------------------------
    def _new_forecaster(self):
        mode = self.config.forecast
        if mode == "adaptive":
            return AdaptiveForecaster()
        if mode == "ewma":
            return _SinglePredictorForecaster(Ewma(alpha=0.4))
        if mode == "mean":
            return _SinglePredictorForecaster(SlidingMean(window=8))
        if mode == "median":
            return _SinglePredictorForecaster(SlidingMedian(window=8))
        raise ValueError(f"unknown forecast mode {mode!r}")

    def _feed_forecaster(self, viewer: str):
        def feed(pair: tuple[str, str], bandwidth: float, measured_at: float):
            key = (viewer, pair)
            forecaster = self._forecasters.get(key)
            if forecaster is None:
                forecaster = self._new_forecaster()
                self._forecasters[key] = forecaster
            if bandwidth > 0:
                forecaster.update(bandwidth)

        return feed

    def forecast_for(self, viewer: str, a: str, b: str) -> Optional[float]:
        """The viewer's forecast for a pair (None without data/forecasting)."""
        if a == b or self.config.forecast is None:
            return None
        pair = (a, b) if a < b else (b, a)
        forecaster = self._forecasters.get((viewer, pair))
        if forecaster is None:
            return None
        return forecaster.predict()

    # -- passive path -----------------------------------------------------
    def _observe(self, obs: TransferObservation) -> None:
        if obs.wire_bytes < self.config.s_thres:
            return
        now = obs.finished
        bandwidth = obs.measured_bandwidth
        # Both endpoints learn the measurement (paper feature 1).
        self.cache_for(obs.src_host).update(obs.src_host, obs.dst_host, bandwidth, now)
        self.cache_for(obs.dst_host).update(obs.src_host, obs.dst_host, bandwidth, now)
        self.stats.passive_measurements += 1
        if obs.query_id is not None:
            self.stats_for(obs.query_id).passive_measurements += 1
        if self._tracer.enabled:
            tag = {} if obs.query_id is None else {"query_id": obs.query_id}
            self._tracer.emit(
                MONITOR_PASSIVE,
                now,
                a=obs.src_host,
                b=obs.dst_host,
                bandwidth=bandwidth,
                **tag,
            )

    def _piggyback_source(self, src: str, dst: str) -> Optional[dict]:
        return encode_piggyback(self.cache_for(src), self.config.piggyback_budget)

    def _piggyback_sink(
        self, dst: str, piggyback: dict, query_id: Optional[str] = None
    ) -> None:
        merged = decode_piggyback(self.cache_for(dst), piggyback)
        self.stats.piggyback_entries_merged += merged
        if query_id is not None:
            self.stats_for(query_id).piggyback_entries_merged += merged
        if self._tracer.enabled:
            tag = {} if query_id is None else {"query_id": query_id}
            self._tracer.emit(
                MONITOR_PIGGYBACK,
                self.network.env.now,
                host=dst,
                merged=merged,
                **tag,
            )

    # -- queries ------------------------------------------------------------
    def estimate(self, viewer: str, a: str, b: str, now: float) -> Estimate:
        """``viewer``'s best estimate of the bandwidth between ``a`` and ``b``."""
        if a == b:
            return Estimate(float("inf"), 0.0, "fresh")
        cache = self.cache_for(viewer)
        forecast = self.forecast_for(viewer, a, b)
        fresh = cache.lookup(a, b, now)
        if fresh is not None:
            value = forecast if forecast is not None else fresh.bandwidth
            result = Estimate(value, fresh.age(now), "fresh")
        else:
            stale = cache.lookup_any(a, b)
            if stale is not None:
                value = forecast if forecast is not None else stale.bandwidth
                result = Estimate(value, stale.age(now), "stale")
            else:
                result = Estimate(
                    self.config.default_estimate, float("inf"), "default"
                )
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                MONITOR_ESTIMATE,
                now,
                viewer=viewer,
                a=a,
                b=b,
                quality=result.quality,
                age=result.age if result.age != float("inf") else None,
            )
            tracer.incr("monitor.estimate." + result.quality)
        return result

    def seed_snapshot(self, t: float, window: float = 30.0) -> None:
        """Give every host a measurement of every link around time ``t``.

        Models the paper's one-shot algorithm "using information available
        at the beginning of computation": the participants arrive with a
        recent measurement of each link (e.g. from the application's own
        startup monitoring).  A measurement is a short-term average — a
        16 KB probe takes seconds to minutes on these paths — so the value
        is the trace mean over ``[t, t + window]``.
        """
        for link in self.network.links():
            bandwidth = link.trace.mean_rate(t, t + window)
            for cache in self.caches.values():
                cache.update(link.a, link.b, bandwidth, t)

    # -- active probing ----------------------------------------------------
    def probe(self, a: str, b: str, query_id: Optional[str] = None):
        """Process generator: actively measure the pair ``(a, b)``.

        ``query_id`` attributes the probe's traffic and counters to one
        workload query (the probe messages are stamped, so the network's
        per-query accounting and the trace tags follow automatically).

        Sends ``probe_samples`` back-to-back messages of ``probe_size``
        bytes from ``a`` to ``b``; each exceeds ``s_thres`` so the passive
        path records it at both endpoints.  The samples are averaged and
        the average overwrites the cache entries at both endpoints —
        a single short sample is too noisy to hand to a planner that
        optimizes over every link at once.  Returns the averaged
        bandwidth (bytes/s).

        With a fault plan installed, each sample is bounded by
        ``config.probe_timeout`` (timed-out, blacked-out or abandoned
        samples count as :attr:`MonitoringStats.probe_timeouts`), and the
        method returns None when *no* sample survived — callers must then
        keep their last-known-good estimates instead of caching a guess.

        The throwaway ``_monitor@<host>`` endpoints are unregistered (and
        the target mailbox removed) on every exit path, so repeated
        probes never leak actor registrations.
        """
        if a == b:
            raise ValueError("cannot probe a host against itself")
        probe_actor = f"_monitor@{a}"
        target_actor = f"_monitor@{b}"
        # Monitor daemons are implicit: register throwaway actor endpoints.
        self.network.register_actor(probe_actor, a)
        self.network.register_actor(target_actor, b)
        tag = {} if query_id is None else {"query_id": query_id}
        try:
            samples: list[float] = []
            for _ in range(max(self.config.probe_samples, 1)):
                now = self.network.env.now
                if self.faults is not None and self.faults.probe_blackout(now):
                    self.stats.probe_timeouts += 1
                    if query_id is not None:
                        self.stats_for(query_id).probe_timeouts += 1
                    if self._tracer.enabled:
                        self._tracer.emit(
                            MONITOR_PROBE_TIMEOUT,
                            now,
                            a=a,
                            b=b,
                            reason="blackout",
                            **tag,
                        )
                    yield self.network.env.timeout(self.config.probe_timeout)
                    continue
                message = Message(
                    kind=MessageKind.CONTROL,
                    src_actor=probe_actor,
                    dst_actor=target_actor,
                    size=self.config.probe_size,
                    payload={"probe": True},
                    query_id=query_id,
                )
                self.stats.probes_sent += 1
                self.stats.probe_bytes += message.wire_size
                if query_id is not None:
                    query_stats = self.stats_for(query_id)
                    query_stats.probes_sent += 1
                    query_stats.probe_bytes += message.wire_size
                if self._tracer.enabled:
                    self._tracer.emit(
                        MONITOR_PROBE,
                        now,
                        a=a,
                        b=b,
                        bytes=message.wire_size,
                        **tag,
                    )
                delivery = self.network.send(message, src_host=a, dst_host=b)
                if self.faults is None:
                    yield delivery
                else:
                    arrived = yield from self._await_probe(
                        delivery, a, b, target_actor, query_id
                    )
                    if not arrived:
                        continue
                # Drain the probe from the target mailbox so it cannot pile up.
                self.network.hosts[b].remove_mailbox(target_actor)
                entry = self.cache_for(a).lookup_any(a, b)
                if entry is not None:
                    samples.append(entry.bandwidth)
            if not samples:
                if self.faults is not None:
                    return None
                return self.config.default_estimate
            bandwidth = sum(samples) / len(samples)
            now = self.network.env.now
            for host in (a, b):
                # Overwrite (not EWMA) with the multi-sample average.
                self.cache_for(host).force_set(a, b, bandwidth, now)
            if self._tracer.enabled:
                self._tracer.emit(
                    MONITOR_PROBE_RESULT,
                    now,
                    a=a,
                    b=b,
                    bandwidth=bandwidth,
                    samples=len(samples),
                    **tag,
                )
            return bandwidth
        finally:
            self.network.unregister_actor(probe_actor)
            self.network.unregister_actor(target_actor)
            self.network.hosts[b].remove_mailbox(target_actor)

    def _await_probe(
        self,
        delivery,
        a: str,
        b: str,
        target_actor: str,
        query_id: Optional[str] = None,
    ):
        """Wait for one probe delivery, bounded by ``config.probe_timeout``.

        Returns True if the probe arrived in time.  On timeout the
        in-flight transfer keeps retrying in the background (its late
        arrival is drained from the target mailbox); on abandonment the
        failure is absorbed here.
        """
        env = self.network.env
        tag = {} if query_id is None else {"query_id": query_id}
        timeout = env.timeout(self.config.probe_timeout)
        try:
            yield env.any_of([delivery, timeout])
        except TransferAbandoned:
            self.stats.probe_timeouts += 1
            if query_id is not None:
                self.stats_for(query_id).probe_timeouts += 1
            if self._tracer.enabled:
                self._tracer.emit(
                    MONITOR_PROBE_TIMEOUT,
                    env.now,
                    a=a,
                    b=b,
                    reason="abandoned",
                    **tag,
                )
            return False
        if delivery.triggered:
            return True
        self.stats.probe_timeouts += 1
        if query_id is not None:
            self.stats_for(query_id).probe_timeouts += 1
        if self._tracer.enabled:
            self._tracer.emit(
                MONITOR_PROBE_TIMEOUT, env.now, a=a, b=b, reason="timeout", **tag
            )
        network = self.network
        delivery.defused = True
        delivery.callbacks.append(
            lambda _event: network.hosts[b].remove_mailbox(target_actor)
        )
        return False


def _validate_forecast_mode(mode: str) -> None:
    if mode not in ("adaptive", "ewma", "mean", "median"):
        raise ValueError(f"unknown forecast mode {mode!r}")


class _SinglePredictorForecaster:
    """Adapter giving a bare predictor the forecaster interface."""

    def __init__(self, predictor) -> None:
        self._predictor = predictor

    def update(self, value: float) -> None:
        self._predictor.update(value)

    def predict(self):
        return self._predictor.predict()
