"""Piggybacking recent bandwidth measurements on outgoing messages.

Paper §4: "when a message is sent between two nodes, the most recent
bandwidth values (those that fit within 1KB) are piggybacked onto the
message".  Each serialised entry carries a host pair, a bandwidth and a
timestamp; we charge 24 bytes per entry (two 2-byte host indices hardly
matter — we round up to named pairs), so 1 KB carries up to 42 entries.
"""

from __future__ import annotations

from typing import Optional

from repro.monitor.cache import BandwidthCache, CacheEntry

#: The paper's piggyback budget.
PIGGYBACK_BUDGET_BYTES = 1024
#: Serialized size of one measurement entry (pair ids + float + timestamp).
ENTRY_BYTES = 24


def encode_piggyback(
    cache: BandwidthCache, budget: int = PIGGYBACK_BUDGET_BYTES
) -> Optional[dict]:
    """Select the freshest cache entries that fit in ``budget`` bytes.

    Returns ``None`` when the cache is empty (no piggyback overhead is
    charged in that case), otherwise a dict with ``bytes`` (wire overhead)
    and ``entries``.
    """
    if budget < ENTRY_BYTES:
        return None
    limit = budget // ENTRY_BYTES
    entries = cache.freshest(limit)
    if not entries:
        return None
    return {"bytes": len(entries) * ENTRY_BYTES, "entries": list(entries)}


def decode_piggyback(cache: BandwidthCache, piggyback: dict) -> int:
    """Merge piggybacked entries into ``cache``; returns how many were new."""
    merged = 0
    for entry in piggyback.get("entries", ()):
        if not isinstance(entry, CacheEntry):
            raise TypeError(f"piggyback entry {entry!r} is not a CacheEntry")
        if cache.merge_entry(entry):
            merged += 1
    return merged
