"""Piggybacking recent bandwidth measurements on outgoing messages.

Paper §4: "when a message is sent between two nodes, the most recent
bandwidth values (those that fit within 1KB) are piggybacked onto the
message".  Each serialised entry carries a host pair, a bandwidth and a
timestamp; we charge 24 bytes per entry (two 2-byte host indices hardly
matter — we round up to named pairs), so 1 KB carries up to 42 entries.

Both directions are memoized against the cache's content version
(:attr:`~repro.monitor.cache.BandwidthCache._version`): a host sending a
burst of messages between cache updates encodes its freshest entries once
and attaches the same (immutable-by-convention) payload to each, and a
host receiving the same payload twice with no intervening cache change
skips the merge loop entirely.  Every memo hit is provably a no-op
replay, so results are bit-identical to the unmemoized code.
"""

from __future__ import annotations

from typing import Optional

from repro.monitor.cache import BandwidthCache, CacheEntry

#: The paper's piggyback budget.
PIGGYBACK_BUDGET_BYTES = 1024
#: Serialized size of one measurement entry (pair ids + float + timestamp).
ENTRY_BYTES = 24


def encode_piggyback(
    cache: BandwidthCache, budget: int = PIGGYBACK_BUDGET_BYTES
) -> Optional[dict]:
    """Select the freshest cache entries that fit in ``budget`` bytes.

    Returns ``None`` when the cache is empty (no piggyback overhead is
    charged in that case), otherwise a dict with ``bytes`` (wire overhead)
    and ``entries``.  The result is a pure function of the cache contents
    and the budget, so it is memoized per cache version; consumers must
    treat the payload as immutable (the transfer engine and decoder do).
    """
    memo = cache._encode_memo
    version = cache._version
    if memo is not None and memo[0] == version and memo[1] == budget:
        return memo[2]
    if budget < ENTRY_BYTES:
        payload = None
    else:
        limit = budget // ENTRY_BYTES
        entries = cache.freshest(limit)
        if not entries:
            payload = None
        else:
            payload = {"bytes": len(entries) * ENTRY_BYTES, "entries": entries}
    cache._encode_memo = (version, budget, payload)
    return payload


def decode_piggyback(cache: BandwidthCache, piggyback: dict) -> int:
    """Merge piggybacked entries into ``cache``; returns how many were new.

    The merge loop is inlined (newest measurement wins, exactly
    :meth:`~repro.monitor.cache.BandwidthCache.merge_entry`) and the
    outcome is memoized: decoding a payload leaves the cache at least as
    fresh as every entry in it, so decoding the *same* payload again with
    no intervening cache change merges nothing — that replay is skipped.
    """
    memo = cache._decode_memo
    if (
        memo is not None
        and memo[0] is piggyback
        and memo[1] == cache._version
    ):
        return 0
    entries_map = cache._entries
    hook = cache.on_new_value
    merged = 0
    for entry in piggyback.get("entries", ()):
        if entry.__class__ is not CacheEntry and not isinstance(
            entry, CacheEntry
        ):
            raise TypeError(f"piggyback entry {entry!r} is not a CacheEntry")
        existing = entries_map.get(entry.pair)
        if existing is not None and existing.measured_at >= entry.measured_at:
            continue
        entries_map[entry.pair] = entry
        merged += 1
        if hook is not None:
            hook(entry.pair, entry.bandwidth, entry.measured_at)
    if merged:
        cache._version += 1
    cache._decode_memo = (piggyback, cache._version)
    return merged
