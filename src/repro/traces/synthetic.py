"""Synthetic wide-area bandwidth trace generator.

The paper drove its simulator with real two-day traces of application-level
TCP bandwidth (16 KB round trips) between Internet host pairs in 1997.  We
cannot use those traces, so this module synthesises traces with the same
*variation structure*:

* a per-path **base rate** reflecting the path type (intra-US,
  transatlantic, to Brazil) at late-1990s levels,
* a **diurnal cycle** — paths are slower during the endpoints' business
  hours (the paper started every experiment at noon, the congested part of
  the day),
* **AR(1) multiplicative noise** producing the ubiquitous minute-scale
  jitter visible in the paper's Figure 2 (left),
* **congestion episodes** — Poisson-arriving, minutes-to-hour-long periods
  during which the path drops to a fraction of its base rate, producing the
  persistent shifts visible in Figure 2 (right).

The generator is calibrated so that the expected time between successive
bandwidth changes of at least 10 % is about two minutes, the statistic the
paper reports from its trace analysis (§4) and uses to pick
``T_thres = 40 s``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.traces.trace import BandwidthTrace

#: One day in seconds.
DAY = 86400.0
#: Bytes per kilobyte (the paper's 16KB probes etc. use binary KB).
KB = 1024.0


@dataclass(frozen=True)
class TraceGenParams:
    """Tunable knobs of the synthetic trace model.

    The defaults reproduce the paper's reported trace statistics (≥10 %
    changes every ~2 minutes on average); the tests in
    ``tests/traces/test_synthetic.py`` pin that calibration down.
    """

    #: Seconds between samples (the paper probed continuously; its plots
    #: resolve ~30 s structure).
    sample_period: float = 30.0
    #: Length of the generated trace, seconds (the paper's traces: 2 days).
    duration: float = 2 * DAY
    #: AR(1) coefficient of the log-rate jitter per sample step.
    ar_rho: float = 0.75
    #: Innovation std-dev of the log-rate jitter per sample step.  0.07
    #: calibrates the >=10%-change interval to ~2 minutes (paper §4).
    ar_sigma: float = 0.07
    #: Fractional slowdown at the diurnal peak (0.5 => rate halves).
    diurnal_depth: float = 0.45
    #: Mean congestion episodes per hour on a path.
    episode_rate_per_hour: float = 0.8
    #: Mean episode duration, seconds.  Real wide-area congestion regimes
    #: persist for tens of minutes to hours; persistence is what makes a
    #: 5-10 minute relocation period pay off (Figure 9) — a measurement
    #: taken now still describes the next period, while an hour-old plan
    #: has rotted.
    episode_mean_duration: float = 1800.0
    #: Episode depth range: the rate is multiplied by U(lo, hi).
    episode_depth: tuple[float, float] = (0.15, 0.5)
    #: Long-shift process: mean shifts per day; each re-draws a persistent
    #: level multiplier from lognormal(0, long_shift_sigma).  Hour-scale
    #: persistent swings are what distinguish the paper's Figure 2 (right)
    #: from mere jitter.
    long_shifts_per_day: float = 8.0
    long_shift_sigma: float = 0.5


class SyntheticTraceModel:
    """Generates :class:`BandwidthTrace` objects for host pairs.

    Parameters
    ----------
    params:
        Model knobs; see :class:`TraceGenParams`.
    """

    def __init__(self, params: Optional[TraceGenParams] = None) -> None:
        self.params = params or TraceGenParams()

    def generate(
        self,
        base_rate: float,
        rng: np.random.Generator,
        tz_offset_hours: float = 0.0,
        name: str = "",
        start_time: float = 0.0,
    ) -> BandwidthTrace:
        """Generate one trace.

        Parameters
        ----------
        base_rate:
            Nominal path bandwidth in bytes/second (uncongested, off-peak).
        rng:
            Source of randomness (callers pass a seeded generator for
            reproducibility).
        tz_offset_hours:
            Effective timezone of the path (mean of the endpoints'), used
            to phase the diurnal cycle.  Time 0 of the trace is **midnight
            UTC**; experiments extract segments starting at local noon.
        name:
            Label for the trace.
        start_time:
            Time value of the first sample.
        """
        p = self.params
        if base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {base_rate!r}")
        n = int(math.ceil(p.duration / p.sample_period)) + 1
        times = start_time + np.arange(n) * p.sample_period

        # Diurnal multiplier: slowest at 14:00 local (afternoon peak load).
        local_hours = ((times / 3600.0) + tz_offset_hours) % 24.0
        phase = 2.0 * math.pi * (local_hours - 14.0) / 24.0
        diurnal = 1.0 - p.diurnal_depth * 0.5 * (1.0 + np.cos(phase))

        # AR(1) jitter on the log scale, stationary initial condition.
        steady_sigma = p.ar_sigma / math.sqrt(max(1.0 - p.ar_rho**2, 1e-9))
        log_jitter = np.empty(n)
        log_jitter[0] = rng.normal(0.0, steady_sigma)
        innovations = rng.normal(0.0, p.ar_sigma, size=n - 1)
        for k in range(1, n):
            log_jitter[k] = p.ar_rho * log_jitter[k - 1] + innovations[k - 1]
        jitter = np.exp(log_jitter)

        # Congestion episodes: Poisson arrivals, exponential durations.
        episode_mult = np.ones(n)
        t = 0.0
        rate_per_sec = p.episode_rate_per_hour / 3600.0
        while True:
            t += rng.exponential(1.0 / rate_per_sec) if rate_per_sec > 0 else p.duration + 1
            if t >= p.duration:
                break
            duration = rng.exponential(p.episode_mean_duration)
            depth = rng.uniform(*p.episode_depth)
            lo = int(t / p.sample_period)
            hi = min(int((t + duration) / p.sample_period) + 1, n)
            episode_mult[lo:hi] = np.minimum(episode_mult[lo:hi], depth)

        # Persistent level shifts: piecewise-constant lognormal level.
        level_mult = np.ones(n)
        shift_rate = p.long_shifts_per_day / DAY
        if shift_rate > 0 and p.long_shift_sigma > 0:
            t = 0.0
            level_mult[:] = math.exp(rng.normal(0.0, p.long_shift_sigma))
            while True:
                t += rng.exponential(1.0 / shift_rate)
                if t >= p.duration:
                    break
                level = math.exp(rng.normal(0.0, p.long_shift_sigma))
                lo = int(t / p.sample_period)
                level_mult[lo:] = level

        rates = base_rate * diurnal * jitter * episode_mult * level_mult
        return BandwidthTrace(times, rates, name=name)
