"""Persistence for traces and trace libraries (CSV and JSON).

CSV holds one ``time,rate`` row per sample (the natural interchange format
for a single trace); JSON serialises full libraries including the host
roster, so an experiment's exact network inputs can be archived alongside
its results.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.traces.study import StudyHost, TraceLibrary, pair_key
from repro.traces.trace import BandwidthTrace

PathLike = Union[str, Path]


# -- single traces -----------------------------------------------------------
def save_trace_csv(trace: BandwidthTrace, path: PathLike) -> None:
    """Write ``trace`` as a two-column ``time,rate`` CSV with a header."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_s", "rate_bytes_per_s"])
        for t, r in zip(trace.times, trace.rates):
            writer.writerow([repr(float(t)), repr(float(r))])


def load_trace_csv(path: PathLike, name: str = "") -> BandwidthTrace:
    """Read a trace written by :func:`save_trace_csv`."""
    times: list[float] = []
    rates: list[float] = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None:
            raise ValueError(f"{path}: empty trace file")
        for row in reader:
            if len(row) != 2:
                raise ValueError(f"{path}: malformed row {row!r}")
            times.append(float(row[0]))
            rates.append(float(row[1]))
    return BandwidthTrace(times, rates, name=name or str(path))


def _trace_to_dict(trace: BandwidthTrace) -> dict:
    return {
        "name": trace.name,
        "times": [float(t) for t in trace.times],
        "rates": [float(r) for r in trace.rates],
    }


def _trace_from_dict(data: dict) -> BandwidthTrace:
    return BandwidthTrace(
        np.asarray(data["times"]), np.asarray(data["rates"]), name=data.get("name", "")
    )


def save_trace_json(trace: BandwidthTrace, path: PathLike) -> None:
    """Write one trace as JSON."""
    with open(path, "w") as fh:
        json.dump(_trace_to_dict(trace), fh)


def load_trace_json(path: PathLike) -> BandwidthTrace:
    """Read a trace written by :func:`save_trace_json`."""
    with open(path) as fh:
        return _trace_from_dict(json.load(fh))


# -- libraries ----------------------------------------------------------------
def save_library_json(library: TraceLibrary, path: PathLike) -> None:
    """Serialise a full :class:`TraceLibrary` (hosts + all pair traces)."""
    payload = {
        "hosts": [
            {"name": h.name, "region": h.region, "tz_offset_hours": h.tz_offset_hours}
            for h in library.hosts
        ],
        "traces": {
            f"{a}|{b}": _trace_to_dict(library.trace(a, b))
            for a, b in library.pairs()
        },
        "tz_offsets": {
            f"{a}|{b}": tz for (a, b), tz in sorted(library.tz_offsets.items())
        },
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)


def load_library_json(path: PathLike) -> TraceLibrary:
    """Read a library written by :func:`save_library_json`."""
    with open(path) as fh:
        payload = json.load(fh)
    hosts = [
        StudyHost(h["name"], h["region"], float(h["tz_offset_hours"]))
        for h in payload["hosts"]
    ]
    traces = {}
    for key, data in payload["traces"].items():
        a, _, b = key.partition("|")
        traces[pair_key(a, b)] = _trace_from_dict(data)
    tz_offsets = {}
    for key, tz in payload.get("tz_offsets", {}).items():
        a, _, b = key.partition("|")
        tz_offsets[pair_key(a, b)] = float(tz)
    return TraceLibrary(hosts, traces, tz_offsets)
