"""Trace transformations: resampling, clipping, stitching, importing.

Users replaying *real* bandwidth measurements (e.g. Network Weather
Service logs) need a few mundane operations to turn them into simulation
inputs: regularizing the sample grid, bounding outliers, joining
multi-day collections and parsing measurement logs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence, Union

import numpy as np

from repro.traces.trace import BandwidthTrace


def resample(trace: BandwidthTrace, period: float) -> BandwidthTrace:
    """Regularize a trace onto a fixed sample grid.

    Each output sample is the *time-weighted mean* of the input over its
    bucket, so total deliverable bytes are (bucket-wise) preserved — the
    property the transfer integrator cares about.
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period!r}")
    if trace.duration <= 0:
        return BandwidthTrace([trace.start], [float(trace.rates[0])], trace.name)
    edges = np.arange(trace.start, trace.end + period, period)
    if edges[-1] < trace.end:
        edges = np.append(edges, trace.end)
    rates = [
        trace.mean_rate(float(lo), float(hi))
        for lo, hi in zip(edges[:-1], edges[1:])
    ]
    return BandwidthTrace(edges[:-1], rates, name=trace.name)


def clip_rates(
    trace: BandwidthTrace,
    lo: float = 0.0,
    hi: float = float("inf"),
) -> BandwidthTrace:
    """Bound the trace's rates to ``[lo, hi]`` (outlier control)."""
    if lo > hi:
        raise ValueError(f"lo={lo!r} exceeds hi={hi!r}")
    return BandwidthTrace(
        trace.times, np.clip(trace.rates, lo, hi), name=trace.name
    )


def stitch(traces: Sequence[BandwidthTrace], gap: float = 0.0) -> BandwidthTrace:
    """Concatenate traces end-to-end in time (multi-day collections).

    Each subsequent trace is shifted to start where the previous one
    ended (plus ``gap`` seconds).
    """
    traces = list(traces)
    if not traces:
        raise ValueError("need at least one trace")
    if gap < 0:
        raise ValueError(f"gap must be non-negative, got {gap!r}")
    times: list[float] = list(map(float, traces[0].times))
    rates: list[float] = list(map(float, traces[0].rates))
    cursor = traces[0].end
    for trace in traces[1:]:
        shifted = trace.rebased(cursor + gap)
        # The later trace owns the boundary instant: drop any earlier
        # samples at or after its start.
        while times and times[-1] >= shifted.start:
            times.pop()
            rates.pop()
        times.extend(map(float, shifted.times))
        rates.extend(map(float, shifted.rates))
        cursor = shifted.end
    return BandwidthTrace(times, rates, name=traces[0].name)


def load_trace_measurements(
    path: Union[str, Path],
    name: str = "",
    unit_scale: float = 1.0,
) -> BandwidthTrace:
    """Parse a whitespace-separated measurement log into a trace.

    The format is the common denominator of NWS-style sensor logs: one
    measurement per line, ``<timestamp> <value>``, ``#`` comments and
    blank lines ignored.  ``unit_scale`` converts the value column to
    bytes/second (e.g. ``125000.0`` for megabits/second).  Out-of-order
    timestamps are sorted; duplicate timestamps keep the last value.
    """
    if unit_scale <= 0:
        raise ValueError(f"unit_scale must be positive, got {unit_scale!r}")
    times: list[float] = []
    rates: list[float] = []
    with open(path) as fh:
        for line_number, raw in enumerate(fh, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{line_number}: expected '<time> <value>', "
                    f"got {raw!r}"
                )
            times.append(float(parts[0]))
            rates.append(float(parts[1]) * unit_scale)
    if not times:
        raise ValueError(f"{path}: no measurements found")
    order = np.argsort(np.asarray(times), kind="stable")
    sorted_times = np.asarray(times)[order]
    sorted_rates = np.asarray(rates)[order]
    # Collapse duplicate timestamps, keeping the last occurrence.
    keep = np.append(np.diff(sorted_times) > 0, True)
    return BandwidthTrace(
        sorted_times[keep], sorted_rates[keep], name=name or str(path)
    )
