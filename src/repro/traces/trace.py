"""Step-function bandwidth traces and transfer-time integration.

A :class:`BandwidthTrace` holds sample times ``t[0..n-1]`` (seconds) and
rates ``r[0..n-1]`` (bytes/second); the instantaneous rate is ``r[i]`` for
``t[i] <= t < t[i+1]``.  Before ``t[0]`` the rate is ``r[0]``; after the
last sample the rate holds at ``r[n-1]`` (the trace segments used in the
experiments are long enough that this never matters).

The core operation is :meth:`BandwidthTrace.transfer_time`: the time to
move ``nbytes`` starting at ``t0``, found by inverting the cumulative
byte integral of the step function.  This is what makes the network model
honest about transfers that straddle bandwidth changes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Smallest rate we allow, so transfer times stay finite.  1 byte/s is far
#: below anything a mid-1990s WAN path would sustain while still "up".
MIN_RATE = 1.0

#: Maximum segments a cursor walks forward before falling back to binary
#: search.  Near-monotone query streams advance a handful of segments per
#: call; a jump past this many segments is cheaper to locate in O(log n).
_CURSOR_MAX_ADVANCE = 32


class TraceCursor:
    """A mutable segment-index hint for near-monotone trace queries.

    Consecutive :meth:`BandwidthTrace.transfer_time` queries on one link
    start at (almost always) non-decreasing times, so the containing
    segment advances by a few positions per call.  A cursor remembers the
    last segment index; the trace resumes the search there with an
    amortized-O(1) pointer advance instead of an O(log n) ``searchsorted``,
    falling back to binary search for out-of-order or far-jumping queries.

    Cursors are an *optimization hint only*: results are bit-identical
    with or without one (pinned by ``tests/traces/test_cursor.py``).  They
    live on the mutable query-side object (e.g. :class:`repro.net.link.
    Link`), never on the trace itself — traces stay immutable and safely
    shared across links, runs and sweep workers.
    """

    __slots__ = ("index",)

    def __init__(self, index: int = 0) -> None:
        self.index = index

    def __repr__(self) -> str:
        return f"TraceCursor(index={self.index})"


class BandwidthTrace:
    """An immutable step-function of available bandwidth over time.

    Parameters
    ----------
    times:
        Strictly increasing sample times, seconds.
    rates:
        Bandwidth at each sample time, bytes/second.  Clamped below at
        :data:`MIN_RATE`.
    name:
        Optional label (e.g. ``"umd-ucla"``).
    """

    __slots__ = ("times", "rates", "name", "_cumbytes")

    def __init__(
        self,
        times: Sequence[float] | np.ndarray,
        rates: Sequence[float] | np.ndarray,
        name: str = "",
    ) -> None:
        times_arr = np.asarray(times, dtype=np.float64)
        rates_arr = np.asarray(rates, dtype=np.float64)
        if times_arr.ndim != 1 or rates_arr.ndim != 1:
            raise ValueError("times and rates must be one-dimensional")
        if times_arr.size == 0:
            raise ValueError("a trace needs at least one sample")
        if times_arr.size != rates_arr.size:
            raise ValueError(
                f"length mismatch: {times_arr.size} times vs {rates_arr.size} rates"
            )
        if times_arr.size > 1 and not np.all(np.diff(times_arr) > 0):
            raise ValueError("times must be strictly increasing")
        if not np.all(np.isfinite(times_arr)):
            raise ValueError("times must be finite")
        if not np.all(np.isfinite(rates_arr)):
            raise ValueError("rates must be finite")

        self.times = times_arr
        self.rates = np.maximum(rates_arr, MIN_RATE)
        self.name = name
        # _cumbytes[i] = bytes transferred between times[0] and times[i]
        # at the trace's rates.  Lazily computed.
        self._cumbytes: np.ndarray | None = None

    # -- basic queries ------------------------------------------------------
    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def start(self) -> float:
        """Time of the first sample."""
        return float(self.times[0])

    @property
    def end(self) -> float:
        """Time of the last sample."""
        return float(self.times[-1])

    @property
    def duration(self) -> float:
        """``end - start``."""
        return self.end - self.start

    def rate_at(self, t: float, hint: "TraceCursor | None" = None) -> float:
        """Instantaneous bandwidth (bytes/s) at time ``t``."""
        return float(self.rates[self._locate(t, hint)])

    def mean_rate(self, t0: float | None = None, t1: float | None = None) -> float:
        """Time-weighted mean bandwidth over ``[t0, t1]`` (default: whole trace)."""
        if t0 is None:
            t0 = self.start
        if t1 is None:
            t1 = self.end
        if t1 <= t0:
            return self.rate_at(t0)
        return self.bytes_between(t0, t1) / (t1 - t0)

    def cursor(self) -> TraceCursor:
        """A fresh :class:`TraceCursor` for near-monotone queries."""
        return TraceCursor()

    # -- integration --------------------------------------------------------
    def _cum(self) -> np.ndarray:
        if self._cumbytes is None:
            if len(self) == 1:
                self._cumbytes = np.zeros(1)
            else:
                deltas = np.diff(self.times) * self.rates[:-1]
                self._cumbytes = np.concatenate(([0.0], np.cumsum(deltas)))
        return self._cumbytes

    def ensure_cum(self) -> "BandwidthTrace":
        """Eagerly compute the cumulative-bytes prefix sum; returns ``self``.

        The prefix sum is computed exactly once and shared read-only by
        every consumer of the trace (links, runs, sweep workers), so batch
        pipelines prime it up front instead of paying the lazy computation
        inside the first simulated transfer.  Values are identical either
        way — this only moves *when* the array is built.
        """
        self._cum()
        return self

    def _locate(self, t0: float, hint: TraceCursor | None = None) -> int:
        """Index ``i`` with ``times[i] <= t0 < times[i+1]``, clamped to
        ``[0, len-1]`` — exactly ``searchsorted(times, t0, 'right') - 1``.

        With a ``hint`` the search resumes from the cursor's last index
        and walks forward (amortized O(1) for near-monotone query times);
        out-of-order queries and jumps past :data:`_CURSOR_MAX_ADVANCE`
        segments fall back to binary search.  The hint is updated to the
        returned index either way.
        """
        times = self.times
        last = times.size - 1
        if hint is not None:
            index = hint.index
            if 0 <= index <= last and times[index] <= t0:
                steps = 0
                advanced = True
                while index < last and times[index + 1] <= t0:
                    index += 1
                    steps += 1
                    if steps > _CURSOR_MAX_ADVANCE:
                        advanced = False
                        break
                if advanced:
                    hint.index = index
                    return index
        index = int(np.searchsorted(times, t0, side="right")) - 1
        index = 0 if index < 0 else (last if index > last else index)
        if hint is not None:
            hint.index = index
        return index

    def bytes_between(self, t0: float, t1: float) -> float:
        """Bytes deliverable between ``t0`` and ``t1`` at the trace's rates.

        Head (before the first sample) and tail (after the last sample)
        regions are computed directly against the flat extension rates, so
        results stay accurate far outside the sampled window.
        """
        if t1 < t0:
            raise ValueError(f"t1={t1} earlier than t0={t0}")
        start, end = self.start, self.end
        total = 0.0
        if t0 < start:
            total += (min(t1, start) - t0) * float(self.rates[0])
        if t1 > end:
            total += (t1 - max(t0, end)) * float(self.rates[-1])
        lo, hi = max(t0, start), min(t1, end)
        if hi > lo:
            total += self._bytes_inside(hi) - self._bytes_inside(lo)
        return total

    def _bytes_inside(self, t: float) -> float:
        """Cumulative bytes from ``start`` to ``t`` for start <= t <= end."""
        cum = self._cum()
        index = self._locate(t)
        return float(cum[index] + (t - self.times[index]) * self.rates[index])

    def transfer_time(
        self, nbytes: float, t0: float, hint: "TraceCursor | None" = None
    ) -> float:
        """Seconds to move ``nbytes`` starting at time ``t0``.

        The transfer consumes the step function's instantaneous rate; a
        rate change mid-transfer changes the transfer's speed from that
        moment on.  ``nbytes == 0`` takes zero time.

        The first (partial) segment is handled directly — exact, never
        negative, even for tiny transfers far outside the sampled window.
        A transfer that spans further is inverted against the cumulative
        prefix-sum byte integral with one ``searchsorted``, so the cost is
        O(log n) rather than a Python-level walk over every straddled
        segment (:meth:`_transfer_time_scan` keeps the old walk as the
        reference implementation).

        ``hint`` (a :class:`TraceCursor`, typically owned by a
        :class:`repro.net.link.Link`) amortizes the *starting-segment*
        lookup to O(1) across a near-monotone stream of query times; the
        result is bit-identical with or without it.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes!r}")
        if nbytes == 0:
            return 0.0
        rates = self.rates
        times = self.times
        last = len(self) - 1

        if t0 >= self.end:
            if hint is not None:
                hint.index = last
            return nbytes / float(rates[last])
        remaining = float(nbytes)
        elapsed = 0.0
        if t0 < self.start:
            head_capacity = (self.start - t0) * float(rates[0])
            if remaining <= head_capacity:
                return remaining / float(rates[0])
            remaining -= head_capacity
            elapsed = self.start - t0
            cursor = self.start
            index = 0
            if hint is not None:
                hint.index = 0
        else:
            index = self._locate(t0, hint)
            cursor = t0
        if index == last:
            return elapsed + remaining / float(rates[last])
        # Finish the (partial) segment the transfer starts in exactly.
        boundary = float(times[index + 1])
        capacity = (boundary - cursor) * float(rates[index])
        if remaining <= capacity:
            return elapsed + remaining / float(rates[index])
        remaining -= capacity
        elapsed += boundary - cursor
        index += 1
        if index == last:
            return elapsed + remaining / float(rates[last])
        # From the sample boundary ``times[index]`` onward, invert the
        # cumulative byte integral: find the segment whose prefix-sum
        # bracket contains ``cum[index] + remaining``.
        cum = self._cum()
        target = float(cum[index]) + remaining
        stop = int(np.searchsorted(cum, target, side="right")) - 1
        if stop >= last:
            return (
                elapsed
                + float(times[last]) - float(times[index])
                + (target - float(cum[last])) / float(rates[last])
            )
        stop = max(stop, index)
        within = (target - float(cum[stop])) / float(rates[stop])
        return elapsed + float(times[stop]) - float(times[index]) + within

    def _transfer_time_scan(self, nbytes: float, t0: float) -> float:
        """Reference segment-by-segment walk (pre-prefix-sum algorithm).

        Kept for the property-test cross-check and the micro-benchmark in
        ``tools/bench_sweep.py``; semantics are identical to
        :meth:`transfer_time` up to floating-point association order.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes!r}")
        if nbytes == 0:
            return 0.0
        rates = self.rates
        times = self.times
        last = len(self) - 1

        if t0 >= self.end:
            return nbytes / float(rates[last])
        remaining = float(nbytes)
        elapsed = 0.0
        if t0 < self.start:
            head_capacity = (self.start - t0) * float(rates[0])
            if remaining <= head_capacity:
                return remaining / float(rates[0])
            remaining -= head_capacity
            elapsed = self.start - t0
            cursor = self.start
            index = 0
        else:
            index = int(np.searchsorted(times, t0, side="right")) - 1
            index = min(max(index, 0), last)
            cursor = t0
        while index < last:
            segment_end = float(times[index + 1])
            capacity = (segment_end - cursor) * float(rates[index])
            if remaining <= capacity:
                return elapsed + remaining / float(rates[index])
            remaining -= capacity
            elapsed += segment_end - cursor
            cursor = segment_end
            index += 1
        return elapsed + remaining / float(rates[last])

    # -- transforms ----------------------------------------------------------
    def shifted(self, offset: float) -> "BandwidthTrace":
        """A copy whose time axis is shifted by ``offset`` seconds."""
        return BandwidthTrace(self.times + offset, self.rates, name=self.name)

    def segment(self, t0: float, t1: float) -> "BandwidthTrace":
        """The sub-trace covering ``[t0, t1]`` (rates extended flat)."""
        if t1 <= t0:
            raise ValueError(f"empty segment [{t0}, {t1}]")
        inside = (self.times > t0) & (self.times < t1)
        times = np.concatenate(([t0], self.times[inside], [t1]))
        rates = np.concatenate(
            ([self.rate_at(t0)], self.rates[inside], [self.rate_at(t1)])
        )
        return BandwidthTrace(times, rates, name=self.name)

    def rebased(self, new_start: float = 0.0) -> "BandwidthTrace":
        """A copy shifted so that the first sample sits at ``new_start``."""
        return self.shifted(new_start - self.start)

    def scaled(self, factor: float) -> "BandwidthTrace":
        """A copy with all rates multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor!r}")
        return BandwidthTrace(self.times, self.rates * factor, name=self.name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BandwidthTrace):
            return NotImplemented
        return (
            np.array_equal(self.times, other.times)
            and np.array_equal(self.rates, other.rates)
        )

    def __hash__(self) -> int:  # identity hash; traces are mutable-free but big
        return object.__hash__(self)

    def __repr__(self) -> str:
        return (
            f"<BandwidthTrace {self.name!r} n={len(self)} "
            f"[{self.start:.0f}s..{self.end:.0f}s] "
            f"mean={self.mean_rate() / 1024:.1f}KB/s>"
        )


def constant_trace(rate: float, name: str = "constant") -> BandwidthTrace:
    """A trace with a single, constant rate (bytes/second)."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate!r}")
    return BandwidthTrace([0.0], [rate], name=name)


def merge_min(traces: Iterable[BandwidthTrace], name: str = "min") -> BandwidthTrace:
    """Pointwise minimum of several traces (bottleneck of a multi-hop path)."""
    traces = list(traces)
    if not traces:
        raise ValueError("need at least one trace")
    grid = np.unique(np.concatenate([t.times for t in traces]))
    rates = np.min(
        np.stack([[t.rate_at(x) for x in grid] for t in traces]), axis=0
    )
    return BandwidthTrace(grid, rates, name=name)
