"""Trace statistics, including the paper's change-interval analysis.

The paper analysed its traces and found that "the expected time between
significant changes in the bandwidth (>= 10%) was about 2 minutes", which
motivated the monitoring cache timeout ``T_thres = 40 s``.  This module
reproduces that analysis so the synthetic traces can be validated against
the reported statistic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.trace import BandwidthTrace


def change_intervals(
    trace: BandwidthTrace, threshold: float = 0.10
) -> np.ndarray:
    """Times between successive *significant* bandwidth changes.

    Walk the trace keeping a reference level; each time the rate deviates
    from the reference by at least ``threshold`` (relative), record the
    elapsed time since the previous significant change and reset the
    reference.  Returns an array of intervals in seconds (possibly empty).
    """
    if not 0 < threshold < 1:
        raise ValueError(f"threshold must be in (0, 1), got {threshold!r}")
    intervals: list[float] = []
    reference = float(trace.rates[0])
    last_change = float(trace.times[0])
    for t, r in zip(trace.times[1:], trace.rates[1:]):
        if abs(r - reference) / reference >= threshold:
            intervals.append(float(t) - last_change)
            last_change = float(t)
            reference = float(r)
    return np.asarray(intervals)


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one bandwidth trace."""

    name: str
    mean_rate: float
    median_rate: float
    min_rate: float
    max_rate: float
    #: Coefficient of variation of the sampled rates.
    cv: float
    #: Mean seconds between >=10% bandwidth changes (NaN if none occurred).
    mean_change_interval: float
    #: Number of >=10% changes observed.
    n_changes: int


def trace_stats(trace: BandwidthTrace, threshold: float = 0.10) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace``."""
    rates = trace.rates
    intervals = change_intervals(trace, threshold)
    mean = float(np.mean(rates))
    return TraceStats(
        name=trace.name,
        mean_rate=mean,
        median_rate=float(np.median(rates)),
        min_rate=float(np.min(rates)),
        max_rate=float(np.max(rates)),
        cv=float(np.std(rates) / mean) if mean > 0 else float("nan"),
        mean_change_interval=(
            float(np.mean(intervals)) if intervals.size else float("nan")
        ),
        n_changes=int(intervals.size),
    )


def library_change_interval(
    traces: list[BandwidthTrace], threshold: float = 0.10
) -> float:
    """Mean >=10%-change interval pooled across a list of traces."""
    pooled: list[np.ndarray] = []
    for trace in traces:
        intervals = change_intervals(trace, threshold)
        if intervals.size:
            pooled.append(intervals)
    if not pooled:
        return float("nan")
    return float(np.mean(np.concatenate(pooled)))
