"""The synthetic stand-in for the paper's multi-day Internet bandwidth study.

The paper collected two-day bandwidth traces between "US hosts (east coast,
west coast, midwest and south), European hosts (in Spain, France and
Austria) and one host in Brazil" and assigned those traces uniformly at
random to the links of a complete graph for each experiment configuration.

:class:`InternetStudy` reproduces the study: it defines a comparable host
roster, derives a base rate for every host pair from a region-pair rate
table (late-1990s application-level TCP rates), and synthesises a two-day
trace per pair with :class:`~repro.traces.synthetic.SyntheticTraceModel`.
The result is a :class:`TraceLibrary` from which experiment configurations
draw random link assignments, exactly as in §4 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.traces.synthetic import KB, SyntheticTraceModel, TraceGenParams
from repro.traces.trace import BandwidthTrace


@dataclass(frozen=True)
class StudyHost:
    """A host participating in the bandwidth study."""

    name: str
    #: Coarse region key used to look up pairwise base rates.
    region: str
    #: Hours ahead of UTC (eastern US is -5, central Europe +1, ...).
    tz_offset_hours: float

    def __str__(self) -> str:
        return self.name


#: The default roster, mirroring the paper's geography (12 hosts ⇒ 66 pairs,
#: "a large number of host-pairs").
DEFAULT_HOSTS: tuple[StudyHost, ...] = (
    StudyHost("umd", "us-east", -5.0),
    StudyHost("rutgers", "us-east", -5.0),
    StudyHost("ucla", "us-west", -8.0),
    StudyHost("ucsb", "us-west", -8.0),
    StudyHost("wisc", "us-midwest", -6.0),
    StudyHost("uiuc", "us-midwest", -6.0),
    StudyHost("utexas", "us-south", -6.0),
    StudyHost("gatech", "us-south", -5.0),
    StudyHost("upm-es", "eu", 1.0),
    StudyHost("inria-fr", "eu", 1.0),
    StudyHost("tuwien-at", "eu", 1.0),
    StudyHost("ufrj-br", "br", -3.0),
)

#: Median application-level TCP bandwidth (bytes/s) by region pair,
#: late-1990s levels (16 KB messages over shared transit links).  Keys are
#: frozensets of region names; same-region pairs use the singleton set.
REGION_PAIR_BASE_RATES: dict[frozenset[str], float] = {
    frozenset({"us-east"}): 55 * KB,
    frozenset({"us-west"}): 55 * KB,
    frozenset({"us-midwest"}): 55 * KB,
    frozenset({"us-south"}): 55 * KB,
    frozenset({"us-east", "us-west"}): 30 * KB,
    frozenset({"us-east", "us-midwest"}): 40 * KB,
    frozenset({"us-east", "us-south"}): 40 * KB,
    frozenset({"us-west", "us-midwest"}): 35 * KB,
    frozenset({"us-west", "us-south"}): 30 * KB,
    frozenset({"us-midwest", "us-south"}): 40 * KB,
    frozenset({"eu"}): 35 * KB,
    frozenset({"us-east", "eu"}): 12 * KB,
    frozenset({"us-west", "eu"}): 9 * KB,
    frozenset({"us-midwest", "eu"}): 10 * KB,
    frozenset({"us-south", "eu"}): 10 * KB,
    frozenset({"br"}): 12 * KB,
    frozenset({"us-east", "br"}): 6 * KB,
    frozenset({"us-west", "br"}): 5 * KB,
    frozenset({"us-midwest", "br"}): 5 * KB,
    frozenset({"us-south", "br"}): 6 * KB,
    frozenset({"eu", "br"}): 3 * KB,
}

#: Lognormal sigma applied to the base rate per pair (path diversity).
#: Late-1990s application-level rates spanned orders of magnitude between
#: pairs; this default reproduces that spread.
DEFAULT_PAIR_RATE_SIGMA = 0.85


def pair_key(a: str, b: str) -> tuple[str, str]:
    """Canonical (sorted) key for an unordered host pair."""
    if a == b:
        raise ValueError(f"a host has no trace to itself: {a!r}")
    return (a, b) if a < b else (b, a)


class TraceLibrary:
    """A collection of per-host-pair bandwidth traces.

    The library is what the experiment harness samples from: each network
    configuration assigns one library trace to every link of the complete
    graph, uniformly at random (with replacement), as in the paper.
    """

    def __init__(
        self,
        hosts: Sequence[StudyHost],
        traces: dict[tuple[str, str], BandwidthTrace],
        tz_offsets: Optional[dict[tuple[str, str], float]] = None,
    ) -> None:
        self.hosts = tuple(hosts)
        self._traces = dict(traces)
        #: Effective timezone (hours from UTC) of each pair's path; used to
        #: extract the "experiments start at noon" segments (§4).
        self.tz_offsets = dict(tz_offsets or {})
        host_names = {h.name for h in hosts}
        for a, b in self._traces:
            if a not in host_names or b not in host_names:
                raise ValueError(f"trace for unknown host pair ({a!r}, {b!r})")
        #: Sorted key tuple, computed once: :meth:`sample` draws by index
        #: into this tuple, so sampling is O(1) instead of re-sorting all
        #: pair keys per draw — and the draw order is frozen at
        #: construction, immune to any later mutation of ``_traces``.
        self._sorted_keys: tuple[tuple[str, str], ...] = tuple(
            sorted(self._traces)
        )
        #: Per-pair noon segments, built once on first use (or eagerly by
        #: :meth:`warm_noon_segments`).  A noon segment depends only on the
        #: pair's trace and timezone — both frozen — so every draw of a
        #: pair returns the *same* immutable segment object, prefix sums
        #: precomputed and shared read-only across configurations, runs
        #: and sweep workers.
        self._noon_segments: dict[tuple[str, str], BandwidthTrace] = {}

    def __len__(self) -> int:
        return len(self._traces)

    def pairs(self) -> Iterator[tuple[str, str]]:
        """Iterate over the host pairs with traces, in sorted order."""
        return iter(self._sorted_keys)

    def trace(self, a: str, b: str) -> BandwidthTrace:
        """The trace for the unordered pair ``{a, b}``."""
        return self._traces[pair_key(a, b)]

    def all_traces(self) -> list[BandwidthTrace]:
        """All traces, ordered by their (sorted) pair key."""
        return [self._traces[key] for key in self._sorted_keys]

    def sample(self, rng: np.random.Generator) -> BandwidthTrace:
        """Draw one trace uniformly at random (with replacement)."""
        keys = self._sorted_keys
        return self._traces[keys[int(rng.integers(len(keys)))]]

    def sample_many(self, rng: np.random.Generator, n: int) -> list[BandwidthTrace]:
        """Draw ``n`` traces with one vectorized index draw.

        The PCG64 ``integers`` stream is identical whether drawn one at a
        time or as a batch (pinned by ``tests/traces/test_study.py``), so
        this returns exactly what ``n`` successive :meth:`sample` calls
        would — minus ``n - 1`` generator round-trips.
        """
        keys = self._sorted_keys
        traces = self._traces
        indices = rng.integers(len(keys), size=n)
        return [traces[keys[i]] for i in indices]

    def noon_segment_for(self, key: tuple[str, str]) -> BandwidthTrace:
        """The (cached) noon-rebased segment of one pair's trace."""
        segment = self._noon_segments.get(key)
        if segment is None:
            tz = self.tz_offsets.get(key, 0.0)
            segment = noon_segment(self._traces[key], tz).ensure_cum()
            self._noon_segments[key] = segment
        return segment

    def warm_noon_segments(self) -> "TraceLibrary":
        """Precompute every pair's noon segment (and its prefix sums).

        Sweep drivers and pool workers call this once so that configuration
        sampling never builds a segment inside a timed/simulated region;
        returns ``self`` for chaining.
        """
        for key in self._sorted_keys:
            self.noon_segment_for(key)
        return self

    def sample_noon_segment(self, rng: np.random.Generator) -> BandwidthTrace:
        """Draw one trace and rebase it to start at the path's local noon.

        This is how experiment configurations consume the library: "all
        experiments were run as if they started at noon" (§4).  Segments
        are cached per pair, so repeated draws of one pair return the same
        immutable object (bit-identical values to rebuilding it).
        """
        keys = self._sorted_keys
        return self.noon_segment_for(keys[int(rng.integers(len(keys)))])

    def sample_noon_segments(
        self, rng: np.random.Generator, n: int
    ) -> list[BandwidthTrace]:
        """Draw ``n`` noon segments with one vectorized index draw.

        Exactly equivalent to ``n`` successive :meth:`sample_noon_segment`
        calls (same rng stream, same cached segment objects); this is the
        batch entry point :func:`repro.experiments.config.make_configuration`
        uses to sample a whole network configuration at NumPy speed.
        """
        keys = self._sorted_keys
        indices = rng.integers(len(keys), size=n)
        return [self.noon_segment_for(keys[i]) for i in indices]


class InternetStudy:
    """Synthesises the paper's multi-day bandwidth study.

    Parameters
    ----------
    hosts:
        Host roster; defaults to :data:`DEFAULT_HOSTS`.
    params:
        Trace-model knobs.
    seed:
        Master seed; the same seed always yields the same library.
    """

    def __init__(
        self,
        hosts: Sequence[StudyHost] = DEFAULT_HOSTS,
        params: Optional[TraceGenParams] = None,
        seed: int = 1998,
        pair_rate_sigma: float = DEFAULT_PAIR_RATE_SIGMA,
    ) -> None:
        if len(hosts) < 2:
            raise ValueError("the study needs at least two hosts")
        if pair_rate_sigma < 0:
            raise ValueError("pair_rate_sigma must be non-negative")
        names = [h.name for h in hosts]
        if len(set(names)) != len(names):
            raise ValueError("host names must be unique")
        self.hosts = tuple(hosts)
        self.params = params or TraceGenParams()
        self.seed = seed
        self.pair_rate_sigma = pair_rate_sigma
        self._model = SyntheticTraceModel(self.params)

    def base_rate(self, a: StudyHost, b: StudyHost) -> float:
        """Region-table base rate (bytes/s) for a host pair."""
        key = frozenset({a.region, b.region})
        try:
            return REGION_PAIR_BASE_RATES[key]
        except KeyError:
            raise KeyError(
                f"no base rate for region pair {sorted(key)!r}"
            ) from None

    def run(self) -> TraceLibrary:
        """Collect the study: one two-day trace per host pair."""
        rng = np.random.default_rng(self.seed)
        traces: dict[tuple[str, str], BandwidthTrace] = {}
        tz_offsets: dict[tuple[str, str], float] = {}
        for i, a in enumerate(self.hosts):
            for b in self.hosts[i + 1 :]:
                key = pair_key(a.name, b.name)
                base = self.base_rate(a, b)
                # Path diversity: individual pairs deviate from the
                # regional median by a lognormal factor.
                base *= float(np.exp(rng.normal(0.0, self.pair_rate_sigma)))
                tz = (a.tz_offset_hours + b.tz_offset_hours) / 2.0
                tz_offsets[key] = tz
                traces[key] = self._model.generate(
                    base_rate=base,
                    rng=rng,
                    tz_offset_hours=tz,
                    name=f"{key[0]}~{key[1]}",
                )
        return TraceLibrary(self.hosts, traces, tz_offsets)


def noon_segment(trace: BandwidthTrace, tz_offset_hours: float = 0.0) -> BandwidthTrace:
    """The trace from the first local noon onward, rebased to t=0.

    The paper ran every experiment "as if it started at noon"; trace time 0
    is midnight UTC, so local noon is ``(12 - tz) * 3600`` UTC seconds.
    """
    noon_utc = ((12.0 - tz_offset_hours) % 24.0) * 3600.0
    segment = trace.segment(noon_utc, trace.end)
    return segment.rebased(0.0)
