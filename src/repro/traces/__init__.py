"""Bandwidth traces: representation, synthesis, statistics and I/O.

The paper drives its simulations with real two-day Internet bandwidth
traces collected by repeatedly timing 16 KB round-trip transfers between
host pairs in the US, Europe and Brazil.  Those traces are not available,
so this package provides a synthetic substitute (see
:mod:`repro.traces.synthetic` and :mod:`repro.traces.study`) calibrated to
the statistic the paper reports: bandwidth changes of at least 10 % occur
roughly every two minutes in expectation, with both transient bursts and
persistent (hours-long) shifts.

:class:`~repro.traces.trace.BandwidthTrace` is a step function of time
(bytes/second).  Transfers *integrate* the step function, so a transfer
that straddles a bandwidth change is slowed/accelerated mid-flight exactly
as it would be on a real path.
"""

from repro.traces.trace import BandwidthTrace, TraceCursor, constant_trace
from repro.traces.synthetic import SyntheticTraceModel, TraceGenParams
from repro.traces.study import InternetStudy, StudyHost, TraceLibrary
from repro.traces.stats import TraceStats, change_intervals, trace_stats
from repro.traces.transform import (
    clip_rates,
    load_trace_measurements,
    resample,
    stitch,
)
from repro.traces.io import (
    load_library_json,
    load_trace_csv,
    load_trace_json,
    save_library_json,
    save_trace_csv,
    save_trace_json,
)

__all__ = [
    "BandwidthTrace",
    "InternetStudy",
    "StudyHost",
    "SyntheticTraceModel",
    "TraceGenParams",
    "TraceCursor",
    "TraceLibrary",
    "TraceStats",
    "change_intervals",
    "clip_rates",
    "constant_trace",
    "load_library_json",
    "load_trace_csv",
    "load_trace_json",
    "load_trace_measurements",
    "resample",
    "save_library_json",
    "save_trace_csv",
    "save_trace_json",
    "stitch",
    "trace_stats",
]
