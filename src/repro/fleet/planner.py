"""The fleet planner family: any per-query planner, coordinated.

:class:`FleetPlanner` implements the :class:`~repro.placement.base.Planner`
protocol by wrapping an inner planner (global, one-shot, local rules,
download-all) with the fleet coordinator's two levers:

* **link-claim-aware cost estimation** — the inner search sees the
  coordinator's residual bandwidth (``raw / (1 + other claimants)``)
  instead of the raw shared monitoring estimate, so plans route around
  links other queries already saturate;
* **relocation-budget arbitration** — a proposed placement change must
  win the coordinator's token-bucket grant; a denied proposal collapses
  to the starting placement, which the engine's controllers treat as
  "no change" (the global controller early-returns on placement
  equality, the local controller keeps the operator in place).

The wrapper emits exactly one ``planner.search`` event per ``plan``
call under its own algorithm name (the inner search runs untraced), so
trace replay and planner-effort accounting see the fleet planner as a
first-class algorithm.

The inner planner's engine passes straight through: a residual view
wrapping a snapshot-safe estimator is itself snapshot-safe (the claim
map is frozen per wrap), so coordinated controller replans run on the
vectorized batch engine by default, and each ``plan`` call's fresh
residual view gets a fresh bandwidth snapshot.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.dataflow.critical import placement_cost
from repro.dataflow.placement import Placement
from repro.obs.events import PLANNER_SEARCH
from repro.obs.tracer import ensure_tracer
from repro.placement.base import Planner, PlanResult
from repro.placement.local_rules import LocalSiteDecision

from repro.fleet.coordinator import FleetCoordinator


class FleetPlanner:
    """Coordinate one query's inner planner through the fleet arbiter.

    ``stage`` separates the two planning opportunities: ``"initial"``
    (t=0 placement, residual estimation only — there is nothing placed
    yet to relocate) and ``"controller"`` (run-time replanning, residual
    estimation *and* relocation arbitration).
    """

    def __init__(
        self,
        inner: Planner,
        coordinator: FleetCoordinator,
        query_id: str,
        *,
        stage: str = "controller",
    ) -> None:
        if stage not in ("initial", "controller"):
            raise ValueError(f"unknown fleet planning stage {stage!r}")
        self.inner = inner
        self.coordinator = coordinator
        self.query_id = query_id
        self.stage = stage
        self.name = coordinator.policy.planner_name

    # The engine's controllers reach through the planner for the cost
    # model, the tree and similar inner attributes; forward anything
    # this wrapper does not define itself.
    def __getattr__(self, attr):
        return getattr(self.inner, attr)

    def plan(
        self,
        estimator,
        initial: Placement,
        *,
        seed: Optional[int] = None,
        tracer=None,
        now: float = 0.0,
    ) -> PlanResult:
        residual = self.coordinator.residual_estimator(self.query_id, estimator)
        result = self.inner.plan(
            residual, initial, seed=seed, tracer=None, now=now
        )
        cost = result.cost
        placement = result.placement
        if self.stage == "controller" and placement != initial:
            granted = self.coordinator.arbitrate(
                self.query_id, initial, placement, now, tracer
            )
            if not granted:
                placement = initial
                cost = placement_cost(
                    self.inner.tree, initial, self.inner.cost_model, residual
                )
        tracer = ensure_tracer(tracer)
        if tracer.enabled:
            tracer.emit(
                PLANNER_SEARCH,
                now,
                algorithm=self.name,
                rounds=result.rounds,
                candidates=result.candidates_evaluated,
                links=len(result.links_queried),
                cost=cost,
            )
        return PlanResult(
            placement=placement,
            cost=cost,
            rounds=result.rounds,
            candidates_evaluated=result.candidates_evaluated,
            links_queried=result.links_queried,
            algorithm=self.name,
        )

    def decide(
        self,
        *,
        current_host: str,
        producer_hosts: Sequence[str],
        producer_sizes: Sequence[float],
        consumer_host: str,
        output_size: float,
        estimator,
        extra_candidates: Sequence[str] = (),
        compute_seconds: float = 0.0,
    ) -> LocalSiteDecision:
        """Coordinated per-operator decision for the local algorithm.

        The inner rule evaluates candidate sites under residual
        bandwidth; a winning move must then clear the arbiter, else the
        decision collapses to "stay put" (best == current).
        """
        residual = self.coordinator.residual_estimator(self.query_id, estimator)
        decision = self.inner.decide(
            current_host=current_host,
            producer_hosts=producer_hosts,
            producer_sizes=producer_sizes,
            consumer_host=consumer_host,
            output_size=output_size,
            estimator=residual,
            extra_candidates=extra_candidates,
            compute_seconds=compute_seconds,
        )
        if not decision.should_move:
            return decision
        granted = self.coordinator.arbitrate_operator_move(
            self.query_id, current_host, decision.best_site
        )
        if granted:
            return decision
        return LocalSiteDecision(
            best_site=current_host,
            best_cost=decision.current_cost,
            current_cost=decision.current_cost,
            costs=decision.costs,
        )
