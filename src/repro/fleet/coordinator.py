"""The fleet coordinator: shared state for joint placement decisions.

One :class:`FleetCoordinator` serves a whole workload run.  It tracks
each active query's current placement (through the query's
:class:`~repro.engine.runtime.Runtime`), derives per-link *claims* —
how many queries currently move data over each canonical host pair —
and arbitrates relocation proposals through seeded, deterministic
token buckets so concurrent planners stop thrashing the same hot
links.

Determinism rules
-----------------

* The coordinator never reads wall clocks or global RNG state.  Time
  comes from an injected ``clock`` (the workload engine passes
  ``lambda: env.now``); tie-breaks hash ``(seed, query_id)`` through
  CRC32, which is stable across processes and Python hash seeds.
* Claims are recomputed from the registered runtimes' live placements
  on demand, iterating queries in sorted ``query_id`` order, so the
  residual view is a pure function of simulation state.
* Token buckets refill lazily (``tokens(t) = min(capacity, tokens +
  (t - t_last) / refill_seconds)``); no timers, no background
  processes, nothing the DES calendar could reorder.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.dataflow.placement import Placement
from repro.dataflow.tree import CombinationTree
from repro.obs import events as ev
from repro.obs.tracer import NULL_TRACER


def canonical_link(a: str, b: str) -> "tuple[str, str]":
    """The order-independent key for a host pair."""
    return (a, b) if a < b else (b, a)


def link_key(a: str, b: str) -> str:
    """The JSON-friendly ``"a|b"`` form of a canonical link."""
    x, y = canonical_link(a, b)
    return f"{x}|{y}"


def placement_links(
    tree: CombinationTree, placement: Placement
) -> "frozenset[tuple[str, str]]":
    """The canonical cross-host links a placement moves data over."""
    links = set()
    for node in tree.nodes():
        parent = node.parent
        if parent is None:
            continue
        src = placement.host_of(node.node_id)
        dst = placement.host_of(parent)
        if src != dst:
            links.add(canonical_link(src, dst))
    return frozenset(links)


def runtime_links(runtime) -> "frozenset[tuple[str, str]]":
    """A running query's cross-host links from network ground truth.

    Reads actual actor locations rather than the runtime's
    ``current_placement`` snapshot, which the local algorithm never
    updates (its moves go operator by operator, not through barriers).
    """
    links = set()
    for node in runtime.tree.nodes():
        parent = node.parent
        if parent is None:
            continue
        src = runtime.host_of(node.node_id)
        dst = runtime.host_of(parent)
        if src != dst:
            links.add(canonical_link(src, dst))
    return frozenset(links)


@dataclass(frozen=True)
class FleetPolicy:
    """Configuration of the fleet coordination layer.

    ``mode`` selects the planner family: ``"coordinated"`` arbitrates
    relocations through the token buckets alone; ``"fair"`` additionally
    biases grants toward the query with the worst latency-to-SLO ratio
    (the others must leave ``fairness_reserve`` tokens in every bucket
    they touch, while the worst-off query may dip into the reserve).
    """

    mode: str = "coordinated"
    #: Token-bucket capacity per link/host (relocations it can absorb
    #: back to back before refill gates further churn).
    link_tokens: float = 2.0
    #: Seconds to regenerate one token.
    token_refill_seconds: float = 120.0
    #: Tokens the fair mode reserves for the worst-urgency query.
    fairness_reserve: float = 0.5
    #: Seed for deterministic tie-breaking between equal-urgency queries.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("coordinated", "fair"):
            raise ValueError(
                f"fleet mode must be 'coordinated' or 'fair', got {self.mode!r}"
            )
        if self.link_tokens <= 0:
            raise ValueError("link_tokens must be positive")
        if self.token_refill_seconds <= 0:
            raise ValueError("token_refill_seconds must be positive")
        if self.fairness_reserve < 0:
            raise ValueError("fairness_reserve must be non-negative")

    @property
    def fair(self) -> bool:
        return self.mode == "fair"

    @property
    def planner_name(self) -> str:
        return f"fleet-{self.mode}"


class _ActiveQuery:
    """Registration record for one in-flight query."""

    __slots__ = ("query_id", "runtime", "class_name", "slo", "issued_at",
                 "tracer")

    def __init__(self, query_id, runtime, class_name, slo, issued_at, tracer):
        self.query_id = query_id
        self.runtime = runtime
        self.class_name = class_name
        self.slo = slo
        self.issued_at = issued_at
        self.tracer = tracer


class FleetCoordinator:
    """Tracks the active query set and arbitrates relocation budgets.

    The coordinator is passive: planners and the workload engine call
    into it; it never schedules events of its own.  ``sink`` is any
    object with a ``coordination_event(kind, class_name=, link=,
    value=)`` method (both workload metrics sinks qualify); ``clock``
    supplies simulation time for token refill.
    """

    def __init__(
        self,
        policy: FleetPolicy,
        sink: Any = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.policy = policy
        self.sink = sink
        self.clock = clock or (lambda: 0.0)
        self._active: dict[str, _ActiveQuery] = {}
        #: bucket key -> (tokens, last refill time)
        self._buckets: dict[str, tuple[float, float]] = {}
        #: query_id -> (moveset signature, granted, ruled at) of the last
        #: ruling, so a controller's dry run and final plan of the
        #: identical moveset charge the buckets once.
        self._last_ruling: dict[str, tuple[tuple, bool, float]] = {}

    def wrapper_for(self, query_id: str):
        """A ``(planner, stage) -> FleetPlanner`` hook for ``build_query``."""
        def wrap(planner, stage):
            from repro.fleet.planner import FleetPlanner

            return FleetPlanner(planner, self, query_id, stage=stage)

        return wrap

    # -- registration -------------------------------------------------------
    def query_launched(
        self,
        query_id: str,
        runtime,
        class_name: Optional[str] = None,
        slo: Optional[float] = None,
    ) -> None:
        """Register a launched query and claim its initial links."""
        now = self.clock()
        record = _ActiveQuery(
            query_id, runtime, class_name, slo, now, runtime.tracer
        )
        self._active[query_id] = record
        links = runtime_links(runtime)
        if record.tracer.enabled:
            record.tracer.emit(
                ev.FLEET_CLAIM,
                now,
                query_class=class_name,
                links=len(links),
            )
        if self.sink is not None:
            self.sink.coordination_event("claim", class_name=class_name)

    def query_done(self, query_id: str) -> None:
        """Release a finished query's claims."""
        self._active.pop(query_id, None)
        self._last_ruling.pop(query_id, None)

    @property
    def active_count(self) -> int:
        return len(self._active)

    # -- claims & residual bandwidth ---------------------------------------
    def link_claims(self) -> "dict[tuple[str, str], int]":
        """How many active queries currently use each canonical link."""
        claims: dict[tuple[str, str], int] = {}
        for query_id in sorted(self._active):
            for link in runtime_links(self._active[query_id].runtime):
                claims[link] = claims.get(link, 0) + 1
        return claims

    def residual_estimator(self, query_id: str, raw) -> Callable[[str, str], float]:
        """Wrap a bandwidth estimator with the contention-adjusted view.

        A link claimed by ``n`` *other* active queries reports
        ``raw / (1 + n)``: the fair share the planner's transfers would
        actually get once everyone's streams contend.  The claim map is
        snapshotted once per wrap (one planning run), keeping the search
        internally consistent.
        """
        claims: dict[tuple[str, str], int] = {}
        for qid in sorted(self._active):
            if qid == query_id:
                continue  # own links never discount the query's own view
            for link in runtime_links(self._active[qid].runtime):
                claims[link] = claims.get(link, 0) + 1

        def estimate(a: str, b: str) -> float:
            bandwidth = raw(a, b)
            if a == b:
                return bandwidth
            others = claims.get(canonical_link(a, b), 0)
            return bandwidth / (1 + others) if others else bandwidth

        # The wrapper itself is pure (claims are snapshotted above), so
        # the vectorized planner engine may freeze it into a bandwidth
        # matrix exactly when the raw estimator allows it.
        estimate.snapshot_safe = getattr(raw, "snapshot_safe", True)
        return estimate

    # -- the relocation-budget arbiter --------------------------------------
    def _bucket_tokens(self, key: str, now: float) -> float:
        state = self._buckets.get(key)
        if state is None:
            return self.policy.link_tokens
        tokens, last = state
        refill = (now - last) / self.policy.token_refill_seconds
        return min(self.policy.link_tokens, tokens + max(refill, 0.0))

    def _charge(self, key: str, now: float) -> None:
        self._buckets[key] = (self._bucket_tokens(key, now) - 1.0, now)

    def _tie(self, query_id: str) -> int:
        return zlib.crc32(f"{self.policy.seed}:{query_id}".encode())

    def _urgency(self, record: _ActiveQuery, now: float) -> float:
        elapsed = max(now - record.issued_at, 0.0)
        if record.slo:
            return elapsed / record.slo
        return elapsed

    def _is_worst_off(self, query_id: str, now: float) -> bool:
        """Does this query have the worst latency-to-SLO ratio right now?"""
        if query_id not in self._active:
            return False
        worst = max(
            self._active,
            key=lambda qid: (
                self._urgency(self._active[qid], now),
                self._tie(qid),
            ),
        )
        return worst == query_id

    @staticmethod
    def moveset(current: Placement, proposed: Placement) -> "tuple[tuple[str, str, str], ...]":
        """The ``(node, old_host, new_host)`` moves a proposal implies."""
        return tuple(proposed.moves_from(current))

    def arbitrate(
        self,
        query_id: str,
        current: Placement,
        proposed: Placement,
        now: float,
        tracer=None,
    ) -> bool:
        """Grant or deny a proposed placement change.

        Each move charges one token from the state-transfer link's
        bucket and the destination host's bucket.  In fair mode the
        worst-urgency query may dip ``fairness_reserve`` below one
        token; every other query must leave the reserve untouched.
        Identical back-to-back proposals by the same query (the global
        controller's dry run then final plan) reuse the first ruling
        without charging twice.
        """
        moves = self.moveset(current, proposed)
        if not moves:
            return True
        signature = moves
        last = self._last_ruling.get(query_id)
        if (
            last is not None
            and last[0] == signature
            and now - last[2] < self.policy.token_refill_seconds
        ):
            # Same proposal within one refill window (the dry run and
            # final plan of one controller round): one ruling, one charge.
            return last[1]

        record = self._active.get(query_id)
        class_name = record.class_name if record else None
        if tracer is None:
            tracer = record.tracer if record else NULL_TRACER

        keys = sorted(
            {link_key(old, new) for _, old, new in moves}
            | {new for _, _, new in moves}
        )
        need = 1.0
        urgency = self._urgency(record, now) if record else 0.0
        if self.policy.fair:
            if self._is_worst_off(query_id, now):
                need = 1.0 - self.policy.fairness_reserve
            else:
                need = 1.0 + self.policy.fairness_reserve

        granted = self._rule(
            keys, len(moves), need, urgency, now, tracer, class_name
        )
        self._last_ruling[query_id] = (signature, granted, now)
        if granted:
            self._note_rebalance(record, current, proposed, now, tracer)
        return granted

    def _rule(
        self,
        keys: "list[str]",
        n_moves: int,
        need: float,
        urgency: float,
        now: float,
        tracer,
        class_name: Optional[str],
    ) -> bool:
        """Apply the token threshold to a key set; charge and emit."""
        bottleneck = None
        for key in keys:
            if self._bucket_tokens(key, now) < need:
                bottleneck = key
                break
        granted = bottleneck is None
        if granted:
            for key in keys:
                self._charge(key, now)
            if tracer.enabled:
                tracer.emit(
                    ev.FLEET_GRANT,
                    now,
                    query_class=class_name,
                    moves=n_moves,
                    links=len(keys),
                    urgency=urgency,
                )
            if self.sink is not None:
                self.sink.coordination_event(
                    "grant", class_name=class_name, value=n_moves
                )
        else:
            if tracer.enabled:
                tracer.emit(
                    ev.FLEET_DENY,
                    now,
                    query_class=class_name,
                    moves=n_moves,
                    bottleneck=bottleneck,
                    urgency=urgency,
                )
            if self.sink is not None:
                self.sink.coordination_event(
                    "deny", class_name=class_name, link=bottleneck
                )
        return granted

    def arbitrate_operator_move(
        self, query_id: str, old_host: str, new_host: str
    ) -> bool:
        """Single-operator arbitration for the local algorithm's decisions.

        The local rule fires per operator per epoch with no placement
        object in hand, so this path charges the state-transfer link and
        destination host directly.  Denies are free (the operator just
        stays), so repeated denied epochs never drain the buckets.
        """
        if old_host == new_host:
            return True
        now = self.clock()
        record = self._active.get(query_id)
        class_name = record.class_name if record else None
        tracer = record.tracer if record else NULL_TRACER
        keys = sorted({link_key(old_host, new_host), new_host})
        need = 1.0
        urgency = self._urgency(record, now) if record else 0.0
        if self.policy.fair:
            if self._is_worst_off(query_id, now):
                need = 1.0 - self.policy.fairness_reserve
            else:
                need = 1.0 + self.policy.fairness_reserve
        return self._rule(keys, 1, need, urgency, now, tracer, class_name)

    def _note_rebalance(
        self, record, current: Placement, proposed: Placement, now: float, tracer
    ) -> None:
        if record is None:
            return
        before = placement_links(record.runtime.tree, current)
        after = placement_links(record.runtime.tree, proposed)
        if before == after:
            return
        if tracer.enabled:
            tracer.emit(
                ev.FLEET_REBALANCE,
                now,
                query_class=record.class_name,
                links_before=len(before),
                links_after=len(after),
            )
        if self.sink is not None:
            self.sink.coordination_event(
                "rebalance", class_name=record.class_name
            )
