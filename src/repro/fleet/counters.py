"""Coordination tallies carried by every workload metrics sink.

Mirrors :class:`repro.workload.overload.ResilienceCounters`: all state
is integers and an int map, every merge is commutative and associative,
so sharded sinks fold order-invariantly.  ``engaged`` stays false until
a coordination event moves a counter; a dormant instance adds nothing
to the summary dict, which keeps no-coordinator summaries bit-identical
to pre-fleet ones.

The planner-effort totals (``planner_rounds``, ``planner_candidates``,
``planner_links_queried``) accumulate on *every* run — they come from
:class:`~repro.placement.base.PlanResult` via per-query metrics — but
only surface in the summary when coordination engaged, so the
measurable overhead of coordination rides in the same block without
perturbing defaults-off output.  ``planner_links_queried`` is the sum
over searches of each search's *distinct* link count (the ``links``
field of ``planner.search`` events), which is what replays bit-exactly
from a trace.
"""

from __future__ import annotations

from typing import Any, Optional


class CoordinationCounters:
    """Fleet-coordination tallies (claims, grants, denies, effort)."""

    __slots__ = (
        "claims",
        "grants",
        "denies",
        "rebalances",
        "granted_moves",
        "denied_links",
        "planner_rounds",
        "planner_candidates",
        "planner_links_queried",
    )

    def __init__(self) -> None:
        self.claims = 0
        self.grants = 0
        self.denies = 0
        self.rebalances = 0
        self.granted_moves = 0
        self.denied_links: dict[str, int] = {}
        self.planner_rounds = 0
        self.planner_candidates = 0
        self.planner_links_queried = 0

    @property
    def engaged(self) -> bool:
        """True once any *coordination* event moved a counter.

        Planner-effort totals deliberately do not engage the block:
        they move on every run, coordinated or not.
        """
        return bool(
            self.claims or self.grants or self.denies or self.rebalances
        )

    def note(
        self,
        kind: str,
        class_name: Optional[str] = None,
        link: Optional[str] = None,
        value: Any = None,
    ) -> None:
        """Record one coordination transition (live engine or replay)."""
        if kind == "claim":
            self.claims += 1
        elif kind == "grant":
            self.grants += 1
            self.granted_moves += int(value or 0)
        elif kind == "deny":
            self.denies += 1
            if link is not None:
                self.denied_links[link] = self.denied_links.get(link, 0) + 1
        elif kind == "rebalance":
            self.rebalances += 1
        else:
            raise ValueError(f"unknown coordination event kind {kind!r}")

    def note_effort(self, rounds: int, candidates: int, links: int) -> None:
        """Accumulate one query's planner-effort totals."""
        self.planner_rounds += rounds
        self.planner_candidates += candidates
        self.planner_links_queried += links

    def merge(self, other: "CoordinationCounters") -> None:
        self.claims += other.claims
        self.grants += other.grants
        self.denies += other.denies
        self.rebalances += other.rebalances
        self.granted_moves += other.granted_moves
        for link, count in other.denied_links.items():
            self.denied_links[link] = self.denied_links.get(link, 0) + count
        self.planner_rounds += other.planner_rounds
        self.planner_candidates += other.planner_candidates
        self.planner_links_queried += other.planner_links_queried

    def block(self) -> dict[str, Any]:
        """The summary dict's ``"fleet"`` block.

        Everything derives from merged integer counters, so the block is
        identical no matter the shard fold order.
        """
        decisions = self.grants + self.denies
        return {
            "claims": self.claims,
            "grants": self.grants,
            "denies": self.denies,
            "rebalances": self.rebalances,
            "granted_moves": self.granted_moves,
            "grant_rate": self.grants / decisions if decisions else 1.0,
            "denied_links": dict(sorted(self.denied_links.items())),
            "planner_rounds": self.planner_rounds,
            "planner_candidates": self.planner_candidates,
            "planner_links_queried": self.planner_links_queried,
        }
