"""Fleet-aware joint placement: coordinating concurrent queries.

PR 4 made concurrent queries genuinely contend for NICs and links, and
the overload layer (PR 8) reacts when the fleet melts down — but each
query's planner still optimized alone on the *shared* monitoring
estimates, so concurrent relocations thrashed the same hot links.  This
package is the proactive half: a :class:`FleetCoordinator` tracks the
active query set's link claims, and the :class:`FleetPlanner` family
wraps any per-query planner with residual (contention-adjusted)
bandwidth estimation plus a seeded, deterministic relocation-budget
arbiter, optionally biased toward the worst latency-to-SLO query
("fair" mode, optimizing the Jain index the fleet summary reports).

Layering: this package sits above :mod:`repro.placement` and below
:mod:`repro.workload` (which wires a coordinator into the engine when
``WorkloadSpec.fleet`` is set); it never imports the workload layer —
the metrics sink arrives duck-typed.

The two planner modes register with the placement registry as
``"fleet-coordinated"`` and ``"fleet-fair"``, so
:func:`repro.placement.planner_for` can build standalone instances
(each with a private single-query coordinator) for offline use.
"""

from repro.placement import register_planner
from repro.placement.global_planner import GlobalPlanner

from repro.fleet.coordinator import (
    FleetCoordinator,
    FleetPolicy,
    canonical_link,
    link_key,
    placement_links,
    runtime_links,
)
from repro.fleet.counters import CoordinationCounters
from repro.fleet.planner import FleetPlanner


def _fleet_factory(mode: str):
    def factory(tree, hosts, cost_model, *, server_replicas=None,
                max_rounds=200, extra_candidates=0,
                planner_engine="vectorized"):
        inner = GlobalPlanner(tree, hosts, cost_model, max_rounds,
                              server_replicas, planner_engine)
        coordinator = FleetCoordinator(FleetPolicy(mode=mode))
        return FleetPlanner(inner, coordinator, "standalone")
    return factory


register_planner("fleet-coordinated", _fleet_factory("coordinated"))
register_planner("fleet-fair", _fleet_factory("fair"))

__all__ = [
    "CoordinationCounters",
    "FleetCoordinator",
    "FleetPlanner",
    "FleetPolicy",
    "canonical_link",
    "link_key",
    "placement_links",
    "runtime_links",
]
