"""Hosts: single-NIC sites with disk, CPU and per-actor mailboxes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.net.message import Message
from repro.sim import Environment, Resource
from repro.sim.stores import PriorityItem, PriorityStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.stores import StoreGet


@dataclass
class HostStats:
    """Per-host traffic accounting."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: float = 0.0
    bytes_received: float = 0.0
    #: Seconds the NIC spent occupied by transfers.
    nic_busy_time: float = 0.0


class _MessageStore(PriorityStore):
    """A priority store that hands back the bare message, not the wrapper."""

    def _take_item(self, event):
        entry = super()._take_item(event)
        return entry.item if isinstance(entry, PriorityItem) else entry


class Mailbox:
    """Priority-ordered queue of delivered messages for one actor."""

    def __init__(self, env: Environment) -> None:
        self._store = _MessageStore(env)
        self.env = env

    def deliver(self, message: Message) -> None:
        """Enqueue a delivered message (priority-ordered, FIFO in class)."""
        self._store.put(PriorityItem(int(message.priority or 0), message))

    def get(self) -> "StoreGet":
        """Event whose value is the next message (in priority order)."""
        return self._store.get()

    def __len__(self) -> int:
        return len(self._store)

    def drain(self) -> list[Message]:
        """Remove and return all queued messages (used when an actor moves)."""
        return [entry.item for entry in self._store.clear()]


class Host:
    """A participating site.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Unique host name.
    disk_rate:
        Sequential disk read bandwidth, bytes/second (paper: 3 MB/s).
    nic_capacity:
        Concurrent transfers the host's network attachment sustains
        (paper assumption 2: one).
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        disk_rate: float = 3 * 1024 * 1024,
        nic_capacity: int = 1,
    ) -> None:
        if disk_rate <= 0:
            raise ValueError(f"disk_rate must be positive, got {disk_rate!r}")
        if nic_capacity < 1:
            raise ValueError(f"nic_capacity must be >= 1, got {nic_capacity!r}")
        self.env = env
        self.name = name
        #: Concurrent transfers this host can sustain (paper assumption 2
        #: fixes this at one; the paper notes the assumption "can be
        #: relaxed", which this knob does).
        self.nic_capacity = nic_capacity
        #: Sequential-access disk.
        self.disk = Resource(env, capacity=1)
        #: Processor used for combination operations.
        self.cpu = Resource(env, capacity=1)
        self.disk_rate = disk_rate
        self.stats = HostStats()
        #: Fluid facility fast path: hold an uncontended disk/CPU through
        #: a single timeout event instead of the request-grant/timeout
        #: pair (see :meth:`_use`).  Engines force this off together with
        #: the network's transfer fast path for full-DES reference runs.
        self.fluid_facilities = True
        self._mailboxes: dict[str, Mailbox] = {}

    # -- mailboxes ------------------------------------------------------------
    def mailbox(self, actor: str) -> Mailbox:
        """The mailbox for ``actor``, created on first use."""
        box = self._mailboxes.get(actor)
        if box is None:
            box = Mailbox(self.env)
            self._mailboxes[actor] = box
        return box

    def remove_mailbox(self, actor: str) -> list[Message]:
        """Detach an actor's mailbox, returning any undelivered messages."""
        box = self._mailboxes.pop(actor, None)
        return box.drain() if box is not None else []

    # -- local facilities -------------------------------------------------------
    def _use(self, resource: Resource, seconds: float):
        """Generator: occupy one slot of ``resource`` for ``seconds``.

        When a slot is free, claim it synchronously
        (:meth:`~repro.sim.resources.Resource.try_acquire`) and sleep
        through a single timeout — the facility analogue of the
        network's fluid transfer fast path.  A contended facility (or
        ``fluid_facilities`` off) runs the classic request-grant then
        timeout sequence; occupancy intervals are identical either way.
        """
        hold = resource.try_acquire() if self.fluid_facilities else None
        if hold is None:
            with resource.request() as req:
                yield req
                yield self.env.timeout(seconds)
            return
        try:
            yield self.env.timeout(seconds)
        finally:
            resource.release(hold)

    def disk_read(self, nbytes: float):
        """Process generator: read ``nbytes`` from the local disk."""
        if nbytes < 0:
            raise ValueError(f"negative read size {nbytes!r}")
        yield from self._use(self.disk, nbytes / self.disk_rate)

    def compute(self, seconds: float):
        """Process generator: occupy the CPU for ``seconds``."""
        if seconds < 0:
            raise ValueError(f"negative compute time {seconds!r}")
        yield from self._use(self.cpu, seconds)

    def __repr__(self) -> str:
        return f"<Host {self.name!r}>"
