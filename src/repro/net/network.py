"""The network: hosts, links, actor registry and the transfer engine.

Transfer semantics (paper §4):

* every transfer pays a 50 ms startup cost and then drains bytes at the
  link trace's (time-varying) rate;
* both endpoints' single NICs are held for the whole transfer — this is
  what produces **end-point congestion** when several producers feed one
  consumer;
* NIC queueing is by message priority, so barrier/control messages
  overtake queued bulk data;
* the two NICs are acquired in canonical (sorted-name) order, which makes
  the two-resource acquisition deadlock-free while preserving the
  single-interface constraint.

The network also keeps the **actor registry** — the ground-truth location
of every data-flow actor.  Senders address actors at the host they believe
the actor lives on; if the actor has moved (possible with the local
algorithm's eventually-consistent location vectors), the message is
forwarded, paying for the extra hop, as a mobile-object runtime would.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, Iterable, Optional

from repro.faults.plan import TransferAbandoned
from repro.net.host import Host
from repro.net.link import Link
from repro.net.message import Message, MessageKind
from repro.obs.events import (
    LINK_TRANSFER,
    MESSAGE_FORWARD,
    MESSAGE_RECV,
    MESSAGE_SEND,
    NET_ABANDON,
    NET_DROP,
    NET_RETRANSMIT,
)
from repro.obs.tracer import ensure_tracer
from repro.sim import URGENT, Environment, Event


@dataclass(frozen=True)
class TransferObservation:
    """What a completed wire transfer looked like (fed to monitors)."""

    src_host: str
    dst_host: str
    #: Bytes moved on the wire (payload + headers + piggyback).
    wire_bytes: float
    #: Seconds the bytes took *excluding* the startup cost.
    data_seconds: float
    started: float
    finished: float
    kind: MessageKind
    #: Owning workload query (None for single-query runs / shared traffic).
    query_id: Optional[str] = None

    @property
    def measured_bandwidth(self) -> float:
        """Observed application-level bandwidth, bytes/second."""
        if self.data_seconds <= 0:
            return float("inf")
        return self.wire_bytes / self.data_seconds


@dataclass
class NetworkStats:
    """Aggregate traffic statistics."""

    transfers: int = 0
    local_deliveries: int = 0
    forwarded: int = 0
    bytes_on_wire: float = 0.0
    #: Resilience counters (zero unless a fault plan is installed).
    retransmissions: int = 0
    dropped_bytes: float = 0.0
    abandoned_messages: int = 0
    #: How each completed transfer was simulated: collapsed analytically
    #: into one completion event (fluid) or stepped through the full DES
    #: process path.  ``fluid_transfers + des_transfers == transfers``.
    fluid_transfers: int = 0
    des_transfers: int = 0


class Network:
    """A complete graph of hosts with trace-driven links."""

    def __init__(self, env: Environment, tracer=None) -> None:
        self.env = env
        self._tracer = ensure_tracer(tracer)
        self.hosts: dict[str, Host] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self._actor_hosts: dict[str, str] = {}
        self.stats = NetworkStats()
        #: Per-query traffic statistics, keyed by ``Message.query_id``.
        #: Only populated when messages carry a query tag (workload runs);
        #: the aggregate :attr:`stats` always counts everything.
        self.query_stats: dict[str, NetworkStats] = {}
        #: Transfer arbiter state: waiting transfers (priority heap),
        #: per-host active-transfer counts, and a FIFO tie-breaker.
        self._waiting: list[tuple] = []
        self._active_transfers: dict[str, int] = {}
        #: NIC capacities, cached flat at registration (hosts never change
        #: capacity after construction) so the dispatch loop's per-entry
        #: check is two dict lookups instead of four plus attribute hops.
        self._nic_caps: dict[str, int] = {}
        self._sequence = 0
        #: True when NIC capacity has been released since the last full
        #: dispatch scan.  While False, every queued transfer is still
        #: blocked (capacity only shrinks between scans), so :meth:`send`
        #: may start/queue its one new message without rescanning the heap.
        self._scan_needed = False
        #: Monitoring hook: called with each TransferObservation.
        self.observers: list[Callable[[TransferObservation], None]] = []
        #: Optional piggyback source: ``(src_host, dst_host) -> dict`` with
        #: at least a ``"bytes"`` entry; attached to outgoing messages.
        self.piggyback_source: Optional[Callable[[str, str], Optional[dict]]] = None
        #: Optional piggyback sink:
        #: ``(dst_host, piggyback_dict, query_id) -> None``.
        self.piggyback_sink: Optional[
            Callable[[str, dict, Optional[str]], None]
        ] = None
        #: Fault injector (see :meth:`install_faults`).  None (the
        #: default) keeps transfers on the exact unfaulted code path.
        self._faults = None
        #: Fluid fast path (see :meth:`_start_transfer`): admitted
        #: transfers whose window contains no fault boundary complete
        #: via one analytically-scheduled callback event instead of a
        #: generator process.  False forces every transfer through the
        #: full DES path — results are bit-identical either way (pinned
        #: by the equivalence suite); the toggle exists for those tests
        #: and for benchmarking the collapse.
        self.fluid_fast_path = True

    def install_faults(self, injector) -> None:
        """Route transfers through ``injector``'s outage/loss/retry model."""
        self._faults = injector

    def stats_for(self, query_id: str) -> NetworkStats:
        """The per-query traffic counters for ``query_id`` (created at zero)."""
        stats = self.query_stats.get(query_id)
        if stats is None:
            stats = self.query_stats[query_id] = NetworkStats()
        return stats

    # -- topology ---------------------------------------------------------
    def add_host(self, host: Host) -> Host:
        """Register a host (names must be unique)."""
        if host.name in self.hosts:
            raise ValueError(f"duplicate host {host.name!r}")
        self.hosts[host.name] = host
        self._active_transfers[host.name] = 0
        self._nic_caps[host.name] = host.nic_capacity
        return host

    def _has_free_interface(self, host: str) -> bool:
        return self._active_transfers[host] < self._nic_caps[host]

    def add_link(self, link: Link) -> Link:
        """Register the link between two existing hosts."""
        for endpoint in link.key:
            if endpoint not in self.hosts:
                raise ValueError(f"link endpoint {endpoint!r} is not a host")
        if link.key in self._links:
            raise ValueError(f"duplicate link {link.key!r}")
        self._links[link.key] = link
        return link

    def link(self, a: str, b: str) -> Link:
        """The link between hosts ``a`` and ``b``."""
        key = (a, b) if a < b else (b, a)
        try:
            return self._links[key]
        except KeyError:
            raise KeyError(f"no link between {a!r} and {b!r}") from None

    def links(self) -> Iterable[Link]:
        """All links, in canonical key order."""
        return [self._links[key] for key in sorted(self._links)]

    def bandwidth_at(self, a: str, b: str, t: float) -> float:
        """True instantaneous bandwidth between two hosts (oracle access)."""
        if t < 0:
            raise ValueError(f"negative time {t!r}")
        if a == b:
            return float("inf")
        return self.link(a, b).bandwidth_at(t)

    def mean_bandwidth(self, a: str, b: str, t0: float, t1: float) -> float:
        """True time-averaged bandwidth over ``[t0, t1]`` (oracle access)."""
        if t0 < 0:
            raise ValueError(f"negative window start {t0!r}")
        if t1 < t0:
            raise ValueError(f"window end {t1!r} precedes start {t0!r}")
        if a == b:
            return float("inf")
        return self.link(a, b).trace.mean_rate(t0, t1)

    # -- actor registry ------------------------------------------------------
    def register_actor(self, actor: str, host: str) -> None:
        """Declare that ``actor`` (a tree-node process) lives on ``host``."""
        if host not in self.hosts:
            raise ValueError(f"unknown host {host!r}")
        self._actor_hosts[actor] = host

    def actor_host(self, actor: str) -> str:
        """Ground-truth current host of ``actor``."""
        try:
            return self._actor_hosts[actor]
        except KeyError:
            raise KeyError(f"actor {actor!r} is not registered") from None

    def move_actor(self, actor: str, new_host: str) -> list[Message]:
        """Atomically re-home ``actor``; returns messages left at the old host.

        The caller (the engine's relocation machinery) is responsible for
        re-delivering the returned messages at the new location.
        """
        old_host = self.actor_host(actor)
        if new_host not in self.hosts:
            raise ValueError(f"unknown host {new_host!r}")
        self._actor_hosts[actor] = new_host
        if old_host == new_host:
            return []
        return self.hosts[old_host].remove_mailbox(actor)

    def unregister_actor(self, actor: str) -> None:
        """Drop ``actor`` from the registry (throwaway probe/transfer endpoints).

        Unknown actors are ignored; in-flight messages to an unregistered
        actor are delivered at their arrival host (no forwarding).
        """
        self._actor_hosts.pop(actor, None)

    # -- transfers -------------------------------------------------------------
    def send(
        self,
        message: Message,
        src_host: Optional[str] = None,
        dst_host: Optional[str] = None,
    ) -> "Event":
        """Start transmitting ``message``; the returned event fires on delivery.

        ``src_host`` / ``dst_host`` default to the registry locations of
        the source / destination actors.  If the destination actor has
        moved by the time the message arrives, it is forwarded (charged as
        an additional transfer).

        Transfers are scheduled by a central arbiter: a transfer starts as
        soon as **both** endpoints' network interfaces are free, and when
        an interface frees up the waiting transfers are scanned in
        (priority, arrival) order.  This realizes the paper's single-NIC
        assumption with priority queueing (barrier messages overtake
        enqueued data) and is trivially deadlock-free — a transfer never
        holds one interface while waiting for the other.
        """
        return self._send(message, src_host, dst_host, self.env.event())

    def post(
        self,
        message: Message,
        src_host: Optional[str] = None,
        dst_host: Optional[str] = None,
    ) -> None:
        """Fire-and-forget :meth:`send`: no delivery event is created.

        Most traffic (data, demands, barriers) never waits on delivery —
        the sender continues immediately and the ``done`` event fires
        with zero callbacks, a pure-waste calendar entry.  Posting skips
        it.  Eliding a no-op event cannot reorder anything: remaining
        calendar entries keep their relative order, and processing the
        elided event ran no callbacks.  With the fast path disabled this
        degrades to a plain send so full-DES reference runs reproduce
        the classic event schedule exactly.
        """
        if not self.fluid_fast_path:
            self.send(message, src_host, dst_host)
            return
        self._send(message, src_host, dst_host, None)

    def _send(
        self,
        message: Message,
        src_host: Optional[str],
        dst_host: Optional[str],
        done: "Optional[Event]",
    ) -> "Optional[Event]":
        src = src_host or self.actor_host(message.src_actor)
        dst = dst_host or self.actor_host(message.dst_actor)
        if src not in self.hosts or dst not in self.hosts:
            raise ValueError(f"unknown endpoint in {src!r}->{dst!r}")
        message.src_host, message.dst_host = src, dst
        message.sent_at = self.env.now

        tracer = self._tracer
        if src == dst:
            self.stats.local_deliveries += 1
            if message.query_id is not None:
                self.stats_for(message.query_id).local_deliveries += 1
            if tracer.enabled:
                tracer.emit(
                    MESSAGE_SEND,
                    self.env.now,
                    transport="local",
                    **message.trace_fields(),
                )
            message.delivered_at = self.env.now
            self._deliver(message, dst)
            if done is not None:
                done.succeed(message)
            return done

        if self.piggyback_source is not None and message.piggyback is None:
            message.piggyback = self.piggyback_source(src, dst)

        if tracer.enabled:
            tracer.emit(
                MESSAGE_SEND,
                self.env.now,
                transport="wire",
                **message.trace_fields(),
            )
        self._sequence += 1
        if not self._scan_needed:
            # Fast path: no NIC has been released since the last full
            # scan, so every queued transfer is still blocked and only
            # *this* message can possibly start.  Starting (or queueing)
            # it directly is order-identical to the full scan: a queued
            # higher-priority transfer either shares the endpoint that
            # blocks this one, or was blocked on endpoints this message
            # doesn't touch.
            active = self._active_transfers
            caps = self._nic_caps
            if active[src] < caps[src] and active[dst] < caps[dst]:
                active[src] += 1
                active[dst] += 1
                self._start_transfer(message, src, dst, done)
            else:
                heappush(
                    self._waiting,
                    (
                        int(message.priority or 0),
                        self._sequence,
                        message,
                        src,
                        dst,
                        done,
                    ),
                )
            return done
        heappush(
            self._waiting,
            (int(message.priority or 0), self._sequence, message, src, dst, done),
        )
        self._dispatch_transfers()
        return done

    def _dispatch_transfers(self) -> None:
        """Start every waiting transfer whose two endpoints are free.

        This full scan is the arbiter's slow path; it re-arms
        :meth:`send`'s fast path by clearing ``_scan_needed``.
        """
        self._scan_needed = False
        if not self._waiting:
            return
        active = self._active_transfers
        caps = self._nic_caps
        blocked: list[tuple] = []
        while self._waiting:
            entry = heappop(self._waiting)
            __, __, message, src, dst, done = entry
            if active[src] >= caps[src] or active[dst] >= caps[dst]:
                blocked.append(entry)
                continue
            active[src] += 1
            active[dst] += 1
            self._start_transfer(message, src, dst, done)
        for entry in blocked:
            heappush(self._waiting, entry)

    def _start_transfer(self, message: Message, src: str, dst: str, done) -> None:
        """Launch an admitted transfer (both endpoint NICs already held).

        The fluid fast path: the paper's core quantity — time to push N
        bytes over a time-varying link — is computable analytically from
        the trace's prefix sums, so an uncontended, fault-free transfer
        needs no generator machinery.  When no fault boundary can touch
        the window ``[now, now + duration)`` (trivially true without an
        injector; otherwise checked via
        :meth:`~repro.faults.injector.FaultInjector.next_boundary`, a
        clean start and no loss stream), completion is **one**
        lightweight callback event instead of a process's init event,
        timeout and process-completion event.  Any arbiter-grant, fault
        or loss condition falls back to the full DES path unchanged.
        """
        env = self.env
        if self.fluid_fast_path:
            faults = self._faults
            if faults is None:
                link = self.link(src, dst)
                started = env.now
                duration = link.transmission_time(message.wire_size, started)
                env.schedule_callback(
                    duration,
                    lambda: self._finish_transfer(
                        message, src, dst, done, link, started, duration,
                        fluid=True,
                    ),
                )
                return
            started = env.now
            if (
                faults.link_blocked(src, dst, started) is None
                and not faults.has_loss(src, dst)
            ):
                link = self.link(src, dst)
                duration = link.transmission_time(message.wire_size, started)
                boundary = faults.next_boundary(
                    link.key, (src, dst), started, started + duration
                )
                if boundary is None:
                    # Faulted runs mix fluid and DES transfers.  Routing
                    # the completion through an URGENT launch callback —
                    # scheduled exactly where the DES path schedules its
                    # process-init event — gives the completion the same
                    # calendar sequence number the DES Timeout would get,
                    # so same-instant completions of mixed fluid/DES
                    # transfers interleave exactly as before.
                    def _launch():
                        env.schedule_callback(
                            duration,
                            lambda: self._finish_transfer(
                                message, src, dst, done, link, started,
                                duration, fluid=True,
                            ),
                        )

                    env.schedule_callback(0.0, _launch, priority=URGENT)
                    return
        env.process(
            self._run_transfer(message, src, dst, done),
            name=f"xfer#{message.uid}",
        )

    def _run_transfer(self, message: Message, src: str, dst: str, done):
        """The full DES transfer path (process generator)."""
        link = self.link(src, dst)
        wire_size = message.wire_size
        if self._faults is None:
            started = self.env.now
            duration = link.transmission_time(wire_size, started)
            yield self.env.timeout(duration)
        else:
            attempt = yield from self._faulty_attempts(message, link, src, dst, done)
            if attempt is None:
                return  # abandoned: NICs released, done failed (defused)
            started, duration = attempt
        self._finish_transfer(
            message, src, dst, done, link, started, duration, fluid=False
        )

    def _finish_transfer(
        self,
        message: Message,
        src: str,
        dst: str,
        done,
        link: Link,
        started: float,
        duration: float,
        fluid: bool,
    ) -> None:
        """Complete an in-flight transfer: the post-wire half of the
        transfer engine, shared verbatim by the DES generator and the
        fluid fast path so the two stay bookkeeping-identical — stats,
        tracer span, observers, piggyback, delivery, ``done``, then the
        arbiter rescan, in exactly that order.
        """
        wire_size = message.wire_size
        finished = self.env.now

        self._active_transfers[src] -= 1
        self._active_transfers[dst] -= 1
        # Capacity was just released: any send before the trailing full
        # scan (e.g. a forward out of _deliver) must rescan the queue.
        self._scan_needed = True

        src_node, dst_node = self.hosts[src], self.hosts[dst]
        src_node.stats.messages_sent += 1
        src_node.stats.bytes_sent += wire_size
        src_node.stats.nic_busy_time += duration
        dst_node.stats.messages_received += 1
        dst_node.stats.bytes_received += wire_size
        dst_node.stats.nic_busy_time += duration
        self.stats.transfers += 1
        self.stats.bytes_on_wire += wire_size
        if fluid:
            self.stats.fluid_transfers += 1
        else:
            self.stats.des_transfers += 1
        query_id = message.query_id
        if query_id is not None:
            query_stats = self.stats_for(query_id)
            query_stats.transfers += 1
            query_stats.bytes_on_wire += wire_size
            if fluid:
                query_stats.fluid_transfers += 1
            else:
                query_stats.des_transfers += 1
        link.note_transfer(wire_size)

        observation = TransferObservation(
            src_host=src,
            dst_host=dst,
            wire_bytes=wire_size,
            data_seconds=duration - link.startup_cost,
            started=started,
            finished=finished,
            kind=message.kind,
            query_id=query_id,
        )
        tracer = self._tracer
        if tracer.enabled:
            tag = {} if query_id is None else {"query_id": query_id}
            tracer.span(
                LINK_TRANSFER,
                started,
                finished,
                src_host=src,
                dst_host=dst,
                kind=message.kind.value,
                wire_bytes=wire_size,
                bandwidth=observation.measured_bandwidth,
                uid=message.uid,
                **tag,
            )
            tracer.observe("link.transfer_seconds", duration)

        for observer in self.observers:
            observer(observation)
        if self.piggyback_sink is not None and message.piggyback is not None:
            self.piggyback_sink(dst, message.piggyback, query_id)

        message.delivered_at = self.env.now
        self._deliver(message, dst)
        if done is not None:
            done.succeed(message)
        self._dispatch_transfers()

    def _faulty_attempts(self, message: Message, link: Link, src: str, dst: str, done):
        """Attempt the transfer under the installed fault plan.

        Returns ``(started, duration)`` of the successful attempt, or None
        if the retry budget ran out (the message is then abandoned: both
        NICs are released and ``done`` fails with
        :class:`~repro.faults.plan.TransferAbandoned`, defused so that
        fire-and-forget sends lose the message without crashing the run).

        Both NICs stay held across retries and backoffs — a retransmitting
        endpoint is genuinely busy, and a single arbiter slot keeps the
        schedule deterministic.
        """
        faults = self._faults
        retry = faults.retry
        tracer = self._tracer
        query_id = message.query_id
        wire_size = message.wire_size
        tag = {} if query_id is None else {"query_id": query_id}
        attempt = 0
        while True:
            attempt += 1
            now = self.env.now
            reason = faults.link_blocked(src, dst, now)
            if reason is None:
                started = now
                duration = link.transmission_time(wire_size, started)
                if not faults.drop_message(src, dst):
                    yield self.env.timeout(duration)
                    return started, duration
                # Lost in flight: the bytes went on the wire and vanished.
                # Pay the send time, then back off and retransmit.
                self.stats.dropped_bytes += wire_size
                if query_id is not None:
                    self.stats_for(query_id).dropped_bytes += wire_size
                if tracer.enabled:
                    tracer.emit(
                        NET_DROP,
                        now,
                        src_host=src,
                        dst_host=dst,
                        uid=message.uid,
                        bytes=wire_size,
                        **tag,
                    )
                reason = "loss"
                wait = duration + retry.backoff_delay(attempt)
            else:
                wait = retry.backoff_delay(attempt)
            if retry.max_attempts is not None and attempt >= retry.max_attempts:
                self.stats.abandoned_messages += 1
                if query_id is not None:
                    self.stats_for(query_id).abandoned_messages += 1
                if tracer.enabled:
                    tracer.emit(
                        NET_ABANDON,
                        now,
                        src_host=src,
                        dst_host=dst,
                        uid=message.uid,
                        attempts=attempt,
                        reason=reason,
                        **tag,
                    )
                self._active_transfers[src] -= 1
                self._active_transfers[dst] -= 1
                self._scan_needed = True
                if done is not None:
                    done.defused = True
                    done.fail(
                        TransferAbandoned(
                            f"message #{message.uid} {src}->{dst} abandoned "
                            f"after {attempt} attempts ({reason})"
                        )
                    )
                self._dispatch_transfers()
                return None
            self.stats.retransmissions += 1
            if query_id is not None:
                self.stats_for(query_id).retransmissions += 1
            if tracer.enabled:
                tracer.emit(
                    NET_RETRANSMIT,
                    now,
                    src_host=src,
                    dst_host=dst,
                    uid=message.uid,
                    attempt=attempt,
                    reason=reason,
                    wait=wait,
                    **tag,
                )
            yield self.env.timeout(wait)

    def _deliver(self, message: Message, arrived_at: str) -> None:
        actual = self._actor_hosts.get(message.dst_actor, arrived_at)
        tracer = self._tracer
        tag = (
            {} if message.query_id is None else {"query_id": message.query_id}
        )
        if actual != arrived_at:
            # The destination actor moved while the message was in flight:
            # forward it (mobile-object runtimes do exactly this).
            self.stats.forwarded += 1
            if message.query_id is not None:
                self.stats_for(message.query_id).forwarded += 1
            if tracer.enabled:
                tracer.emit(
                    MESSAGE_FORWARD,
                    self.env.now,
                    uid=message.uid,
                    actor=message.dst_actor,
                    from_host=arrived_at,
                    to_host=actual,
                    **tag,
                )
            self.send(message, src_host=arrived_at, dst_host=actual)
            return
        if tracer.enabled:
            tracer.emit(
                MESSAGE_RECV,
                self.env.now,
                uid=message.uid,
                actor=message.dst_actor,
                host=arrived_at,
                kind=message.kind.value,
                **tag,
            )
        self.hosts[arrived_at].mailbox(message.dst_actor).deliver(message)
