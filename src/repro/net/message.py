"""Message taxonomy and priorities.

The simulation exchanges four kinds of messages:

* ``DATA`` — image partitions flowing up the combination tree (bulk).
* ``DEMAND`` — small requests flowing down the tree (demand-driven model).
* ``CONTROL`` — placement propagation, operator moves, monitoring probes.
* ``BARRIER`` — the global algorithm's change-over coordination messages;
  the paper gives these **queue priority** over enqueued data transfers.

Lower priority value = served first at a host's network interface.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: NIC-queue priorities (lower wins).  Barrier beats control beats demand
#: beats bulk data, matching §2.2's "barrier messages get priority".
#: PRIORITY_BACKGROUND is available for traffic that must never delay
#: the pipeline — note that background senders can be starved
#: indefinitely by a busy interface.
PRIORITY_BARRIER = 0
PRIORITY_CONTROL = 1
PRIORITY_DEMAND = 2
PRIORITY_DATA = 3
PRIORITY_BACKGROUND = 4

_message_counter = itertools.count()


class MessageKind(enum.Enum):
    """What a message carries; determines its default priority."""

    DATA = "data"
    DEMAND = "demand"
    CONTROL = "control"
    BARRIER = "barrier"

    @property
    def default_priority(self) -> int:
        return _DEFAULT_PRIORITIES[self]


_DEFAULT_PRIORITIES = {
    MessageKind.DATA: PRIORITY_DATA,
    MessageKind.DEMAND: PRIORITY_DEMAND,
    MessageKind.CONTROL: PRIORITY_CONTROL,
    MessageKind.BARRIER: PRIORITY_BARRIER,
}

#: Wire overhead of a bare message (headers), bytes.
HEADER_BYTES = 256


@dataclass
class Message:
    """A simulated network message.

    ``size`` is the payload size in bytes; the wire size adds header and
    piggybacked-monitoring overhead.  ``payload`` carries structured
    simulation state (image metadata, placement maps, ...) — it is never
    counted toward transfer time except through ``size``.
    """

    kind: MessageKind
    #: Actor identifiers (node ids of the data-flow tree, or engine actors).
    src_actor: str
    dst_actor: str
    #: Payload size in bytes (images: their byte size; demands: 0).
    size: float
    payload: dict[str, Any] = field(default_factory=dict)
    #: NIC-queue priority; defaults from the kind.
    priority: Optional[int] = None
    #: Piggybacked monitoring data, attached by the transport (bytes + entries).
    piggyback: Optional[dict[str, Any]] = None
    #: Owning workload query, stamped by the engine's runtime; ``None``
    #: for single-query runs and engine-internal traffic.
    query_id: Optional[str] = None
    #: Unique id, assigned automatically.
    uid: int = field(default_factory=lambda: next(_message_counter))
    #: Filled in by the transport on delivery.
    sent_at: float = float("nan")
    delivered_at: float = float("nan")
    src_host: str = ""
    dst_host: str = ""

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative message size {self.size!r}")
        if self.priority is None:
            self.priority = self.kind.default_priority

    def trace_fields(self) -> dict[str, Any]:
        """The identifying fields a ``message.send`` trace event carries."""
        fields = {
            "uid": self.uid,
            "kind": self.kind.value,
            "src_actor": self.src_actor,
            "dst_actor": self.dst_actor,
            "src_host": self.src_host,
            "dst_host": self.dst_host,
            "bytes": self.size,
        }
        if self.query_id is not None:
            fields["query_id"] = self.query_id
        return fields

    @property
    def wire_size(self) -> float:
        """Bytes actually moved on the network for this message."""
        piggyback_bytes = self.piggyback["bytes"] if self.piggyback else 0
        return self.size + HEADER_BYTES + piggyback_bytes

    def __repr__(self) -> str:
        return (
            f"<Message #{self.uid} {self.kind.value} "
            f"{self.src_actor}->{self.dst_actor} {self.size:.0f}B>"
        )
