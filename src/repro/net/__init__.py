"""Wide-area network substrate.

Models the paper's simulated network (§4):

* :class:`~repro.net.host.Host` — a site with a **single network
  interface** (it can send or receive at most one message at a time), a
  disk (3 MB/s in the experiments), a CPU, and per-actor message
  mailboxes with priority delivery.
* :class:`~repro.net.link.Link` — a host pair whose bandwidth follows a
  :class:`~repro.traces.BandwidthTrace`; every transfer pays a fixed
  **startup cost** (50 ms in the experiments) and then *integrates* the
  trace, so mid-transfer bandwidth changes take effect.
* :class:`~repro.net.network.Network` — the complete graph connecting the
  hosts, the transfer engine (deadlock-free two-NIC acquisition with
  message priorities, so barrier messages overtake queued bulk data), and
  the observer hook that feeds passive bandwidth monitoring.
"""

from repro.net.message import (
    PRIORITY_BARRIER,
    PRIORITY_CONTROL,
    PRIORITY_DATA,
    PRIORITY_DEMAND,
    Message,
    MessageKind,
)
from repro.net.host import Host, Mailbox
from repro.net.link import Link
from repro.net.network import Network, TransferObservation

__all__ = [
    "Host",
    "Link",
    "Mailbox",
    "Message",
    "MessageKind",
    "Network",
    "PRIORITY_BARRIER",
    "PRIORITY_CONTROL",
    "PRIORITY_DATA",
    "PRIORITY_DEMAND",
    "TransferObservation",
]
