"""Point-to-point links with trace-driven, time-varying bandwidth."""

from __future__ import annotations

from repro.traces.trace import BandwidthTrace, TraceCursor

#: The paper's per-message startup cost: 50 milliseconds.
DEFAULT_STARTUP_COST = 0.050


class Link:
    """The (symmetric) network path between two hosts.

    Transmission of ``n`` bytes starting at time ``t`` takes
    ``startup_cost + T`` where ``T`` integrates the bandwidth trace from
    ``t + startup_cost`` until ``n`` bytes have flowed.
    """

    def __init__(
        self,
        a: str,
        b: str,
        trace: BandwidthTrace,
        startup_cost: float = DEFAULT_STARTUP_COST,
    ) -> None:
        if a == b:
            raise ValueError(f"a link needs two distinct hosts, got {a!r} twice")
        if startup_cost < 0:
            raise ValueError(f"negative startup cost {startup_cost!r}")
        self.a, self.b = (a, b) if a < b else (b, a)
        self.trace = trace
        self.startup_cost = startup_cost
        #: Lifetime traffic counters (fed by the network's transfer engine).
        self.transfers = 0
        self.bytes_carried = 0.0
        #: Amortized segment cursor for this link's queries.  Simulation
        #: time is (mostly) monotone per link, so successive transfer-time
        #: lookups advance this pointer a step or two instead of paying a
        #: binary search; out-of-order queries fall back transparently.
        #: Lives on the link — traces are shared read-only across links,
        #: runs and workers, so they must stay stateless.
        self._cursor = TraceCursor()

    @property
    def key(self) -> tuple[str, str]:
        """Canonical (sorted) host-pair key."""
        return (self.a, self.b)

    def connects(self, host: str) -> bool:
        """True if ``host`` is one of the link's endpoints."""
        return host in (self.a, self.b)

    def transmission_time(self, nbytes: float, start_time: float) -> float:
        """Seconds to push ``nbytes`` onto the wire starting at ``start_time``."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes!r}")
        if start_time < 0:
            raise ValueError(f"negative start time {start_time!r}")
        if nbytes == 0:
            return self.startup_cost
        return self.startup_cost + self.trace.transfer_time(
            nbytes, start_time + self.startup_cost, hint=self._cursor
        )

    def note_transfer(self, nbytes: float) -> None:
        """Account one completed transfer of ``nbytes`` on this link."""
        self.transfers += 1
        self.bytes_carried += nbytes

    def bandwidth_at(self, t: float) -> float:
        """Instantaneous link bandwidth (bytes/s) at time ``t``.

        ``t`` must be non-negative: traces start at time zero, and a
        negative query silently read the first segment's rate instead of
        flagging the caller's clock bug.
        """
        if t < 0:
            raise ValueError(f"negative time {t!r}")
        return self.trace.rate_at(t)

    def __repr__(self) -> str:
        return f"<Link {self.a}~{self.b} trace={self.trace.name!r}>"
