"""Actor processes: one per tree node.

The computation is a demand-driven data-flow pipeline (§2):

* every node holds its output until its consumer requests it;
* an operator requests data from its producers only after dispatching its
  output (so there is a **relocation window** — the light-move
  requirement — between dispatch and the next request);
* demands flowing down the tree carry the local algorithm's "later" marks
  and the sender's critical-path status; data flowing up carries the
  image bytes.

Message payloads use a ``type`` key: ``demand``, ``data``, ``prepare``,
``report``, ``commit`` (the last three implement the global algorithm's
barrier change-over).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.dataflow.tree import CLIENT_ID, TreeNode
from repro.engine.config import Algorithm
from repro.engine.runtime import Runtime
from repro.net.message import Message, MessageKind
from repro.obs.events import BARRIER_SUSPEND, COMPUTE


class ActorBase:
    """Common plumbing for tree-node actors."""

    def __init__(self, runtime: Runtime, node: TreeNode) -> None:
        self.runtime = runtime
        self.node = node
        self.actor_id = node.node_id
        #: Believed node->host map for the coordinated (non-local)
        #: algorithms; replaced wholesale at a barrier switch.
        self.view_placement: dict[str, str] = runtime.initial_placement.as_dict()
        #: Pending barrier switch: (switch_iteration, placement dict).
        self.switch_plan: Optional[tuple[int, dict[str, str]]] = None
        self._seen_plans: set[int] = set()

    # -- location beliefs ------------------------------------------------------
    def my_host(self) -> str:
        """Ground-truth current host of this actor."""
        return self.runtime.host_of(self.actor_id)

    def my_host_obj(self):
        return self.runtime.host_obj(self.actor_id)

    def peer_host(self, actor: str) -> str:
        """Where this actor believes ``actor`` lives."""
        runtime = self.runtime
        pinned = runtime.pinned_hosts.get(actor)
        if pinned is not None:
            return pinned
        if runtime.spec.algorithm is Algorithm.LOCAL:
            return runtime.vectors[self.my_host()].location_of(actor)
        return self.view_placement[actor]

    def mailbox(self):
        return self.runtime.mailbox_of(self.actor_id)

    # -- sending ---------------------------------------------------------------
    def send_demand(
        self, producer: str, iteration: int, later: bool, critical: bool
    ) -> None:
        """Demand one partition from a producer (flows down the tree)."""
        self.runtime.send(
            MessageKind.DEMAND,
            self.actor_id,
            producer,
            size=0,
            payload={
                "type": "demand",
                "iteration": iteration,
                "later": later,
                "critical": critical,
            },
            dst_host=self.peer_host(producer),
        )

    def send_data(self, consumer: str, iteration: int, nbytes: float) -> None:
        """Ship a partition to the consumer (flows up the tree)."""
        self.runtime.send(
            MessageKind.DATA,
            self.actor_id,
            consumer,
            size=nbytes,
            payload={"type": "data", "iteration": iteration, "bytes": nbytes},
            dst_host=self.peer_host(consumer),
        )

    def send_barrier(
        self, dst_actor: str, payload: dict[str, Any], dst_host: Optional[str] = None
    ) -> None:
        """Send a barrier-protocol message (priority per configuration)."""
        self.runtime.send(
            MessageKind.BARRIER,
            self.actor_id,
            dst_actor,
            size=0,
            payload=payload,
            dst_host=dst_host or self.peer_host(dst_actor),
            priority=self.runtime.barrier_msg_priority(),
        )


class ServerActor(ActorBase):
    """A data server: reads images from disk and serves demands in order."""

    def __init__(self, runtime: Runtime, node: TreeNode, server_index: int) -> None:
        super().__init__(runtime, node)
        self.server_index = server_index
        self.consumer = node.parent
        #: (iteration, size) of the image currently held in memory.
        self.held: Optional[tuple[int, float]] = None
        #: Number of partitions served so far == next iteration to serve.
        self.served_count = 0
        #: Suspended between a barrier PREPARE and its COMMIT (§2.2).
        self.suspended = False
        self._suspended_at: Optional[float] = None
        self._buffered_demands: list[Message] = []

    def image_size(self, iteration: int) -> float:
        return self.runtime.workload.size_of(self.server_index, iteration)

    def run(self):
        """Main process: prefetch image 0, then serve demands forever."""
        yield from self._read(0)
        while True:
            message = yield self.mailbox().get()
            self.runtime.ingest_vectors(message, self.my_host())
            yield from self._handle(message)

    def _handle(self, message: Message):
        mtype = message.payload["type"]
        if mtype == "demand":
            if self.suspended:
                self._buffered_demands.append(message)
            else:
                yield from self._serve(message.payload["iteration"])
        elif mtype == "prepare":
            self._handle_prepare(message.payload)
        elif mtype == "commit":
            yield from self._handle_commit(message.payload)
        # other message types (stray probes etc.) are ignored

    def _read(self, iteration: int):
        if iteration >= self.runtime.num_images:
            return
        size = self.image_size(iteration)
        yield from self.my_host_obj().disk_read(size)
        self.held = (iteration, size)

    def _serve(self, iteration: int):
        if self.held is None or self.held[0] != iteration:
            # Defensive: demand-driven flow is in-order, but a change-over
            # replay could re-request the held image.
            yield from self._read(iteration)
        assert self.held is not None
        if self.switch_plan is not None and iteration >= self.switch_plan[0]:
            placement = self.switch_plan[1]
            self.view_placement = placement
            self.switch_plan = None
            target = placement[self.actor_id]
            if target != self.my_host():
                # Replica switch: the dataset already lives at the target
                # (replication), so only the serving actor relocates.
                yield from self.runtime.relocate(self.actor_id, target)
        __, size = self.held
        self.send_data(self.consumer, iteration, size)
        self.held = None
        self.served_count = iteration + 1
        yield from self._read(iteration + 1)

    def _handle_prepare(self, payload: dict[str, Any]) -> None:
        plan_seq = payload["plan_seq"]
        if plan_seq in self._seen_plans:
            return
        self._seen_plans.add(plan_seq)
        self.suspended = True
        self._suspended_at = self.runtime.env.now
        self.send_barrier(
            CLIENT_ID,
            {
                "type": "report",
                "plan_seq": plan_seq,
                "server": self.actor_id,
                "next_iteration": self.served_count,
            },
            dst_host=self.runtime.pinned_hosts[CLIENT_ID],
        )

    def _handle_commit(self, payload: dict[str, Any]):
        self.switch_plan = (payload["switch_iteration"], payload["placement"])
        self.suspended = False
        tracer = self.runtime.tracer
        if tracer.enabled and self._suspended_at is not None:
            tracer.span(
                BARRIER_SUSPEND,
                self._suspended_at,
                self.runtime.env.now,
                actor=self.actor_id,
                plan_seq=payload["plan_seq"],
            )
        self._suspended_at = None
        buffered, self._buffered_demands = self._buffered_demands, []
        for message in buffered:
            yield from self._serve(message.payload["iteration"])


class OperatorActor(ActorBase):
    """A combination operator: composes two inputs, may relocate itself."""

    def __init__(self, runtime: Runtime, node: TreeNode) -> None:
        super().__init__(runtime, node)
        self.producers = list(node.children)
        self.consumer = node.parent
        #: iteration -> {producer: bytes} for inputs still being collected.
        self.inputs: dict[int, dict[str, float]] = {}
        #: iteration -> the producer whose data arrived second ("later").
        self.later_producer: dict[int, str] = {}
        #: (iteration, size) of the composed output being held.
        self.held: Optional[tuple[int, float]] = None
        self.pending_demand: Optional[int] = None
        #: Next iteration whose inputs have NOT yet been requested.
        self.next_request = 0
        # Local-algorithm state (§2.3).
        self.dispatches_in_epoch = 0
        self.later_marks_in_epoch = 0
        self.consumer_critical = False
        self.on_critical_path = False
        self.pending_move: Optional[str] = None
        runtime.operators[self.actor_id] = self

    def run(self):
        """Main process: prime the pipeline, then react to messages."""
        if self.runtime.spec.prefetch:
            self._request_inputs(0)
        while True:
            message = yield self.mailbox().get()
            self.runtime.ingest_vectors(message, self.my_host())
            yield from self._handle(message)

    def _handle(self, message: Message):
        mtype = message.payload["type"]
        if mtype == "data":
            yield from self._handle_data(message)
        elif mtype == "demand":
            yield from self._handle_demand(message)
        elif mtype == "prepare":
            self._handle_prepare(message.payload)
        elif mtype == "commit":
            yield from self._handle_commit(message.payload)

    # -- data path ------------------------------------------------------------
    def _handle_data(self, message: Message):
        iteration = message.payload["iteration"]
        producer = self.runtime.local_id(message.src_actor)
        bucket = self.inputs.setdefault(iteration, {})
        if bucket:
            # Second arrival: this producer was the later one (§2.3).
            self.later_producer[iteration] = producer
        bucket[producer] = message.payload["bytes"]
        if len(bucket) < len(self.producers):
            return
        sizes = [bucket[p] for p in self.producers]
        del self.inputs[iteration]
        compose = self.runtime.compose
        started = self.runtime.env.now
        yield from self.my_host_obj().compute(compose.compute_seconds(*sizes))
        tracer = self.runtime.tracer
        if tracer.enabled:
            tracer.span(
                COMPUTE,
                started,
                self.runtime.env.now,
                actor=self.actor_id,
                host=self.my_host(),
                iteration=iteration,
            )
        self.held = (iteration, compose.output_size(*sizes))
        if self.pending_demand == iteration:
            yield from self._dispatch()

    def _handle_demand(self, message: Message):
        payload = message.payload
        iteration = payload["iteration"]
        self.consumer_critical = payload["critical"]
        if payload["later"]:
            self.later_marks_in_epoch += 1
        self.pending_demand = iteration
        if self.held is not None and self.held[0] == iteration:
            yield from self._dispatch()
        elif not self.runtime.spec.prefetch and self.next_request <= iteration:
            self._request_inputs(iteration)

    def _dispatch(self):
        assert self.held is not None
        iteration, size = self.held
        self.send_data(self.consumer, iteration, size)
        self.held = None
        self.pending_demand = None
        self.dispatches_in_epoch += 1

        # ---- the relocation window (light-move requirement, §2) ----
        if (
            self.switch_plan is not None
            and iteration + 1 >= self.switch_plan[0]
        ):
            yield from self._apply_switch()
        if self.pending_move is not None:
            target, self.pending_move = self.pending_move, None
            if target != self.my_host():
                yield from self.runtime.relocate(self.actor_id, target)
        # ---- end of window: request the next partition ----
        if self.runtime.spec.prefetch and iteration + 1 < self.runtime.num_images:
            self._request_inputs(iteration + 1)

    def _request_inputs(self, iteration: int) -> None:
        later = self.later_producer.pop(iteration - 1, None)
        critical = (
            self.on_critical_path
            if self.runtime.spec.algorithm is Algorithm.LOCAL
            else True
        )
        for producer in self.producers:
            self.send_demand(
                producer, iteration, later=(producer == later), critical=critical
            )
        self.next_request = iteration + 1

    # -- barrier protocol -------------------------------------------------------
    def _handle_prepare(self, payload: dict[str, Any]) -> None:
        plan_seq = payload["plan_seq"]
        if plan_seq in self._seen_plans:
            return
        self._seen_plans.add(plan_seq)
        for producer in self.producers:
            self.send_barrier(producer, dict(payload))

    def _handle_commit(self, payload: dict[str, Any]):
        self.switch_plan = (payload["switch_iteration"], payload["placement"])
        if self.next_request >= self.switch_plan[0]:
            # Already requested inputs at/past the switch point under the
            # old placement: move now; in-flight data is forwarded.
            yield from self._apply_switch()

    def _apply_switch(self):
        assert self.switch_plan is not None
        __, placement = self.switch_plan
        self.switch_plan = None
        self.view_placement = placement
        target = placement[self.actor_id]
        if target != self.my_host():
            yield from self.runtime.relocate(self.actor_id, target)


class ClientActor(ActorBase):
    """The client: demands composed partitions and records arrivals."""

    def __init__(self, runtime: Runtime, node: TreeNode) -> None:
        super().__init__(runtime, node)
        self.root = node.children[0]
        self.received = 0

    def run(self):
        """Demand partitions one at a time; route barrier reports."""
        self._demand(0)
        while self.received < self.runtime.num_images:
            message = yield self.mailbox().get()
            self.runtime.ingest_vectors(message, self.my_host())
            payload = message.payload
            mtype = payload["type"]
            if mtype == "data":
                self._handle_data(payload)
            elif mtype == "report":
                self.runtime.note_report(
                    payload["plan_seq"], payload["server"], payload["next_iteration"]
                )
            elif mtype == "commit":
                self.switch_plan = (
                    payload["switch_iteration"],
                    payload["placement"],
                )

    def _handle_data(self, payload: dict[str, Any]) -> None:
        iteration = payload["iteration"]
        self.received += 1
        self.runtime.note_arrival(iteration, self.runtime.env.now)
        nxt = iteration + 1
        if nxt < self.runtime.num_images and not self.runtime.cancelled:
            self._demand(nxt)

    def _demand(self, iteration: int) -> None:
        if self.switch_plan is not None and iteration >= self.switch_plan[0]:
            self.view_placement = self.switch_plan[1]
            self.switch_plan = None
        # The client is the root of the recursion: it is always on the
        # critical path, and its single producer is always the "later"
        # (i.e. latest) one.
        self.send_demand(self.root, iteration, later=True, critical=True)
