"""Simulation configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.app.composition import CompositionSpec
from repro.faults.plan import FaultPlan
from repro.monitor.system import MonitoringConfig
from repro.traces.trace import BandwidthTrace


class Algorithm(str, enum.Enum):
    """The four placement policies evaluated by the paper."""

    DOWNLOAD_ALL = "download-all"
    ONE_SHOT = "one-shot"
    GLOBAL = "global"
    LOCAL = "local"

    @property
    def is_online(self) -> bool:
        """True for the policies that relocate operators during the run."""
        return self in (Algorithm.GLOBAL, Algorithm.LOCAL)


@dataclass(frozen=True)
class SimulationSpec:
    """Everything needed to run one simulation.

    ``link_traces`` maps canonical host pairs (sorted 2-tuples of host
    names) to bandwidth traces; it must cover the complete graph over
    ``server_hosts + [client_host]``.
    """

    algorithm: Algorithm
    #: Tree shape: "binary" (complete binary tree) or "left-deep".
    tree_shape: str
    num_servers: int
    link_traces: Mapping[tuple[str, str], BandwidthTrace]
    #: Host names; server ``s{i}`` is pinned to ``server_hosts[i]``.
    server_hosts: tuple[str, ...]
    client_host: str = "client"

    images_per_server: int = 180
    mean_image_size: float = 128 * 1024.0
    image_rel_std: float = 0.25
    workload_seed: int = 0

    #: Per-message startup cost, seconds (§4).
    startup_cost: float = 0.050
    #: Concurrent transfers per host (paper assumption 2: one; the paper
    #: notes the assumption can be relaxed — this knob does).
    nic_capacity: int = 1
    #: Dataset replicas per server (paper assumption 3: data is not
    #: replicated, i.e. 1).  With R > 1 each server's image sequence also
    #: lives on R-1 other hosts, and the one-shot/global planners may
    #: serve it from any replica (a server "move" is then just a switch of
    #: serving replica — the data is already there).  The local algorithm
    #: keeps servers static, as in the paper.
    replication_factor: int = 1
    #: Server disk bandwidth, bytes/second (§4).
    disk_rate: float = 3 * 1024 * 1024
    compose: CompositionSpec = field(default_factory=CompositionSpec)
    monitoring: MonitoringConfig = field(default_factory=MonitoringConfig)

    #: On-line algorithms: seconds between relocation decisions (§4 uses
    #: 10 minutes for the main experiments; Figure 9 sweeps it).
    relocation_period: float = 600.0
    #: Local algorithm: number of extra random candidate sites (Figure 7).
    local_extra_candidates: int = 0
    #: Local algorithm: probe stale links among the base candidate sites
    #: (producers'/consumer's hosts) before deciding.  The operator's own
    #: links are fresh from passive monitoring either way; this covers the
    #: producer→candidate cross links.
    local_probe_base: bool = False
    #: Seed for the local algorithm's random candidate choices.
    control_seed: int = 0

    #: Serialized operator state moved on relocation, bytes (light moves).
    op_state_bytes: float = 4 * 1024.0
    #: Operators demand the next partition right after dispatching
    #: (pipelining); ablation switch.
    prefetch: bool = True
    #: Barrier messages overtake queued data (paper behaviour); ablation
    #: switch sets them to bulk-data priority instead.
    barrier_priority: bool = True
    #: Global algorithm: refresh every link the search consults *before*
    #: planning (expensive; ablation only).  The default flow plans on
    #: cached estimates and then validates just the chosen placement's
    #: links with probes before committing — an order of magnitude less
    #: probe traffic for equal or better plan quality.
    probe_before_planning: bool = False
    #: Ablation: planners see true instantaneous link bandwidths instead
    #: of monitoring estimates (isolates algorithm quality from
    #: measurement error; no probe traffic is generated).
    oracle_monitoring: bool = False
    #: Global algorithm: install a new plan only if its modeled cost beats
    #: the current placement's by this relative margin (hysteresis against
    #: estimate jitter).
    replan_threshold: float = 0.10
    #: Local algorithm: move only if the local critical path improves by
    #: this relative margin.
    local_move_threshold: float = 0.05
    #: Give every host a fresh measurement of every link at t=0 (the
    #: "information available at the beginning" the one-shot algorithm
    #: uses).
    seed_initial_snapshot: bool = True

    #: Hard wall on simulated time (guards against pathological configs).
    max_sim_time: float = 10 * 86400.0

    #: Optional fault-injection plan; ``None`` (or an empty plan) keeps
    #: every fault/retry code path dormant — the run is bit-identical to
    #: one built before faults existed.
    faults: Optional[FaultPlan] = None
    #: Two-phase relocation: abort and roll back to the source placement
    #: if the state transfer has not committed within this many seconds.
    relocation_timeout: float = 600.0
    #: Planner degradation: below this fraction of fresh link estimates
    #: the global controller declines to replan.
    degraded_view_threshold: float = 0.5
    #: Planner degradation: an estimate older than this (seconds) no
    #: longer counts toward view coverage.
    degraded_estimate_horizon: float = 1800.0
    #: Planner degradation: after this many consecutive degraded rounds
    #: the global controller falls back to the download-all placement.
    degraded_rounds_to_download_all: int = 3

    #: Kernel fast path: complete fault-free transfers with a single
    #: analytic callback event instead of a generator process.  Results
    #: are bit-identical either way; False forces the full DES path
    #: (equivalence tests, kernel benchmarks).
    fluid_fast_path: bool = True

    #: Planner grid-search engine for the one-shot/global family:
    #: ``"vectorized"`` (default) batch-prices every candidate move per
    #: round with numpy, ``"scalar"`` forces the reference loop.  Results
    #: are bit-identical either way (plans, metrics and obs streams);
    #: estimators with per-call side effects — the live monitoring view
    #: the t=0 placement plans on — always take the scalar path so traced
    #: event streams stay unchanged.
    planner_engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.tree_shape not in ("binary", "left-deep"):
            raise ValueError(f"unknown tree shape {self.tree_shape!r}")
        if self.num_servers < 2:
            raise ValueError(f"need >=2 servers, got {self.num_servers!r}")
        if len(self.server_hosts) != self.num_servers:
            raise ValueError(
                f"{self.num_servers} servers but {len(self.server_hosts)} hosts"
            )
        if self.client_host in self.server_hosts:
            raise ValueError("client host must differ from server hosts")
        if self.relocation_period <= 0:
            raise ValueError("relocation_period must be positive")
        if self.local_extra_candidates < 0:
            raise ValueError("local_extra_candidates must be >= 0")
        if self.images_per_server < 1:
            raise ValueError("need at least one image per server")
        if self.nic_capacity < 1:
            raise ValueError("nic_capacity must be >= 1")
        if not 1 <= self.replication_factor <= self.num_servers + 1:
            raise ValueError(
                "replication_factor must be between 1 and the host count"
            )
        if self.relocation_timeout <= 0:
            raise ValueError("relocation_timeout must be positive")
        if not 0.0 <= self.degraded_view_threshold <= 1.0:
            raise ValueError("degraded_view_threshold must be in [0, 1]")
        if self.degraded_estimate_horizon <= 0:
            raise ValueError("degraded_estimate_horizon must be positive")
        if self.degraded_rounds_to_download_all < 1:
            raise ValueError("degraded_rounds_to_download_all must be >= 1")
        if self.planner_engine not in ("scalar", "vectorized"):
            raise ValueError(
                f"unknown planner engine {self.planner_engine!r}"
            )
        self._validate_links()

    def _validate_links(self) -> None:
        hosts = [*self.server_hosts, self.client_host]
        for i, a in enumerate(hosts):
            for b in hosts[i + 1 :]:
                key = (a, b) if a < b else (b, a)
                if key not in self.link_traces:
                    raise ValueError(f"missing link trace for {key!r}")

    @property
    def all_hosts(self) -> tuple[str, ...]:
        """Server hosts plus the client host."""
        return (*self.server_hosts, self.client_host)
