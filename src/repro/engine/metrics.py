"""Run metrics: what one simulation reports."""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np


@dataclass(frozen=True)
class RelocationEvent:
    """One actor move: when, who, from where, to where."""

    time: float
    actor: str
    old_host: str
    new_host: str


@dataclass
class RunMetrics:
    """Measurements collected over one simulation run."""

    algorithm: str = ""
    num_servers: int = 0
    images: int = 0
    #: Client-side arrival time of each composed image, seconds.
    arrival_times: list[float] = field(default_factory=list)
    #: Operator relocations performed.
    relocations: int = 0
    #: Chronological record of every actor move.
    relocation_events: list[RelocationEvent] = field(default_factory=list)
    #: Planning rounds executed by the on-line controller.
    planner_runs: int = 0
    #: Placement change-overs actually installed (plans that differed).
    placements_installed: int = 0
    #: Barrier protocol executions and their total stall (server suspend) time.
    barrier_rounds: int = 0
    barrier_stall_seconds: float = 0.0
    #: Monitoring activity.
    probes_sent: int = 0
    probe_bytes: float = 0.0
    #: Messages forwarded because a destination operator had moved.
    forwarded_messages: int = 0
    bytes_on_wire: float = 0.0
    #: True if the run hit the simulation-time wall before finishing.
    truncated: bool = False

    @property
    def completion_time(self) -> float:
        """Time the last composed image reached the client."""
        return self.arrival_times[-1] if self.arrival_times else float("nan")

    @property
    def mean_interarrival(self) -> float:
        """Average seconds per delivered image (completion / count).

        This matches the paper's "average inter-arrival time for processed
        images at the client" (§5): the first image's wait counts.
        """
        if not self.arrival_times:
            return float("nan")
        return self.completion_time / len(self.arrival_times)

    @property
    def median_gap(self) -> float:
        """Median gap between consecutive arrivals (first gap from t=0)."""
        if not self.arrival_times:
            return float("nan")
        gaps = np.diff([0.0, *self.arrival_times])
        return float(np.median(gaps))

    def speedup_over(self, baseline: "RunMetrics") -> float:
        """How much faster this run finished than ``baseline``."""
        return baseline.completion_time / self.completion_time

    def summary(self) -> dict:
        """Plain-dict summary for serialization and tables."""
        return {
            "algorithm": self.algorithm,
            "num_servers": self.num_servers,
            "images": self.images,
            "completion_time": self.completion_time,
            "mean_interarrival": self.mean_interarrival,
            "relocations": self.relocations,
            "planner_runs": self.planner_runs,
            "placements_installed": self.placements_installed,
            "barrier_rounds": self.barrier_rounds,
            "barrier_stall_seconds": self.barrier_stall_seconds,
            "probes_sent": self.probes_sent,
            "probe_bytes": self.probe_bytes,
            "forwarded_messages": self.forwarded_messages,
            "bytes_on_wire": self.bytes_on_wire,
            "truncated": self.truncated,
        }
