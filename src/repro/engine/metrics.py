"""Run metrics: what one simulation reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Union

import numpy as np

#: Version tag :meth:`RunMetrics.summary` embeds.  Version 2 added the
#: trace-derived fields (transfers, local deliveries, passive
#: measurements, piggyback merges) and ``median_gap``; version 3 added
#: the resilience counters (retransmissions, dropped bytes, abandoned
#: messages, aborted relocations, host downtime, probe timeouts, planner
#: fallbacks).  Older payloads are still accepted by
#: :mod:`repro.experiments.persistence`.
SUMMARY_SCHEMA = 3


@dataclass(frozen=True)
class RelocationEvent:
    """One actor move: when, who, from where, to where."""

    time: float
    actor: str
    old_host: str
    new_host: str


@dataclass
class RunMetrics:
    """Measurements collected over one simulation run."""

    algorithm: str = ""
    num_servers: int = 0
    images: int = 0
    #: Client-side arrival time of each composed image, seconds.
    arrival_times: list[float] = field(default_factory=list)
    #: Operator relocations performed.
    relocations: int = 0
    #: Chronological record of every actor move.
    relocation_events: list[RelocationEvent] = field(default_factory=list)
    #: Planning rounds executed by the on-line controller.
    planner_runs: int = 0
    #: Placement change-overs actually installed (plans that differed).
    placements_installed: int = 0
    #: Barrier protocol executions and their total stall (server suspend) time.
    barrier_rounds: int = 0
    barrier_stall_seconds: float = 0.0
    #: Monitoring activity.
    probes_sent: int = 0
    probe_bytes: float = 0.0
    #: Messages forwarded because a destination operator had moved.
    forwarded_messages: int = 0
    bytes_on_wire: float = 0.0
    #: True if the run hit the simulation-time wall before finishing.
    truncated: bool = False
    #: Schema-2 trace-derived fields.
    transfers: int = 0
    local_deliveries: int = 0
    passive_measurements: int = 0
    piggyback_entries_merged: int = 0
    #: Schema-3 resilience counters (all zero unless a fault plan ran).
    retransmissions: int = 0
    dropped_bytes: float = 0.0
    abandoned_messages: int = 0
    aborted_relocations: int = 0
    host_downtime_seconds: float = 0.0
    probe_timeouts: int = 0
    planner_fallbacks: int = 0
    #: Planner-effort totals (diagnostic — excluded from :meth:`summary`
    #: like the kernel accounting below, so golden fingerprints stay
    #: invariant; the workload sinks surface them as fleet counters).
    #: Improvement rounds summed over every planner search of the run.
    planner_rounds: int = 0
    #: Single-move candidates evaluated, summed over every search.
    planner_candidates: int = 0
    #: Distinct links each search consulted, summed over searches (the
    #: per-search ``links`` field of ``planner.search`` events).
    planner_links_queried: int = 0
    #: Kernel accounting (diagnostic only — deliberately excluded from
    #: :meth:`summary` so the golden fingerprints stay invariant under
    #: kernel-scheduling changes; a forced-slow-path run differs from a
    #: fast-path run on exactly these fields and nothing else).
    #: Calendar events the kernel processed over the whole run.
    kernel_events: int = 0
    #: Transfers completed via the fluid (single-callback) fast path.
    fluid_transfers: int = 0
    #: Transfers completed via the full DES process path.
    des_transfers: int = 0

    def note_plan(self, result) -> None:
        """Accumulate one :class:`~repro.placement.base.PlanResult`'s effort.

        Called exactly where ``planner.search`` events are emitted, so
        trace replay (:func:`repro.obs.summary.replay_aggregates`)
        rebuilds these totals bit-exactly from the event stream.
        """
        self.planner_rounds += result.rounds
        self.planner_candidates += result.candidates_evaluated
        self.planner_links_queried += len(result.links_queried)

    @property
    def completion_time(self) -> float:
        """Time the last composed image reached the client."""
        return self.arrival_times[-1] if self.arrival_times else float("nan")

    @property
    def mean_interarrival(self) -> float:
        """Average seconds per delivered image (completion / count).

        This matches the paper's "average inter-arrival time for processed
        images at the client" (§5): the first image's wait counts.
        """
        if not self.arrival_times:
            return float("nan")
        return self.completion_time / len(self.arrival_times)

    @property
    def median_gap(self) -> float:
        """Median gap between consecutive arrivals (first gap from t=0)."""
        if not self.arrival_times:
            return float("nan")
        gaps = np.diff([0.0, *self.arrival_times])
        return float(np.median(gaps))

    def speedup_over(self, baseline: "RunMetrics") -> float:
        """How much faster this run finished than ``baseline``."""
        return baseline.completion_time / self.completion_time

    def summary(self) -> dict:
        """Plain-dict summary for serialization and tables.

        Carries ``"schema": 3`` — see :data:`SUMMARY_SCHEMA`.  Readers in
        :mod:`repro.experiments.persistence` accept every version.
        """
        return {
            "schema": SUMMARY_SCHEMA,
            "algorithm": self.algorithm,
            "num_servers": self.num_servers,
            "images": self.images,
            "completion_time": self.completion_time,
            "mean_interarrival": self.mean_interarrival,
            "median_gap": self.median_gap,
            "relocations": self.relocations,
            "planner_runs": self.planner_runs,
            "placements_installed": self.placements_installed,
            "barrier_rounds": self.barrier_rounds,
            "barrier_stall_seconds": self.barrier_stall_seconds,
            "probes_sent": self.probes_sent,
            "probe_bytes": self.probe_bytes,
            "forwarded_messages": self.forwarded_messages,
            "bytes_on_wire": self.bytes_on_wire,
            "truncated": self.truncated,
            "transfers": self.transfers,
            "local_deliveries": self.local_deliveries,
            "passive_measurements": self.passive_measurements,
            "piggyback_entries_merged": self.piggyback_entries_merged,
            "retransmissions": self.retransmissions,
            "dropped_bytes": self.dropped_bytes,
            "abandoned_messages": self.abandoned_messages,
            "aborted_relocations": self.aborted_relocations,
            "host_downtime_seconds": self.host_downtime_seconds,
            "probe_timeouts": self.probe_timeouts,
            "planner_fallbacks": self.planner_fallbacks,
        }

    @classmethod
    def from_trace(
        cls, source: "Union[str, Iterable[dict[str, Any]]]"
    ) -> "RunMetrics":
        """Rebuild the aggregate metrics by replaying a recorded trace.

        ``source`` is a JSONL trace path or the record list returned by
        :func:`repro.obs.read_jsonl`.  Because each trace event is emitted
        exactly where the live counter increments, the replayed metrics
        match the run's :class:`RunMetrics` field-for-field (probe counts
        excepted only if monitoring was never enabled).  Used in tests as
        a cross-check of the aggregates against the event stream.
        """
        # Imported lazily: repro.obs must stay importable without the
        # engine, and vice versa.
        from repro.obs.exporters import read_jsonl
        from repro.obs.summary import replay_aggregates

        records = read_jsonl(source) if isinstance(source, str) else list(source)
        agg = replay_aggregates(records)
        events = [
            RelocationEvent(
                time=e["time"],
                actor=e["actor"],
                old_host=e["old_host"],
                new_host=e["new_host"],
            )
            for e in agg.pop("relocation_events")
        ]
        return cls(relocation_events=events, **agg)
