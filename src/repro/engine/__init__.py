"""The demand-driven execution engine (the paper's simulated system).

This package wires everything together into a running simulation:

* **Actors** (:mod:`repro.engine.actors`) — one process per tree node.
  Servers read images from disk and serve demands; operators compose
  inputs, hold their output until demanded, and *relocate themselves*
  inside the light-move window (after dispatching output, before
  requesting new inputs); the client demands partitions and records
  arrival times.
* **Controllers** (:mod:`repro.engine.controllers`) — the on-line
  machinery: the global algorithm's periodic re-planning plus the barrier
  change-over protocol (§2.2), and the local algorithm's staggered epoch
  wavefront with "later"-mark critical-path detection (§2.3).
* **Runtime** (:mod:`repro.engine.runtime`) — shared state: message
  plumbing with per-host location/timestamp vectors, relocation
  mechanics, barrier bookkeeping and metrics.
* **Simulation facade** (:mod:`repro.engine.simulation`) — build and run
  one complete experiment from a :class:`~repro.engine.config.SimulationSpec`.
"""

from repro.engine.config import Algorithm, SimulationSpec
from repro.engine.metrics import RunMetrics
from repro.engine.simulation import build_simulation, run_simulation

__all__ = [
    "Algorithm",
    "RunMetrics",
    "SimulationSpec",
    "build_simulation",
    "run_simulation",
]
