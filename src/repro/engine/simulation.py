"""Build and run one complete simulation from a :class:`SimulationSpec`."""

from __future__ import annotations

from repro.app.images import ImageWorkload
from repro.dataflow.cost import CostModel, expected_output_sizes
from repro.dataflow.placement import Placement
from repro.dataflow.tree import (
    CombinationTree,
    complete_binary_tree,
    left_deep_tree,
)
from repro.engine.actors import ClientActor, OperatorActor, ServerActor
from repro.engine.config import Algorithm, SimulationSpec
from repro.engine.controllers import GlobalController, LocalController
from repro.engine.metrics import RunMetrics
from repro.engine.runtime import Runtime
from repro.faults import FaultInjector
from repro.monitor.system import MonitoringSystem
from repro.net.host import Host
from repro.net.link import Link
from repro.net.network import Network
from repro.obs.events import RUN_END, RUN_META
from repro.obs.tracer import ensure_tracer
from repro.placement import planner_for
from repro.placement.download_all import download_all_placement
from repro.sim import Environment

import numpy as np


def derive_server_replicas(
    spec: SimulationSpec, server_hosts_map: dict[str, str]
) -> dict[str, tuple[str, ...]]:
    """Replica hosts per server (primary first), from the workload seed.

    With ``replication_factor == 1`` every server has just its primary
    host (the paper's assumption 3).
    """
    replicas: dict[str, tuple[str, ...]] = {}
    rng = np.random.default_rng((spec.workload_seed, 7351))
    for server_id, primary in sorted(server_hosts_map.items()):
        others = [h for h in spec.all_hosts if h != primary]
        extra_count = min(spec.replication_factor - 1, len(others))
        if extra_count > 0:
            picks = rng.choice(len(others), size=extra_count, replace=False)
            replicas[server_id] = (primary, *(others[i] for i in sorted(picks)))
        else:
            replicas[server_id] = (primary,)
    return replicas


def build_tree(spec: SimulationSpec) -> CombinationTree:
    """The combination tree requested by the spec."""
    if spec.tree_shape == "binary":
        return complete_binary_tree(spec.num_servers)
    return left_deep_tree(spec.num_servers)


def build_query(
    spec: SimulationSpec,
    env: Environment,
    network: Network,
    monitoring: MonitoringSystem,
    tracer=None,
    namespace: str = "",
    query_id: str | None = None,
    planner_wrapper=None,
) -> Runtime:
    """Assemble one query's tree, placement, actors and controllers.

    The network/monitoring substrate is supplied by the caller, so several
    queries can share it (:mod:`repro.workload`).  ``namespace`` prefixes
    this query's actor ids at the network boundary; ``query_id`` tags its
    messages and trace events.  ``planner_wrapper`` — a callable
    ``(planner, stage) -> Planner`` with stage ``"initial"`` or
    ``"controller"`` — lets a fleet coordinator interpose on every
    planning opportunity (:mod:`repro.fleet`); None keeps the planners
    bare.  With the defaults (empty namespace, no query id, no wrapper)
    the constructed query is byte-identical to what
    :func:`build_simulation` always built, which the single-query identity
    test pins.
    """
    tracer = ensure_tracer(tracer)
    tree = build_tree(spec)
    workload = ImageWorkload.generate(
        spec.num_servers,
        spec.images_per_server,
        spec.mean_image_size,
        spec.image_rel_std,
        seed=spec.workload_seed,
    )
    sizes = expected_output_sizes(
        tree, spec.mean_image_size, spec.image_rel_std, combiner=spec.compose
    )
    cost_model = CostModel(
        tree,
        sizes,
        startup_cost=spec.startup_cost,
        disk_rate=spec.disk_rate,
        combiner=spec.compose,
    )

    server_hosts_map = {
        server.node_id: spec.server_hosts[index]
        for index, server in enumerate(tree.servers())
    }
    server_replicas = derive_server_replicas(spec, server_hosts_map)
    initial_result = _initial_placement(
        spec,
        tree,
        cost_model,
        monitoring,
        server_hosts_map,
        server_replicas,
        tracer=tracer,
        planner_wrapper=planner_wrapper,
    )

    runtime = Runtime(
        env,
        network,
        monitoring,
        tree,
        workload,
        spec,
        initial_result.placement,
        server_replicas=server_replicas,
        tracer=tracer,
        namespace=namespace,
        query_id=query_id,
    )
    runtime.metrics.note_plan(initial_result)

    client_actor = ClientActor(runtime, tree.client)
    runtime.client_actor = client_actor
    env.process(client_actor.run(), name=f"{namespace}client")
    for index, server in enumerate(tree.servers()):
        actor = ServerActor(runtime, server, index)
        env.process(actor.run(), name=f"{namespace}{server.node_id}")
    for op in tree.operators():
        actor = OperatorActor(runtime, op)
        env.process(actor.run(), name=f"{namespace}{op.node_id}")

    if spec.algorithm is Algorithm.GLOBAL:
        planner = planner_for(
            Algorithm.GLOBAL,
            tree,
            list(spec.all_hosts),
            cost_model,
            server_replicas=server_replicas,
            planner_engine=spec.planner_engine,
        )
        if planner_wrapper is not None:
            planner = planner_wrapper(planner, "controller")
        controller = GlobalController(runtime, planner, client_actor)
        env.process(controller.run(), name=f"{namespace}global-controller")
    elif spec.algorithm is Algorithm.LOCAL:
        planner = planner_for(
            Algorithm.LOCAL,
            tree,
            list(spec.all_hosts),
            cost_model,
            extra_candidates=spec.local_extra_candidates,
            planner_engine=spec.planner_engine,
        )
        if planner_wrapper is not None:
            planner = planner_wrapper(planner, "controller")
        LocalController(runtime, planner).start()

    return runtime


def build_simulation(
    spec: SimulationSpec, tracer=None
) -> tuple[Environment, Runtime]:
    """Assemble network, monitoring, tree, placement, actors, controllers.

    ``tracer`` (a :class:`repro.obs.Tracer`) turns on run tracing across
    every subsystem; the default no-op tracer leaves the hot paths
    untouched.
    """
    tracer = ensure_tracer(tracer)
    env = Environment()
    if tracer.enabled:
        env.trace_hook = tracer.kernel_hook
    network = Network(env, tracer=tracer)
    network.fluid_fast_path = spec.fluid_fast_path
    for host_name in spec.all_hosts:
        host = Host(
            env,
            host_name,
            disk_rate=spec.disk_rate,
            nic_capacity=spec.nic_capacity,
        )
        host.fluid_facilities = spec.fluid_fast_path
        network.add_host(host)
    hosts = list(spec.all_hosts)
    for i, a in enumerate(hosts):
        for b in hosts[i + 1 :]:
            key = (a, b) if a < b else (b, a)
            # Prime the trace's byte prefix sums up front: library-cached
            # noon segments arrive warm already, and ad-hoc traces pay the
            # cumsum here, outside the simulated transfers.
            trace = spec.link_traces[key].ensure_cum()
            network.add_link(
                Link(a, b, trace, startup_cost=spec.startup_cost)
            )

    monitoring = MonitoringSystem(network, spec.monitoring, tracer=tracer)
    if spec.seed_initial_snapshot:
        monitoring.seed_snapshot(0.0)

    runtime = build_query(spec, env, network, monitoring, tracer=tracer)

    if spec.faults is not None and not spec.faults.is_empty():
        spec.faults.validate_hosts(network.hosts.keys())
        injector = FaultInjector(spec.faults, env, tracer=tracer)
        network.install_faults(injector)
        monitoring.faults = injector
        runtime.faults = injector
        injector.start()

    return env, runtime


def _initial_placement(
    spec: SimulationSpec,
    tree: CombinationTree,
    cost_model: CostModel,
    monitoring: MonitoringSystem,
    server_hosts_map: dict[str, str],
    server_replicas: "dict[str, tuple[str, ...]] | None" = None,
    tracer=None,
    planner_wrapper=None,
):
    """Initial operator placement per algorithm (§2), as a PlanResult.

    download-all starts (and stays) with every operator at the client; the
    other three algorithms start from a one-shot plan computed with the
    information available at t=0.
    """
    download = download_all_placement(tree, server_hosts_map, spec.client_host)

    def estimator(a: str, b: str) -> float:
        return monitoring.estimate(spec.client_host, a, b, 0.0).bandwidth

    # Every estimate() call can emit a traced MONITOR_ESTIMATE event, so
    # this live view is not snapshot-safe: the vectorized engine would
    # collapse the per-candidate call sequence into one matrix fill and
    # change the event stream.  Marking it keeps the t=0 plan on the
    # scalar path regardless of spec.planner_engine.
    estimator.snapshot_safe = False

    initial_algorithm = (
        Algorithm.DOWNLOAD_ALL
        if spec.algorithm is Algorithm.DOWNLOAD_ALL
        else Algorithm.ONE_SHOT
    )
    planner = planner_for(
        initial_algorithm,
        tree,
        list(spec.all_hosts),
        cost_model,
        server_replicas=server_replicas,
        planner_engine=spec.planner_engine,
    )
    if planner_wrapper is not None:
        planner = planner_wrapper(planner, "initial")
    return planner.plan(estimator, download, tracer=tracer)


def run_simulation(spec: SimulationSpec, tracer=None) -> RunMetrics:
    """Run one experiment to completion and return its metrics.

    Pass a :class:`repro.obs.Tracer` to record the run's event stream
    (export it with :mod:`repro.obs.exporters` afterwards).
    """
    tracer = ensure_tracer(tracer)
    if tracer.enabled:
        tracer.meta.update(
            algorithm=spec.algorithm.value,
            num_servers=spec.num_servers,
            images=spec.images_per_server,
        )
        tracer.emit(
            RUN_META,
            0.0,
            algorithm=spec.algorithm.value,
            num_servers=spec.num_servers,
            images=spec.images_per_server,
            tree_shape=spec.tree_shape,
            hosts=list(spec.all_hosts),
        )
    env, runtime = build_simulation(spec, tracer=tracer)
    stop = env.any_of([runtime.done, env.timeout(spec.max_sim_time)])
    env.run(until=stop)
    metrics = runtime.finalize_metrics(truncated=not runtime.finished)
    metrics.kernel_events = env.events_processed
    if tracer.enabled:
        tracer.emit(
            RUN_END,
            env.now,
            truncated=metrics.truncated,
            images_delivered=len(metrics.arrival_times),
            completion_time=metrics.completion_time,
        )
    return metrics
