"""On-line relocation controllers.

* :class:`GlobalController` — §2.2: the client periodically re-plans with
  the one-shot procedure (warm-started from the current placement) using
  its monitoring view, then installs the new placement with the barrier
  change-over protocol.
* :class:`LocalController` — §2.3: one process per operator firing at
  staggered epoch boundaries (a wavefront moving up the tree); each
  operator self-detects critical-path membership from "later" marks and,
  if on the path, picks the local-critical-path-minimizing site among its
  neighbours' hosts plus ``k`` random extras.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.critical import placement_cost
from repro.engine.actors import ClientActor
from repro.engine.runtime import Runtime
from repro.obs.events import (
    BARRIER_ROUND,
    PLACEMENT_INSTALL,
    PLANNER_FALLBACK,
    PLANNER_RUN,
)
from repro.placement.download_all import download_all_placement
from repro.placement.global_planner import GlobalPlanner
from repro.placement.local_rules import LocalRulesPlanner, is_on_critical_path


class GlobalController:
    """Periodic global re-planning plus the barrier change-over."""

    #: Safety net on waiting for pre-planning probes.  Probes travel at
    #: CONTROL priority so they always make progress; planning on a
    #: half-refreshed estimate matrix measurably hurts plan quality, so
    #: the controller normally waits for every probe.
    PROBE_WAIT_SECONDS = 3600.0
    #: Probe/re-plan refinement iterations per planning round.  One round
    #: measurably beats more: extra probe rounds refresh more links but
    #: their traffic preempts the data pipeline (probes ride at CONTROL
    #: priority so they cannot be starved), and the interference costs
    #: more than the fresher matrix gains.
    MAX_PROBE_ROUNDS = 1

    def __init__(
        self,
        runtime: Runtime,
        planner: GlobalPlanner,
        client_actor: ClientActor,
    ) -> None:
        self.runtime = runtime
        self.planner = planner
        self.client_actor = client_actor
        self._plan_seq = 0
        self._degraded_rounds = 0

    def run(self):
        """Main controller process (lives at the client)."""
        runtime = self.runtime
        period = runtime.spec.relocation_period
        while True:
            yield runtime.env.timeout(period)
            if runtime.finished:
                return
            yield from self._replan_once()

    def _replan_once(self):
        runtime = self.runtime
        env = runtime.env
        client_host = runtime.spec.client_host
        runtime.metrics.planner_runs += 1
        tracer = runtime.tracer
        if tracer.enabled:
            tracer.emit(PLANNER_RUN, env.now, algorithm=self.planner.name)

        if runtime.faults is not None and not runtime.spec.oracle_monitoring:
            # Under faults the monitoring view can rot (probes time out,
            # links stay dark).  Planning on a mostly-dead matrix produces
            # garbage moves, so degrade instead: keep the last-known-good
            # placement, and after enough consecutive degraded rounds
            # retreat to the always-feasible download-all placement.
            coverage = self._view_coverage(client_host)
            if coverage < runtime.spec.degraded_view_threshold:
                self._degraded_rounds += 1
                runtime.metrics.planner_fallbacks += 1
                fallback_to_download = (
                    self._degraded_rounds
                    >= runtime.spec.degraded_rounds_to_download_all
                )
                mode = (
                    "download-all" if fallback_to_download else "last-known-good"
                )
                if tracer.enabled:
                    tracer.emit(
                        PLANNER_FALLBACK,
                        env.now,
                        algorithm=self.planner.name,
                        mode=mode,
                        coverage=coverage,
                    )
                if fallback_to_download:
                    download = download_all_placement(
                        runtime.tree,
                        {
                            s.node_id: runtime.host_of(s.node_id)
                            for s in runtime.tree.servers()
                        },
                        runtime.spec.client_host,
                    )
                    if download != runtime.current_placement:
                        yield from self._install(download)
                return
            self._degraded_rounds = 0

        if runtime.spec.probe_before_planning and not runtime.spec.oracle_monitoring:
            # Plan, probe the stale links the search consulted, re-plan —
            # to a fixpoint: a refreshed matrix can steer the search onto
            # links it had not queried before, and planning on unmeasured
            # links invites winner's-curse moves.  This is §2.1's "in
            # practice ... only a subset of the links need to be measured"
            # made operational.
            for _ in range(self.MAX_PROBE_ROUNDS):
                dry = self.planner.plan(
                    runtime.snapshot_estimator(client_host),
                    runtime.current_placement,
                    tracer=tracer,
                    now=env.now,
                )
                runtime.metrics.note_plan(dry)
                stale = [
                    (a, b)
                    for a, b in sorted(dry.links_queried)
                    if runtime.monitoring.estimate(
                        client_host, a, b, env.now
                    ).quality
                    != "fresh"
                ]
                if not stale:
                    break
                probes = [
                    env.process(runtime.remote_probe(client_host, a, b))
                    for a, b in stale
                ]
                yield env.any_of(
                    [env.all_of(probes), env.timeout(self.PROBE_WAIT_SECONDS)]
                )
                if runtime.finished:
                    return

        # Snapshot estimators are pure dict lookups (snapshot_safe), so
        # this is the hot path where the vectorized planner engine prices
        # the whole candidate grid per round instead of looping.
        estimator = runtime.snapshot_estimator(client_host)
        result = self.planner.plan(
            estimator, runtime.current_placement, tracer=tracer, now=env.now
        )
        runtime.metrics.note_plan(result)
        if result.placement == runtime.current_placement:
            return
        # Hysteresis: estimate jitter should not trigger change-overs.
        current_cost = placement_cost(
            runtime.tree,
            runtime.current_placement,
            self.planner.cost_model,
            estimator,
        )
        if result.cost > current_cost * (1.0 - runtime.spec.replan_threshold):
            return

        if not runtime.spec.oracle_monitoring:
            # Validate before committing: the search optimizes over every
            # link estimate, so its winner is biased toward links whose
            # bandwidth is *over*-estimated (winner's curse — and the bias
            # grows with tree size).  Re-measure the links the chosen plan
            # would actually use and re-check the improvement.
            yield from self._refresh_plan_links(result.placement, client_host)
            if runtime.finished:
                return
            validated = runtime.snapshot_estimator(client_host)
            new_cost = placement_cost(
                runtime.tree, result.placement, self.planner.cost_model, validated
            )
            current_cost = placement_cost(
                runtime.tree,
                runtime.current_placement,
                self.planner.cost_model,
                validated,
            )
            if new_cost > current_cost * (1.0 - runtime.spec.replan_threshold):
                return
        yield from self._install(result.placement)

    def _view_coverage(self, viewer: str) -> float:
        """Fraction of host pairs with a usable (recent-enough) estimate.

        Uses :meth:`~repro.monitor.cache.EstimateCache.lookup_any` so the
        check itself never perturbs cache hit/miss statistics.
        """
        runtime = self.runtime
        cache = runtime.monitoring.cache_for(viewer)
        now = runtime.env.now
        horizon = runtime.spec.degraded_estimate_horizon
        hosts = sorted(runtime.spec.all_hosts)
        total = 0
        usable = 0
        for i, a in enumerate(hosts):
            for b in hosts[i + 1 :]:
                total += 1
                entry = cache.lookup_any(a, b)
                if entry is not None and entry.age(now) <= horizon:
                    usable += 1
        return usable / total if total else 1.0

    def _refresh_plan_links(self, placement, client_host: str):
        """Probe the stale links a candidate placement would put data on."""
        runtime = self.runtime
        env = runtime.env
        pairs: set[tuple[str, str]] = set()
        for node in runtime.tree.nodes():
            if node.parent is None:
                continue
            a = placement.host_of(node.node_id)
            b = placement.host_of(node.parent)
            if a != b:
                pairs.add((a, b) if a < b else (b, a))
        stale = [
            (a, b)
            for a, b in sorted(pairs)
            if runtime.monitoring.estimate(client_host, a, b, env.now).quality
            != "fresh"
        ]
        probes = [
            env.process(runtime.remote_probe(client_host, a, b)) for a, b in stale
        ]
        if probes:
            yield env.any_of(
                [env.all_of(probes), env.timeout(self.PROBE_WAIT_SECONDS)]
            )

    def _install(self, placement):
        """Run the barrier change-over protocol (§2.2)."""
        runtime = self.runtime
        env = runtime.env
        self._plan_seq += 1
        plan_seq = self._plan_seq
        runtime.metrics.placements_installed += 1
        runtime.metrics.barrier_rounds += 1
        started = env.now
        tracer = runtime.tracer
        if tracer.enabled:
            current = runtime.current_placement
            moves = sum(
                1
                for node in runtime.tree.nodes()
                if placement.host_of(node.node_id)
                != current.host_of(node.node_id)
            )
            tracer.emit(
                PLACEMENT_INSTALL, started, plan_seq=plan_seq, moves=moves
            )

        reports_ready = runtime.start_barrier(plan_seq)
        root_op = runtime.tree.root_operator.node_id
        self.client_actor.send_barrier(
            root_op,
            {"type": "prepare", "plan_seq": plan_seq},
            dst_host=runtime.current_placement.host_of(root_op),
        )
        reports = yield reports_ready
        switch_iteration = max(reports.values())

        payload = {
            "type": "commit",
            "plan_seq": plan_seq,
            "switch_iteration": switch_iteration,
            "placement": placement.as_dict(),
        }
        for op in runtime.tree.operators():
            self.client_actor.send_barrier(
                op.node_id, dict(payload), dst_host=runtime.host_of(op.node_id)
            )
        for server in runtime.tree.servers():
            self.client_actor.send_barrier(
                server.node_id,
                dict(payload),
                dst_host=runtime.host_of(server.node_id),
            )
        # The client switches its own view as well.
        self.client_actor.switch_plan = (switch_iteration, placement.as_dict())
        runtime.current_placement = placement
        runtime.metrics.barrier_stall_seconds += env.now - started
        if tracer.enabled:
            tracer.span(BARRIER_ROUND, started, env.now, plan_seq=plan_seq)


class LocalController:
    """The distributed local algorithm's epoch wavefront (§2.3).

    The site decisions themselves are delegated to a
    :class:`~repro.placement.local_rules.LocalRulesPlanner`; the
    controller owns the run-time machinery (epoch staggering, probe
    traffic, move thresholds).
    """

    def __init__(self, runtime: Runtime, planner: LocalRulesPlanner) -> None:
        self.runtime = runtime
        self.planner = planner
        self.cost_model = planner.cost_model
        self.sizes = planner.cost_model.sizes

    def start(self) -> None:
        """Spawn one epoch process per operator."""
        for index, op in enumerate(self.runtime.tree.operators()):
            rng = np.random.default_rng(
                (self.runtime.spec.control_seed, index)
            )
            self.runtime.env.process(
                self._epoch_process(op.node_id, op.level, rng),
                name=f"{self.runtime.namespace}epoch-{op.node_id}",
            )

    def _epoch_process(self, op_id: str, level: int, rng: np.random.Generator):
        """Fire at epoch boundaries where the index matches this level.

        Epoch length is ``period / depth`` so every operator reconsiders
        its placement once per relocation period; levels are staggered so
        decisions pass up the tree as a wavefront (§2.3).
        """
        runtime = self.runtime
        depth = max(runtime.tree.depth(), 1)
        epoch_len = runtime.spec.relocation_period / depth
        epoch_index = level
        while True:
            next_boundary = (epoch_index + 1) * epoch_len
            delay = next_boundary - runtime.env.now
            if delay > 0:
                yield runtime.env.timeout(delay)
            if runtime.finished:
                return
            yield from self._act(op_id, rng)
            epoch_index += depth

    def _act(self, op_id: str, rng: np.random.Generator):
        runtime = self.runtime
        actor = runtime.operators[op_id]

        marks = actor.later_marks_in_epoch
        dispatches = actor.dispatches_in_epoch
        actor.later_marks_in_epoch = 0
        actor.dispatches_in_epoch = 0
        on_path = is_on_critical_path(marks, dispatches, actor.consumer_critical)
        actor.on_critical_path = on_path
        if not on_path:
            return
        runtime.metrics.planner_runs += 1
        if runtime.tracer.enabled:
            runtime.tracer.emit(
                PLANNER_RUN,
                runtime.env.now,
                algorithm=self.planner.name,
                actor=op_id,
            )

        my_host = runtime.host_of(op_id)
        producer_hosts = [actor.peer_host(p) for p in actor.producers]
        consumer_host = actor.peer_host(actor.consumer)

        base = set(producer_hosts) | {consumer_host, my_host}
        pool = sorted(set(runtime.spec.all_hosts) - base)
        k = min(runtime.spec.local_extra_candidates, len(pool))
        extras = (
            [pool[i] for i in rng.choice(len(pool), size=k, replace=False)]
            if k
            else []
        )

        if not runtime.spec.oracle_monitoring:
            # The operator knows its own links passively (its data flows
            # over them).  Candidate evaluation needs the producer→candidate
            # cross links too; extra candidate sites (k > 0) always charge
            # their monitoring (Figure 7), base-candidate cross links are
            # probed unless ``local_probe_base`` is ablated off.
            to_refresh = set(extras)
            if runtime.spec.local_probe_base:
                to_refresh |= base
            if to_refresh:
                yield from self._refresh_links(
                    my_host, producer_hosts, consumer_host, sorted(to_refresh)
                )

        decision = self.planner.decide(
            current_host=my_host,
            producer_hosts=producer_hosts,
            producer_sizes=[self.sizes[p] for p in actor.producers],
            consumer_host=consumer_host,
            output_size=self.sizes[op_id],
            estimator=runtime.estimator_for(my_host),
            extra_candidates=extras,
            compute_seconds=self.cost_model.node_seconds(op_id),
        )
        threshold = runtime.spec.local_move_threshold
        if (
            decision.should_move
            and decision.best_cost < decision.current_cost * (1.0 - threshold)
        ):
            target = decision.best_site
            if runtime.faults is not None and runtime.faults.host_down(
                target, runtime.env.now
            ):
                # Don't schedule a move onto a host known to be crashed;
                # the two-phase relocation would only abort anyway.
                runtime.metrics.planner_fallbacks += 1
                if runtime.tracer.enabled:
                    runtime.tracer.emit(
                        PLANNER_FALLBACK,
                        runtime.env.now,
                        algorithm=self.planner.name,
                        mode="skip-down-host",
                        actor=op_id,
                    )
                return
            actor.pending_move = target

    def _refresh_links(
        self,
        my_host: str,
        producer_hosts: list[str],
        consumer_host: str,
        candidates: list[str],
    ):
        """Probe the links the evaluation needs but has no fresh data for.

        This is the monitoring cost the paper charges to extra candidate
        locations ("additional links have to be monitored", Figure 7).
        """
        runtime = self.runtime
        needed: set[tuple[str, str]] = set()
        for site in candidates:
            for producer_host in producer_hosts:
                if producer_host != site:
                    needed.add(tuple(sorted((producer_host, site))))
            if site != consumer_host:
                needed.add(tuple(sorted((site, consumer_host))))
        stale = [
            pair
            for pair in sorted(needed)
            if runtime.monitoring.estimate(
                my_host, pair[0], pair[1], runtime.env.now
            ).quality
            != "fresh"
        ]
        probes = [
            runtime.env.process(runtime.remote_probe(my_host, a, b))
            for a, b in stale
        ]
        if probes:
            yield runtime.env.any_of(
                [
                    runtime.env.all_of(probes),
                    runtime.env.timeout(GlobalController.PROBE_WAIT_SECONDS),
                ]
            )
