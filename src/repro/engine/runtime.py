"""Shared run-time state and plumbing for the execution engine."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.app.composition import CompositionSpec
from repro.app.images import ImageWorkload
from repro.dataflow.placement import Placement
from repro.dataflow.tree import CLIENT_ID, CombinationTree
from repro.engine.config import Algorithm, SimulationSpec
from repro.engine.metrics import RelocationEvent, RunMetrics
from repro.engine.vectors import VectorStore
from repro.monitor.system import MonitoringSystem
from repro.net.host import Host
from repro.net.message import (
    PRIORITY_BARRIER,
    PRIORITY_DATA,
    Message,
    MessageKind,
)
from repro.faults.plan import TransferAbandoned
from repro.net.network import Network
from repro.obs.events import ARRIVAL, RELOCATION, RELOCATION_ABORT
from repro.obs.tracer import ensure_tracer
from repro.sim import Environment, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.actors import OperatorActor


class Runtime:
    """Everything the actors and controllers share during one run.

    The runtime owns message plumbing (with vector piggybacking for the
    local algorithm), relocation mechanics, barrier bookkeeping for the
    global algorithm, and the run metrics.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        monitoring: MonitoringSystem,
        tree: CombinationTree,
        workload: ImageWorkload,
        spec: SimulationSpec,
        initial_placement: Placement,
        server_replicas: "Optional[dict[str, tuple[str, ...]]]" = None,
        tracer=None,
        namespace: str = "",
        query_id: Optional[str] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.tracer = ensure_tracer(tracer)
        #: Prefix applied to every actor id this runtime registers with the
        #: (possibly shared) network, so several queries' identically-named
        #: tree nodes ("client", "s0", "op0", ...) coexist on one network.
        #: Empty for single-query runs, whose ids then cross the boundary
        #: unchanged — which is what keeps ``run_simulation`` bit-identical
        #: to its pre-workload behaviour.
        self.namespace = namespace
        #: Tag stamped on every message this runtime sends; drives the
        #: network's and monitor's per-query accounting and the trace
        #: ``query_id`` field.  ``None`` for single-query runs.
        self.query_id = query_id
        self.monitoring = monitoring
        self.tree = tree
        self.workload = workload
        self.spec = spec
        self.compose: CompositionSpec = spec.compose
        self.num_images = spec.images_per_server

        self.initial_placement = initial_placement
        #: The placement currently intended to be running (ground truth for
        #: the global controller; individual nodes may lag mid-change-over).
        self.current_placement = initial_placement

        #: Replica hosts per server (primary first); single-entry tuples
        #: mean the paper's unreplicated default.
        self.server_replicas: dict[str, tuple[str, ...]] = dict(
            server_replicas or {}
        )
        #: Immovable nodes: the client, plus every server whose data has a
        #: single replica (with replication, servers may switch replicas
        #: at a barrier change-over just like operators move).
        self.pinned_hosts: dict[str, str] = {CLIENT_ID: spec.client_host}
        for server in tree.servers():
            replicas = self.server_replicas.get(server.node_id, ())
            if len(replicas) <= 1:
                self.pinned_hosts[server.node_id] = initial_placement.host_of(
                    server.node_id
                )

        #: Per-host location/timestamp vectors over the relocatable
        #: actors (§2.3): operators, plus replica-switchable servers.
        movable_locations = {
            op.node_id: initial_placement.host_of(op.node_id)
            for op in tree.operators()
        }
        for server in tree.servers():
            if server.node_id not in self.pinned_hosts:
                movable_locations[server.node_id] = initial_placement.host_of(
                    server.node_id
                )
        self.vectors: dict[str, VectorStore] = {
            host: VectorStore(movable_locations) for host in network.hosts
        }

        self.metrics = RunMetrics(
            algorithm=spec.algorithm.value,
            num_servers=spec.num_servers,
            images=self.num_images,
        )
        self.done: Event = env.event()
        self.operators: dict[str, "OperatorActor"] = {}
        #: Set by the simulation builder once the client actor exists.
        self.client_actor = None
        #: Fault injector, set by the simulation builder when a fault
        #: plan is active; None keeps relocation on the unfaulted path.
        self.faults = None
        #: Cooperative-cancellation flag (deadline aborts).  Once set, the
        #: client stops demanding new iterations and the pipeline drains.
        self.cancelled = False

        self._barrier_events: dict[int, Event] = {}
        self._barrier_reports: dict[int, dict[str, int]] = {}

        # Register every actor's starting location.
        for node in tree.nodes():
            network.register_actor(
                self.net_id(node.node_id),
                initial_placement.host_of(node.node_id),
            )

    def cancel(self) -> None:
        """Stop issuing new work; in-flight transfers drain naturally."""
        self.cancelled = True

    # -- actor-id namespacing -------------------------------------------------
    def net_id(self, actor: str) -> str:
        """The network-registry name for one of this runtime's actors."""
        return self.namespace + actor if self.namespace else actor

    def local_id(self, actor: str) -> str:
        """Strip this runtime's namespace off a network actor id."""
        ns = self.namespace
        if ns and actor.startswith(ns):
            return actor[len(ns):]
        return actor

    # -- locations ------------------------------------------------------------
    def host_of(self, actor: str) -> str:
        """Ground-truth current host of an actor."""
        return self.network.actor_host(self.net_id(actor))

    def host_obj(self, actor: str) -> Host:
        """The :class:`Host` an actor currently runs on."""
        return self.network.hosts[self.host_of(actor)]

    def mailbox_of(self, actor: str):
        """The mailbox an actor reads, under its network-registry name."""
        return self.host_obj(actor).mailbox(self.net_id(actor))

    # -- messaging --------------------------------------------------------------
    def barrier_msg_priority(self) -> int:
        """Priority for barrier messages (ablation switch, §2.2)."""
        return PRIORITY_BARRIER if self.spec.barrier_priority else PRIORITY_DATA

    def send(
        self,
        kind: MessageKind,
        src_actor: str,
        dst_actor: str,
        size: float,
        payload: dict[str, Any],
        dst_host: Optional[str] = None,
        priority: Optional[int] = None,
    ) -> Message:
        """Send a message from an actor to another actor's believed host.

        For the local algorithm the sender's host piggybacks its location
        and timestamp vectors plus its own authoritative entry.
        """
        src_host = self.host_of(src_actor)
        if self.spec.algorithm is Algorithm.LOCAL:
            store = self.vectors[src_host]
            timestamps, locations = store.snapshot()
            payload = dict(payload)
            payload["_vec_ts"] = timestamps
            payload["_vec_loc"] = locations
            payload["_from_host"] = src_host
            if src_actor in store.timestamps:
                payload["_sender_ts"] = store.timestamps[src_actor]
        message = Message(
            kind=kind,
            src_actor=self.net_id(src_actor),
            dst_actor=self.net_id(dst_actor),
            size=size,
            payload=payload,
            priority=priority,
            query_id=self.query_id,
        )
        # Fire-and-forget: nothing ever waits on these deliveries, so
        # post() skips the delivery event entirely.
        self.network.post(message, src_host=src_host, dst_host=dst_host)
        return message

    def ingest_vectors(self, message: Message, receiver_host: str) -> None:
        """Merge piggybacked location knowledge at the receiving host."""
        payload = message.payload
        timestamps = payload.get("_vec_ts")
        if timestamps is None:
            return
        store = self.vectors[receiver_host]
        store.merge(timestamps, payload["_vec_loc"])
        sender_ts = payload.get("_sender_ts")
        if sender_ts is not None:
            store.refresh_entry(
                self.local_id(message.src_actor),
                payload["_from_host"],
                sender_ts,
            )

    # -- relocation ----------------------------------------------------------------
    def relocate(self, op_id: str, new_host: str):
        """Process generator: move an operator (light-move window only).

        The move is a two-phase, abortable transaction.  Phase one ships
        the serialized operator state to the destination as a control
        message; only once it has arrived does phase two commit the move
        (re-home the mailbox, run the paper's authoritative vector update
        at the original site, carry the operator's bandwidth/location
        knowledge along).  Under a fault plan phase one can abort — the
        destination is down, the state transfer times out
        (``spec.relocation_timeout``) or is abandoned — and the operator
        simply stays at the source: nothing was committed, so rollback is
        the identity.  Aborts are counted in
        :attr:`~repro.engine.metrics.RunMetrics.aborted_relocations`.
        """
        old_host = self.host_of(op_id)
        if old_host == new_host:
            return
        faults = self.faults
        if faults is not None and faults.host_down(new_host, self.env.now):
            self._abort_relocation(op_id, old_host, new_host, "destination-down")
            return
        transfer_actor = self.net_id(f"_xfer-{op_id}")
        self.network.register_actor(transfer_actor, new_host)
        state_msg = Message(
            kind=MessageKind.CONTROL,
            src_actor=self.net_id(op_id),
            dst_actor=transfer_actor,
            size=self.spec.op_state_bytes,
            payload={"type": "operator-state", "operator": op_id},
            query_id=self.query_id,
        )
        delivery = self.network.send(
            state_msg, src_host=old_host, dst_host=new_host
        )
        if faults is None:
            yield delivery
        else:
            timeout = self.env.timeout(self.spec.relocation_timeout)
            try:
                yield self.env.any_of([delivery, timeout])
            except TransferAbandoned:
                self.network.unregister_actor(transfer_actor)
                self._abort_relocation(
                    op_id, old_host, new_host, "transfer-abandoned"
                )
                return
            if not delivery.triggered:
                # Timed out.  The state transfer keeps retrying in the
                # background; when it eventually lands (or dies), the
                # stale destination endpoint is cleaned up.
                delivery.defused = True
                network = self.network
                def _late_cleanup(_event, host=new_host, actor=transfer_actor):
                    network.hosts[host].remove_mailbox(actor)
                    network.unregister_actor(actor)
                delivery.callbacks.append(_late_cleanup)
                self._abort_relocation(op_id, old_host, new_host, "timeout")
                return
        self.network.hosts[new_host].remove_mailbox(transfer_actor)
        self.network.unregister_actor(transfer_actor)

        pending = self.network.move_actor(self.net_id(op_id), new_host)
        new_mailbox = self.network.hosts[new_host].mailbox(self.net_id(op_id))
        for queued in pending:
            new_mailbox.deliver(queued)

        self.vectors[old_host].record_move(op_id, new_host)
        self.vectors[new_host].carry_from(self.vectors[old_host])
        # The operator's own cache rides along too: its measurements are
        # host-to-host facts it learned, not facts about the old host.
        old_cache = self.monitoring.cache_for(old_host)
        new_cache = self.monitoring.cache_for(new_host)
        for entry in old_cache:
            new_cache.merge_entry(entry)

        self.metrics.relocations += 1
        self.metrics.relocation_events.append(
            RelocationEvent(self.env.now, op_id, old_host, new_host)
        )
        if self.tracer.enabled:
            self.tracer.emit(
                RELOCATION,
                self.env.now,
                actor=op_id,
                old_host=old_host,
                new_host=new_host,
                state_bytes=self.spec.op_state_bytes,
            )

    def _abort_relocation(
        self, op_id: str, old_host: str, new_host: str, reason: str
    ) -> None:
        """Roll a failed two-phase move back (the operator never left)."""
        self.metrics.aborted_relocations += 1
        if self.tracer.enabled:
            self.tracer.emit(
                RELOCATION_ABORT,
                self.env.now,
                actor=op_id,
                old_host=old_host,
                new_host=new_host,
                reason=reason,
            )

    # -- monitoring helpers -------------------------------------------------------
    def estimator_for(self, viewer_host: str):
        """Monitoring-backed bandwidth estimator from one host's view."""
        if self.spec.oracle_monitoring:
            # "Perfectly fresh monitoring": the average over the last five
            # minutes, which is what an ideal measurement service reports.
            return lambda a, b: self.network.mean_bandwidth(
                a, b, max(self.env.now - 300.0, 0.0), max(self.env.now, 1.0)
            )

        def estimate(a: str, b: str) -> float:
            return self.monitoring.estimate(viewer_host, a, b, self.env.now).bandwidth

        # Live view: each call may emit a traced MONITOR_ESTIMATE event,
        # so batch engines must not collapse the call sequence.
        estimate.snapshot_safe = False
        return estimate

    def snapshot_estimator(self, viewer_host: str):
        """Dict-backed estimator frozen at the current time.

        Planning evaluates thousands of candidate placements; freezing the
        viewer's monitoring view into a matrix once per planning round
        keeps the search fast and internally consistent.
        """
        now = self.env.now
        hosts = sorted(self.network.hosts)
        matrix: dict[tuple[str, str], float] = {}
        for i, a in enumerate(hosts):
            for b in hosts[i + 1 :]:
                if self.spec.oracle_monitoring:
                    matrix[(a, b)] = self.network.mean_bandwidth(
                        a, b, max(now - 300.0, 0.0), max(now, 1.0)
                    )
                else:
                    matrix[(a, b)] = self.monitoring.estimate(
                        viewer_host, a, b, now
                    ).bandwidth

        def estimate(a: str, b: str) -> float:
            if a == b:
                return float("inf")
            return matrix[(a, b) if a < b else (b, a)]

        # Pure dict lookups over a frozen matrix: safe for the vectorized
        # planner engine to snapshot once per plan call.
        estimate.snapshot_safe = True
        return estimate

    def remote_probe(self, requester_host: str, a: str, b: str):
        """Process generator: have the pair ``(a, b)`` measured on behalf
        of ``requester_host``.

        If the requester is an endpoint, it probes directly.  Otherwise it
        sends a small probe request to ``a``, ``a`` probes ``b``, and the
        acknowledgement back to the requester piggybacks the fresh
        measurement into the requester's cache.
        """
        if requester_host == a or requester_host == b:
            near, far = (a, b) if requester_host == a else (b, a)
            result = yield from self.monitoring.probe(
                near, far, query_id=self.query_id
            )
            return result

        ctl_requester = self.net_id(f"_probe-ctl@{requester_host}")
        ctl_remote = self.net_id(f"_probe-ctl@{a}")
        self.network.register_actor(ctl_requester, requester_host)
        self.network.register_actor(ctl_remote, a)
        try:
            request = Message(
                kind=MessageKind.CONTROL,
                src_actor=ctl_requester,
                dst_actor=ctl_remote,
                size=0,
                payload={"type": "probe-request", "pair": (a, b)},
                query_id=self.query_id,
            )
            try:
                yield self.network.send(
                    request, src_host=requester_host, dst_host=a
                )
            except TransferAbandoned:
                return None
            self.network.hosts[a].remove_mailbox(ctl_remote)

            bandwidth = yield from self.monitoring.probe(
                a, b, query_id=self.query_id
            )

            reply = Message(
                kind=MessageKind.CONTROL,
                src_actor=ctl_remote,
                dst_actor=ctl_requester,
                size=0,
                payload={
                    "type": "probe-reply",
                    "pair": (a, b),
                    "bandwidth": bandwidth,
                },
                query_id=self.query_id,
            )
            try:
                yield self.network.send(reply, src_host=a, dst_host=requester_host)
            except TransferAbandoned:
                return None
            self.network.hosts[requester_host].remove_mailbox(ctl_requester)
            # The reply's piggyback normally carries the measurement; make
            # the delivery explicit in case piggybacking is disabled.
            if bandwidth is not None:
                self.monitoring.cache_for(requester_host).update(
                    a, b, bandwidth, self.env.now
                )
            return bandwidth
        finally:
            self.network.unregister_actor(ctl_requester)
            self.network.unregister_actor(ctl_remote)

    # -- arrivals & barrier bookkeeping ------------------------------------------
    def note_arrival(self, iteration: int, at: float) -> None:
        """Record a composed image reaching the client."""
        self.metrics.arrival_times.append(at)
        if self.tracer.enabled:
            self.tracer.emit(ARRIVAL, at, iteration=iteration)
        if len(self.metrics.arrival_times) >= self.num_images and not self.done.triggered:
            self.done.succeed(at)

    @property
    def finished(self) -> bool:
        return self.done.triggered

    def start_barrier(self, plan_seq: int) -> Event:
        """Create the event that fires when every server has reported."""
        event = self.env.event()
        self._barrier_events[plan_seq] = event
        self._barrier_reports[plan_seq] = {}
        return event

    def note_report(self, plan_seq: int, server_id: str, next_iteration: int) -> None:
        """Register a server's barrier report; fires the event when complete."""
        reports = self._barrier_reports.get(plan_seq)
        if reports is None:
            return  # late duplicate of an already-finished barrier
        reports[server_id] = next_iteration
        if len(reports) == len(self.tree.servers()):
            event = self._barrier_events.pop(plan_seq)
            self._barrier_reports.pop(plan_seq)
            event.succeed(dict(reports))

    # -- finalization -----------------------------------------------------------
    def finalize_metrics(self, truncated: bool) -> RunMetrics:
        """Copy subsystem counters into the run metrics and return them.

        Single-query runs read the network's and monitor's global stats;
        a workload query reads only its own per-query accounting slice,
        so concurrent queries on a shared network do not pollute each
        other's metrics.
        """
        metrics = self.metrics
        metrics.truncated = truncated
        if self.query_id is None:
            net_stats = self.network.stats
            mon_stats = self.monitoring.stats
        else:
            net_stats = self.network.stats_for(self.query_id)
            mon_stats = self.monitoring.stats_for(self.query_id)
        metrics.probes_sent = mon_stats.probes_sent
        metrics.probe_bytes = mon_stats.probe_bytes
        metrics.forwarded_messages = net_stats.forwarded
        metrics.bytes_on_wire = net_stats.bytes_on_wire
        metrics.transfers = net_stats.transfers
        metrics.fluid_transfers = net_stats.fluid_transfers
        metrics.des_transfers = net_stats.des_transfers
        metrics.local_deliveries = net_stats.local_deliveries
        metrics.passive_measurements = mon_stats.passive_measurements
        metrics.piggyback_entries_merged = mon_stats.piggyback_entries_merged
        metrics.retransmissions = net_stats.retransmissions
        metrics.dropped_bytes = net_stats.dropped_bytes
        metrics.abandoned_messages = net_stats.abandoned_messages
        metrics.probe_timeouts = mon_stats.probe_timeouts
        if self.faults is not None:
            metrics.host_downtime_seconds = self.faults.total_downtime
        return metrics
