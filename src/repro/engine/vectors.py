"""Per-host location/timestamp vectors for the local algorithm (§2.3).

"All participating hosts maintain two vectors — a timestamp vector and a
location vector.  Each vector has one entry for each operator.  When an
operator is repositioned, the original site updates the corresponding
entry in the location vector and increments the corresponding entry in
the timestamp vector.  The new information is propagated to peers ... by
piggybacking it on outgoing messages.  If the incoming timestamp vector
dominates the timestamp vector at the receiver, both the vectors at the
receiver are overwritten."

We implement the paper's dominance-overwrite rule, plus one addition the
physical system gets for free: a message *from* operator X arriving from
host H proves X is at H, so the single entry for the sender is refreshed
whenever the sender's timestamp entry is newer.  Without this, two hosts
holding incomparable vectors would never converge.
"""

from __future__ import annotations

from typing import Mapping


class VectorStore:
    """One host's view of where every operator lives."""

    def __init__(self, initial_locations: Mapping[str, str]) -> None:
        #: operator id -> monotonically increasing move counter.
        self.timestamps: dict[str, int] = {op: 0 for op in initial_locations}
        #: operator id -> believed host.
        self.locations: dict[str, str] = dict(initial_locations)

    def location_of(self, op_id: str) -> str:
        """Believed host of ``op_id``."""
        try:
            return self.locations[op_id]
        except KeyError:
            raise KeyError(f"vector store has no operator {op_id!r}") from None

    def record_move(self, op_id: str, new_host: str) -> None:
        """The authoritative update made at the site performing a move."""
        if op_id not in self.locations:
            raise KeyError(f"vector store has no operator {op_id!r}")
        self.locations[op_id] = new_host
        self.timestamps[op_id] += 1

    def dominates(self, other_timestamps: Mapping[str, int]) -> bool:
        """True if ``other_timestamps`` dominates this store's vector.

        Dominance (paper footnote 2): every entry >= ours and at least one
        entry strictly greater.
        """
        strictly_greater = False
        for op_id, ts in self.timestamps.items():
            incoming = other_timestamps.get(op_id, 0)
            if incoming < ts:
                return False
            if incoming > ts:
                strictly_greater = True
        return strictly_greater

    def merge(
        self,
        incoming_timestamps: Mapping[str, int],
        incoming_locations: Mapping[str, str],
    ) -> bool:
        """Apply the dominance-overwrite rule; True if we overwrote."""
        if not self.dominates(incoming_timestamps):
            return False
        for op_id in self.timestamps:
            if op_id in incoming_timestamps:
                self.timestamps[op_id] = incoming_timestamps[op_id]
                self.locations[op_id] = incoming_locations[op_id]
        return True

    def refresh_entry(self, op_id: str, host: str, timestamp: int) -> bool:
        """Single-entry refresh from a message's sender identity."""
        if op_id not in self.timestamps:
            return False
        if timestamp >= self.timestamps[op_id]:
            newer = timestamp > self.timestamps[op_id]
            moved = self.locations[op_id] != host
            self.timestamps[op_id] = timestamp
            self.locations[op_id] = host
            return newer or moved
        return False

    def snapshot(self) -> tuple[dict[str, int], dict[str, str]]:
        """Copies of (timestamps, locations) for piggybacking."""
        return dict(self.timestamps), dict(self.locations)

    def carry_from(self, other: "VectorStore") -> None:
        """Entry-wise newest-wins merge (a migrating operator carries its
        knowledge from the old host to the new one)."""
        for op_id, ts in other.timestamps.items():
            if op_id in self.timestamps and ts > self.timestamps[op_id]:
                self.timestamps[op_id] = ts
                self.locations[op_id] = other.locations[op_id]
