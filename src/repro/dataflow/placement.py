"""Placements: the assignment of tree nodes to hosts."""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.dataflow.tree import CLIENT_ID, CombinationTree


class Placement:
    """An assignment of every tree node to a host.

    Servers and the client are *pinned* (data is not replicated and the
    client is where the results must arrive); operators are free.  The
    class is a thin, validated, hashable mapping — the placement
    algorithms create many of these while searching.
    """

    __slots__ = ("_assignment",)

    def __init__(self, assignment: Mapping[str, str]) -> None:
        self._assignment = dict(assignment)

    @classmethod
    def validated(
        cls,
        tree: CombinationTree,
        assignment: Mapping[str, str],
        hosts: Iterable[str],
        server_hosts: Mapping[str, str],
        client_host: str,
    ) -> "Placement":
        """Build a placement, checking completeness and pinning rules."""
        host_set = set(hosts)
        missing = [n.node_id for n in tree.nodes() if n.node_id not in assignment]
        if missing:
            raise ValueError(f"placement misses nodes: {missing!r}")
        for node_id, host in assignment.items():
            if node_id not in tree:
                raise ValueError(f"placement names unknown node {node_id!r}")
            if host not in host_set:
                raise ValueError(f"placement uses unknown host {host!r}")
        for server_id, host in server_hosts.items():
            if assignment[server_id] != host:
                raise ValueError(
                    f"server {server_id!r} must stay on {host!r}, "
                    f"got {assignment[server_id]!r}"
                )
        if assignment[CLIENT_ID] != client_host:
            raise ValueError(
                f"client must stay on {client_host!r}, got {assignment[CLIENT_ID]!r}"
            )
        return cls(assignment)

    @classmethod
    def all_at_client(
        cls,
        tree: CombinationTree,
        server_hosts: Mapping[str, str],
        client_host: str,
    ) -> "Placement":
        """The download-all placement: every operator at the client."""
        assignment = {CLIENT_ID: client_host}
        for server in tree.servers():
            assignment[server.node_id] = server_hosts[server.node_id]
        for op in tree.operators():
            assignment[op.node_id] = client_host
        return cls(assignment)

    # -- mapping interface ---------------------------------------------------
    def host_of(self, node_id: str) -> str:
        """The host the node is placed on."""
        try:
            return self._assignment[node_id]
        except KeyError:
            raise KeyError(f"placement has no node {node_id!r}") from None

    def __getitem__(self, node_id: str) -> str:
        return self.host_of(node_id)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._assignment

    def __len__(self) -> int:
        return len(self._assignment)

    def items(self):
        """(node_id, host) pairs in sorted node order."""
        return sorted(self._assignment.items())

    def as_dict(self) -> dict[str, str]:
        """A mutable copy of the underlying mapping."""
        return dict(self._assignment)

    @property
    def assignment(self) -> Mapping[str, str]:
        """Read-only view of the node→host mapping (hot-path accessor)."""
        return self._assignment

    def with_move(self, node_id: str, host: str) -> "Placement":
        """A copy with one node re-assigned."""
        if node_id not in self._assignment:
            raise KeyError(f"placement has no node {node_id!r}")
        updated = dict(self._assignment)
        updated[node_id] = host
        return Placement(updated)

    def moves_from(self, other: "Placement") -> list[tuple[str, str, str]]:
        """``(node, old_host, new_host)`` for nodes placed differently."""
        moves = []
        for node_id, host in self.items():
            old = other.host_of(node_id)
            if old != host:
                moves.append((node_id, old, host))
        return moves

    def hosts_used(self) -> set[str]:
        """The set of hosts with at least one node."""
        return set(self._assignment.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Placement):
            return NotImplemented
        return self._assignment == other._assignment

    def __hash__(self) -> int:
        return hash(frozenset(self._assignment.items()))

    def __repr__(self) -> str:
        ops = {k: v for k, v in self._assignment.items() if k.startswith("op")}
        return f"<Placement ops={ops!r}>"
