"""Combination trees, placements, cost model and critical-path analysis.

The unit the placement algorithms operate on is a **data-flow tree**
(:class:`~repro.dataflow.tree.CombinationTree`): servers are the leaves,
binary combination operators are the internal nodes and the client is the
root.  A :class:`~repro.dataflow.placement.Placement` maps every node to a
host (servers and the client are pinned; operators are free).  The
analytic cost model (:mod:`repro.dataflow.cost`) prices a placement as the
length of its **critical path** — the most expensive server-to-client path
under current bandwidth estimates — which is the objective all three
placement algorithms iteratively shorten.
"""

from repro.dataflow.tree import (
    CLIENT_ID,
    CombinationTree,
    TreeNode,
    complete_binary_tree,
    left_deep_tree,
)
from repro.dataflow.placement import Placement
from repro.dataflow.cost import CostModel, EdgeCost, expected_output_sizes
from repro.dataflow.critical import CriticalPath, critical_path

__all__ = [
    "CLIENT_ID",
    "CombinationTree",
    "CostModel",
    "CriticalPath",
    "EdgeCost",
    "Placement",
    "TreeNode",
    "complete_binary_tree",
    "critical_path",
    "expected_output_sizes",
    "left_deep_tree",
]
