"""Critical-path computation over a placed combination tree.

"Critical path is defined as the length of the longest path from a server
to the final destination (the client)" (§2), and a path's length must be
priced under the paper's assumption 2: every host has a **single network
interface** that sends or receives one message at a time, so all
transfers adjacent to a host serialize through its NIC.

The computation is pipelined (180 partitions flow through the tree), so a
path is as slow as its *most occupied* host: per partition, a host's
resources are busy for

    occupancy(h) = all remote transfers adjacent to h   (NIC serialization)
                 + compositions of the operators on h   (CPU)
                 + disk reads of the servers on h       (disk)

and a server-to-client path ``P`` costs

    cost(P) = max( sum of node costs + sum of edge costs along P,   # latency
                   max occupancy over the hosts P visits )          # bottleneck

The placement's cost is the maximum over all paths.  Under download-all
the client's occupancy contains every server's transfer — this is the
end-point congestion that makes the base case slow, and shedding it is
what the relocation algorithms buy.  The latency term keeps faraway
detours priced in.  Without the occupancy term (a naive reading of
"longest path") the model cannot see congestion at all and the one-shot
search never escapes the all-at-client initialization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.cost import BandwidthEstimator, CostModel
from repro.dataflow.placement import Placement
from repro.dataflow.tree import CombinationTree


@dataclass(frozen=True)
class CriticalPath:
    """The most expensive server-to-client chain under a placement."""

    #: Node ids from the critical server up to and including the client.
    nodes: tuple[str, ...]
    #: Length of the path, seconds per partition.
    cost: float

    @property
    def operators(self) -> tuple[str, ...]:
        """The operator nodes on the path (the relocation candidates)."""
        return tuple(n for n in self.nodes if n.startswith("op"))

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.nodes


def host_occupancy(
    tree: CombinationTree,
    placement: Placement,
    cost_model: CostModel,
    estimator: BandwidthEstimator,
) -> tuple[dict[str, float], dict[str, float]]:
    """Per-edge transfer times and per-host per-partition occupancy.

    Returns ``(edge_seconds, occupancy)``: ``edge_seconds[child]`` is the
    transfer time of the edge above ``child`` (0 if co-located);
    ``occupancy[host]`` is the host's per-partition busy time — NIC
    (every adjacent remote transfer), CPU (compositions placed there) and
    disk (server reads).
    """
    assignment = placement.assignment
    node_seconds = cost_model.node_seconds
    startup = cost_model.startup_cost
    min_bw = cost_model.min_bandwidth
    edge_seconds: dict[str, float] = {}
    occupancy: dict[str, float] = {}

    for node_id, host in assignment.items():
        occupancy[host] = occupancy.get(host, 0.0) + node_seconds(node_id)
    for child, parent, size in cost_model.edges:
        child_host = assignment[child]
        parent_host = assignment[parent]
        if child_host == parent_host:
            edge_seconds[child] = 0.0
            continue
        bandwidth = estimator(child_host, parent_host)
        if bandwidth < min_bw:
            bandwidth = min_bw
        seconds = startup + size / bandwidth
        edge_seconds[child] = seconds
        occupancy[child_host] += seconds
        occupancy[parent_host] += seconds
    return edge_seconds, occupancy


def critical_path(
    tree: CombinationTree,
    placement: Placement,
    cost_model: CostModel,
    estimator: BandwidthEstimator,
) -> CriticalPath:
    """Compute the critical path exactly (all server-to-client paths).

    Ties break toward the first path in server order, so the result is
    deterministic.
    """
    edge_seconds, occupancy = host_occupancy(
        tree, placement, cost_model, estimator
    )
    assignment = placement.assignment
    node_seconds = cost_model.node_seconds
    best_nodes: tuple[str, ...] = ()
    best_cost = float("-inf")
    for path in cost_model.server_paths:
        latency = 0.0
        bottleneck = 0.0
        for node_id in path:
            latency += node_seconds(node_id)
            host_occ = occupancy[assignment[node_id]]
            if host_occ > bottleneck:
                bottleneck = host_occ
        for node_id in path[:-1]:
            latency += edge_seconds[node_id]
        cost = latency if latency > bottleneck else bottleneck
        if cost > best_cost:
            best_cost = cost
            best_nodes = path
    return CriticalPath(nodes=best_nodes, cost=best_cost)


def placement_cost(
    tree: CombinationTree,
    placement: Placement,
    cost_model: CostModel,
    estimator: BandwidthEstimator,
) -> float:
    """Convenience: just the critical-path cost."""
    return critical_path(tree, placement, cost_model, estimator).cost


class SingleMoveEvaluator:
    """Incremental placement-cost evaluation for single-operator moves.

    The placement cost is ``max(max-path latency, max-host occupancy)``
    (every host holding a node lies on some server path, so the per-path
    bottleneck maximum equals the global host-occupancy maximum).  Moving
    one operator changes at most three edges (its two input edges and its
    output edge) and the occupancy of a handful of hosts, so a candidate
    can be priced in O(paths + hosts) instead of re-walking the tree —
    the one-shot search prices thousands of candidates per round.
    """

    def __init__(
        self,
        tree: CombinationTree,
        placement: Placement,
        cost_model: CostModel,
        estimator: BandwidthEstimator,
    ) -> None:
        self.tree = tree
        self.cost_model = cost_model
        self.estimator = estimator
        self.assignment = dict(placement.assignment)
        self.edge_seconds, self.occupancy = host_occupancy(
            tree, placement, cost_model, estimator
        )
        self.path_edge_sums = [
            sum(self.edge_seconds[node_id] for node_id in path[:-1])
            for path in cost_model.server_paths
        ]
        #: op id -> ((child ids), parent id) adjacency cache.
        self._adjacent: dict[str, tuple[tuple[str, ...], str]] = {}

    def _edge(self, child: str, child_host: str, parent_host: str) -> float:
        if child_host == parent_host:
            return 0.0
        cm = self.cost_model
        bandwidth = self.estimator(child_host, parent_host)
        if bandwidth < cm.min_bandwidth:
            bandwidth = cm.min_bandwidth
        return cm.startup_cost + cm.sizes[child] / bandwidth

    def base_cost(self) -> float:
        """Cost of the unmodified placement."""
        latency = max(
            node_sum + edge_sum
            for node_sum, edge_sum in zip(
                self.cost_model.path_node_sums, self.path_edge_sums
            )
        )
        bottleneck = max(self.occupancy.values())
        return latency if latency > bottleneck else bottleneck

    def cost_of_move(self, op_id: str, new_host: str) -> float:
        """Placement cost if ``op_id`` alone moved to ``new_host``."""
        assignment = self.assignment
        old_host = assignment[op_id]
        if new_host == old_host:
            return self.base_cost()

        adjacency = self._adjacent.get(op_id)
        if adjacency is None:
            node = self.tree.node(op_id)
            adjacency = (node.children, node.parent)
            self._adjacent[op_id] = adjacency
        children, parent = adjacency

        # Edge deltas (the op's input edges and its output edge).
        edge_delta: dict[str, float] = {}
        occ_delta: dict[str, float] = {
            old_host: -self.cost_model.node_seconds(op_id),
            new_host: self.cost_model.node_seconds(op_id),
        }

        def bump(host: str, seconds: float) -> None:
            occ_delta[host] = occ_delta.get(host, 0.0) + seconds

        for child in children:
            child_host = assignment[child]
            old_edge = self.edge_seconds[child]
            new_edge = self._edge(child, child_host, new_host)
            edge_delta[child] = new_edge - old_edge
            bump(child_host, new_edge - old_edge)
            bump(old_host, -old_edge)
            bump(new_host, new_edge)
        if parent is not None:
            parent_host = assignment[parent]
            old_edge = self.edge_seconds[op_id]
            new_edge = self._edge(op_id, new_host, parent_host)
            edge_delta[op_id] = new_edge - old_edge
            bump(parent_host, new_edge - old_edge)
            bump(old_host, -old_edge)
            bump(new_host, new_edge)

        # Latency term: only paths through the op change.
        cm = self.cost_model
        affected = cm.paths_through.get(op_id, ())
        latency = 0.0
        affected_set = set(affected)
        for index, (node_sum, edge_sum) in enumerate(
            zip(cm.path_node_sums, self.path_edge_sums)
        ):
            if index in affected_set:
                continue
            total = node_sum + edge_sum
            if total > latency:
                latency = total
        for index in affected:
            total = cm.path_node_sums[index] + self.path_edge_sums[index]
            for child, delta in edge_delta.items():
                if index in cm.paths_through.get(child, ()):
                    total += delta
            if total > latency:
                latency = total

        # Bottleneck term: adjust the touched hosts.
        bottleneck = 0.0
        for host, occ in self.occupancy.items():
            occ += occ_delta.get(host, 0.0)
            if occ > bottleneck:
                bottleneck = occ
        extra = occ_delta.get(new_host)
        if new_host not in self.occupancy and extra is not None and extra > bottleneck:
            bottleneck = extra

        return latency if latency > bottleneck else bottleneck
