"""Critical-path computation over a placed combination tree.

"Critical path is defined as the length of the longest path from a server
to the final destination (the client)" (§2), and a path's length must be
priced under the paper's assumption 2: every host has a **single network
interface** that sends or receives one message at a time, so all
transfers adjacent to a host serialize through its NIC.

The computation is pipelined (180 partitions flow through the tree), so a
path is as slow as its *most occupied* host: per partition, a host's
resources are busy for

    occupancy(h) = all remote transfers adjacent to h   (NIC serialization)
                 + compositions of the operators on h   (CPU)
                 + disk reads of the servers on h       (disk)

and a server-to-client path ``P`` costs

    cost(P) = max( sum of node costs + sum of edge costs along P,   # latency
                   max occupancy over the hosts P visits )          # bottleneck

The placement's cost is the maximum over all paths.  Under download-all
the client's occupancy contains every server's transfer — this is the
end-point congestion that makes the base case slow, and shedding it is
what the relocation algorithms buy.  The latency term keeps faraway
detours priced in.  Without the occupancy term (a naive reading of
"longest path") the model cannot see congestion at all and the one-shot
search never escapes the all-at-client initialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.dataflow.cost import BandwidthEstimator, CostModel
from repro.dataflow.placement import Placement
from repro.dataflow.tree import CombinationTree


@dataclass(frozen=True)
class CriticalPath:
    """The most expensive server-to-client chain under a placement."""

    #: Node ids from the critical server up to and including the client.
    nodes: tuple[str, ...]
    #: Length of the path, seconds per partition.
    cost: float

    @property
    def operators(self) -> tuple[str, ...]:
        """The operator nodes on the path (the relocation candidates)."""
        return tuple(n for n in self.nodes if n.startswith("op"))

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.nodes


def host_occupancy(
    tree: CombinationTree,
    placement: Placement,
    cost_model: CostModel,
    estimator: BandwidthEstimator,
) -> tuple[dict[str, float], dict[str, float]]:
    """Per-edge transfer times and per-host per-partition occupancy.

    Returns ``(edge_seconds, occupancy)``: ``edge_seconds[child]`` is the
    transfer time of the edge above ``child`` (0 if co-located);
    ``occupancy[host]`` is the host's per-partition busy time — NIC
    (every adjacent remote transfer), CPU (compositions placed there) and
    disk (server reads).
    """
    assignment = placement.assignment
    node_seconds = cost_model.node_seconds
    startup = cost_model.startup_cost
    min_bw = cost_model.min_bandwidth
    edge_seconds: dict[str, float] = {}
    occupancy: dict[str, float] = {}

    for node_id, host in assignment.items():
        occupancy[host] = occupancy.get(host, 0.0) + node_seconds(node_id)
    for child, parent, size in cost_model.edges:
        child_host = assignment[child]
        parent_host = assignment[parent]
        if child_host == parent_host:
            edge_seconds[child] = 0.0
            continue
        bandwidth = estimator(child_host, parent_host)
        if bandwidth < min_bw:
            bandwidth = min_bw
        seconds = startup + size / bandwidth
        edge_seconds[child] = seconds
        occupancy[child_host] += seconds
        occupancy[parent_host] += seconds
    return edge_seconds, occupancy


def critical_path(
    tree: CombinationTree,
    placement: Placement,
    cost_model: CostModel,
    estimator: BandwidthEstimator,
) -> CriticalPath:
    """Compute the critical path exactly (all server-to-client paths).

    Ties break toward the first path in server order, so the result is
    deterministic.
    """
    edge_seconds, occupancy = host_occupancy(
        tree, placement, cost_model, estimator
    )
    assignment = placement.assignment
    node_seconds = cost_model.node_seconds
    best_nodes: tuple[str, ...] = ()
    best_cost = float("-inf")
    for path in cost_model.server_paths:
        latency = 0.0
        bottleneck = 0.0
        for node_id in path:
            latency += node_seconds(node_id)
            host_occ = occupancy[assignment[node_id]]
            if host_occ > bottleneck:
                bottleneck = host_occ
        for node_id in path[:-1]:
            latency += edge_seconds[node_id]
        cost = latency if latency > bottleneck else bottleneck
        if cost > best_cost:
            best_cost = cost
            best_nodes = path
    return CriticalPath(nodes=best_nodes, cost=best_cost)


def placement_cost(
    tree: CombinationTree,
    placement: Placement,
    cost_model: CostModel,
    estimator: BandwidthEstimator,
) -> float:
    """Convenience: just the critical-path cost."""
    return critical_path(tree, placement, cost_model, estimator).cost


class SingleMoveEvaluator:
    """Incremental placement-cost evaluation for single-operator moves.

    The placement cost is ``max(max-path latency, max-host occupancy)``
    (every host holding a node lies on some server path, so the per-path
    bottleneck maximum equals the global host-occupancy maximum).  Moving
    one operator changes at most three edges (its two input edges and its
    output edge) and the occupancy of a handful of hosts, so a candidate
    can be priced in O(paths + hosts) instead of re-walking the tree —
    the one-shot search prices thousands of candidates per round.
    """

    def __init__(
        self,
        tree: CombinationTree,
        placement: Placement,
        cost_model: CostModel,
        estimator: BandwidthEstimator,
    ) -> None:
        self.tree = tree
        self.cost_model = cost_model
        self.estimator = estimator
        self.assignment = dict(placement.assignment)
        self.edge_seconds, self.occupancy = host_occupancy(
            tree, placement, cost_model, estimator
        )
        self.path_edge_sums = [
            sum(self.edge_seconds[node_id] for node_id in path[:-1])
            for path in cost_model.server_paths
        ]
        #: op id -> ((child ids), parent id) adjacency cache.
        self._adjacent: dict[str, tuple[tuple[str, ...], str]] = {}

    def _edge(self, child: str, child_host: str, parent_host: str) -> float:
        if child_host == parent_host:
            return 0.0
        cm = self.cost_model
        bandwidth = self.estimator(child_host, parent_host)
        if bandwidth < cm.min_bandwidth:
            bandwidth = cm.min_bandwidth
        return cm.startup_cost + cm.sizes[child] / bandwidth

    def base_cost(self) -> float:
        """Cost of the unmodified placement."""
        latency = max(
            node_sum + edge_sum
            for node_sum, edge_sum in zip(
                self.cost_model.path_node_sums, self.path_edge_sums
            )
        )
        bottleneck = max(self.occupancy.values())
        return latency if latency > bottleneck else bottleneck

    def cost_of_move(self, op_id: str, new_host: str) -> float:
        """Placement cost if ``op_id`` alone moved to ``new_host``."""
        assignment = self.assignment
        old_host = assignment[op_id]
        if new_host == old_host:
            return self.base_cost()

        adjacency = self._adjacent.get(op_id)
        if adjacency is None:
            node = self.tree.node(op_id)
            adjacency = (node.children, node.parent)
            self._adjacent[op_id] = adjacency
        children, parent = adjacency

        # Edge deltas (the op's input edges and its output edge).
        edge_delta: dict[str, float] = {}
        occ_delta: dict[str, float] = {
            old_host: -self.cost_model.node_seconds(op_id),
            new_host: self.cost_model.node_seconds(op_id),
        }

        def bump(host: str, seconds: float) -> None:
            occ_delta[host] = occ_delta.get(host, 0.0) + seconds

        for child in children:
            child_host = assignment[child]
            old_edge = self.edge_seconds[child]
            new_edge = self._edge(child, child_host, new_host)
            edge_delta[child] = new_edge - old_edge
            bump(child_host, new_edge - old_edge)
            bump(old_host, -old_edge)
            bump(new_host, new_edge)
        if parent is not None:
            parent_host = assignment[parent]
            old_edge = self.edge_seconds[op_id]
            new_edge = self._edge(op_id, new_host, parent_host)
            edge_delta[op_id] = new_edge - old_edge
            bump(parent_host, new_edge - old_edge)
            bump(old_host, -old_edge)
            bump(new_host, new_edge)

        # Latency term: only paths through the op change.
        cm = self.cost_model
        affected = cm.paths_through.get(op_id, ())
        latency = 0.0
        affected_set = set(affected)
        for index, (node_sum, edge_sum) in enumerate(
            zip(cm.path_node_sums, self.path_edge_sums)
        ):
            if index in affected_set:
                continue
            total = node_sum + edge_sum
            if total > latency:
                latency = total
        for index in affected:
            total = cm.path_node_sums[index] + self.path_edge_sums[index]
            for child, delta in edge_delta.items():
                if index in cm.paths_through.get(child, ()):
                    total += delta
            if total > latency:
                latency = total

        # Bottleneck term: adjust the touched hosts.
        bottleneck = 0.0
        for host, occ in self.occupancy.items():
            occ += occ_delta.get(host, 0.0)
            if occ > bottleneck:
                bottleneck = occ
        extra = occ_delta.get(new_host)
        if new_host not in self.occupancy and extra is not None and extra > bottleneck:
            bottleneck = extra

        return latency if latency > bottleneck else bottleneck


#: Upper-triangle index pairs per host count (shared; tiny and immutable).
_TRIU_CACHE: "dict[int, tuple[np.ndarray, np.ndarray]]" = {}


def _triu_indices(num_hosts: int) -> "tuple[np.ndarray, np.ndarray]":
    cached = _TRIU_CACHE.get(num_hosts)
    if cached is None:
        cached = np.triu_indices(num_hosts, k=1)
        _TRIU_CACHE[num_hosts] = cached
    return cached


@dataclass(frozen=True)
class _MoveGrid:
    """Placement-independent per-cell gathers for one move-list shape.

    The one-shot search re-prices near-identical move grids round after
    round, so everything that depends only on the (node, candidate host)
    structure — not on the current assignment — is gathered once and
    cached keyed on the move list.  The grid enumerates *every*
    candidate host including each node's current one; ``price_moves``
    masks current-host cells to ``+inf`` so they can never win, which
    keeps the cell layout static across rounds.
    """

    o: np.ndarray  #: node index per cell
    h: np.ndarray  #: candidate host index per cell
    rows: np.ndarray  #: arange(cells)
    node_sec: np.ndarray
    neg_node_sec: np.ndarray
    sizes3: np.ndarray  #: child1/child2/own output sizes, stacked (3 x cells)
    has3: np.ndarray  #: child1/child2 presence + all-True own row (3 x cells)
    m1: np.ndarray  #: affected columns through child 1 (cells x K)
    m2: np.ndarray  #: affected columns through child 2 (cells x K)
    valid: np.ndarray  #: affected-column validity (cells x K)
    flat_base: np.ndarray  #: tile(rows, 11) * num_hosts, for the scatter


class BatchMoveEvaluator:
    """Vectorized, incremental counterpart of :class:`SingleMoveEvaluator`.

    Prices *every* (candidate node x host) move of a planning round in a
    single numpy pass over a bandwidth-matrix snapshot of the estimator,
    bit-identically to the scalar evaluator.  Floating-point addition is
    not associative, so every accumulation replicates the scalar code's
    exact addition order: per-path sums use sequential depth loops (never
    pairwise ``np.sum``), occupancy uses ordered scatter-adds
    (``np.add.at`` applies repeated indices in sequence), and each grid
    cell applies its occupancy bumps and per-path edge deltas in the
    same eleven-step order as ``cost_of_move``.  The no-op additions the
    uniform vector pipeline introduces (masked zero deltas, padded
    columns) only ever add ``+0.0`` to values that are not ``-0.0``,
    which is exact in IEEE-754.

    The evaluator lives for one ``plan`` call.  The snapshot is taken
    once from the estimator passed in — the fleet layer hands each plan
    call a fresh residual view, so fresh calls get fresh snapshots — and
    must therefore only be used with snapshot-safe estimators (see
    :func:`repro.dataflow.cost.snapshot_safe`).  Between rounds an
    adopted move rewrites the <=3 changed edge entries in place (each is
    an independent function of its endpoints, so the in-place update is
    bit-identical to a fresh recompute) while the order-sensitive
    reductions (occupancy, path sums, critical path) are recomputed with
    vector ops.

    Queried links are tracked in an ``H x H`` boolean matrix mirroring
    :class:`repro.dataflow.cost.RecordingEstimator`: the cross-host
    edges every round's occupancy pass consults, plus each cell's
    (child host, new host) and (new host, parent host) pairs when the
    endpoints differ; hosts are index-sorted by name, so the upper
    triangle is exactly the recorder's ``(a, b) if a < b``
    canonicalization.
    """

    def __init__(
        self,
        tree: CombinationTree,
        placement: Placement,
        cost_model: CostModel,
        estimator: BandwidthEstimator,
        hosts: Sequence[str] = (),
        grid_cache: "Optional[dict[tuple, _MoveGrid]]" = None,
    ) -> None:
        self.tree = tree
        self.cost_model = cost_model
        self.arrays = cost_model.arrays()
        arrays = self.arrays
        assignment = placement.assignment

        self.hosts: tuple[str, ...] = tuple(
            sorted(set(hosts) | set(assignment.values()))
        )
        self.host_index = {host: i for i, host in enumerate(self.hosts)}
        num_hosts = len(self.hosts)

        # Ordered-pair snapshot (direction matters for asymmetric
        # estimators), floored exactly like the scalar code; the diagonal
        # is never read unmasked and stays division-safe.
        min_bw = cost_model.min_bandwidth
        bw = np.empty((num_hosts, num_hosts))
        for i, a in enumerate(self.hosts):
            for j, b in enumerate(self.hosts):
                if i == j:
                    bw[i, j] = np.inf
                else:
                    value = estimator(a, b)
                    bw[i, j] = min_bw if value < min_bw else value
        self._bw = bw
        self.startup = cost_model.startup_cost

        # The placement as an int array, plus the scalar accumulation
        # order: ``host_occupancy`` walks ``assignment.items()`` in dict
        # insertion order, which ``Placement.with_move`` preserves.
        self.assign = np.empty(len(arrays.node_ids), dtype=np.intp)
        order = []
        for node_id, host in assignment.items():
            self.assign[arrays.node_index[node_id]] = self.host_index[host]
            order.append(arrays.node_index[node_id])
        self._occ_order = np.array(order, dtype=np.intp)
        self._occ_order_seconds = arrays.node_seconds[self._occ_order]

        self.edge_seconds = np.zeros(len(arrays.node_ids))
        self._queried = np.zeros((num_hosts, num_hosts), dtype=bool)
        self._triu = _triu_indices(num_hosts)
        #: True once every canonical host pair has been recorded — the
        #: recorded set is monotone and maximal, so recording can stop.
        self._links_complete = False
        self._host_tuple_cache: dict[tuple[str, ...], np.ndarray] = {}
        #: Cell-structure cache keyed on (host universe, move list); a
        #: planner may pass a persistent dict so the placement-independent
        #: grids survive across plan calls.
        self._grid_cache: dict[tuple, _MoveGrid] = (
            {} if grid_cache is None else grid_cache
        )
        self._set_all_edges()
        self._recompute_reductions()

    # -- per-round state ----------------------------------------------------
    def _set_all_edges(self) -> None:
        arrays = self.arrays
        child_hosts = self.assign[arrays.edge_child]
        parent_hosts = self.assign[arrays.edge_parent]
        self.edge_seconds[arrays.edge_child] = np.where(
            child_hosts != parent_hosts,
            self.startup + arrays.edge_size / self._bw[child_hosts, parent_hosts],
            0.0,
        )

    def _set_edge(self, child: int) -> None:
        """Recompute one edge entry (bit-identical to a full rebuild)."""
        a = self.assign[child]
        b = self.assign[self.arrays.parent[child]]
        if a == b:
            self.edge_seconds[child] = 0.0
        else:
            self.edge_seconds[child] = (
                self.startup + self.arrays.sizes[child] / self._bw[a, b]
            )

    def _recompute_reductions(self) -> None:
        """Order-sensitive accumulations, recomputed per placement state.

        Occupancy and path sums are sequential scalar accumulations, so
        they cannot be patched incrementally without changing addition
        order; they are rebuilt here with order-exact vector ops
        (O(nodes + edges + paths), trivial next to the move grid).
        """
        arrays = self.arrays
        assign = self.assign
        num_hosts = len(self.hosts)

        # Occupancy: node seconds in assignment order, then child/parent
        # interleaved per edge in edge order — the scalar sequence.
        occ = np.zeros(num_hosts)
        np.add.at(occ, assign[self._occ_order], self._occ_order_seconds)
        child_hosts = assign[arrays.edge_child]
        parent_hosts = assign[arrays.edge_parent]
        seconds = self.edge_seconds[arrays.edge_child]
        endpoints = np.empty(2 * child_hosts.size, dtype=np.intp)
        endpoints[0::2] = child_hosts
        endpoints[1::2] = parent_hosts
        np.add.at(occ, endpoints, np.repeat(seconds, 2))
        self._occ = occ
        occupied = np.zeros(num_hosts, dtype=bool)
        occupied[assign] = True
        self._unoccupied = ~occupied
        self._any_unoccupied = bool(self._unoccupied.any())
        self._occ_masked = np.where(occupied, occ, -np.inf)

        # Per-path edge sums and critical-path latency, one sequential
        # depth loop for both (pairwise np.sum would change the addition
        # order).  The scalar walk adds node seconds in path order first
        # — bitwise equal to ``path_node_sums``, which Python's
        # ``sum()`` accumulated left-to-right from zero in the same
        # order — then edge seconds in path order; the edge-sum
        # accumulator adds the identical terms starting from zero.
        edge_cols = arrays.path_edge_clamped
        edge_valid = arrays.path_edge_valid
        esums = np.zeros(arrays.num_paths)
        latency = arrays.path_node_sums.copy()
        for d in range(edge_cols.shape[1]):
            term = np.where(
                edge_valid[:, d], self.edge_seconds[edge_cols[:, d]], 0.0
            )
            esums = esums + term
            latency = latency + term
        self.path_edge_sums = esums
        self.all_totals = arrays.path_node_sums + esums

        # Bottleneck as an order-free max; first index attaining the
        # maximum wins, like the strict-> running compare.
        path_occ = np.where(
            arrays.path_nodes_valid,
            occ[assign[arrays.path_nodes_clamped]],
            0.0,
        )
        bottleneck = path_occ.max(axis=1)
        costs = np.where(latency > bottleneck, latency, bottleneck)
        best = int(np.argmax(costs))
        self._critical = CriticalPath(
            nodes=self.cost_model.server_paths[best], cost=float(costs[best])
        )

        # Per-node snapshots that ``price_moves`` gathers per grid cell,
        # packed into one int and one float matrix so a round's state
        # reaches the cells in two fancy gathers.  Rows of ``_ipack``:
        # own / child1 / child2 / parent host, then the occupancy-bump
        # targets (a childless slot aims the masked zero delta at the
        # node's own host, a no-op add).  Rows of ``_fpack``: current
        # child edge seconds, the node's own current edge seconds, and
        # the latency floor over paths *not* through the node.
        n = assign.size
        ipack = np.empty((6, n), dtype=np.intp)
        ipack[0] = assign
        ipack[1] = assign[arrays.child1_clamped]
        ipack[2] = assign[arrays.child2_clamped]
        ipack[3] = assign[arrays.parent_clamped]
        ipack[4] = np.where(arrays.has_child1, ipack[1], assign)
        ipack[5] = np.where(arrays.has_child2, ipack[2], assign)
        self._ipack = ipack
        fpack = np.empty((4, n))
        fpack[0] = np.where(
            arrays.has_child1, self.edge_seconds[arrays.child1_clamped], 0.0
        )
        fpack[1] = np.where(
            arrays.has_child2, self.edge_seconds[arrays.child2_clamped], 0.0
        )
        fpack[2] = self.edge_seconds
        floor = np.where(
            arrays.on_path, -np.inf, self.all_totals[None, :]
        ).max(axis=1)
        fpack[3] = np.where(floor > 0.0, floor, 0.0)
        self._fpack = fpack
        self._base_totals = np.where(
            arrays.affected_valid,
            self.all_totals[arrays.affected_clamped],
            -np.inf,
        )

        # The scalar round consults every cross-host edge of the current
        # placement (critical path + evaluator construction).
        cross = child_hosts != parent_hosts
        self._queried[
            np.minimum(child_hosts, parent_hosts)[cross],
            np.maximum(child_hosts, parent_hosts)[cross],
        ] = True
        if not self._links_complete:
            self._links_complete = bool(self._queried[self._triu].all())

    def critical_path(self) -> CriticalPath:
        """The critical path of the current placement state."""
        return self._critical

    def links_queried(self) -> frozenset:
        """Canonical host pairs consulted so far (recorder semantics)."""
        rows, cols = np.nonzero(self._queried)
        return frozenset(
            (self.hosts[i], self.hosts[j])
            for i, j in zip(rows.tolist(), cols.tolist())
            if i != j
        )

    # -- the batched move grid ----------------------------------------------
    def _host_indices(self, candidate_hosts: tuple[str, ...]) -> np.ndarray:
        cached = self._host_tuple_cache.get(candidate_hosts)
        if cached is None:
            cached = np.array(
                [self.host_index[h] for h in candidate_hosts], dtype=np.intp
            )
            self._host_tuple_cache[candidate_hosts] = cached
        return cached

    def price_moves(
        self, moves, best_cost: float
    ) -> "tuple[int, float, Optional[tuple[str, str]]]":
        """Price every (node, host != current) cell of ``moves`` at once.

        Returns ``(cells, best_cost, best_move)`` with the scalar round's
        exact semantics: the running ``cost <= best`` rule means the
        *last* cell attaining the grid minimum wins (a reversed argmin),
        and ``best_move`` is None when no cell reaches ``best_cost``.
        ``cells`` counts only host != current cells, like the scalar
        loop's ``continue``; the grid itself enumerates every candidate
        host and masks current-host cells to ``+inf``, which keeps the
        cell layout placement-independent and cacheable per move list.
        """
        arrays = self.arrays
        grid = self._grid_cache.get((self.hosts, tuple(moves)))
        if grid is None:
            grid = self._build_grid(moves)
        o, h, rows = grid.o, grid.h, grid.rows
        if o.size == 0:
            return 0, best_cost, None
        bw = self._bw
        startup = self.startup

        # Two fancy gathers deliver the round's per-node state to the
        # cells; the rows come out as views.
        icells = self._ipack[:, o]
        fcells = self._fpack[:, o]
        old = icells[0]
        chosts = icells[1:3]
        parent_host = icells[3]
        old_e3 = fcells[0:3]
        floor = fcells[3]

        # All three moved edges — both child inputs plus the output —
        # in one (3 x cells) pass: rows 0/1 read bw[child host, h],
        # row 2 reads bw[h, parent host].  The masked new edges are
        # exactly 0.0 where absent or co-located, so the plain
        # differences reproduce the scalar deltas (childless rows give
        # +0.0 - +0.0 = +0.0).
        src = np.empty((3, o.size), dtype=np.intp)
        src[0:2] = chosts
        src[2] = h
        dst = np.empty((3, o.size), dtype=np.intp)
        dst[0:2] = h
        dst[2] = parent_host
        masks3 = grid.has3 & (src != dst)
        new_e3 = np.where(masks3, startup + grid.sizes3 / bw[src, dst], 0.0)
        d3 = new_e3 - old_e3
        masks12 = masks3[0:2]
        mask_o = masks3[2]
        d1, d2, d_o = d3[0], d3[1], d3[2]
        new_eo = new_e3[2]

        # Latency: per-node unaffected floor (precomputed per round),
        # then the affected totals with the scalar's three delta adds
        # (child1, child2, own edge) in order, accumulated in place
        # (the gather above produced a fresh array).
        totals = self._base_totals[o]
        np.add(totals, np.where(grid.m1, d1[:, None], 0.0), out=totals)
        np.add(totals, np.where(grid.m2, d2[:, None], 0.0), out=totals)
        np.add(totals, np.where(grid.valid, d_o[:, None], 0.0), out=totals)
        aff_max = totals.max(axis=1)
        latency = np.where(aff_max > floor, aff_max, floor)

        # Bottleneck: the eleven occupancy bumps of ``cost_of_move``,
        # fused into one sequential scatter-add.  ``np.bincount`` scans
        # its input in order, and the step-major layout (step 0 for all
        # cells, then step 1, ...) puts each slot's contributions in the
        # scalar's eleven-step sequence, so every slot accumulates in
        # ``cost_of_move``'s exact dict order (childless rows add
        # exact-zero no-ops).  Then one base + delta add per host, max
        # over occupied hosts (unoccupied ones are premasked to -inf),
        # and the unoccupied-target special case when it can trigger.
        neg_e3 = -old_e3
        flat_cols = np.concatenate(
            (old, h, icells[4], old, h, icells[5], old, h, parent_host, old, h)
        )
        flat_vals = np.concatenate(
            (
                grid.neg_node_sec,
                grid.node_sec,
                d1,
                neg_e3[0],
                new_e3[0],
                d2,
                neg_e3[1],
                new_e3[1],
                d_o,
                neg_e3[2],
                new_eo,
            )
        )
        delta = np.bincount(
            grid.flat_base + flat_cols,
            weights=flat_vals,
            minlength=o.size * len(self.hosts),
        ).reshape(o.size, len(self.hosts))
        bottleneck = (self._occ_masked + delta).max(axis=1)
        bottleneck = np.where(bottleneck > 0.0, bottleneck, 0.0)
        if self._any_unoccupied:
            extra = delta[rows, h]
            lift = self._unoccupied[h] & (extra > bottleneck)
            bottleneck = np.where(lift, extra, bottleneck)
        costs = np.where(latency > bottleneck, latency, bottleneck)

        # Current-host cells are the scalar loop's ``continue``: priced
        # as +inf so they can never win, excluded from the cell count.
        is_current = h == old
        costs = np.where(is_current, np.inf, costs)
        cells = int(o.size - np.count_nonzero(is_current))
        if cells == 0:
            return 0, best_cost, None

        # Recorder semantics for the cells' estimator queries.  A
        # current-host cell's pairs are that node's present cross
        # edges, already recorded by ``_recompute_reductions``; once
        # every pair is recorded the set is maximal and recording stops.
        if not self._links_complete:
            for left, right, mask in (
                (chosts[0], h, masks12[0]),
                (chosts[1], h, masks12[1]),
                (h, parent_host, mask_o),
            ):
                a = left[mask]
                b = right[mask]
                self._queried[np.minimum(a, b), np.maximum(a, b)] = True
            self._links_complete = bool(self._queried[self._triu].all())

        # The running ``cost <= best`` winner is the *last* cell
        # attaining the grid minimum: argmin over the reversed costs
        # finds it in one reduction.
        flat = o.size - 1 - int(costs[::-1].argmin())
        minimum = float(costs[flat])
        if minimum <= best_cost:
            return (
                cells,
                minimum,
                (arrays.node_ids[o[flat]], self.hosts[h[flat]]),
            )
        return cells, best_cost, None

    def _build_grid(self, moves) -> _MoveGrid:
        """Gather and cache the placement-independent cell structure."""
        arrays = self.arrays
        node_parts: list[np.ndarray] = []
        host_parts: list[np.ndarray] = []
        for node_id, candidate_hosts in moves:
            node = arrays.node_index[node_id]
            hidx = self._host_indices(candidate_hosts)
            host_parts.append(hidx)
            node_parts.append(np.full(hidx.size, node, dtype=np.intp))
        if node_parts:
            o = np.concatenate(node_parts)
            h = np.concatenate(host_parts)
        else:
            o = np.empty(0, dtype=np.intp)
            h = np.empty(0, dtype=np.intp)
        node_sec = arrays.node_seconds[o]
        rows = np.arange(o.size)
        grid = _MoveGrid(
            o=o,
            h=h,
            rows=rows,
            node_sec=node_sec,
            neg_node_sec=-node_sec,
            sizes3=np.vstack(
                (
                    arrays.sizes[arrays.child1_clamped[o]],
                    arrays.sizes[arrays.child2_clamped[o]],
                    arrays.sizes[o],
                )
            ),
            has3=np.vstack(
                (
                    arrays.has_child1[o],
                    arrays.has_child2[o],
                    np.ones(o.size, dtype=bool),
                )
            ),
            m1=arrays.affected_child1[o],
            m2=arrays.affected_child2[o],
            valid=arrays.affected_valid[o],
            flat_base=np.tile(rows, 11) * len(self.hosts),
        )
        self._grid_cache[(self.hosts, tuple(moves))] = grid
        return grid

    def apply_move(self, node_id: str, host: str) -> None:
        """Adopt a move: patch the <=3 changed edges, rebuild reductions."""
        arrays = self.arrays
        node = arrays.node_index[node_id]
        self.assign[node] = self.host_index[host]
        for child in (arrays.child1[node], arrays.child2[node]):
            if child >= 0:
                self._set_edge(int(child))
        self._set_edge(node)
        self._recompute_reductions()
