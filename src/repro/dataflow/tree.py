"""Combination trees: servers at the leaves, operators inside, client on top.

Two builders are provided, matching the paper's §4:

* :func:`complete_binary_tree` — "maximally bushy"; composition operations
  are paired up level by level.  This is the paper's default order.
* :func:`left_deep_tree` — a linear chain, "often used for database query
  plans"; used in the combination-order experiment (Figure 10).

Node ids are stable strings (``"s0"``, ``"op3"``, ``"client"``) so they can
be used as actor addresses and placement keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

#: The id of the client (root) node in every tree.
CLIENT_ID = "client"


@dataclass(frozen=True)
class TreeNode:
    """One node of a combination tree."""

    node_id: str
    #: "server", "operator" or "client".
    role: str
    #: Child node ids (producers).  Empty for servers.
    children: tuple[str, ...] = ()
    #: Parent node id (consumer).  None for the client.
    parent: Optional[str] = None
    #: Depth measured from the client (client = 0).
    depth: int = 0
    #: Level measured from the deepest operator layer upward; used for
    #: the local algorithm's staggered epochs (§2.3).
    level: int = 0

    @property
    def is_server(self) -> bool:
        return self.role == "server"

    @property
    def is_operator(self) -> bool:
        return self.role == "operator"

    @property
    def is_client(self) -> bool:
        return self.role == "client"


class CombinationTree:
    """An immutable data-flow tree.

    Build via the module-level builders or from explicit parent links; the
    constructor validates shape (single root named ``client``, binary
    operators, servers as leaves).
    """

    def __init__(self, nodes: Sequence[TreeNode]) -> None:
        self._nodes: dict[str, TreeNode] = {}
        for node in nodes:
            if node.node_id in self._nodes:
                raise ValueError(f"duplicate node id {node.node_id!r}")
            self._nodes[node.node_id] = node
        self._validate()

    def _validate(self) -> None:
        if CLIENT_ID not in self._nodes:
            raise ValueError(f"tree has no {CLIENT_ID!r} node")
        client = self._nodes[CLIENT_ID]
        if not client.is_client or client.parent is not None:
            raise ValueError("client node must be the parentless root")
        if len(client.children) != 1:
            raise ValueError("client must consume exactly one node")
        for node in self._nodes.values():
            if node.is_server and node.children:
                raise ValueError(f"server {node.node_id!r} has children")
            if node.is_operator and len(node.children) != 2:
                raise ValueError(
                    f"operator {node.node_id!r} must have exactly 2 children"
                )
            if node.parent is not None and node.parent not in self._nodes:
                raise ValueError(f"{node.node_id!r} has unknown parent {node.parent!r}")
            for child in node.children:
                if child not in self._nodes:
                    raise ValueError(f"{node.node_id!r} has unknown child {child!r}")
                if self._nodes[child].parent != node.node_id:
                    raise ValueError(
                        f"child link {node.node_id!r}->{child!r} is not mirrored"
                    )
        # Reachability: every node must be reachable from the client.
        seen: set[str] = set()
        stack = [CLIENT_ID]
        while stack:
            nid = stack.pop()
            if nid in seen:
                raise ValueError(f"cycle through {nid!r}")
            seen.add(nid)
            stack.extend(self._nodes[nid].children)
        if seen != set(self._nodes):
            orphans = sorted(set(self._nodes) - seen)
            raise ValueError(f"unreachable nodes: {orphans!r}")

    # -- accessors ----------------------------------------------------------
    def node(self, node_id: str) -> TreeNode:
        """The node with the given id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"no node {node_id!r}") from None

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def client(self) -> TreeNode:
        """The root node."""
        return self._nodes[CLIENT_ID]

    @property
    def root_operator(self) -> TreeNode:
        """The operator (or server) feeding the client."""
        return self._nodes[self.client.children[0]]

    def nodes(self) -> Iterator[TreeNode]:
        """All nodes in deterministic (sorted-id) order."""
        return iter(sorted(self._nodes.values(), key=lambda n: n.node_id))

    def servers(self) -> list[TreeNode]:
        """Leaf nodes, sorted by id."""
        return [n for n in self.nodes() if n.is_server]

    def operators(self) -> list[TreeNode]:
        """Internal combination nodes, sorted by id."""
        return [n for n in self.nodes() if n.is_operator]

    def children_of(self, node_id: str) -> list[TreeNode]:
        """Producer nodes of ``node_id``."""
        return [self._nodes[c] for c in self.node(node_id).children]

    def parent_of(self, node_id: str) -> Optional[TreeNode]:
        """Consumer node of ``node_id`` (None for the client)."""
        parent = self.node(node_id).parent
        return self._nodes[parent] if parent is not None else None

    def depth(self) -> int:
        """Number of operator levels (1 for a single operator)."""
        operators = self.operators()
        if not operators:
            return 0
        return max(op.level for op in operators) + 1

    def path_to_client(self, node_id: str) -> list[str]:
        """Node ids from ``node_id`` up to and including the client."""
        path = [node_id]
        node = self.node(node_id)
        while node.parent is not None:
            path.append(node.parent)
            node = self.node(node.parent)
        return path

    def subtree_servers(self, node_id: str) -> list[str]:
        """Ids of all servers under (or equal to) ``node_id``."""
        result: list[str] = []
        stack = [node_id]
        while stack:
            nid = stack.pop()
            node = self.node(nid)
            if node.is_server:
                result.append(nid)
            stack.extend(node.children)
        return sorted(result)


def _finalize(parents: dict[str, Optional[str]], children: dict[str, list[str]],
              roles: dict[str, str]) -> CombinationTree:
    """Assemble TreeNodes with depth/level annotations."""
    depths: dict[str, int] = {CLIENT_ID: 0}
    order = [CLIENT_ID]
    index = 0
    while index < len(order):
        nid = order[index]
        index += 1
        for child in children.get(nid, ()):
            depths[child] = depths[nid] + 1
            order.append(child)

    # level: distance above the deepest operator layer, operators only
    # (servers/client get level 0; they never take epoch decisions).
    operator_depths = [depths[n] for n, r in roles.items() if r == "operator"]
    max_depth = max(operator_depths) if operator_depths else 0
    nodes = []
    for nid, role in roles.items():
        level = max_depth - depths[nid] if role == "operator" else 0
        nodes.append(
            TreeNode(
                node_id=nid,
                role=role,
                children=tuple(children.get(nid, ())),
                parent=parents.get(nid),
                depth=depths[nid],
                level=level,
            )
        )
    return CombinationTree(nodes)


def complete_binary_tree(num_servers: int) -> CombinationTree:
    """A (maximally bushy) balanced binary combination tree.

    For power-of-two ``num_servers`` this is the complete binary tree of
    the paper; other counts produce the natural balanced pairing.
    """
    if num_servers < 2:
        raise ValueError(f"need at least 2 servers, got {num_servers!r}")
    roles = {CLIENT_ID: "client"}
    parents: dict[str, Optional[str]] = {CLIENT_ID: None}
    children: dict[str, list[str]] = {CLIENT_ID: []}

    frontier = [f"s{i}" for i in range(num_servers)]
    for server in frontier:
        roles[server] = "server"
        children[server] = []

    op_counter = 0
    while len(frontier) > 1:
        next_frontier = []
        for i in range(0, len(frontier) - 1, 2):
            op_id = f"op{op_counter}"
            op_counter += 1
            roles[op_id] = "operator"
            children[op_id] = [frontier[i], frontier[i + 1]]
            parents[frontier[i]] = op_id
            parents[frontier[i + 1]] = op_id
            next_frontier.append(op_id)
        if len(frontier) % 2 == 1:
            next_frontier.append(frontier[-1])
        frontier = next_frontier

    root = frontier[0]
    parents[root] = CLIENT_ID
    children[CLIENT_ID] = [root]
    return _finalize(parents, children, roles)


def left_deep_tree(num_servers: int) -> CombinationTree:
    """A linear (left-deep) combination chain: ((s0+s1)+s2)+... (Figure 5)."""
    if num_servers < 2:
        raise ValueError(f"need at least 2 servers, got {num_servers!r}")
    roles = {CLIENT_ID: "client"}
    parents: dict[str, Optional[str]] = {CLIENT_ID: None}
    children: dict[str, list[str]] = {CLIENT_ID: []}
    for i in range(num_servers):
        roles[f"s{i}"] = "server"
        children[f"s{i}"] = []

    previous = "s0"
    for i in range(1, num_servers):
        op_id = f"op{i - 1}"
        roles[op_id] = "operator"
        children[op_id] = [previous, f"s{i}"]
        parents[previous] = op_id
        parents[f"s{i}"] = op_id
        previous = op_id

    parents[previous] = CLIENT_ID
    children[CLIENT_ID] = [previous]
    return _finalize(parents, children, roles)
