"""The analytic cost model used by the placement algorithms.

The placement algorithms never see the simulator's internals; they price
candidate placements with this model, fed by *bandwidth estimates* (from
monitoring).  A placement's cost is the length of its critical path —
see :mod:`repro.dataflow.critical`.

Per-partition costs:

* a tree edge costs ``startup + size / bandwidth`` if its endpoints sit on
  different hosts, zero if co-located;
* a server costs one disk read (``size / disk_rate``);
* an operator costs its composition time (7 µs per pixel of its output in
  the paper's experiments).

Output sizes flow up the tree: a composition result is as large as the
larger input (§4), so expected sizes are computed with Clark's two-moment
approximation of ``max`` of normals — with the paper's Normal(128 KB,
25 %) images the expected partition grows slightly level by level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.dataflow.placement import Placement
from repro.dataflow.tree import CombinationTree

#: ``estimator(host_a, host_b) -> bytes/second`` — monitoring's view.
BandwidthEstimator = Callable[[str, str], float]


def snapshot_safe(estimator: BandwidthEstimator) -> bool:
    """True when ``estimator`` may be frozen into a bandwidth matrix.

    The vectorized planner engine snapshots the estimator into an
    ``H x H`` matrix once per plan call (a handful of queries) instead of
    replaying the scalar search's thousands of per-candidate calls.
    That is only sound for estimators that are pure within one planning
    call: an estimator with per-call side effects — the live monitoring
    view emits a ``monitor.estimate`` trace event per query — must keep
    the scalar search's exact call sequence or observable event streams
    change.  Such estimators declare themselves with a
    ``snapshot_safe = False`` attribute and the engine falls back to the
    scalar reference search; plain callables are assumed safe.
    """
    return bool(getattr(estimator, "snapshot_safe", True))


def _phi(x: float) -> float:
    """Standard normal pdf."""
    return math.exp(-0.5 * x * x) / math.sqrt(2.0 * math.pi)


def _cdf(x: float) -> float:
    """Standard normal cdf."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def clark_max(
    mean_a: float, var_a: float, mean_b: float, var_b: float
) -> tuple[float, float]:
    """Clark's approximation of ``(mean, variance)`` of max of two
    independent normals."""
    theta_sq = var_a + var_b
    if theta_sq <= 0:
        return max(mean_a, mean_b), 0.0
    theta = math.sqrt(theta_sq)
    alpha = (mean_a - mean_b) / theta
    mean = mean_a * _cdf(alpha) + mean_b * _cdf(-alpha) + theta * _phi(alpha)
    second = (
        (mean_a * mean_a + var_a) * _cdf(alpha)
        + (mean_b * mean_b + var_b) * _cdf(-alpha)
        + (mean_a + mean_b) * theta * _phi(alpha)
    )
    return mean, max(second - mean * mean, 0.0)


def expected_output_sizes(
    tree: CombinationTree,
    mean_size: float,
    rel_std: float,
    combiner=None,
) -> dict[str, float]:
    """Expected per-partition output size (bytes) of every tree node.

    Servers emit Normal(``mean_size``, ``rel_std * mean_size``)
    partitions; operators combine them according to ``combiner`` (the
    paper's image composition — max of inputs — when None).  Moments
    propagate by the combiner's ``moment_rule``:

    * ``"max"`` — Clark's two-moment approximation (image composition);
    * ``"sum"`` — exact for independent inputs (sorted merge);
    * ``"scaled-min"`` — Clark on the negated inputs, scaled by the
      combiner's ``match_rate`` (hash-join buckets).
    """
    if mean_size <= 0:
        raise ValueError(f"mean_size must be positive, got {mean_size!r}")
    if rel_std < 0:
        raise ValueError(f"rel_std must be non-negative, got {rel_std!r}")
    rule = getattr(combiner, "moment_rule", "max")
    std = mean_size * rel_std
    moments: dict[str, tuple[float, float]] = {}

    def combine(ma: float, va: float, mb: float, vb: float) -> tuple[float, float]:
        if rule == "max":
            return clark_max(ma, va, mb, vb)
        if rule == "sum":
            return ma + mb, va + vb
        if rule == "scaled-min":
            neg_mean, var = clark_max(-ma, va, -mb, vb)
            rate = combiner.match_rate
            return max(rate * -neg_mean, 1.0), rate * rate * var
        raise ValueError(f"unknown moment rule {rule!r}")

    def visit(node_id: str) -> tuple[float, float]:
        if node_id in moments:
            return moments[node_id]
        node = tree.node(node_id)
        if node.is_server:
            result = (mean_size, std * std)
        elif node.is_operator:
            (ma, va), (mb, vb) = (visit(c) for c in node.children)
            result = combine(ma, va, mb, vb)
        else:  # client relays its single input
            result = visit(node.children[0])
        moments[node_id] = result
        return result

    visit(tree.client.node_id)
    return {node_id: mean for node_id, (mean, _) in moments.items()}


@dataclass(frozen=True)
class EdgeCost:
    """Priced edge of the data-flow tree under some placement."""

    child: str
    parent: str
    child_host: str
    parent_host: str
    seconds: float

    @property
    def is_local(self) -> bool:
        return self.child_host == self.parent_host


class CostModel:
    """Prices placements for the planning algorithms.

    Parameters
    ----------
    tree:
        The combination tree being planned.
    sizes:
        Expected output size (bytes) per node id, normally from
        :func:`expected_output_sizes`.
    startup_cost:
        Per-message startup, seconds (paper: 0.050).
    compute_seconds_per_byte:
        Composition cost per output byte (paper: 7 µs per pixel, one byte
        per pixel ⇒ 7e-6).
    disk_rate:
        Server disk bandwidth, bytes/second (paper: 3 MB/s).
    min_bandwidth:
        Floor applied to estimates so costs stay finite.
    combiner:
        Optional combiner object; when given, an operator's compute cost
        is ``combiner.compute_seconds(child sizes)`` instead of
        ``compute_seconds_per_byte * output size``.
    """

    def __init__(
        self,
        tree: CombinationTree,
        sizes: Mapping[str, float],
        startup_cost: float = 0.050,
        compute_seconds_per_byte: float = 7e-6,
        disk_rate: float = 3 * 1024 * 1024,
        min_bandwidth: float = 1.0,
        combiner=None,
    ) -> None:
        missing = [n.node_id for n in tree.nodes() if n.node_id not in sizes]
        if missing:
            raise ValueError(f"sizes missing for nodes: {missing!r}")
        self.tree = tree
        self.sizes = dict(sizes)
        self.startup_cost = startup_cost
        self.compute_seconds_per_byte = compute_seconds_per_byte
        self.disk_rate = disk_rate
        self.min_bandwidth = min_bandwidth
        self.combiner = combiner
        # Precomputed hot-path structures: the planners price thousands of
        # candidate placements per planning round.
        self._node_seconds: dict[str, float] = {
            node.node_id: self._compute_node_seconds(node.node_id)
            for node in tree.nodes()
        }
        #: (child_id, parent_id, child_size) for every non-root node.
        self.edges: tuple[tuple[str, str, float], ...] = tuple(
            (node.node_id, node.parent, self.sizes[node.node_id])
            for node in tree.nodes()
            if node.parent is not None
        )
        #: Server-to-client paths, one per server (critical-path search).
        self.server_paths: tuple[tuple[str, ...], ...] = tuple(
            tuple(tree.path_to_client(server.node_id))
            for server in tree.servers()
        )
        #: Placement-independent node-cost sum of each server path.
        self.path_node_sums: tuple[float, ...] = tuple(
            sum(self._node_seconds[node_id] for node_id in path)
            for path in self.server_paths
        )
        #: node id -> indices of the server paths passing through it.
        #: Built by list accumulation and frozen once — the old
        #: tuple-append (``+= (index,)``) rebuilt a tuple per path, an
        #: O(paths^2) construction for the nodes near the root.
        through: dict[str, list[int]] = {}
        for index, path in enumerate(self.server_paths):
            for node_id in path:
                through.setdefault(node_id, []).append(index)
        self.paths_through: dict[str, tuple[int, ...]] = {
            node_id: tuple(indices) for node_id, indices in through.items()
        }
        self._arrays: "CostModelArrays | None" = None

    def arrays(self) -> "CostModelArrays":
        """Integer-indexed views for the vectorized planner engine.

        Built lazily and cached — the arrays are pure functions of the
        (immutable) tree, sizes and path structure.
        """
        if self._arrays is None:
            self._arrays = CostModelArrays(self)
        return self._arrays

    def node_seconds(self, node_id: str) -> float:
        """Per-partition processing cost of a node (disk read / compose)."""
        return self._node_seconds[node_id]

    def _compute_node_seconds(self, node_id: str) -> float:
        node = self.tree.node(node_id)
        if node.is_server:
            return self.sizes[node_id] / self.disk_rate
        if node.is_operator:
            if self.combiner is not None:
                child_a, child_b = node.children
                return self.combiner.compute_seconds(
                    self.sizes[child_a], self.sizes[child_b]
                )
            return self.sizes[node_id] * self.compute_seconds_per_byte
        return 0.0

    def edge_seconds(
        self, child: str, placement: Placement, estimator: BandwidthEstimator
    ) -> float:
        """Per-partition cost of shipping ``child``'s output to its parent."""
        node = self.tree.node(child)
        if node.parent is None:
            return 0.0
        child_host = placement.host_of(child)
        parent_host = placement.host_of(node.parent)
        if child_host == parent_host:
            return 0.0
        bandwidth = max(estimator(child_host, parent_host), self.min_bandwidth)
        return self.startup_cost + self.sizes[child] / bandwidth

    def edge(self, child: str, placement: Placement, estimator: BandwidthEstimator) -> EdgeCost:
        """Detailed :class:`EdgeCost` for the edge above ``child``."""
        node = self.tree.node(child)
        if node.parent is None:
            raise ValueError("the client has no upward edge")
        return EdgeCost(
            child=child,
            parent=node.parent,
            child_host=placement.host_of(child),
            parent_host=placement.host_of(node.parent),
            seconds=self.edge_seconds(child, placement, estimator),
        )


class CostModelArrays:
    """Dense integer-indexed mirror of a :class:`CostModel`.

    Node ids map to ints in ``tree.nodes()`` (sorted-id) order and server
    paths keep ``CostModel.server_paths`` order, so a placement becomes
    an int array and the batch evaluator
    (:class:`repro.dataflow.critical.BatchMoveEvaluator`) prices whole
    move grids with numpy reductions.  Everything here is
    placement-independent and computed once per cost model.
    """

    def __init__(self, cost_model: CostModel) -> None:
        tree = cost_model.tree
        self.node_ids: tuple[str, ...] = tuple(
            node.node_id for node in tree.nodes()
        )
        self.node_index: dict[str, int] = {
            node_id: i for i, node_id in enumerate(self.node_ids)
        }
        index = self.node_index
        n = len(self.node_ids)

        self.node_seconds = np.array(
            [cost_model.node_seconds(node_id) for node_id in self.node_ids]
        )
        self.sizes = np.array(
            [cost_model.sizes[node_id] for node_id in self.node_ids]
        )

        # Adjacency: parent / first / second child, -1 where absent
        # (servers have no children, the client no parent; operators are
        # binary by construction).
        self.parent = np.full(n, -1, dtype=np.intp)
        self.child1 = np.full(n, -1, dtype=np.intp)
        self.child2 = np.full(n, -1, dtype=np.intp)
        for i, node_id in enumerate(self.node_ids):
            node = tree.node(node_id)
            if node.parent is not None:
                self.parent[i] = index[node.parent]
            if node.children:
                self.child1[i] = index[node.children[0]]
            if len(node.children) > 1:
                self.child2[i] = index[node.children[1]]

        # Edges in ``CostModel.edges`` order (the scalar occupancy
        # accumulation order, which the batch evaluator replicates).
        self.edge_child = np.array(
            [index[c] for c, _, _ in cost_model.edges], dtype=np.intp
        )
        self.edge_parent = np.array(
            [index[p] for _, p, _ in cost_model.edges], dtype=np.intp
        )
        self.edge_size = np.array([s for _, _, s in cost_model.edges])

        # Server paths padded with -1: all nodes (latency/bottleneck
        # walks) and the per-edge prefix ``path[:-1]`` (edge sums).
        paths = cost_model.server_paths
        self.num_paths = len(paths)
        depth = max(len(path) for path in paths)
        self.path_nodes = np.full((self.num_paths, depth), -1, dtype=np.intp)
        self.path_edge_nodes = np.full(
            (self.num_paths, depth - 1), -1, dtype=np.intp
        )
        for pi, path in enumerate(paths):
            ids = [index[node_id] for node_id in path]
            self.path_nodes[pi, : len(ids)] = ids
            self.path_edge_nodes[pi, : len(ids) - 1] = ids[:-1]
        self.path_node_sums = np.array(cost_model.path_node_sums)

        # Clamped adjacency (dummy index 0 where absent) plus presence
        # masks, so hot gathers need no per-call bounds handling.
        self.has_child1 = self.child1 >= 0
        self.has_child2 = self.child2 >= 0
        self.child1_clamped = np.where(self.has_child1, self.child1, 0)
        self.child2_clamped = np.where(self.has_child2, self.child2, 0)
        self.parent_clamped = np.where(self.parent >= 0, self.parent, 0)
        self.path_nodes_valid = self.path_nodes >= 0
        self.path_nodes_clamped = np.where(self.path_nodes_valid, self.path_nodes, 0)
        self.path_edge_valid = self.path_edge_nodes >= 0
        self.path_edge_clamped = np.where(
            self.path_edge_valid, self.path_edge_nodes, 0
        )

        # Node-on-path incidence plus per-node gather tables over the
        # affected (through-this-node) paths: ``affected`` holds the path
        # indices from ``paths_through`` left-justified, ``affected_*``
        # mark which of those columns pass through the node's first or
        # second child (the scalar delta-application tests).
        self.on_path = np.zeros((n, self.num_paths), dtype=bool)
        for node_id, indices in cost_model.paths_through.items():
            self.on_path[index[node_id], list(indices)] = True
        self.affected = np.full((n, self.num_paths), -1, dtype=np.intp)
        self.affected_clamped = np.zeros((n, self.num_paths), dtype=np.intp)
        self.affected_valid = np.zeros((n, self.num_paths), dtype=bool)
        self.affected_child1 = np.zeros((n, self.num_paths), dtype=bool)
        self.affected_child2 = np.zeros((n, self.num_paths), dtype=bool)
        for i in range(n):
            hits = np.flatnonzero(self.on_path[i])
            self.affected[i, : hits.size] = hits
            self.affected_clamped[i, : hits.size] = hits
            self.affected_valid[i, : hits.size] = True
            if self.child1[i] >= 0:
                self.affected_child1[i, : hits.size] = self.on_path[
                    self.child1[i], hits
                ]
            if self.child2[i] >= 0:
                self.affected_child2[i, : hits.size] = self.on_path[
                    self.child2[i], hits
                ]


class RecordingEstimator:
    """Wraps an estimator, recording every distinct host pair queried.

    The planners use this to discover which links they actually consulted
    — the set that on-demand monitoring must keep fresh ("in practice ...
    only a subset of the links need to be measured", §2.1).
    """

    def __init__(self, estimator: BandwidthEstimator) -> None:
        self._estimator = estimator
        self.queried: set[tuple[str, str]] = set()

    def __call__(self, a: str, b: str) -> float:
        if a != b:
            self.queried.add((a, b) if a < b else (b, a))
        return self._estimator(a, b)
