"""Command-line interface.

Subcommands::

    repro run      — simulate one algorithm on one network configuration
    repro compare  — all four algorithms on N configurations (mini Fig. 6)
    repro chaos    — all four algorithms under a fault-injection plan
    repro workload — N concurrent queries contending on one shared network
    repro trace    — summarize a recorded run trace (JSONL)
    repro figure   — regenerate one of the paper's figures (2, 6..10)
    repro study    — synthesize and export the bandwidth-trace study
    repro report   — run the full evaluation and write report.md/.json

Examples::

    repro run --algorithm global --servers 8 --config 3
    repro run --algorithm global --trace run.jsonl --chrome-trace run.json
    repro run --algorithm global --faults plan.json
    repro trace run.jsonl
    repro compare --configs 10
    repro chaos --servers 4 --images 12
    repro chaos --emit-plan plan.json
    repro workload --clients 4 --queries 2 --mix global=1,one-shot=1
    repro workload --clients 8 --arrivals open --rate 0.01 --json
    repro figure 8 --configs 6
    repro report --out report/ --configs 30
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.engine.config import Algorithm
from repro.experiments import ExperimentConfig
from repro.experiments.figures import (
    fig6_main_comparison,
    fig7_extra_sites,
    fig8_server_scaling,
    fig9_relocation_period,
    fig10_tree_shape,
)
from repro.experiments.report import generate_report
from repro.experiments.runner import (
    AlgorithmSummary,
    compare_algorithms,
    run_configuration,
    speedup_series,
)


def _setup_from(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        num_servers=args.servers,
        images_per_server=args.images,
        tree_shape=args.tree,
        seed=args.seed,
        relocation_period=args.period,
        planner_engine=args.planner_engine,
    )


def _add_setup_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--servers", type=int, default=8,
                        help="number of data servers (default 8)")
    parser.add_argument("--images", type=int, default=180,
                        help="images per server (default 180, as in the paper)")
    parser.add_argument("--tree", choices=("binary", "left-deep"),
                        default="binary", help="combination order")
    parser.add_argument("--seed", type=int, default=1998,
                        help="master seed (default 1998)")
    parser.add_argument("--period", type=float, default=600.0,
                        help="relocation period in seconds (default 600)")
    parser.add_argument("--planner-engine",
                        choices=("vectorized", "scalar"),
                        default="vectorized",
                        help="grid-search engine for the one-shot/global "
                             "planners (bit-identical results; scalar is "
                             "the reference loop)")


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None,
        help="parallel sweep workers (default: $REPRO_WORKERS, else serial; "
             "0 = one per CPU)")


def _add_trace_argument(
    parser: argparse.ArgumentParser,
    *,
    metavar: str = "PATH",
    help_text: str = "record the run's event stream to a JSONL trace",
) -> None:
    """The shared ``--trace`` flag (run, compare and workload)."""
    parser.add_argument("--trace", default=None, metavar=metavar,
                        help=help_text)


def _add_faults_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", default=None, metavar="PLAN.json",
        help="inject faults from a JSON fault plan (see docs/robustness.md)")


def _fault_overrides(args: argparse.Namespace) -> dict:
    """``{"faults": plan}`` if ``--faults`` was given, else ``{}``."""
    if getattr(args, "faults", None) is None:
        return {}
    from repro.faults import FaultPlan

    return {"faults": FaultPlan.from_json(args.faults)}


def cmd_run(args: argparse.Namespace) -> int:
    setup = _setup_from(args)
    tracer = None
    if args.trace or args.chrome_trace:
        from repro.obs import Tracer

        tracer = Tracer()
    metrics = run_configuration(
        setup, args.config, Algorithm(args.algorithm), tracer=tracer,
        **_fault_overrides(args),
    )
    payload = metrics.summary()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key:>24}: {value}")
    if tracer is not None:
        from repro.obs import write_chrome_trace, write_jsonl

        if args.trace:
            count = write_jsonl(tracer, args.trace)
            print(f"{count} trace records written to {args.trace}",
                  file=sys.stderr)
        if args.chrome_trace:
            write_chrome_trace(tracer, args.chrome_trace)
            print(f"Chrome trace written to {args.chrome_trace} "
                  "(load it in Perfetto / chrome://tracing)", file=sys.stderr)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    import numpy as np

    setup = _setup_from(args)
    algorithms = list(Algorithm)
    total = args.configs * len(algorithms)
    done = []
    collected = []

    def progress(index, algorithm, metrics):
        done.append(None)
        collected.append(metrics)
        print(
            f"\r  {len(done)}/{total} simulations",
            end="" if len(done) < total else "\n",
            flush=True,
        )

    fault_overrides = _fault_overrides(args)
    if args.trace:
        # Tracing forces a serial sweep: every run gets its own tracer
        # and its own JSONL file in the trace directory.
        from repro.obs import Tracer, write_jsonl

        trace_dir = Path(args.trace)
        trace_dir.mkdir(parents=True, exist_ok=True)
        summaries = {a.value: AlgorithmSummary(a.value) for a in algorithms}
        for index in range(args.configs):
            for algorithm in algorithms:
                tracer = Tracer()
                metrics = run_configuration(
                    setup, index, algorithm, tracer=tracer, **fault_overrides
                )
                write_jsonl(
                    tracer, trace_dir / f"config{index}-{algorithm.value}.jsonl"
                )
                summaries[algorithm.value].add(metrics)
                progress(index, algorithm, metrics)
        print(f"per-run traces written to {trace_dir}")
    else:
        summaries = compare_algorithms(
            setup, algorithms, args.configs,
            progress=progress, workers=args.workers, **fault_overrides,
        )
    if args.out:
        from repro.experiments.persistence import save_runs_csv, save_runs_json

        out = Path(args.out)
        if out.suffix == ".csv":
            save_runs_csv(collected, out)
        else:
            save_runs_json(collected, out)
        print(f"per-run metrics written to {out}")
    baseline = summaries[Algorithm.DOWNLOAD_ALL.value]
    print(f"\n{'algorithm':<14}{'mean speedup':>13}{'median':>9}"
          f"{'mean interarrival (s)':>23}")
    print(f"{'download-all':<14}{1.0:>13.2f}{1.0:>9.2f}"
          f"{baseline.mean_interarrival:>23.1f}")
    for algorithm in algorithms[1:]:
        summary = summaries[algorithm.value]
        speedups = speedup_series(summary, baseline)
        print(
            f"{algorithm.value:<14}{float(np.mean(speedups)):>13.2f}"
            f"{float(np.median(speedups)):>9.2f}"
            f"{summary.mean_interarrival:>23.1f}"
        )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run every algorithm under a fault plan and report resilience."""
    from repro.faults import FaultPlan, reference_chaos_plan

    setup = _setup_from(args)
    hosts = [*setup.server_hosts, setup.client_host]
    if args.plan:
        plan = FaultPlan.from_json(args.plan)
    else:
        plan = reference_chaos_plan(hosts, seed=args.seed, scale=args.scale)
    if args.emit_plan:
        plan.to_json(args.emit_plan)
        print(f"fault plan written to {args.emit_plan}")
        return 0

    rows = []
    for algorithm in Algorithm:
        metrics = run_configuration(
            setup, args.config, algorithm, faults=plan
        )
        rows.append(metrics)
    if args.json:
        print(json.dumps([m.summary() for m in rows], indent=2))
    else:
        print(
            f"{'algorithm':<14}{'completion':>12}{'retx':>7}"
            f"{'dropKiB':>9}{'aborted':>9}{'down(s)':>9}"
            f"{'probeTO':>9}{'fallback':>10}"
        )
        for m in rows:
            completion = (
                "TRUNCATED" if m.truncated else f"{m.completion_time:.1f}s"
            )
            print(
                f"{m.algorithm:<14}{completion:>12}{m.retransmissions:>7}"
                f"{m.dropped_bytes / 1024.0:>9.1f}{m.aborted_relocations:>9}"
                f"{m.host_downtime_seconds:>9.1f}{m.probe_timeouts:>9}"
                f"{m.planner_fallbacks:>10}"
            )
    return 1 if any(m.truncated for m in rows) else 0


def _parse_mix(text: str, period: float) -> tuple:
    """``"global=2,one-shot=1"`` -> a tuple of weighted QueryClass."""
    from repro.workload import QueryClass

    classes = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight = part.partition("=")
        classes.append(
            QueryClass(
                name=name,
                algorithm=Algorithm(name),
                weight=float(weight) if weight else 1.0,
                overrides={"relocation_period": period},
            )
        )
    if not classes:
        raise SystemExit(f"empty query mix: {text!r}")
    return tuple(classes)


def _print_fleet(fleet: dict) -> None:
    """Human-readable fleet summary, schema 1 (exact) or 2 (streaming)."""
    latency = fleet["latency"]
    print(
        f"{fleet['completed']}/{fleet['scheduled']} queries completed "
        f"({fleet['truncated']} truncated) in {fleet['elapsed']:.1f}s"
    )
    if latency["count"]:
        print(
            f"latency: mean {latency['mean']:.1f}s  p50 {latency['p50']:.1f}s"
            f"  p95 {latency['p95']:.1f}s  p99 {latency['p99']:.1f}s"
        )
    print(f"Jain fairness across clients: {fleet['fairness_jain']:.3f}")
    print(
        f"relocations: {fleet['relocations']['total']} "
        f"({fleet['relocations']['per_query_mean']:.2f}/query)"
    )
    coordination = fleet.get("fleet")
    if coordination:
        print(
            f"fleet planner: {coordination['grants']} relocations granted / "
            f"{coordination['denies']} denied "
            f"({coordination['grant_rate']:.0%} grant rate), "
            f"{coordination['rebalances']} rebalances, "
            f"{coordination['planner_candidates']} candidates evaluated"
        )
    resilience = fleet.get("resilience")
    if resilience:
        breaker = resilience["breaker"]
        print(
            f"overload: shed {resilience['shed']} "
            f"({resilience['shed_rate']:.0%}), queued {resilience['queued']} "
            f"(peak {resilience['queue_peak']}), deadline aborts "
            f"{resilience['deadline_aborts']} "
            f"({resilience['deadline_miss_rate']:.0%}), retries "
            f"{resilience['retries']}, goodput "
            f"{resilience['goodput'] * 3600:.1f} queries/h"
        )
        if breaker["opens"]:
            hosts = ", ".join(sorted(breaker["hosts"]))
            print(
                f"breakers: {breaker['opens']} opened / "
                f"{breaker['closes']} closed ({hosts}); "
                f"{resilience['degraded']} queries degraded"
            )
        for name, entry in resilience["per_class"].items():
            if entry["slo_attainment"] is not None:
                print(
                    f"SLO {name}: {entry['slo_attainment']:.0%} of "
                    f"{entry['slo_eligible']} completed queries"
                )
    if fleet["workload_schema"] == 1:
        print(f"\n{'query':<8}{'class':<14}{'algorithm':<14}"
              f"{'issued':>9}{'latency':>10}{'reloc':>7}")
        for query in fleet["queries"]:
            latency_s = (
                "TRUNC" if query["latency"] is None
                else f"{query['latency']:.1f}s"
            )
            print(
                f"{query['query_id']:<8}{query['class']:<14}"
                f"{query['algorithm']:<14}{query['issued_at']:>9.1f}"
                f"{latency_s:>10}{query['relocations']:>7}"
            )
    else:
        clients = fleet["clients"]
        print(
            f"streaming metrics (±{fleet['relative_error']:.0%} quantile "
            f"error), {clients['active']}/{clients['total']} clients active"
        )
        print(f"\n{'class':<14}{'launched':>10}{'completed':>11}"
              f"{'p50':>9}{'p99':>9}")
        for name, entry in fleet["per_class"].items():
            block = entry["latency"]
            p50 = "-" if block["p50"] is None else f"{block['p50']:.1f}s"
            p99 = "-" if block["p99"] is None else f"{block['p99']:.1f}s"
            print(
                f"{name:<14}{entry['launched']:>10}{entry['completed']:>11}"
                f"{p50:>9}{p99:>9}"
            )
    busiest = sorted(
        fleet["links"].items(),
        key=lambda kv: kv[1]["utilization"],
        reverse=True,
    )[:5]
    if busiest:
        print(f"\n{'link':<16}{'MiB':>9}{'transfers':>11}{'util':>7}")
        for name, entry in busiest:
            print(
                f"{name:<16}{entry['bytes'] / 2**20:>9.1f}"
                f"{entry['transfers']:>11}{entry['utilization']:>7.2f}"
            )


def _overload_policy(args: argparse.Namespace):
    """An :class:`OverloadPolicy` from the CLI flags, or None at defaults."""
    from repro.workload import OverloadPolicy

    policy = OverloadPolicy(
        max_concurrent=args.max_concurrent,
        max_queue_depth=args.queue_depth,
        shed_probability=args.shed_probability,
        retry_budget=args.retry_budget,
        retry_backoff=args.retry_backoff,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )
    return None if policy.is_null() else policy


def _fleet_policy(args: argparse.Namespace):
    """A :class:`FleetPolicy` from the CLI flags, or None when off."""
    if args.fleet_planner == "none":
        return None
    from repro.workload import FleetPolicy

    return FleetPolicy(
        mode=args.fleet_planner,
        link_tokens=args.fleet_tokens,
        token_refill_seconds=args.fleet_refill,
        seed=args.seed,
    )


def cmd_workload(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.workload import (
        ClosedLoop,
        OpenLoop,
        WorkloadSpec,
        run_workload,
        run_workload_sharded,
    )

    if args.arrivals == "open":
        arrivals = OpenLoop(rate=args.rate, process=args.process)
    else:
        arrivals = ClosedLoop(think_time=args.think, process=args.process)
    if args.chaos and args.faults:
        raise SystemExit("--chaos and --faults are mutually exclusive")
    fault_overrides = _fault_overrides(args)
    classes = _parse_mix(args.mix, args.period)
    if args.deadline is not None or args.slo is not None:
        classes = tuple(
            replace(qclass, deadline=args.deadline, slo_target=args.slo)
            for qclass in classes
        )
    spec = WorkloadSpec(
        classes=classes,
        num_clients=args.clients,
        queries_per_client=args.queries,
        arrivals=arrivals,
        seed=args.seed,
        num_servers=args.servers,
        tree_shape=args.tree,
        images_per_server=args.images,
        config_index=args.config,
        fault_plan=fault_overrides.get("faults"),
        max_sim_time=args.max_time,
        metrics_mode=None if args.metrics == "auto" else args.metrics,
        overload=_overload_policy(args),
        fleet=_fleet_policy(args),
    )
    if args.chaos:
        from repro.faults import reference_chaos_plan

        spec = replace(
            spec,
            fault_plan=reference_chaos_plan(
                spec.all_hosts, seed=args.seed, scale=args.chaos_scale
            ),
        )
    if args.trace and args.trace_dir:
        raise SystemExit("--trace and --trace-dir are mutually exclusive")
    if args.shards > 1 and (args.trace or args.trace_dir):
        raise SystemExit(
            "tracing a sharded run is unsupported: each shard is its own "
            "process; drop --shards or the trace flag"
        )
    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()
    elif args.trace_dir:
        from repro.obs import StreamingTracer

        tracer = StreamingTracer(
            args.trace_dir,
            max_segment_bytes=args.segment_bytes,
            max_segments=args.max_segments,
        )
    if args.shards > 1:
        result = run_workload_sharded(spec, args.shards, workers=args.workers)
    else:
        result = run_workload(spec, tracer=tracer)
    fleet = result.fleet
    if args.json:
        print(json.dumps(fleet, indent=2))
    else:
        _print_fleet(fleet)
    if tracer is not None:
        if args.trace:
            from repro.obs import write_jsonl

            count = write_jsonl(tracer, args.trace)
            print(f"{count} trace records written to {args.trace}",
                  file=sys.stderr)
        else:
            tracer.close()
            writer = tracer.writer
            print(
                f"{writer.records_written} trace records written to "
                f"{len(writer.segment_paths)} segments under "
                f"{args.trace_dir} ({writer.segments_dropped} dropped)",
                file=sys.stderr,
            )
    return 1 if fleet["truncated"] else 0


def cmd_figure(args: argparse.Namespace) -> int:
    setup = _setup_from(args)
    number = args.number
    if number == 2:
        from repro.traces import InternetStudy, trace_stats
        from repro.traces.stats import library_change_interval

        library = InternetStudy(seed=setup.study_seed).run()
        stats = trace_stats(library.trace("wisc", "ucla"))
        print(f"wisc~ucla: mean {stats.mean_rate / 1024:.1f} KB/s, "
              f"cv {stats.cv:.2f}, {stats.n_changes} significant changes")
        print(f"mean >=10% change interval across the library: "
              f"{library_change_interval(library.all_traces()):.0f} s "
              "(paper: ~120 s)")
        return 0
    workers = args.workers
    producers = {
        6: lambda: fig6_main_comparison(
            setup, n_configs=args.configs, workers=workers),
        7: lambda: fig7_extra_sites(
            setup, n_configs=args.configs, workers=workers),
        8: lambda: fig8_server_scaling(
            setup, n_configs=args.configs, workers=workers),
        9: lambda: fig9_relocation_period(
            setup, n_configs=args.configs, workers=workers),
        10: lambda: fig10_tree_shape(
            setup, n_configs=args.configs, workers=workers),
    }
    result = producers[number]()
    print(result.format_table())
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    from repro.traces import InternetStudy, save_library_json
    from repro.traces.stats import library_change_interval

    library = InternetStudy(seed=args.seed).run()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    path = out / "trace_library.json"
    save_library_json(library, path)
    print(f"{len(library)} host-pair traces written to {path}")
    print(f"mean >=10% change interval: "
          f"{library_change_interval(library.all_traces()):.0f} s")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        format_trace_summary,
        read_jsonl,
        summarize_records,
        write_chrome_trace,
    )

    records = read_jsonl(args.file)
    print(format_trace_summary(summarize_records(records)))
    if args.chrome:
        write_chrome_trace(records, args.chrome)
        print(f"Chrome trace written to {args.chrome} "
              "(load it in Perfetto / chrome://tracing)")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    config = replace(
        _setup_from(args), n_configs=args.configs, workers=args.workers
    )
    generate_report(config, out_dir=args.out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Adapting to Bandwidth Variations in "
        "Wide-Area Data Combination' (ICDCS 1998).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one algorithm on one configuration")
    _add_setup_arguments(run)
    run.add_argument("--algorithm", choices=[a.value for a in Algorithm],
                     default="global")
    run.add_argument("--config", type=int, default=0,
                     help="network-configuration index (default 0)")
    run.add_argument("--json", action="store_true", help="JSON output")
    _add_trace_argument(run)
    run.add_argument("--chrome-trace", default=None, metavar="PATH",
                     help="also export a Chrome trace_event file "
                          "(Perfetto-loadable)")
    _add_faults_argument(run)
    run.set_defaults(func=cmd_run)

    compare = sub.add_parser("compare", help="all four algorithms, N configs")
    _add_setup_arguments(compare)
    _add_workers_argument(compare)
    compare.add_argument("--configs", type=int, default=5)
    compare.add_argument("--out", default=None,
                         help="archive per-run metrics (.json or .csv)")
    _add_trace_argument(
        compare, metavar="DIR",
        help_text="record one JSONL trace per run into DIR "
                  "(forces a serial sweep)")
    _add_faults_argument(compare)
    compare.set_defaults(func=cmd_compare)

    chaos = sub.add_parser(
        "chaos",
        help="all four algorithms under a fault plan (resilience check)",
    )
    _add_setup_arguments(chaos)
    chaos.add_argument("--config", type=int, default=0,
                       help="network-configuration index (default 0)")
    chaos.add_argument("--plan", default=None, metavar="PLAN.json",
                       help="fault plan to inject (default: the built-in "
                            "reference chaos plan)")
    chaos.add_argument("--emit-plan", default=None, metavar="PATH",
                       help="write the plan JSON and exit without running")
    chaos.add_argument("--scale", type=int, default=1,
                       help="grow the reference plan with extra staggered "
                            "outage/crash waves (default 1: the classic "
                            "plan; ignored with --plan)")
    chaos.add_argument("--json", action="store_true", help="JSON output")
    chaos.set_defaults(func=cmd_chaos)

    workload = sub.add_parser(
        "workload",
        help="N concurrent queries contending on one shared network",
    )
    _add_setup_arguments(workload)
    workload.add_argument("--clients", type=int, default=4,
                          help="client population size (default 4)")
    workload.add_argument("--queries", type=int, default=2,
                          help="queries per client (default 2)")
    workload.add_argument(
        "--mix", default="global=1,one-shot=1",
        metavar="ALGO=W,...",
        help="weighted query mix, e.g. global=2,one-shot=1 "
             "(default global=1,one-shot=1)")
    workload.add_argument("--arrivals", choices=("closed", "open"),
                          default="closed",
                          help="arrival discipline (default closed-loop)")
    workload.add_argument("--think", type=float, default=0.0,
                          help="closed-loop think time in seconds (default 0)")
    workload.add_argument("--rate", type=float, default=0.01,
                          help="open-loop arrival rate per client, "
                               "queries/s (default 0.01)")
    workload.add_argument("--process", choices=("fixed", "poisson"),
                          default="fixed",
                          help="think/inter-arrival distribution "
                               "(default fixed)")
    workload.add_argument("--config", type=int, default=0,
                          help="network-configuration index (default 0)")
    workload.add_argument("--max-time", type=float, default=10 * 86400.0,
                          help="truncate the fleet at this sim time")
    workload.add_argument("--json", action="store_true",
                          help="print the full fleet summary as JSON")
    _add_workers_argument(workload)
    workload.add_argument("--shards", type=int, default=1,
                          help="client-hash shard the fleet across this "
                               "many processes (default 1: unsharded)")
    workload.add_argument("--metrics",
                          choices=("auto", "exact", "streaming"),
                          default="auto",
                          help="fleet metrics mode (default auto: exact "
                               "below the threshold, streaming above)")
    _add_trace_argument(
        workload,
        help_text="record the query_id-tagged event stream "
                  "to a JSONL trace")
    workload.add_argument("--trace-dir", default=None, metavar="DIR",
                          help="stream the event stream to rotating JSONL "
                               "segments under DIR (bounded memory)")
    workload.add_argument("--segment-bytes", type=int,
                          default=8 * 1024 * 1024,
                          help="rotate --trace-dir segments at this size "
                               "(default 8 MiB)")
    workload.add_argument("--max-segments", type=int, default=None,
                          help="keep at most this many --trace-dir "
                               "segments, pruning the oldest")
    _add_faults_argument(workload)
    workload.add_argument("--chaos", action="store_true",
                          help="inject the built-in reference chaos plan "
                               "over the fleet's hosts (same plan as "
                               "`repro chaos`; mutually exclusive with "
                               "--faults)")
    workload.add_argument("--chaos-scale", type=int, default=1,
                          metavar="N",
                          help="with --chaos: add N-1 extra staggered "
                               "outage/crash waves for long fleet runs "
                               "(default 1)")
    overload = workload.add_argument_group(
        "overload protection",
        "fleet-level admission control, deadlines, retry budgets and "
        "circuit breakers; everything defaults off (see "
        "docs/robustness.md)")
    overload.add_argument("--max-concurrent", type=int, default=None,
                          metavar="N",
                          help="admit at most N queries at once; excess "
                               "arrivals queue or are shed")
    overload.add_argument("--queue-depth", type=int, default=0,
                          metavar="N",
                          help="with --max-concurrent: queue up to N "
                               "arrivals before shedding (default 0)")
    overload.add_argument("--shed-probability", type=float, default=0.0,
                          metavar="P",
                          help="with --max-concurrent: shed queueable "
                               "arrivals with seeded probability P")
    overload.add_argument("--deadline", type=float, default=None,
                          metavar="SECONDS",
                          help="abort any query older than this (measured "
                               "from arrival, queueing included)")
    overload.add_argument("--slo", type=float, default=None,
                          metavar="SECONDS",
                          help="latency SLO target; the summary reports "
                               "per-class attainment")
    overload.add_argument("--retry-budget", type=int, default=0,
                          metavar="N",
                          help="resubmit shed/aborted queries up to N "
                               "times per client")
    overload.add_argument("--retry-backoff", type=float, default=30.0,
                          metavar="SECONDS",
                          help="wait this long before each retry "
                               "(default 30)")
    overload.add_argument("--breaker-threshold", type=int, default=None,
                          metavar="N",
                          help="open a per-host circuit breaker after N "
                               "failures involving a down host; affected "
                               "queries replan degraded")
    overload.add_argument("--breaker-cooldown", type=float, default=600.0,
                          metavar="SECONDS",
                          help="close an open breaker after this long "
                               "(default 600)")
    fleet = workload.add_argument_group(
        "fleet coordination",
        "joint placement across concurrent queries: planners see "
        "contention-adjusted residual bandwidth and relocations pass "
        "a deterministic per-link token-bucket arbiter; defaults off "
        "(see docs/fleet.md)")
    fleet.add_argument("--fleet-planner",
                       choices=("none", "coordinated", "fair"),
                       default="none",
                       help="wrap every per-query planner with the fleet "
                            "coordinator; 'fair' biases relocation grants "
                            "toward the worst latency-to-SLO query "
                            "(default none: blind per-query planning)")
    fleet.add_argument("--fleet-tokens", type=float, default=2.0,
                       metavar="N",
                       help="token-bucket capacity per link/host "
                            "(default 2)")
    fleet.add_argument("--fleet-refill", type=float, default=120.0,
                       metavar="SECONDS",
                       help="seconds to regenerate one relocation token "
                            "(default 120)")
    workload.set_defaults(func=cmd_workload)

    trace = sub.add_parser(
        "trace", help="summarize a recorded run trace (JSONL)"
    )
    trace.add_argument("file", help="JSONL trace written by --trace")
    trace.add_argument("--chrome", default=None, metavar="PATH",
                       help="also convert to a Chrome trace_event file")
    trace.set_defaults(func=cmd_trace)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("number", type=int, choices=(2, 6, 7, 8, 9, 10))
    _add_setup_arguments(figure)
    _add_workers_argument(figure)
    figure.add_argument("--configs", type=int, default=10)
    figure.set_defaults(func=cmd_figure)

    study = sub.add_parser("study", help="export the bandwidth-trace study")
    study.add_argument("--seed", type=int, default=1998)
    study.add_argument("--out", default="study_output")
    study.set_defaults(func=cmd_study)

    report = sub.add_parser("report", help="full evaluation -> report.md/json")
    _add_setup_arguments(report)
    _add_workers_argument(report)
    report.add_argument("--configs", type=int, default=30)
    report.add_argument("--out", default="report")
    report.set_defaults(func=cmd_report)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
