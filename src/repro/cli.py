"""Command-line interface.

Subcommands::

    repro run      — simulate one algorithm on one network configuration
    repro compare  — all four algorithms on N configurations (mini Fig. 6)
    repro figure   — regenerate one of the paper's figures (2, 6..10)
    repro study    — synthesize and export the bandwidth-trace study
    repro report   — run the full evaluation and write report.md/.json

Examples::

    repro run --algorithm global --servers 8 --config 3
    repro compare --configs 10
    repro figure 8 --configs 6
    repro report --out report/ --configs 30
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.engine.config import Algorithm
from repro.experiments import ExperimentSetup
from repro.experiments.figures import (
    fig6_main_comparison,
    fig7_extra_sites,
    fig8_server_scaling,
    fig9_relocation_period,
    fig10_tree_shape,
)
from repro.experiments.report import ReportOptions, generate_report
from repro.experiments.runner import (
    compare_algorithms,
    run_configuration,
    speedup_series,
)


def _setup_from(args: argparse.Namespace) -> ExperimentSetup:
    return ExperimentSetup(
        num_servers=args.servers,
        images_per_server=args.images,
        tree_shape=args.tree,
        seed=args.seed,
        relocation_period=args.period,
    )


def _add_setup_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--servers", type=int, default=8,
                        help="number of data servers (default 8)")
    parser.add_argument("--images", type=int, default=180,
                        help="images per server (default 180, as in the paper)")
    parser.add_argument("--tree", choices=("binary", "left-deep"),
                        default="binary", help="combination order")
    parser.add_argument("--seed", type=int, default=1998,
                        help="master seed (default 1998)")
    parser.add_argument("--period", type=float, default=600.0,
                        help="relocation period in seconds (default 600)")


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None,
        help="parallel sweep workers (default: $REPRO_WORKERS, else serial; "
             "0 = one per CPU)")


def cmd_run(args: argparse.Namespace) -> int:
    setup = _setup_from(args)
    metrics = run_configuration(
        setup, args.config, Algorithm(args.algorithm)
    )
    payload = metrics.summary()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key:>24}: {value}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    import numpy as np

    setup = _setup_from(args)
    algorithms = list(Algorithm)
    total = args.configs * len(algorithms)
    done = []
    collected = []

    def progress(index, algorithm, metrics):
        done.append(None)
        collected.append(metrics)
        print(
            f"\r  {len(done)}/{total} simulations",
            end="" if len(done) < total else "\n",
            flush=True,
        )

    summaries = compare_algorithms(
        setup, algorithms, args.configs, progress=progress, workers=args.workers
    )
    if args.out:
        from repro.experiments.persistence import save_runs_csv, save_runs_json

        out = Path(args.out)
        if out.suffix == ".csv":
            save_runs_csv(collected, out)
        else:
            save_runs_json(collected, out)
        print(f"per-run metrics written to {out}")
    baseline = summaries[Algorithm.DOWNLOAD_ALL.value]
    print(f"\n{'algorithm':<14}{'mean speedup':>13}{'median':>9}"
          f"{'mean interarrival (s)':>23}")
    print(f"{'download-all':<14}{1.0:>13.2f}{1.0:>9.2f}"
          f"{baseline.mean_interarrival:>23.1f}")
    for algorithm in algorithms[1:]:
        summary = summaries[algorithm.value]
        speedups = speedup_series(summary, baseline)
        print(
            f"{algorithm.value:<14}{float(np.mean(speedups)):>13.2f}"
            f"{float(np.median(speedups)):>9.2f}"
            f"{summary.mean_interarrival:>23.1f}"
        )
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    setup = _setup_from(args)
    number = args.number
    if number == 2:
        from repro.traces import InternetStudy, trace_stats
        from repro.traces.stats import library_change_interval

        library = InternetStudy(seed=setup.study_seed).run()
        stats = trace_stats(library.trace("wisc", "ucla"))
        print(f"wisc~ucla: mean {stats.mean_rate / 1024:.1f} KB/s, "
              f"cv {stats.cv:.2f}, {stats.n_changes} significant changes")
        print(f"mean >=10% change interval across the library: "
              f"{library_change_interval(library.all_traces()):.0f} s "
              "(paper: ~120 s)")
        return 0
    workers = args.workers
    producers = {
        6: lambda: fig6_main_comparison(
            setup, n_configs=args.configs, workers=workers),
        7: lambda: fig7_extra_sites(
            setup, n_configs=args.configs, workers=workers),
        8: lambda: fig8_server_scaling(
            setup, n_configs=args.configs, workers=workers),
        9: lambda: fig9_relocation_period(
            setup, n_configs=args.configs, workers=workers),
        10: lambda: fig10_tree_shape(
            setup, n_configs=args.configs, workers=workers),
    }
    result = producers[number]()
    print(result.format_table())
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    from repro.traces import InternetStudy, save_library_json
    from repro.traces.stats import library_change_interval

    library = InternetStudy(seed=args.seed).run()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    path = out / "trace_library.json"
    save_library_json(library, path)
    print(f"{len(library)} host-pair traces written to {path}")
    print(f"mean >=10% change interval: "
          f"{library_change_interval(library.all_traces()):.0f} s")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    setup = _setup_from(args)
    options = ReportOptions(n_configs=args.configs, workers=args.workers)
    generate_report(setup, options, out_dir=args.out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Adapting to Bandwidth Variations in "
        "Wide-Area Data Combination' (ICDCS 1998).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one algorithm on one configuration")
    _add_setup_arguments(run)
    run.add_argument("--algorithm", choices=[a.value for a in Algorithm],
                     default="global")
    run.add_argument("--config", type=int, default=0,
                     help="network-configuration index (default 0)")
    run.add_argument("--json", action="store_true", help="JSON output")
    run.set_defaults(func=cmd_run)

    compare = sub.add_parser("compare", help="all four algorithms, N configs")
    _add_setup_arguments(compare)
    _add_workers_argument(compare)
    compare.add_argument("--configs", type=int, default=5)
    compare.add_argument("--out", default=None,
                         help="archive per-run metrics (.json or .csv)")
    compare.set_defaults(func=cmd_compare)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("number", type=int, choices=(2, 6, 7, 8, 9, 10))
    _add_setup_arguments(figure)
    _add_workers_argument(figure)
    figure.add_argument("--configs", type=int, default=10)
    figure.set_defaults(func=cmd_figure)

    study = sub.add_parser("study", help="export the bandwidth-trace study")
    study.add_argument("--seed", type=int, default=1998)
    study.add_argument("--out", default="study_output")
    study.set_defaults(func=cmd_study)

    report = sub.add_parser("report", help="full evaluation -> report.md/json")
    _add_setup_arguments(report)
    _add_workers_argument(report)
    report.add_argument("--configs", type=int, default=30)
    report.add_argument("--out", default="report")
    report.set_defaults(func=cmd_report)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
