"""Seeded, deterministic fault injection (see :mod:`repro.faults.plan`).

Public surface::

    from repro.faults import (
        FaultPlan, LinkOutage, LinkLoss, HostCrash, ProbeBlackout,
        RetryPolicy, FaultInjector, TransferAbandoned, reference_chaos_plan,
    )
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    HostCrash,
    LinkLoss,
    LinkOutage,
    ProbeBlackout,
    RetryPolicy,
    TransferAbandoned,
    reference_chaos_plan,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "HostCrash",
    "LinkLoss",
    "LinkOutage",
    "ProbeBlackout",
    "RetryPolicy",
    "TransferAbandoned",
    "reference_chaos_plan",
]
