"""Declarative, JSON-loadable fault plans.

A :class:`FaultPlan` is a *schedule* of adverse wide-area conditions that
one simulation replays deterministically:

* :class:`LinkOutage` — a host pair cannot exchange messages during a
  time window; transfers retry with bounded exponential backoff;
* :class:`LinkLoss` — each transfer attempt on a pair is lost with a
  fixed probability (drawn from a per-pair seeded stream, so the same
  plan produces the same losses regardless of sweep order);
* :class:`HostCrash` — a host is unreachable during a window (every link
  touching it behaves as in an outage);
* :class:`ProbeBlackout` — active probes fail during a window (the
  monitoring system records a probe timeout instead of a measurement).

The plan also carries the :class:`RetryPolicy` the network applies to
transfers it could not complete.  An empty plan (``FaultPlan()``) is
equivalent to no plan at all: the simulation takes the exact same code
paths and produces bit-identical metrics and traces.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

PathLike = Union[str, Path]


class TransferAbandoned(Exception):
    """A transfer exhausted its retry budget and was dropped.

    Raised *into* processes waiting on the delivery event; fire-and-forget
    sends defuse the failure instead (the message is simply lost).
    """


def _canonical(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True)
class LinkOutage:
    """The pair ``(a, b)`` cannot communicate during ``[start, end)``."""

    a: str
    b: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError(f"outage needs two distinct hosts, got {self.a!r}")
        if self.start < 0:
            raise ValueError(f"negative outage start {self.start!r}")
        if self.end <= self.start:
            raise ValueError(
                f"outage window [{self.start!r}, {self.end!r}) is empty"
            )

    @property
    def pair(self) -> tuple[str, str]:
        """Canonical (sorted) host-pair key."""
        return _canonical(self.a, self.b)


@dataclass(frozen=True)
class LinkLoss:
    """Each transfer attempt on ``(a, b)`` is lost with ``probability``."""

    a: str
    b: str
    probability: float

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError(f"loss needs two distinct hosts, got {self.a!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"loss probability must be in [0, 1], got {self.probability!r}"
            )

    @property
    def pair(self) -> tuple[str, str]:
        """Canonical (sorted) host-pair key."""
        return _canonical(self.a, self.b)


@dataclass(frozen=True)
class HostCrash:
    """``host`` is down (unreachable) during ``[start, end)``."""

    host: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"negative crash start {self.start!r}")
        if self.end <= self.start:
            raise ValueError(
                f"crash window [{self.start!r}, {self.end!r}) is empty"
            )


@dataclass(frozen=True)
class ProbeBlackout:
    """Active probes fail during ``[start, end)``."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"negative blackout start {self.start!r}")
        if self.end <= self.start:
            raise ValueError(
                f"blackout window [{self.start!r}, {self.end!r}) is empty"
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for failed transfer attempts.

    Attempt ``n`` (1-based) that fails waits
    ``min(timeout * backoff**(n-1), max_backoff)`` seconds before the
    next attempt.  ``max_attempts=None`` retries forever — the default,
    because a lost *data* message would otherwise deadlock the
    demand-driven pipeline; bound it only for experiments that study
    abandonment.
    """

    #: Base delay before the first retransmission, seconds.
    timeout: float = 30.0
    #: Multiplier applied per failed attempt.
    backoff: float = 2.0
    #: Ceiling on the per-attempt delay, seconds.
    max_backoff: float = 240.0
    #: Attempts before the transfer is abandoned (None: never abandon).
    max_attempts: Optional[int] = None

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"retry timeout must be positive, got {self.timeout!r}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff factor must be >= 1, got {self.backoff!r}")
        if self.max_backoff < self.timeout:
            raise ValueError("max_backoff must be >= timeout")
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts!r}")

    def backoff_delay(self, attempt: int) -> float:
        """Seconds to wait after failed attempt number ``attempt`` (1-based)."""
        return min(self.timeout * self.backoff ** (attempt - 1), self.max_backoff)


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic fault schedule for one simulation."""

    #: Seed of the per-pair message-loss streams.
    seed: int = 0
    link_outages: tuple[LinkOutage, ...] = ()
    link_loss: tuple[LinkLoss, ...] = ()
    host_crashes: tuple[HostCrash, ...] = ()
    probe_blackouts: tuple[ProbeBlackout, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        # Accept lists from hand-built plans; store canonical tuples.
        for name in ("link_outages", "link_loss", "host_crashes", "probe_blackouts"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        seen: set[tuple[str, str]] = set()
        for loss in self.link_loss:
            if loss.pair in seen:
                raise ValueError(f"duplicate loss entry for pair {loss.pair!r}")
            seen.add(loss.pair)

    def is_empty(self) -> bool:
        """True if the plan injects nothing (the sim behaves as unfaulted)."""
        return not (
            self.link_outages
            or self.link_loss
            or self.host_crashes
            or self.probe_blackouts
        )

    def hosts_mentioned(self) -> set[str]:
        """Every host name the plan refers to."""
        hosts: set[str] = set()
        for outage in self.link_outages:
            hosts.update(outage.pair)
        for loss in self.link_loss:
            hosts.update(loss.pair)
        for crash in self.host_crashes:
            hosts.add(crash.host)
        return hosts

    def validate_hosts(self, known_hosts: Iterable[str]) -> None:
        """Raise if the plan names a host the simulation does not have."""
        unknown = sorted(self.hosts_mentioned() - set(known_hosts))
        if unknown:
            raise ValueError(f"fault plan references unknown hosts: {unknown}")

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (or hand-written JSON)."""
        known = {
            "seed",
            "retry",
            "link_outages",
            "link_loss",
            "host_crashes",
            "probe_blackouts",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown fault-plan keys: {unknown}")
        return cls(
            seed=int(payload.get("seed", 0)),
            link_outages=tuple(
                LinkOutage(**entry) for entry in payload.get("link_outages", [])
            ),
            link_loss=tuple(
                LinkLoss(**entry) for entry in payload.get("link_loss", [])
            ),
            host_crashes=tuple(
                HostCrash(**entry) for entry in payload.get("host_crashes", [])
            ),
            probe_blackouts=tuple(
                ProbeBlackout(**entry)
                for entry in payload.get("probe_blackouts", [])
            ),
            retry=RetryPolicy(**payload.get("retry", {})),
        )

    def to_json(self, path: PathLike) -> None:
        """Write the plan to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def from_json(cls, path: PathLike) -> "FaultPlan":
        """Load a plan from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def reference_chaos_plan(
    hosts: "Iterable[str]", seed: int = 0, scale: int = 1
) -> FaultPlan:
    """The canonical chaos scenario over ``hosts`` (CI and ``repro chaos``).

    Deterministic given the host list and seed: an early outage and a
    later one on the first links, moderate loss on every link, one host
    crash, and a probe blackout.  Windows sit in the first half hour of
    simulated time so even small runs exercise every fault path, and
    message loss guarantees retransmissions on runs of any length.

    ``scale`` grows the scenario for fleet-level runs: ``scale=1`` is
    the plan above, bit-identical to what this function has always
    produced.  Each extra unit adds one more staggered outage wave over
    the next link pairs (round-robin) and one more host-crash window on
    the next host, pushing the chaos deeper into the run so long fleet
    workloads keep hitting fresh fault windows instead of a quiet tail.
    """
    hosts = list(hosts)
    if len(hosts) < 2:
        raise ValueError("a chaos plan needs at least two hosts")
    if scale < 1:
        raise ValueError(f"chaos scale must be >= 1, got {scale!r}")
    pairs = [
        _canonical(a, b)
        for i, a in enumerate(hosts)
        for b in hosts[i + 1 :]
    ]
    outages = [LinkOutage(*pairs[0], start=120.0, end=360.0)]
    if len(pairs) > 1:
        outages.append(LinkOutage(*pairs[1], start=900.0, end=1200.0))
    crashes = [HostCrash(hosts[0], start=600.0, end=840.0)]
    for wave in range(1, scale):
        # Staggered waves: each pushes 30 simulated minutes deeper and
        # walks round-robin through the link pairs and hosts.
        base = 1800.0 * wave
        pair = pairs[(2 * wave) % len(pairs)]
        outages.append(LinkOutage(*pair, start=base + 120.0, end=base + 420.0))
        if len(pairs) > 1:
            pair = pairs[(2 * wave + 1) % len(pairs)]
            outages.append(
                LinkOutage(*pair, start=base + 900.0, end=base + 1260.0)
            )
        crashes.append(
            HostCrash(hosts[wave % len(hosts)], start=base + 600.0, end=base + 870.0)
        )
    return FaultPlan(
        seed=seed,
        link_outages=tuple(outages),
        link_loss=tuple(LinkLoss(a, b, probability=0.08) for a, b in pairs),
        host_crashes=tuple(crashes),
        probe_blackouts=(ProbeBlackout(start=60.0, end=300.0),),
        retry=RetryPolicy(timeout=30.0, backoff=2.0, max_backoff=240.0),
    )
