"""Compile a :class:`~repro.faults.plan.FaultPlan` into a live simulation.

The :class:`FaultInjector` is the single point the network, the
monitoring system and the engine consult when faults are enabled:

* :meth:`link_blocked` — can a transfer between two hosts start now?
* :meth:`drop_message` — is this transfer attempt lost?  (Per-pair
  seeded streams: the same plan loses the same attempts no matter how
  many other pairs transfer in between.)
* :meth:`host_down` / :meth:`probe_blackout` — window membership tests.

The injector also runs a *timeline* process that walks the plan's window
boundaries, emits ``fault.*`` trace events, and accumulates host
downtime at each recovery — the exact accumulation the trace replay in
:mod:`repro.obs.summary` repeats, so live metrics and replayed metrics
stay bit-identical.

When no plan is installed (the default) none of this machinery exists:
no extra calendar events, no RNG draws, no trace records.
"""

from __future__ import annotations

import zlib
from typing import Optional

import numpy as np

from repro.faults.plan import FaultPlan, RetryPolicy
from repro.obs.events import (
    FAULT_HOST_DOWN,
    FAULT_HOST_UP,
    FAULT_LINK_DOWN,
    FAULT_LINK_UP,
)
from repro.obs.tracer import ensure_tracer


def _pair_stream_seed(seed: int, a: str, b: str) -> tuple[int, int]:
    """Stable per-pair RNG seed (CRC32, not ``hash`` — no per-process salt)."""
    pair = (a, b) if a < b else (b, a)
    return (seed, zlib.crc32(f"{pair[0]}~{pair[1]}".encode()))


class FaultInjector:
    """One plan, compiled against one environment."""

    def __init__(self, plan: FaultPlan, env, tracer=None) -> None:
        self.plan = plan
        self.env = env
        self._tracer = ensure_tracer(tracer)
        self._outages: dict[tuple[str, str], list[tuple[float, float]]] = {}
        for outage in plan.link_outages:
            self._outages.setdefault(outage.pair, []).append(
                (outage.start, outage.end)
            )
        for windows in self._outages.values():
            windows.sort()
        self._crashes: dict[str, list[tuple[float, float]]] = {}
        for crash in plan.host_crashes:
            self._crashes.setdefault(crash.host, []).append(
                (crash.start, crash.end)
            )
        for windows in self._crashes.values():
            windows.sort()
        self._blackouts: list[tuple[float, float]] = sorted(
            (b.start, b.end) for b in plan.probe_blackouts
        )
        self._loss: dict[tuple[str, str], float] = {
            loss.pair: loss.probability for loss in plan.link_loss
        }
        self._loss_rngs: dict[tuple[str, str], np.random.Generator] = {}
        #: Downtime accumulated at each recovery boundary the run reached,
        #: in boundary order (the trace replay repeats this accumulation).
        self.total_downtime: float = 0.0
        #: Per-host breakdown of :attr:`total_downtime`.
        self.host_downtime: dict[str, float] = {}

    @property
    def retry(self) -> RetryPolicy:
        """The retry/backoff policy transfers apply under this plan."""
        return self.plan.retry

    # -- queries ------------------------------------------------------------
    def host_down(self, host: str, t: float) -> bool:
        """True if ``host`` is inside one of its crash windows at ``t``."""
        for start, end in self._crashes.get(host, ()):
            if start <= t < end:
                return True
        return False

    def link_blocked(self, a: str, b: str, t: float) -> Optional[str]:
        """Why a transfer between ``a`` and ``b`` cannot start at ``t``.

        Returns ``"host-down"``, ``"outage"`` or None (transfer may start).
        """
        if self.host_down(a, t) or self.host_down(b, t):
            return "host-down"
        pair = (a, b) if a < b else (b, a)
        for start, end in self._outages.get(pair, ()):
            if start <= t < end:
                return "outage"
        return None

    def has_loss(self, a: str, b: str) -> bool:
        """True if the pair carries a seeded loss stream.

        Transfers on lossy pairs must run the full DES attempt loop even
        when no drop would occur: every attempt consumes one draw from
        the pair's RNG stream, and skipping draws would shift all later
        loss decisions.  The fluid fast path therefore declines them.
        """
        pair = (a, b) if a < b else (b, a)
        return bool(self._loss.get(pair))

    def next_boundary(
        self,
        link: tuple[str, str],
        hosts,
        t0: float,
        t1: float,
    ) -> Optional[float]:
        """Earliest fault-window boundary strictly inside ``(t0, t1)``.

        ``link`` is a canonical host-pair key whose outage windows are
        scanned; ``hosts`` are host names whose crash windows are
        scanned.  Returns None when the interval contains no boundary —
        together with :meth:`link_blocked` at ``t0`` and
        :meth:`has_loss` this is the admission test for the fluid
        transfer fast path: a boundary-free window is guaranteed to play
        out exactly like a single uninterrupted DES attempt.
        """
        best: Optional[float] = None
        for start, end in self._outages.get(link, ()):
            for t in (start, end):
                if t0 < t < t1 and (best is None or t < best):
                    best = t
        for host in hosts:
            for start, end in self._crashes.get(host, ()):
                for t in (start, end):
                    if t0 < t < t1 and (best is None or t < best):
                        best = t
        return best

    def drop_message(self, a: str, b: str) -> bool:
        """Draw from the pair's loss stream: is this attempt lost?"""
        pair = (a, b) if a < b else (b, a)
        probability = self._loss.get(pair)
        if not probability:
            return False
        rng = self._loss_rngs.get(pair)
        if rng is None:
            rng = np.random.default_rng(_pair_stream_seed(self.plan.seed, a, b))
            self._loss_rngs[pair] = rng
        return rng.random() < probability

    def probe_blackout(self, t: float) -> bool:
        """True if active probes are blacked out at ``t``."""
        for start, end in self._blackouts:
            if start <= t < end:
                return True
        return False

    # -- timeline -----------------------------------------------------------
    def start(self) -> None:
        """Spawn the timeline process (call once, at build time)."""
        if self._boundaries():
            self.env.process(self._timeline(), name="fault-timeline")

    def _boundaries(self) -> list[tuple[float, int, str, dict]]:
        """Window boundaries as ``(time, seq, event_type, payload)``."""
        entries: list[tuple[float, int, str, dict]] = []
        seq = 0
        for outage in self.plan.link_outages:
            a, b = outage.pair
            entries.append(
                (outage.start, seq, FAULT_LINK_DOWN, {"a": a, "b": b})
            )
            entries.append(
                (
                    outage.end,
                    seq + 1,
                    FAULT_LINK_UP,
                    {"a": a, "b": b, "outage": outage.end - outage.start},
                )
            )
            seq += 2
        for crash in self.plan.host_crashes:
            entries.append(
                (crash.start, seq, FAULT_HOST_DOWN, {"host": crash.host})
            )
            entries.append(
                (
                    crash.end,
                    seq + 1,
                    FAULT_HOST_UP,
                    {"host": crash.host, "downtime": crash.end - crash.start},
                )
            )
            seq += 2
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        return entries

    def _timeline(self):
        """Walk the boundaries: trace fault events, account downtime.

        A window whose end lies beyond the simulation's lifetime never
        reaches its recovery boundary, so neither the live counter nor
        the replayed trace counts it — they cannot drift apart.
        """
        tracer = self._tracer
        for at, _, event_type, payload in self._boundaries():
            delay = at - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            if event_type == FAULT_HOST_UP:
                downtime = payload["downtime"]
                self.total_downtime += downtime
                host = payload["host"]
                self.host_downtime[host] = (
                    self.host_downtime.get(host, 0.0) + downtime
                )
            if tracer.enabled:
                tracer.emit(event_type, self.env.now, **payload)
