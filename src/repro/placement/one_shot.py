"""The one-shot placement algorithm (§2.1).

The algorithm iteratively shortens the critical path.  Each round it
examines every operator on the current critical path, prices every
single-operator relocation, and keeps the cheapest; the round's best
variation is adopted if it strictly improves the placement, and the
process repeats until no strict improvement is found.

The search is exactly the paper's pseudocode:

.. code-block:: none

    Initialization: all operators placed at the client.
    Iterative step:
      C' <- C; N' <- current placement N; K <- critical path of N
      for each operator in K:
        consider all alternative locations for the operator
        let C_min be the cost of the cheapest alternative placement
        if (C_min <= C'): C' <- C_min; N' <- cheapest placement
      if (C' < C): N <- N'; C <- C'   (and iterate again)
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.dataflow.cost import (
    BandwidthEstimator,
    CostModel,
    RecordingEstimator,
    snapshot_safe,
)
from repro.dataflow.critical import (
    BatchMoveEvaluator,
    SingleMoveEvaluator,
    critical_path,
)
from repro.dataflow.placement import Placement
from repro.dataflow.tree import CombinationTree
from repro.obs.events import PLANNER_SEARCH
from repro.obs.tracer import ensure_tracer
from repro.placement.base import PlanResult


class OneShotPlanner:
    """Iterative critical-path-shortening search.

    Parameters
    ----------
    tree:
        The combination tree.
    hosts:
        All hosts that may run operators (servers' hosts plus the client's;
        the paper's assumption 1 is that servers can host computation).
    cost_model:
        Analytic cost model pricing placements.
    max_rounds:
        Safety bound on improvement rounds (the search provably terminates
        because each round strictly decreases the cost, but float quirks
        deserve a belt as well as braces).
    server_replicas:
        Optional ``{server node id: candidate hosts}``: servers whose
        dataset is replicated may be *served* from any replica, so the
        search treats them as movable among those hosts (the paper's
        assumption 3 relaxed).
    engine:
        ``"vectorized"`` (default) prices each round's whole move grid in
        one numpy pass (:class:`repro.dataflow.critical.BatchMoveEvaluator`),
        bit-identical to the scalar search; ``"scalar"`` forces the
        reference per-candidate loop.  The vectorized engine snapshots
        the estimator once per plan call, so estimators with per-call
        side effects (``snapshot_safe = False``, e.g. the live traced
        monitoring view) automatically take the scalar path — the engine
        actually used is reported in :attr:`last_engine`.
    """

    name = "one-shot"

    #: Supported ``engine`` values.
    engines = ("scalar", "vectorized")

    def __init__(
        self,
        tree: CombinationTree,
        hosts: Sequence[str],
        cost_model: CostModel,
        max_rounds: int = 200,
        server_replicas: "Optional[dict[str, tuple[str, ...]]]" = None,
        engine: str = "vectorized",
    ) -> None:
        if not hosts:
            raise ValueError("need at least one candidate host")
        if max_rounds <= 0:
            raise ValueError(f"max_rounds must be positive, got {max_rounds!r}")
        if engine not in self.engines:
            raise ValueError(
                f"unknown planner engine {engine!r}; choose from {self.engines}"
            )
        self.tree = tree
        self.hosts = sorted(set(hosts))
        self.cost_model = cost_model
        self.max_rounds = max_rounds
        self.engine = engine
        #: Engine used by the most recent ``plan`` call ("scalar" or
        #: "vectorized"); None before the first call.
        self.last_engine: "Optional[str]" = None
        self.server_replicas = {
            server: tuple(replicas)
            for server, replicas in (server_replicas or {}).items()
            if len(replicas) > 1
        }
        for server in self.server_replicas:
            if server not in tree or not tree.node(server).is_server:
                raise ValueError(f"{server!r} is not a server of this tree")
        self._operator_ids = tuple(op.node_id for op in tree.operators())
        self._all_hosts = tuple(self.hosts)
        #: Persistent cell-structure cache shared across plan calls (the
        #: grids are placement-independent, see
        #: :class:`repro.dataflow.critical.BatchMoveEvaluator`).
        self._grid_cache: dict = {}

    def plan(
        self,
        estimator: BandwidthEstimator,
        initial: Placement,
        *,
        seed: "Optional[int]" = None,
        tracer=None,
        now: float = 0.0,
    ) -> PlanResult:
        """Run the search from ``initial`` using ``estimator`` for bandwidths.

        ``seed`` is accepted for :class:`~repro.placement.base.Planner`
        uniformity (the search is deterministic and ignores it).  The
        vectorized engine is used when configured *and* the estimator is
        snapshot-safe; both engines return bit-identical results.
        """
        if self.engine == "vectorized" and snapshot_safe(estimator):
            self.last_engine = "vectorized"
            return self._plan_vectorized(
                estimator, initial, tracer=tracer, now=now
            )
        self.last_engine = "scalar"
        return self._plan_scalar(estimator, initial, tracer=tracer, now=now)

    def _plan_scalar(
        self,
        estimator: BandwidthEstimator,
        initial: Placement,
        *,
        tracer=None,
        now: float = 0.0,
    ) -> PlanResult:
        """The reference per-candidate search (the paper's pseudocode)."""
        recorder = RecordingEstimator(estimator)
        current = initial
        current_cost = critical_path(
            self.tree, current, self.cost_model, recorder
        ).cost
        rounds = 0
        candidates = 0

        for _ in range(self.max_rounds):
            rounds += 1
            path = critical_path(self.tree, current, self.cost_model, recorder)
            evaluator = SingleMoveEvaluator(
                self.tree, current, self.cost_model, recorder
            )
            best_move: "tuple[str, str] | None" = None
            best_cost = current_cost
            for node_id, candidate_hosts in self._candidate_moves(path, current):
                current_host = current.host_of(node_id)
                for host in candidate_hosts:
                    if host == current_host:
                        continue
                    candidates += 1
                    cost = evaluator.cost_of_move(node_id, host)
                    # Paper: "if (C_min <= C')" — ties move toward the
                    # newer candidate, strict improvement gates adoption.
                    if cost <= best_cost:
                        best_cost = cost
                        best_move = (node_id, host)
            if best_cost < current_cost and best_move is not None:
                current = current.with_move(*best_move)
                current_cost = best_cost
            else:
                break

        tracer = ensure_tracer(tracer)
        if tracer.enabled:
            tracer.emit(
                PLANNER_SEARCH,
                now,
                algorithm=self.name,
                rounds=rounds,
                candidates=candidates,
                links=len(recorder.queried),
                cost=current_cost,
            )
        return PlanResult(
            placement=current,
            cost=current_cost,
            rounds=rounds,
            candidates_evaluated=candidates,
            links_queried=frozenset(recorder.queried),
            algorithm=self.name,
        )

    def _plan_vectorized(
        self,
        estimator: BandwidthEstimator,
        initial: Placement,
        *,
        tracer=None,
        now: float = 0.0,
    ) -> PlanResult:
        """Batch-priced search, bit-identical to :meth:`_plan_scalar`.

        One :class:`BatchMoveEvaluator` carries the round state across
        the whole call (the scalar path rebuilds its evaluator every
        round); candidate enumeration, tie-breaks and link recording
        replicate the scalar loop exactly.
        """
        evaluator = BatchMoveEvaluator(
            self.tree,
            initial,
            self.cost_model,
            estimator,
            self.hosts,
            grid_cache=self._grid_cache,
        )
        current = initial
        current_cost = evaluator.critical_path().cost
        rounds = 0
        candidates = 0

        for _ in range(self.max_rounds):
            rounds += 1
            path = evaluator.critical_path()
            cells, best_cost, best_move = evaluator.price_moves(
                self._candidate_moves(path, current), current_cost
            )
            candidates += cells
            if best_cost < current_cost and best_move is not None:
                current = current.with_move(*best_move)
                evaluator.apply_move(*best_move)
                current_cost = best_cost
            else:
                break

        links = evaluator.links_queried()
        tracer = ensure_tracer(tracer)
        if tracer.enabled:
            tracer.emit(
                PLANNER_SEARCH,
                now,
                algorithm=self.name,
                rounds=rounds,
                candidates=candidates,
                links=len(links),
                cost=current_cost,
            )
        return PlanResult(
            placement=current,
            cost=current_cost,
            rounds=rounds,
            candidates_evaluated=candidates,
            links_queried=links,
            algorithm=self.name,
        )

    def _candidate_moves(
        self, path, placement: Placement
    ) -> list[tuple[str, tuple[str, ...]]]:
        """Nodes whose relocation can shorten the critical path.

        These are the operators *on* the path plus every operator placed
        on a host the path visits: under the single-NIC serialization
        model a path's cost includes its hosts' full occupancy, so
        shedding an off-path operator from a visited host shortens the
        path too.  (With download-all's initialization the critical path
        visits the client, so all operators start as candidates — which
        is how the search escapes the all-at-client congestion.)

        Operators may go to any host; replicated servers may switch to
        any of their replica hosts.
        """
        path_hosts = {placement.host_of(node_id) for node_id in path.nodes}
        candidates = set(path.operators)
        for op_id in self._operator_ids:
            if placement.host_of(op_id) in path_hosts:
                candidates.add(op_id)
        all_hosts = self._all_hosts
        moves = [(node_id, all_hosts) for node_id in sorted(candidates)]
        for server, replicas in sorted(self.server_replicas.items()):
            if server in path.nodes or placement.host_of(server) in path_hosts:
                moves.append((server, replicas))
        return moves
