"""The download-all base case: all operators at the client."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.dataflow.cost import BandwidthEstimator, CostModel, RecordingEstimator
from repro.dataflow.critical import placement_cost
from repro.dataflow.placement import Placement
from repro.dataflow.tree import CombinationTree
from repro.obs.events import PLANNER_SEARCH
from repro.obs.tracer import ensure_tracer
from repro.placement.base import PlanResult


def download_all_placement(
    tree: CombinationTree,
    server_hosts: Mapping[str, str],
    client_host: str,
) -> Placement:
    """Every operator at the client (the paper's Figure 1 / base case)."""
    return Placement.all_at_client(tree, server_hosts, client_host)


class DownloadAllPlanner:
    """The base case as a :class:`~repro.placement.base.Planner`.

    Identity policy: the plan *is* the initial placement (all operators at
    the client), never revised.  ``plan`` prices it when a cost model is
    available so comparisons against the searching planners stay easy.
    """

    name = "download-all"

    def __init__(
        self,
        tree: CombinationTree,
        hosts: Sequence[str] = (),
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.tree = tree
        self.hosts = sorted(set(hosts))
        self.cost_model = cost_model

    def plan(
        self,
        estimator: BandwidthEstimator,
        initial: Placement,
        *,
        seed: Optional[int] = None,
        tracer=None,
        now: float = 0.0,
    ) -> PlanResult:
        """Return ``initial`` unchanged (priced if a cost model exists)."""
        recorder = RecordingEstimator(estimator)
        if self.cost_model is not None:
            cost = placement_cost(self.tree, initial, self.cost_model, recorder)
        else:
            cost = float("nan")
        tracer = ensure_tracer(tracer)
        if tracer.enabled:
            tracer.emit(
                PLANNER_SEARCH,
                now,
                algorithm=self.name,
                rounds=0,
                candidates=0,
                links=len(recorder.queried),
                cost=cost,
            )
        return PlanResult(
            placement=initial,
            cost=cost,
            rounds=0,
            candidates_evaluated=0,
            links_queried=frozenset(recorder.queried),
            algorithm=self.name,
        )
