"""The download-all base case: all operators at the client."""

from __future__ import annotations

from typing import Mapping

from repro.dataflow.placement import Placement
from repro.dataflow.tree import CombinationTree


def download_all_placement(
    tree: CombinationTree,
    server_hosts: Mapping[str, str],
    client_host: str,
) -> Placement:
    """Every operator at the client (the paper's Figure 1 / base case)."""
    return Placement.all_at_client(tree, server_hosts, client_host)
