"""The paper's placement algorithms (§2).

Four policies:

* :func:`~repro.placement.download_all.download_all_placement` — every
  operator at the client; the paper's base case ("currently the dominant
  mode of combining data over wide-area networks").
* :class:`~repro.placement.one_shot.OneShotPlanner` — iterative critical-
  path shortening from the download-all start, run once at t=0 (§2.1).
* :class:`~repro.placement.global_planner.GlobalPlanner` — the one-shot
  procedure warm-started from the *current* placement; used periodically
  by the centralized on-line algorithm (§2.2).  The run-time barrier
  coordination lives in :mod:`repro.engine`.
* :mod:`~repro.placement.local_rules` — the pure decision rules of the
  distributed local algorithm (§2.3): critical-path self-detection from
  "later" marks and local-critical-path site selection.  The epoch
  wavefront and vector propagation live in :mod:`repro.engine`.
"""

from repro.placement.base import PlanResult
from repro.placement.download_all import download_all_placement
from repro.placement.one_shot import OneShotPlanner
from repro.placement.global_planner import GlobalPlanner
from repro.placement.local_rules import (
    LocalSiteDecision,
    choose_local_site,
    is_on_critical_path,
)

__all__ = [
    "GlobalPlanner",
    "LocalSiteDecision",
    "OneShotPlanner",
    "PlanResult",
    "choose_local_site",
    "download_all_placement",
    "is_on_critical_path",
]
