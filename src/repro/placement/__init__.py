"""The paper's placement algorithms (§2).

Four policies, all implementing the :class:`~repro.placement.base.Planner`
protocol (construct them uniformly with :func:`planner_for`):

* :class:`~repro.placement.download_all.DownloadAllPlanner` — every
  operator at the client; the paper's base case ("currently the dominant
  mode of combining data over wide-area networks").
  :func:`~repro.placement.download_all.download_all_placement` builds the
  placement itself.
* :class:`~repro.placement.one_shot.OneShotPlanner` — iterative critical-
  path shortening from the download-all start, run once at t=0 (§2.1).
* :class:`~repro.placement.global_planner.GlobalPlanner` — the one-shot
  procedure warm-started from the *current* placement; used periodically
  by the centralized on-line algorithm (§2.2).  The run-time barrier
  coordination lives in :mod:`repro.engine`.
* :class:`~repro.placement.local_rules.LocalRulesPlanner` — the
  distributed local algorithm (§2.3): critical-path self-detection from
  "later" marks and local-critical-path site selection, packaged as
  pure decision rules plus a wavefront-pass ``plan``.  The epoch
  wavefront and vector propagation live in :mod:`repro.engine`.
"""

from typing import Optional, Sequence

from repro.dataflow.cost import CostModel
from repro.dataflow.tree import CombinationTree
from repro.placement.base import Planner, PlanResult
from repro.placement.download_all import DownloadAllPlanner, download_all_placement
from repro.placement.one_shot import OneShotPlanner
from repro.placement.global_planner import GlobalPlanner
from repro.placement.local_rules import (
    LocalRulesPlanner,
    LocalSiteDecision,
    choose_local_site,
    is_on_critical_path,
)


def planner_for(
    algorithm,
    tree: CombinationTree,
    hosts: Sequence[str],
    cost_model: CostModel,
    *,
    server_replicas: "Optional[dict[str, tuple[str, ...]]]" = None,
    max_rounds: int = 200,
    extra_candidates: int = 0,
) -> Planner:
    """Construct the planner for an algorithm name (or enum).

    ``algorithm`` may be a string (``"download-all"``, ``"one-shot"``,
    ``"global"``, ``"local"``) or anything with a matching ``.value``
    (e.g. :class:`repro.engine.config.Algorithm`); keying on the value
    keeps this module import-independent of the engine.
    """
    key = getattr(algorithm, "value", algorithm)
    if key == OneShotPlanner.name:
        return OneShotPlanner(
            tree, hosts, cost_model, max_rounds, server_replicas
        )
    if key == GlobalPlanner.name:
        return GlobalPlanner(
            tree, hosts, cost_model, max_rounds, server_replicas
        )
    if key == LocalRulesPlanner.name:
        return LocalRulesPlanner(
            tree, hosts, cost_model, extra_candidates=extra_candidates
        )
    if key == DownloadAllPlanner.name:
        return DownloadAllPlanner(tree, hosts, cost_model)
    raise ValueError(f"unknown placement algorithm {algorithm!r}")


__all__ = [
    "DownloadAllPlanner",
    "GlobalPlanner",
    "LocalRulesPlanner",
    "LocalSiteDecision",
    "OneShotPlanner",
    "Planner",
    "PlanResult",
    "choose_local_site",
    "download_all_placement",
    "is_on_critical_path",
    "planner_for",
]
