"""The paper's placement algorithms (§2).

Four policies, all implementing the :class:`~repro.placement.base.Planner`
protocol (construct them uniformly with :func:`planner_for`):

* :class:`~repro.placement.download_all.DownloadAllPlanner` — every
  operator at the client; the paper's base case ("currently the dominant
  mode of combining data over wide-area networks").
  :func:`~repro.placement.download_all.download_all_placement` builds the
  placement itself.
* :class:`~repro.placement.one_shot.OneShotPlanner` — iterative critical-
  path shortening from the download-all start, run once at t=0 (§2.1).
* :class:`~repro.placement.global_planner.GlobalPlanner` — the one-shot
  procedure warm-started from the *current* placement; used periodically
  by the centralized on-line algorithm (§2.2).  The run-time barrier
  coordination lives in :mod:`repro.engine`.
* :class:`~repro.placement.local_rules.LocalRulesPlanner` — the
  distributed local algorithm (§2.3): critical-path self-detection from
  "later" marks and local-critical-path site selection, packaged as
  pure decision rules plus a wavefront-pass ``plan``.  The epoch
  wavefront and vector propagation live in :mod:`repro.engine`.
"""

from typing import Callable, Optional, Sequence

from repro.dataflow.cost import CostModel
from repro.dataflow.tree import CombinationTree
from repro.placement.base import Planner, PlanResult
from repro.placement.download_all import DownloadAllPlanner, download_all_placement
from repro.placement.one_shot import OneShotPlanner
from repro.placement.global_planner import GlobalPlanner
from repro.placement.local_rules import (
    LocalRulesPlanner,
    LocalSiteDecision,
    choose_local_site,
    is_on_critical_path,
)

#: Planner-factory signature: ``(tree, hosts, cost_model, *,
#: server_replicas=None, max_rounds=200, extra_candidates=0,
#: planner_engine="vectorized") -> Planner``.  ``planner_engine`` selects
#: the grid-search implementation for the one-shot/global family
#: (``"vectorized"`` batch pricing or the ``"scalar"`` reference loop,
#: bit-identical); planners without a move grid ignore it.
PlannerFactory = Callable[..., Planner]

_PLANNER_REGISTRY: "dict[str, PlannerFactory]" = {}


def register_planner(name: str, factory: PlannerFactory) -> None:
    """Register a planner factory under an algorithm name.

    Registration is idempotent only for the identical factory; a second
    registration of the same name with a different factory raises, so a
    stray import cannot silently shadow a built-in algorithm.
    """
    existing = _PLANNER_REGISTRY.get(name)
    if existing is not None and existing is not factory:
        raise ValueError(f"planner {name!r} already registered")
    _PLANNER_REGISTRY[name] = factory


def planner_registry() -> "tuple[str, ...]":
    """The registered algorithm names, sorted for determinism."""
    return tuple(sorted(_PLANNER_REGISTRY))


def _make_one_shot(tree, hosts, cost_model, *, server_replicas=None,
                   max_rounds=200, extra_candidates=0,
                   planner_engine="vectorized"):
    return OneShotPlanner(tree, hosts, cost_model, max_rounds,
                          server_replicas, planner_engine)


def _make_global(tree, hosts, cost_model, *, server_replicas=None,
                 max_rounds=200, extra_candidates=0,
                 planner_engine="vectorized"):
    return GlobalPlanner(tree, hosts, cost_model, max_rounds,
                         server_replicas, planner_engine)


def _make_local(tree, hosts, cost_model, *, server_replicas=None,
                max_rounds=200, extra_candidates=0,
                planner_engine="vectorized"):
    return LocalRulesPlanner(
        tree, hosts, cost_model, extra_candidates=extra_candidates
    )


def _make_download_all(tree, hosts, cost_model, *, server_replicas=None,
                       max_rounds=200, extra_candidates=0,
                       planner_engine="vectorized"):
    return DownloadAllPlanner(tree, hosts, cost_model)


register_planner(OneShotPlanner.name, _make_one_shot)
register_planner(GlobalPlanner.name, _make_global)
register_planner(LocalRulesPlanner.name, _make_local)
register_planner(DownloadAllPlanner.name, _make_download_all)


def planner_for(
    algorithm,
    tree: CombinationTree,
    hosts: Sequence[str],
    cost_model: CostModel,
    *,
    server_replicas: "Optional[dict[str, tuple[str, ...]]]" = None,
    max_rounds: int = 200,
    extra_candidates: int = 0,
    planner_engine: str = "vectorized",
) -> Planner:
    """Construct the planner for an algorithm name (or enum).

    ``algorithm`` may be a string (``"download-all"``, ``"one-shot"``,
    ``"global"``, ``"local"``, or any name added through
    :func:`register_planner`, e.g. the ``fleet-*`` family) or anything
    with a matching ``.value`` (e.g.
    :class:`repro.engine.config.Algorithm`); keying on the value keeps
    this module import-independent of the engine.  ``planner_engine``
    picks the grid-search implementation for the one-shot/global family
    (``"vectorized"`` default, ``"scalar"`` reference — bit-identical).
    """
    key = getattr(algorithm, "value", algorithm)
    factory = _PLANNER_REGISTRY.get(key)
    if factory is None and isinstance(key, str) and key.startswith("fleet-"):
        import repro.fleet  # noqa: F401  (registers the fleet family)

        factory = _PLANNER_REGISTRY.get(key)
    if factory is None:
        raise ValueError(f"unknown placement algorithm {algorithm!r}")
    return factory(
        tree,
        hosts,
        cost_model,
        server_replicas=server_replicas,
        max_rounds=max_rounds,
        extra_candidates=extra_candidates,
        planner_engine=planner_engine,
    )


__all__ = [
    "DownloadAllPlanner",
    "GlobalPlanner",
    "LocalRulesPlanner",
    "LocalSiteDecision",
    "OneShotPlanner",
    "Planner",
    "PlanResult",
    "choose_local_site",
    "download_all_placement",
    "is_on_critical_path",
    "planner_for",
    "planner_registry",
    "register_planner",
]
