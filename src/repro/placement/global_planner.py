"""The global on-line planner (§2.2).

"This algorithm uses the one-shot algorithm as a procedure to compute new
placements; the only modification is in the initialization step where the
*current placement* is used as the initial placement."  The client runs it
periodically; the engine's barrier protocol installs the results.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.dataflow.cost import BandwidthEstimator, CostModel
from repro.dataflow.placement import Placement
from repro.dataflow.tree import CombinationTree
from repro.obs.events import PLANNER_SEARCH
from repro.obs.tracer import ensure_tracer
from repro.placement.base import PlanResult
from repro.placement.one_shot import OneShotPlanner


class GlobalPlanner:
    """Periodic re-planning warm-started from the running placement."""

    name = "global"

    def __init__(
        self,
        tree: CombinationTree,
        hosts: Sequence[str],
        cost_model: CostModel,
        max_rounds: int = 200,
        server_replicas: "dict[str, tuple[str, ...]] | None" = None,
        engine: str = "vectorized",
    ) -> None:
        self._one_shot = OneShotPlanner(
            tree, hosts, cost_model, max_rounds, server_replicas, engine
        )

    @property
    def engine(self) -> str:
        """Configured planner engine (``"scalar"``/``"vectorized"``)."""
        return self._one_shot.engine

    @property
    def last_engine(self):
        """Engine used by the most recent ``plan`` call (None before)."""
        return self._one_shot.last_engine

    @property
    def tree(self) -> CombinationTree:
        return self._one_shot.tree

    @property
    def hosts(self) -> list[str]:
        return list(self._one_shot.hosts)

    @property
    def cost_model(self) -> CostModel:
        return self._one_shot.cost_model

    def plan(
        self,
        estimator: BandwidthEstimator,
        initial: Placement,
        *,
        seed: Optional[int] = None,
        tracer=None,
        now: float = 0.0,
    ) -> PlanResult:
        """One re-planning round from the *current* placement."""
        result = replace(
            self._one_shot.plan(estimator, initial=initial, seed=seed),
            algorithm=self.name,
        )
        tracer = ensure_tracer(tracer)
        if tracer.enabled:
            tracer.emit(
                PLANNER_SEARCH,
                now,
                algorithm=self.name,
                rounds=result.rounds,
                candidates=result.candidates_evaluated,
                links=len(result.links_queried),
                cost=result.cost,
            )
        return result
