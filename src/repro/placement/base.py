"""Shared plumbing for the placement planners.

Every placement policy — one-shot, global, local rules, download-all —
implements the :class:`Planner` protocol: a ``name`` and one uniform
``plan`` entry point taking a bandwidth estimator and the placement to
start from.  The engine (``engine/simulation.py``, the controllers) and
experiment drivers dispatch through this interface via
:func:`repro.placement.planner_for` instead of per-algorithm branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

from repro.dataflow.cost import BandwidthEstimator
from repro.dataflow.placement import Placement


@dataclass(frozen=True)
class PlanResult:
    """Outcome of one planning run."""

    placement: Placement
    #: Critical-path cost of the returned placement (model seconds/partition).
    cost: float
    #: Number of improvement rounds the iterative search performed.
    rounds: int
    #: Single-move candidates evaluated in total.
    candidates_evaluated: int
    #: Distinct host pairs whose bandwidth the search consulted.
    links_queried: frozenset[tuple[str, str]] = field(default_factory=frozenset)
    #: Name of the planner that produced this result.
    algorithm: str = ""


@runtime_checkable
class Planner(Protocol):
    """The uniform planning interface all four placement policies share.

    ``plan`` searches for a placement starting from ``initial`` using
    ``estimator`` for pairwise bandwidths.  ``seed`` feeds any randomized
    choices (only the local rules use it); ``tracer`` receives a
    ``planner.search`` event per invocation; ``now`` is the simulation
    time to stamp on emitted events.
    """

    name: str

    def plan(
        self,
        estimator: BandwidthEstimator,
        initial: Placement,
        *,
        seed: Optional[int] = None,
        tracer=None,
        now: float = 0.0,
    ) -> PlanResult: ...
