"""Shared plumbing for the placement planners."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataflow.placement import Placement


@dataclass(frozen=True)
class PlanResult:
    """Outcome of one planning run."""

    placement: Placement
    #: Critical-path cost of the returned placement (model seconds/partition).
    cost: float
    #: Number of improvement rounds the iterative search performed.
    rounds: int
    #: Single-move candidates evaluated in total.
    candidates_evaluated: int
    #: Distinct host pairs whose bandwidth the search consulted.
    links_queried: frozenset[tuple[str, str]] = field(default_factory=frozenset)
