"""Pure decision rules of the distributed local algorithm (§2.3).

The run-time machinery (epoch wavefront, "later" marking, vector
propagation) lives in the engine; the two decisions themselves are pure
functions so they can be tested exhaustively:

* :func:`is_on_critical_path` — an operator decides it is on the critical
  path iff it was marked the "later" producer **more than half** the
  times it sent data during the epoch *and* its consumer is also on the
  critical path (the client, as root, always is).
* :func:`choose_local_site` — an operator on the critical path picks,
  among its producers' hosts, its consumer's host, its current host and
  ``k`` extra random hosts, the site minimizing the **local critical
  path**: the longest producer→operator→consumer chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.dataflow.cost import BandwidthEstimator, CostModel, RecordingEstimator
from repro.dataflow.critical import placement_cost
from repro.dataflow.placement import Placement
from repro.dataflow.tree import CombinationTree
from repro.obs.events import PLANNER_SEARCH
from repro.obs.tracer import ensure_tracer
from repro.placement.base import PlanResult


def is_on_critical_path(
    later_marks: int, dispatch_count: int, consumer_on_critical_path: bool
) -> bool:
    """The operator's critical-path self-test at an epoch boundary."""
    if later_marks < 0 or dispatch_count < 0:
        raise ValueError("counts must be non-negative")
    if not consumer_on_critical_path:
        return False
    # Marks arrive with the consumer's *next* demand, so at an epoch
    # boundary the mark count can exceed the dispatch count by the
    # in-flight demand; count the straggler as a dispatch.
    effective_dispatches = max(dispatch_count, later_marks)
    return effective_dispatches > 0 and later_marks * 2 > effective_dispatches


@dataclass(frozen=True)
class LocalSiteDecision:
    """Outcome of a local placement evaluation."""

    best_site: str
    best_cost: float
    current_cost: float
    #: Cost of the local critical path at every candidate site evaluated.
    costs: Mapping[str, float]

    @property
    def should_move(self) -> bool:
        """True if the best site strictly beats the current one."""
        return self.best_cost < self.current_cost


def local_path_cost(
    site: str,
    producer_hosts: Sequence[str],
    producer_sizes: Sequence[float],
    consumer_host: str,
    output_size: float,
    estimator: BandwidthEstimator,
    startup_cost: float,
    compute_seconds: float = 0.0,
    min_bandwidth: float = 1.0,
) -> float:
    """Length of the local critical path with the operator at ``site``.

    The local critical path is "the longest path from either of its
    producers to its consumer": the slower input edge, plus the operator's
    own processing, plus the output edge.
    """
    if len(producer_hosts) != len(producer_sizes):
        raise ValueError("producer hosts/sizes length mismatch")

    def edge(a: str, b: str, size: float) -> float:
        if a == b:
            return 0.0
        bandwidth = max(estimator(a, b), min_bandwidth)
        return startup_cost + size / bandwidth

    inbound = max(
        edge(p_host, site, size)
        for p_host, size in zip(producer_hosts, producer_sizes)
    )
    outbound = edge(site, consumer_host, output_size)
    return inbound + compute_seconds + outbound


def choose_local_site(
    current_host: str,
    producer_hosts: Sequence[str],
    producer_sizes: Sequence[float],
    consumer_host: str,
    output_size: float,
    estimator: BandwidthEstimator,
    startup_cost: float,
    extra_candidates: Sequence[str] = (),
    compute_seconds: float = 0.0,
) -> LocalSiteDecision:
    """Evaluate candidate sites and pick the local-critical-path minimizer.

    Candidates are the producers' hosts, the consumer's host, the current
    host, plus ``extra_candidates`` (the paper's ``k`` randomly chosen
    additional locations, Figure 7).  Ties are broken toward the current
    host (no gratuitous move), then lexicographically for determinism.
    """
    candidates = sorted(
        set(producer_hosts) | {consumer_host, current_host} | set(extra_candidates)
    )
    costs = {
        site: local_path_cost(
            site,
            producer_hosts,
            producer_sizes,
            consumer_host,
            output_size,
            estimator,
            startup_cost,
            compute_seconds,
        )
        for site in candidates
    }
    current_cost = costs[current_host]
    best_site = current_host
    best_cost = current_cost
    for site in candidates:
        if costs[site] < best_cost:
            best_site = site
            best_cost = costs[site]
    return LocalSiteDecision(
        best_site=best_site,
        best_cost=best_cost,
        current_cost=current_cost,
        costs=costs,
    )


class LocalRulesPlanner:
    """The local algorithm packaged as a :class:`~repro.placement.base.Planner`.

    Two roles:

    * :meth:`decide` is the thin per-operator entry point the engine's
      :class:`~repro.engine.controllers.LocalController` dispatches
      through (the distributed setting: one decision per epoch firing).
    * :meth:`plan` is the protocol-uniform *offline* evaluation — one
      wavefront pass applying every operator's local rule from the
      deepest level upward, the order the staggered epochs fire in.
    """

    name = "local"

    def __init__(
        self,
        tree: CombinationTree,
        hosts: Sequence[str],
        cost_model: CostModel,
        extra_candidates: int = 0,
    ) -> None:
        if extra_candidates < 0:
            raise ValueError(
                f"extra_candidates must be >= 0, got {extra_candidates!r}"
            )
        self.tree = tree
        self.hosts = sorted(set(hosts))
        self.cost_model = cost_model
        self.extra_candidates = extra_candidates

    def decide(
        self,
        *,
        current_host: str,
        producer_hosts: Sequence[str],
        producer_sizes: Sequence[float],
        consumer_host: str,
        output_size: float,
        estimator: BandwidthEstimator,
        extra_candidates: Sequence[str] = (),
        compute_seconds: float = 0.0,
    ) -> LocalSiteDecision:
        """One operator's site decision (the controller's dispatch point)."""
        return choose_local_site(
            current_host=current_host,
            producer_hosts=producer_hosts,
            producer_sizes=producer_sizes,
            consumer_host=consumer_host,
            output_size=output_size,
            estimator=estimator,
            startup_cost=self.cost_model.startup_cost,
            extra_candidates=extra_candidates,
            compute_seconds=compute_seconds,
        )

    def plan(
        self,
        estimator: BandwidthEstimator,
        initial: Placement,
        *,
        seed: Optional[int] = None,
        tracer=None,
        now: float = 0.0,
    ) -> PlanResult:
        """One wavefront pass of local decisions over the whole tree."""
        recorder = RecordingEstimator(estimator)
        rng = np.random.default_rng(0 if seed is None else seed)
        placement = initial
        candidates = 0
        sizes = self.cost_model.sizes
        ordered = sorted(
            self.tree.operators(), key=lambda op: (op.level, op.node_id)
        )
        for op in ordered:
            current_host = placement.host_of(op.node_id)
            producer_hosts = [placement.host_of(p) for p in op.children]
            consumer_host = placement.host_of(op.parent)
            base = set(producer_hosts) | {consumer_host, current_host}
            pool = sorted(set(self.hosts) - base)
            k = min(self.extra_candidates, len(pool))
            extras = (
                [pool[i] for i in rng.choice(len(pool), size=k, replace=False)]
                if k
                else []
            )
            decision = self.decide(
                current_host=current_host,
                producer_hosts=producer_hosts,
                producer_sizes=[sizes[p] for p in op.children],
                consumer_host=consumer_host,
                output_size=sizes[op.node_id],
                estimator=recorder,
                extra_candidates=extras,
                compute_seconds=self.cost_model.node_seconds(op.node_id),
            )
            candidates += len(decision.costs)
            if decision.should_move:
                placement = placement.with_move(op.node_id, decision.best_site)
        cost = placement_cost(self.tree, placement, self.cost_model, recorder)
        tracer = ensure_tracer(tracer)
        if tracer.enabled:
            tracer.emit(
                PLANNER_SEARCH,
                now,
                algorithm=self.name,
                rounds=1,
                candidates=candidates,
                links=len(recorder.queried),
                cost=cost,
            )
        return PlanResult(
            placement=placement,
            cost=cost,
            rounds=1,
            candidates_evaluated=candidates,
            links_queried=frozenset(recorder.queried),
            algorithm=self.name,
        )
